"""Tests for the MLS lattice and Bell–LaPadula checks."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.mls import (
    PUBLIC,
    ClassificationMap,
    Label,
    Level,
    can_read,
    can_write,
)


class TestLevel:
    def test_total_order(self):
        assert Level.UNCLASSIFIED < Level.CONFIDENTIAL < Level.SECRET \
            < Level.TOP_SECRET

    def test_parse_from_string(self):
        assert Level.parse("secret") is Level.SECRET
        assert Level.parse("Top Secret") is Level.TOP_SECRET
        assert Level.parse(Level.SECRET) is Level.SECRET

    def test_parse_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            Level.parse("ultra")


class TestLabel:
    def test_dominance_by_level(self):
        assert Label(Level.SECRET).dominates(Label(Level.CONFIDENTIAL))
        assert not Label(Level.CONFIDENTIAL).dominates(Label(Level.SECRET))

    def test_dominance_needs_compartments(self):
        nuclear_secret = Label(Level.SECRET, {"nuclear"})
        plain_secret = Label(Level.SECRET)
        assert nuclear_secret.dominates(plain_secret)
        assert not plain_secret.dominates(nuclear_secret)

    def test_incomparable_compartments(self):
        a = Label(Level.SECRET, {"nuclear"})
        b = Label(Level.SECRET, {"crypto"})
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_join_is_least_upper_bound(self):
        a = Label(Level.SECRET, {"nuclear"})
        b = Label(Level.CONFIDENTIAL, {"crypto"})
        joined = a.join(b)
        assert joined.level is Level.SECRET
        assert joined.compartments == frozenset({"nuclear", "crypto"})
        assert joined.dominates(a) and joined.dominates(b)

    def test_meet_is_greatest_lower_bound(self):
        a = Label(Level.SECRET, {"nuclear", "crypto"})
        b = Label(Level.CONFIDENTIAL, {"crypto"})
        met = a.meet(b)
        assert met.level is Level.CONFIDENTIAL
        assert met.compartments == frozenset({"crypto"})

    def test_label_accepts_string_level(self):
        assert Label("secret").level is Level.SECRET


class TestBellLaPadula:
    def test_no_read_up(self):
        assert can_read(Label(Level.SECRET), Label(Level.CONFIDENTIAL))
        assert not can_read(Label(Level.CONFIDENTIAL), Label(Level.SECRET))

    def test_no_write_down(self):
        assert can_write(Label(Level.CONFIDENTIAL), Label(Level.SECRET))
        assert not can_write(Label(Level.SECRET),
                             Label(Level.CONFIDENTIAL))


class TestClassificationMap:
    def test_default_label(self):
        cmap = ClassificationMap()
        assert cmap.label_of("anything") == PUBLIC

    def test_classify_and_read_filter(self):
        cmap = ClassificationMap()
        cmap.classify("doc1", Label(Level.SECRET))
        readable = cmap.readable_by(Label(Level.CONFIDENTIAL),
                                    ["doc1", "doc2"])
        assert readable == ["doc2"]

    def test_declassify_lowers(self):
        cmap = ClassificationMap()
        cmap.classify("doc", Label(Level.SECRET))
        cmap.declassify("doc")
        assert cmap.label_of("doc") == PUBLIC

    def test_declassify_rejects_upgrade(self):
        cmap = ClassificationMap()
        cmap.classify("doc", Label(Level.CONFIDENTIAL))
        with pytest.raises(ConfigurationError):
            cmap.declassify("doc", Label(Level.SECRET))

    def test_reclassify_can_raise(self):
        cmap = ClassificationMap()
        cmap.reclassify("doc", Label(Level.TOP_SECRET))
        assert cmap.label_of("doc").level is Level.TOP_SECRET

    def test_classify_accepts_level_and_string(self):
        cmap = ClassificationMap()
        cmap.classify("a", Level.SECRET)
        cmap.classify("b", "confidential")
        assert cmap.label_of("a").level is Level.SECRET
        assert cmap.label_of("b").level is Level.CONFIDENTIAL
