"""Tests for the benchmark harness and table rendering."""

import pytest

from repro.bench.harness import (
    ExperimentResult,
    Timer,
    register,
    run_all,
    time_callable,
)
from repro.bench.tables import format_cell, render_table


class TestTables:
    def test_format_cell_variants(self):
        assert format_cell(0.0) == "0"
        assert format_cell(3.14159) == "3.142"
        assert format_cell(12.345) == "12.3"
        assert format_cell(1234567.0) == "1,234,567"
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"
        assert format_cell("text") == "text"
        assert format_cell(7) == "7"

    def test_render_alignment(self):
        table = render_table(["name", "count"],
                             [["alpha", 1], ["b", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("| name")
        # numeric column right-aligned
        assert lines[2].endswith("|     1 |".replace("5", "5")) or \
            "    1 |" in lines[2]
        assert "   22 |" in lines[3] or "22 |" in lines[3]

    def test_render_with_title(self):
        table = render_table(["x"], [[1]], title="T")
        assert table.splitlines()[0] == "T"

    def test_empty_rows(self):
        table = render_table(["a", "b"], [])
        assert "| a | b |" in table

    def test_deterministic(self):
        rows = [["x", 1.5], ["y", 2.5]]
        assert render_table(["k", "v"], rows) == \
            render_table(["k", "v"], rows)


class TestHarness:
    def test_timer(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.elapsed >= 0

    def test_time_callable_returns_best_and_value(self):
        calls = []

        def work():
            calls.append(1)
            return "value"

        best, value = time_callable(work, repeats=4)
        assert value == "value"
        assert len(calls) == 4
        assert best >= 0

    def test_register_and_run(self):
        @register("T-unit", "a synthetic test experiment")
        def runner() -> ExperimentResult:
            return ExperimentResult("T-unit", "title", ["c"], [[1]])

        results = run_all(["T-unit"])
        assert len(results) == 1
        assert results[0].elapsed_seconds >= 0
        assert "[T-unit]" in results[0].render()

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_all(["nope"])

    def test_result_render_includes_observations(self):
        result = ExperimentResult("X", "t", ["a"], [[1]],
                                  observations=["note one"])
        rendered = result.render()
        assert "* note one" in rendered
        assert "completed in" in rendered
