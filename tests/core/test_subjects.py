"""Tests for subjects, roles and the role hierarchy."""

import pytest

from repro.core.credentials import CredentialType
from repro.core.errors import ConfigurationError
from repro.core.subjects import (
    Identity,
    Role,
    RoleHierarchy,
    Subject,
    SubjectDirectory,
)


class TestIdentity:
    def test_equality_by_name(self):
        assert Identity("alice") == Identity("alice")
        assert Identity("alice") != Identity("bob")

    def test_string_form(self):
        assert str(Identity("alice")) == "alice"


class TestRoleHierarchy:
    def make(self):
        hierarchy = RoleHierarchy()
        hierarchy.add_seniority(Role("doctor"), Role("nurse"))
        hierarchy.add_seniority(Role("chief"), Role("doctor"))
        return hierarchy

    def test_dominates_is_reflexive(self):
        hierarchy = self.make()
        assert hierarchy.dominates(Role("nurse"), Role("nurse"))

    def test_dominates_is_transitive(self):
        hierarchy = self.make()
        assert hierarchy.dominates(Role("chief"), Role("nurse"))

    def test_junior_does_not_dominate_senior(self):
        hierarchy = self.make()
        assert not hierarchy.dominates(Role("nurse"), Role("doctor"))

    def test_self_seniority_rejected(self):
        hierarchy = RoleHierarchy()
        with pytest.raises(ConfigurationError):
            hierarchy.add_seniority(Role("a"), Role("a"))

    def test_cycle_rejected(self):
        hierarchy = self.make()
        with pytest.raises(ConfigurationError):
            hierarchy.add_seniority(Role("nurse"), Role("chief"))

    def test_dominated_by_closure(self):
        hierarchy = self.make()
        closure = hierarchy.dominated_by(Role("chief"))
        assert closure == {Role("chief"), Role("doctor"), Role("nurse")}


class TestSubject:
    def test_string_identity_is_coerced(self):
        subject = Subject("alice")
        assert subject.identity == Identity("alice")

    def test_effective_roles_without_hierarchy(self):
        subject = Subject("a", roles={Role("doctor")})
        assert subject.effective_roles() == frozenset({Role("doctor")})

    def test_effective_roles_expand_through_hierarchy(self):
        hierarchy = RoleHierarchy()
        hierarchy.add_seniority(Role("doctor"), Role("nurse"))
        subject = Subject("a", roles={Role("doctor")})
        assert Role("nurse") in subject.effective_roles(hierarchy)

    def test_credential_lookup(self):
        badge = CredentialType("badge", frozenset({"level"})).issue(level=3)
        subject = Subject("a", credentials=[badge])
        assert subject.credential_of_type("badge") is badge
        assert subject.credential_of_type("absent") is None
        assert subject.attribute("badge", "level") == 3
        assert subject.attribute("badge", "missing") is None
        assert subject.attribute("nothing", "level") is None


class TestSubjectDirectory:
    def test_register_and_get(self):
        directory = SubjectDirectory()
        directory.create("alice")
        assert "alice" in directory
        assert directory.get("alice").identity.name == "alice"

    def test_duplicate_rejected(self):
        directory = SubjectDirectory()
        directory.create("alice")
        with pytest.raises(ConfigurationError):
            directory.create("alice")

    def test_unknown_subject_raises(self):
        with pytest.raises(ConfigurationError):
            SubjectDirectory().get("ghost")

    def test_assign_role_returns_updated_subject(self):
        directory = SubjectDirectory()
        directory.create("alice")
        updated = directory.assign_role("alice", Role("doctor"))
        assert Role("doctor") in updated.roles
        assert Role("doctor") in directory.get("alice").roles

    def test_issue_credential(self):
        directory = SubjectDirectory()
        directory.create("alice")
        badge = CredentialType("badge").issue()
        updated = directory.issue_credential("alice", badge)
        assert badge in updated.credentials

    def test_len_and_iteration(self):
        directory = SubjectDirectory()
        for name in ("a", "b", "c"):
            directory.create(name)
        assert len(directory) == 3
        assert {s.identity.name for s in directory.subjects()} == {
            "a", "b", "c"}
