"""Tests for the exception hierarchy's contracts."""

import pytest

from repro.core import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_security_branch(self):
        for cls in (errors.AccessDenied, errors.AuthenticationError,
                    errors.IntegrityError, errors.CompletenessError,
                    errors.PrivacyViolation, errors.InferenceViolation,
                    errors.PolicyConflict, errors.KeyManagementError):
            assert issubclass(cls, errors.SecurityError)

    def test_inference_is_privacy_violation(self):
        assert issubclass(errors.InferenceViolation,
                          errors.PrivacyViolation)

    def test_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.ParseError("bad")


class TestAttributes:
    def test_access_denied_carries_request(self):
        error = errors.AccessDenied("alice", "read", "r1", reason="why")
        assert error.subject == "alice"
        assert error.action == "read"
        assert error.resource == "r1"
        assert "why" in str(error)

    def test_parse_error_offset(self):
        error = errors.ParseError("oops", position=17)
        assert error.position == 17
        assert "offset 17" in str(error)
        plain = errors.ParseError("oops")
        assert plain.position is None

    def test_service_fault_code(self):
        fault = errors.ServiceFault("env:X", "boom")
        assert fault.code == "env:X"
        assert "[env:X] boom" == str(fault)
