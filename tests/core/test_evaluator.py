"""Tests for policy evaluation and conflict resolution."""

import pytest

from repro.core.audit import AuditLog
from repro.core.credentials import anyone, has_role
from repro.core.errors import AccessDenied
from repro.core.evaluator import (
    ConflictResolution,
    DefaultDecision,
    PolicyEvaluator,
)
from repro.core.policy import Action, PolicyBase, deny, grant
from repro.core.subjects import Role, Subject

DOCTOR = Subject("dr", roles={Role("doctor")})


def evaluator(policies, **kwargs) -> PolicyEvaluator:
    return PolicyEvaluator(PolicyBase(policies), **kwargs)


class TestDefaults:
    def test_closed_world_denies_uncovered(self):
        ev = evaluator([], default=DefaultDecision.CLOSED)
        assert not ev.check(DOCTOR, Action.READ, "anything")

    def test_open_world_grants_uncovered(self):
        ev = evaluator([], default=DefaultDecision.OPEN)
        assert ev.check(DOCTOR, Action.READ, "anything")

    def test_default_decision_has_no_determining_policy(self):
        decision = evaluator([]).decide(DOCTOR, Action.READ, "x")
        assert decision.determining is None
        assert decision.applicable == ()


class TestDenyOverrides:
    def test_deny_wins_over_grant(self):
        ev = evaluator([
            grant(anyone(), Action.READ, "h/**"),
            deny(anyone(), Action.READ, "h/secret"),
        ])
        assert ev.check(DOCTOR, Action.READ, "h/public")
        assert not ev.check(DOCTOR, Action.READ, "h/secret")

    def test_grant_alone_grants(self):
        ev = evaluator([grant(anyone(), Action.READ, "h/**")])
        decision = ev.decide(DOCTOR, Action.READ, "h/x")
        assert decision.granted
        assert decision.determining is not None


class TestGrantOverrides:
    def test_grant_wins_over_deny(self):
        ev = evaluator([
            deny(anyone(), Action.READ, "h/**"),
            grant(has_role("doctor"), Action.READ, "h/**"),
        ], resolution=ConflictResolution.GRANT_OVERRIDES)
        assert ev.check(DOCTOR, Action.READ, "h/x")

    def test_deny_without_grant_denies(self):
        ev = evaluator([deny(anyone(), Action.READ, "h/**")],
                       resolution=ConflictResolution.GRANT_OVERRIDES)
        assert not ev.check(DOCTOR, Action.READ, "h/x")


class TestMostSpecific:
    def test_specific_grant_beats_general_deny(self):
        ev = evaluator([
            deny(anyone(), Action.READ, "h/**"),
            grant(anyone(), Action.READ, "h/records/r1"),
        ], resolution=ConflictResolution.MOST_SPECIFIC)
        assert ev.check(DOCTOR, Action.READ, "h/records/r1")
        assert not ev.check(DOCTOR, Action.READ, "h/records/r2")

    def test_tie_resolves_deny(self):
        ev = evaluator([
            grant(anyone(), Action.READ, "h/x"),
            deny(anyone(), Action.READ, "h/x"),
        ], resolution=ConflictResolution.MOST_SPECIFIC)
        assert not ev.check(DOCTOR, Action.READ, "h/x")


class TestPriority:
    def test_higher_priority_wins(self):
        ev = evaluator([
            deny(anyone(), Action.READ, "h/**", priority=0),
            grant(anyone(), Action.READ, "h/**", priority=10),
        ], resolution=ConflictResolution.PRIORITY)
        assert ev.check(DOCTOR, Action.READ, "h/x")

    def test_equal_priority_deny_wins(self):
        ev = evaluator([
            deny(anyone(), Action.READ, "h/**", priority=5),
            grant(anyone(), Action.READ, "h/**", priority=5),
        ], resolution=ConflictResolution.PRIORITY)
        assert not ev.check(DOCTOR, Action.READ, "h/x")


class TestEnforceAndAudit:
    def test_enforce_raises_on_deny(self):
        ev = evaluator([])
        with pytest.raises(AccessDenied) as exc_info:
            ev.enforce(DOCTOR, Action.READ, "h/x")
        assert exc_info.value.subject == "dr"

    def test_enforce_returns_decision_on_grant(self):
        ev = evaluator([grant(anyone(), Action.READ, "**")])
        decision = ev.enforce(DOCTOR, Action.READ, "h/x")
        assert decision.granted

    def test_decisions_are_audited(self):
        audit = AuditLog()
        ev = evaluator([grant(anyone(), Action.READ, "h/**")],
                       audit=audit)
        ev.check(DOCTOR, Action.READ, "h/x")
        ev.check(DOCTOR, Action.READ, "elsewhere")
        assert len(audit) == 2
        assert audit.verify()
        assert len(audit.denials()) == 1

    def test_content_payload_reaches_policies(self):
        ev = evaluator([
            grant(anyone(), Action.READ, "h/**",
                  condition=lambda p: p and p.get("public")),
        ])
        assert ev.check(DOCTOR, Action.READ, "h/x", {"public": True})
        assert not ev.check(DOCTOR, Action.READ, "h/x", {"public": False})
