"""Tests for policies and the indexed policy base."""

from repro.core.credentials import anyone, has_role
from repro.core.objects import ResourcePath
from repro.core.policy import (
    Action,
    PolicyBase,
    Propagation,
    Sign,
    deny,
    grant,
)
from repro.core.subjects import Role, Subject

DOCTOR = Subject("dr", roles={Role("doctor")})
NURSE = Subject("nn", roles={Role("nurse")})


class TestPolicyApplicability:
    def test_subject_match(self):
        policy = grant(has_role("doctor"), Action.READ, "h/**")
        assert policy.applies_to_subject(DOCTOR)
        assert not policy.applies_to_subject(NURSE)

    def test_action_mismatch(self):
        policy = grant(anyone(), Action.WRITE, "h/**")
        assert not policy.applies(DOCTOR, Action.READ, "h/x")

    def test_cascade_propagation(self):
        policy = grant(anyone(), Action.READ, "h/records",
                       propagation=Propagation.CASCADE)
        assert policy.applies_to_resource("h/records")
        assert policy.applies_to_resource("h/records/r1/deep/leaf")
        assert not policy.applies_to_resource("h/other")

    def test_local_propagation(self):
        policy = grant(anyone(), Action.READ, "h/records",
                       propagation=Propagation.LOCAL)
        assert policy.applies_to_resource("h/records")
        assert not policy.applies_to_resource("h/records/r1")

    def test_one_level_propagation(self):
        policy = grant(anyone(), Action.READ, "h/records",
                       propagation=Propagation.ONE_LEVEL)
        assert policy.applies_to_resource("h/records/r1")
        assert not policy.applies_to_resource("h/records/r1/ssn")

    def test_content_condition(self):
        policy = grant(anyone(), Action.READ, "h/**",
                       condition=lambda payload: payload == "public")
        assert policy.applies(DOCTOR, Action.READ, "h/x", "public")
        assert not policy.applies(DOCTOR, Action.READ, "h/x", "secret")

    def test_broken_condition_fails_closed(self):
        policy = grant(anyone(), Action.READ, "h/**",
                       condition=lambda payload: payload.missing)
        assert not policy.applies(DOCTOR, Action.READ, "h/x", object())

    def test_signs(self):
        assert grant().sign is Sign.GRANT
        assert deny().sign is Sign.DENY


class TestPolicyBase:
    def test_candidates_pruned_by_head_segment(self):
        base = PolicyBase([
            grant(anyone(), Action.READ, "hospital/**"),
            grant(anyone(), Action.READ, "bank/**"),
            grant(anyone(), Action.READ, "**"),
        ])
        candidates = base.candidates(Action.READ, "hospital/r1")
        resources = {str(p.resource) for p in candidates}
        assert "hospital/**" in resources
        assert "**" in resources
        assert "bank/**" not in resources

    def test_glob_head_goes_to_wildcard_bucket(self):
        base = PolicyBase([grant(anyone(), Action.READ, "h*/x")])
        assert base.candidates(Action.READ, "hospital/x")

    def test_applicable_filters_fully(self):
        base = PolicyBase([
            grant(has_role("doctor"), Action.READ, "h/**"),
            deny(anyone(), Action.READ, "h/secret"),
        ])
        applicable = base.applicable(DOCTOR, Action.READ, "h/records")
        assert len(applicable) == 1
        applicable = base.applicable(DOCTOR, Action.READ, "h/secret")
        assert len(applicable) == 2
        assert base.applicable(NURSE, Action.READ, "h/records") == []

    def test_remove(self):
        policy = grant(anyone(), Action.READ, "a/**")
        base = PolicyBase([policy])
        base.remove(policy)
        assert len(base) == 0
        assert base.candidates(Action.READ, "a/x") == []

    def test_candidates_sorted_by_id(self):
        first = grant(anyone(), Action.READ, "a/**")
        second = grant(anyone(), Action.READ, "**")
        base = PolicyBase([second, first])
        candidates = base.candidates(Action.READ, ResourcePath("a/x"))
        assert [p.policy_id for p in candidates] == sorted(
            p.policy_id for p in candidates)
