"""Tests for credential types, instances and expressions."""

import pytest

from repro.core.credentials import (
    CredentialType,
    anyone,
    attribute_at_least,
    attribute_equals,
    attribute_in,
    has_credential,
    has_role,
    is_identity,
    issued_by,
    nobody,
)
from repro.core.errors import ConfigurationError
from repro.core.subjects import Role, Subject

PHYSICIAN = CredentialType(
    "physician", frozenset({"dept", "years"}), frozenset({"dept"}))


def make_doctor() -> Subject:
    return Subject("dr", roles={Role("doctor")},
                   credentials=[PHYSICIAN.issue(
                       issuer="board", dept="oncology", years=9)])


class TestCredentialType:
    def test_mandatory_must_be_declared(self):
        with pytest.raises(ConfigurationError):
            CredentialType("x", frozenset({"a"}), frozenset({"b"}))

    def test_issue_validates_unknown_attribute(self):
        with pytest.raises(ConfigurationError):
            PHYSICIAN.issue(dept="x", nonsense=1)

    def test_issue_validates_missing_mandatory(self):
        with pytest.raises(ConfigurationError):
            PHYSICIAN.issue(years=3)

    def test_issue_produces_credential(self):
        credential = PHYSICIAN.issue(dept="oncology")
        assert credential.type_name == "physician"
        assert credential.attributes["dept"] == "oncology"


class TestCredentialEquality:
    def test_equal_content_is_equal(self):
        a = PHYSICIAN.issue(dept="x")
        b = PHYSICIAN.issue(dept="x")
        assert a == b
        assert hash(a) == hash(b)

    def test_different_issuer_differs(self):
        a = PHYSICIAN.issue(issuer="i1", dept="x")
        b = PHYSICIAN.issue(issuer="i2", dept="x")
        assert a != b


class TestExpressions:
    def test_anyone_and_nobody(self):
        subject = make_doctor()
        assert anyone()(subject)
        assert not nobody()(subject)

    def test_is_identity(self):
        assert is_identity("dr")(make_doctor())
        assert not is_identity("other")(make_doctor())

    def test_has_role(self):
        assert has_role("doctor")(make_doctor())
        assert not has_role("nurse")(make_doctor())

    def test_has_credential(self):
        assert has_credential("physician")(make_doctor())
        assert not has_credential("insurer")(make_doctor())

    def test_issued_by(self):
        assert issued_by("physician", "board")(make_doctor())
        assert not issued_by("physician", "other")(make_doctor())

    def test_attribute_equals(self):
        assert attribute_equals("physician", "dept", "oncology")(
            make_doctor())
        assert not attribute_equals("physician", "dept", "icu")(
            make_doctor())

    def test_attribute_at_least(self):
        assert attribute_at_least("physician", "years", 5)(make_doctor())
        assert not attribute_at_least("physician", "years", 10)(
            make_doctor())

    def test_attribute_at_least_on_missing_attribute_is_false(self):
        subject = Subject("x", credentials=[PHYSICIAN.issue(dept="a")])
        assert not attribute_at_least("physician", "years", 1)(subject)

    def test_attribute_in(self):
        expression = attribute_in("physician", "dept",
                                  ["oncology", "cardiology"])
        assert expression(make_doctor())
        assert not attribute_in("physician", "dept", ["icu"])(
            make_doctor())

    def test_conjunction(self):
        expression = has_role("doctor") & has_credential("physician")
        assert expression(make_doctor())
        assert not (has_role("doctor") & has_role("nurse"))(make_doctor())

    def test_disjunction(self):
        expression = has_role("nurse") | has_credential("physician")
        assert expression(make_doctor())

    def test_negation(self):
        assert (~has_role("nurse"))(make_doctor())
        assert not (~has_role("doctor"))(make_doctor())

    def test_description_composes(self):
        expression = ~(has_role("a") & has_role("b"))
        assert "role=a" in expression.description
        assert "NOT" in expression.description
