"""Tests for the tamper-evident audit log."""

import dataclasses

import pytest

from repro.core.audit import GENESIS_DIGEST, AuditLog, AuditRecord
from repro.core.errors import IntegrityError


def populated_log(entries: int = 5) -> AuditLog:
    log = AuditLog()
    for index in range(entries):
        log.record(f"user{index}", "read", f"res{index}",
                   granted=index % 2 == 0, detail=f"d{index}")
    return log


class TestAppend:
    def test_first_record_links_to_genesis(self):
        log = populated_log(1)
        assert list(log)[0].previous_digest == GENESIS_DIGEST

    def test_chain_links(self):
        log = populated_log(3)
        records = list(log)
        assert records[1].previous_digest == records[0].digest
        assert records[2].previous_digest == records[1].digest

    def test_sequence_numbers(self):
        log = populated_log(4)
        assert [r.sequence for r in log] == [0, 1, 2, 3]

    def test_tail_digest_changes_per_record(self):
        log = AuditLog()
        assert log.tail_digest() == GENESIS_DIGEST
        log.record("a", "read", "r", True)
        first = log.tail_digest()
        log.record("a", "read", "r", True)
        assert log.tail_digest() != first


class TestVerification:
    def test_valid_chain_verifies(self):
        assert populated_log().verify()

    def test_modified_record_detected(self):
        log = populated_log()
        records = log._records
        records[2] = dataclasses.replace(records[2], subject="forged")
        with pytest.raises(IntegrityError):
            log.verify()

    def test_truncation_detected(self):
        log = populated_log()
        del log._records[2]
        with pytest.raises(IntegrityError):
            log.verify()

    def test_relinked_forgery_detected(self):
        # Rewrite a record *and* its digest: the next record's
        # previous_digest no longer matches.
        log = populated_log()
        original = log._records[1]
        forged_digest = AuditRecord.compute_digest(
            original.sequence, original.timestamp, "mallory",
            original.action, original.resource, original.granted,
            original.detail, original.previous_digest)
        log._records[1] = dataclasses.replace(
            original, subject="mallory", digest=forged_digest)
        with pytest.raises(IntegrityError):
            log.verify()


class TestQueries:
    def test_denials(self):
        log = populated_log(4)
        assert [r.sequence for r in log.denials()] == [1, 3]

    def test_for_subject(self):
        log = populated_log(4)
        assert len(log.for_subject("user2")) == 1

    def test_custom_clock(self):
        ticks = iter(range(100, 200))
        log = AuditLog(clock=lambda: next(ticks))
        record = log.record("a", "read", "r", True)
        assert record.timestamp == 100
