"""Tests for resource paths, patterns and the object hierarchy."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.objects import (
    ObjectHierarchy,
    ResourcePath,
    ResourcePattern,
)


class TestResourcePath:
    def test_parse_from_string(self):
        path = ResourcePath("a/b/c")
        assert path.segments == ("a", "b", "c")
        assert str(path) == "a/b/c"

    def test_leading_and_trailing_slashes_ignored(self):
        assert ResourcePath("/a/b/") == ResourcePath("a/b")

    def test_root_path(self):
        root = ResourcePath("")
        assert len(root) == 0
        assert root.name == ""
        assert root.parent == root

    def test_child_and_parent(self):
        path = ResourcePath("a").child("b")
        assert str(path) == "a/b"
        assert str(path.parent) == "a"

    def test_child_rejects_bad_segment(self):
        with pytest.raises(ConfigurationError):
            ResourcePath("a").child("x/y")
        with pytest.raises(ConfigurationError):
            ResourcePath("a").child("")

    def test_join(self):
        assert str(ResourcePath("a").join("b/c")) == "a/b/c"

    def test_is_ancestor_of(self):
        assert ResourcePath("a").is_ancestor_of(ResourcePath("a/b/c"))
        assert ResourcePath("a/b").is_ancestor_of(ResourcePath("a/b"))
        assert not ResourcePath("a/b").is_ancestor_of(
            ResourcePath("a/b"), strict=True)
        assert not ResourcePath("a/x").is_ancestor_of(ResourcePath("a/b"))

    def test_ancestors_enumeration(self):
        ancestors = [str(p) for p in ResourcePath("a/b/c").ancestors()]
        assert ancestors == ["a/b/c", "a/b", "a", ""]


class TestResourcePattern:
    @pytest.mark.parametrize("pattern,path,expected", [
        ("a/b", "a/b", True),
        ("a/b", "a/b/c", False),
        ("a/*", "a/b", True),
        ("a/*", "a/b/c", False),
        ("a/**", "a", True),
        ("a/**", "a/b/c/d", True),
        ("**/ssn", "x/y/ssn", True),
        ("**/ssn", "ssn", True),
        ("**/ssn", "x/ssn/y", False),
        ("a/**/d", "a/b/c/d", True),
        ("a/**/d", "a/d", True),
        ("r*", "r17", True),
        ("r*", "s17", False),
    ])
    def test_matching(self, pattern, path, expected):
        assert ResourcePattern(pattern).matches(path) is expected

    def test_specificity_ordering(self):
        literal = ResourcePattern("a/b/c").specificity
        single = ResourcePattern("a/b/*").specificity
        deep = ResourcePattern("a/**").specificity
        assert literal > single > deep


class TestObjectHierarchy:
    def test_add_creates_ancestors(self):
        hierarchy = ObjectHierarchy()
        hierarchy.add("a/b/c")
        assert "a" in hierarchy
        assert "a/b" in hierarchy

    def test_children_sorted(self):
        hierarchy = ObjectHierarchy()
        hierarchy.add("root/b")
        hierarchy.add("root/a")
        names = [p.name for p in hierarchy.children("root")]
        assert names == ["a", "b"]

    def test_descendants_depth_first(self):
        hierarchy = ObjectHierarchy()
        hierarchy.add("a/b/c")
        hierarchy.add("a/d")
        paths = [str(p) for p in hierarchy.descendants("a")]
        assert paths == ["a", "a/b", "a/b/c", "a/d"]

    def test_get_returns_payload(self):
        hierarchy = ObjectHierarchy()
        hierarchy.add("x", payload=42)
        assert hierarchy.get("x").payload == 42
        assert hierarchy.get("missing") is None
