"""The asyncio gateway: equivalence, fairness, backpressure, lifecycle.

Deterministic tests drive ``auto_dispatch=False`` gateways with
``process_pending`` (the asyncio analog of the threaded gateway's
``workers=0``); the event-loop tests use the real dispatcher.
"""

import asyncio
import random

import pytest

from repro.core.errors import (
    AdmissionRejected,
    ConfigurationError,
    Overloaded,
)
from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import PolicyBase
from repro.gateway import (
    AsyncRequestGateway,
    EpochalShardRouter,
    ManualClock,
    TenantConfig,
)
from repro.scale.gateway import Request
from tests.scale.workloads import random_policies, random_requests


def run(coro):
    return asyncio.run(coro)


def build(seed: int, count: int = 30):
    rng = random.Random(seed)
    policies = random_policies(rng, count)
    requests = random_requests(random.Random(seed + 1), 50)
    return policies, requests


class TestDecisionEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_matches_serial_evaluator(self, seed):
        policies, requests = build(seed)
        router = EpochalShardRouter.from_policies(policies,
                                                  shard_count=4)
        serial = PolicyEvaluator(PolicyBase(policies))

        async def scenario():
            gateway = AsyncRequestGateway(router, auto_dispatch=False)
            futures = [gateway.submit_nowait("t", Request(*r))
                       for r in requests]
            await gateway.process_pending()
            return [f.result() for f in futures]

        decisions = run(scenario())
        for decision, request in zip(decisions, requests):
            expected = serial.decide(*request)
            assert decision.granted == expected.granted
            assert decision.reason == expected.reason

    def test_auto_dispatch_resolves_awaited_submissions(self):
        policies, requests = build(11)
        router = EpochalShardRouter.from_policies(policies)

        async def scenario():
            async with AsyncRequestGateway(router) as gateway:
                return await asyncio.gather(
                    *[gateway.submit("t", Request(*r))
                      for r in requests])

        decisions = run(scenario())
        assert len(decisions) == len(requests)
        assert all(hasattr(d, "granted") for d in decisions)

    def test_bulk_load_publishes_one_epoch_per_shard(self):
        policies, _ = build(2, count=40)
        router = EpochalShardRouter.from_policies(policies,
                                                  shard_count=4)
        for shard_stats in router.epoch_stats():
            # Construction publishes the empty base, load one more.
            assert shard_stats["published"] == 2
        assert len(router) == 40


class TestAdmissionIntegration:
    def test_bucket_exhaustion_sheds_typed_overloaded(self):
        policies, requests = build(3)
        router = EpochalShardRouter.from_policies(policies)
        clock = ManualClock()

        async def scenario():
            gateway = AsyncRequestGateway(
                router, clock=clock, auto_dispatch=False,
                default_tenant=TenantConfig(rate=10.0, burst=3.0))
            admitted, shed = 0, []
            for request in requests[:10]:
                try:
                    gateway.submit_nowait("noisy", Request(*request))
                    admitted += 1
                except Overloaded as exc:
                    shed.append(exc)
            await gateway.process_pending()
            return admitted, shed, gateway.stats.snapshot()

        admitted, shed, stats = run(scenario())
        assert admitted == 3                  # the burst
        assert len(shed) == 7
        assert all(e.reason == "bucket" and e.retry_after > 0
                   for e in shed)
        assert stats["shed"] == 7 and stats["admitted"] == 3

    def test_hard_queue_limit_rejects(self):
        policies, _ = build(4)
        router = EpochalShardRouter.from_policies(policies)

        async def scenario():
            gateway = AsyncRequestGateway(
                router, queue_limit=5, high_watermark=5,
                low_watermark=5, auto_dispatch=False,
                default_tenant=TenantConfig(rate=1e9, burst=1e9))
            request = Request(*random_requests(random.Random(0), 1)[0])
            for _ in range(5):
                gateway.submit_nowait("t", request)
            with pytest.raises(AdmissionRejected):
                gateway.submit_nowait("t", request)
            await gateway.process_pending()

        run(scenario())

    def test_watermark_sheds_low_priority_tenant_first(self):
        policies, _ = build(5)
        router = EpochalShardRouter.from_policies(policies)

        async def scenario():
            gateway = AsyncRequestGateway(
                router, queue_limit=100, high_watermark=20,
                low_watermark=10, auto_dispatch=False)
            gateway.register("bulk", TenantConfig(
                priority=0, rate=1e9, burst=1e9))
            gateway.register("interactive", TenantConfig(
                priority=5, rate=1e9, burst=1e9))
            request = Request(*random_requests(random.Random(0), 1)[0])
            shed_at = None
            for index in range(40):
                try:
                    gateway.submit_nowait("bulk", request)
                except Overloaded as exc:
                    shed_at = index
                    assert exc.reason == "watermark"
                    break
            assert shed_at is not None and shed_at >= 20
            # The high-priority tenant is still served at this depth.
            gateway.submit_nowait("interactive", request)
            await gateway.process_pending()

        run(scenario())

    def test_unknown_tenant_without_default_is_an_error(self):
        policies, _ = build(6)
        router = EpochalShardRouter.from_policies(policies)

        async def scenario():
            gateway = AsyncRequestGateway(router, default_tenant=None,
                                          auto_dispatch=False)
            request = Request(*random_requests(random.Random(0), 1)[0])
            with pytest.raises(ConfigurationError):
                gateway.submit_nowait("ghost", request)

        run(scenario())


class TestFairness:
    def test_noisy_tenant_does_not_starve_quiet_one(self):
        """With DRR the quiet tenant's request is decided in the first
        batch even when the noisy tenant queued 10x batch_size ahead
        of it."""
        policies, requests = build(8)
        router = EpochalShardRouter.from_policies(policies)

        async def scenario():
            gateway = AsyncRequestGateway(
                router, batch_size=16, auto_dispatch=False,
                default_tenant=TenantConfig(rate=1e9, burst=1e9,
                                            quantum=8))
            order = []
            for index, request in enumerate(requests * 4):
                future = gateway.submit_nowait("noisy", Request(*request))
                future.add_done_callback(
                    lambda _f, i=index: order.append(("noisy", i)))
            quiet_future = gateway.submit_nowait(
                "quiet", Request(*requests[0]))
            quiet_future.add_done_callback(
                lambda _f: order.append(("quiet", 0)))
            await gateway.process_pending()
            return order

        order = run(scenario())
        quiet_position = order.index(("quiet", 0))
        assert quiet_position < 16      # inside the first batch

    def test_lifecycle_close_drains_by_default(self):
        policies, requests = build(9)
        router = EpochalShardRouter.from_policies(policies)

        async def scenario():
            gateway = AsyncRequestGateway(router, auto_dispatch=False)
            futures = [gateway.submit_nowait("t", Request(*r))
                       for r in requests[:10]]
            await gateway.close()
            assert all(f.exception() is None for f in futures)
            with pytest.raises(AdmissionRejected):
                gateway.submit_nowait("t", Request(*requests[0]))

        run(scenario())

    def test_close_without_drain_fails_pending_typed(self):
        policies, requests = build(10)
        router = EpochalShardRouter.from_policies(policies)

        async def scenario():
            gateway = AsyncRequestGateway(router, auto_dispatch=False)
            futures = [gateway.submit_nowait("t", Request(*r))
                       for r in requests[:5]]
            await gateway.close(drain=False)
            assert all(isinstance(f.exception(), AdmissionRejected)
                       for f in futures)

        run(scenario())


class TestStatsIntegration:
    def test_latency_and_stage_counters_populated(self):
        policies, requests = build(12)
        router = EpochalShardRouter.from_policies(policies)

        async def scenario():
            gateway = AsyncRequestGateway(router, auto_dispatch=False)
            for request in requests:
                gateway.submit_nowait("t", Request(*request))
            await gateway.process_pending()
            return gateway.stats.snapshot()

        stats = run(scenario())
        assert stats["admitted"] == len(requests)
        assert stats["completed"] == len(requests)
        assert stats["latency_count"] == len(requests)
        assert stats["latency_p99_s"] >= stats["latency_p50_s"] > 0
        assert stats["batches"] >= 1
