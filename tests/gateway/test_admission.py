"""Unit tests for the admission layer: clocks, buckets, DRR, watermarks."""

import pytest

from repro.core.errors import (
    AdmissionRejected,
    ConfigurationError,
    Overloaded,
)
from repro.gateway.admission import (
    AdmissionController,
    DeficitRoundRobin,
    ManualClock,
    TenantConfig,
    TokenBucket,
)


class TestManualClock:
    def test_only_advance_moves_time(self):
        clock = ManualClock()
        assert clock() == 0.0
        clock.advance(1.5)
        assert clock() == 1.5

    def test_cannot_run_backwards(self):
        with pytest.raises(ConfigurationError):
            ManualClock().advance(-1)


class TestTenantConfig:
    def test_defaults_are_valid(self):
        config = TenantConfig()
        assert config.rate > 0 and config.quantum >= 1

    @pytest.mark.parametrize("kwargs", [
        {"rate": 0}, {"burst": 0}, {"priority": -1}, {"quantum": 0}])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TenantConfig(**kwargs)


class TestTokenBucket:
    def test_burst_then_refusal_with_retry_hint(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        assert [bucket.try_take() for _ in range(3)] == [None] * 3
        wait = bucket.try_take()
        assert wait is not None and wait == pytest.approx(0.1)

    def test_refills_at_rate_up_to_burst(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        for _ in range(3):
            bucket.try_take()
        clock.advance(0.1)
        assert bucket.try_take() is None      # exactly one token back
        assert bucket.try_take() is not None
        clock.advance(100.0)
        assert bucket.tokens() == pytest.approx(3.0)  # capped at burst

    def test_retry_hint_is_time_to_full_token(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        bucket.try_take()
        clock.advance(0.25)                   # half a token refilled
        wait = bucket.try_take()
        assert wait == pytest.approx(0.25)


class TestDeficitRoundRobin:
    def test_fifo_within_a_tenant(self):
        drr = DeficitRoundRobin()
        drr.register("a", quantum=4)
        for item in range(5):
            drr.push("a", item)
        assert drr.take(10) == [0, 1, 2, 3, 4]
        assert drr.pending() == 0

    def test_noisy_tenant_cannot_starve_quiet_one(self):
        drr = DeficitRoundRobin()
        drr.register("noisy", quantum=2)
        drr.register("quiet", quantum=2)
        for item in range(100):
            drr.push("noisy", f"n{item}")
        drr.push("quiet", "q0")
        batch = drr.take(6)
        assert "q0" in batch        # served within the first round
        assert drr.backlog("noisy") > 90

    def test_quantum_weights_share(self):
        drr = DeficitRoundRobin()
        drr.register("heavy", quantum=3)
        drr.register("light", quantum=1)
        for item in range(50):
            drr.push("heavy", ("h", item))
            drr.push("light", ("l", item))
        batch = drr.take(40)
        heavy = sum(1 for tag, _ in batch if tag == "h")
        light = sum(1 for tag, _ in batch if tag == "l")
        assert heavy == pytest.approx(3 * light, abs=3)

    def test_idle_tenant_banks_no_deficit(self):
        drr = DeficitRoundRobin()
        drr.register("a", quantum=2)
        drr.register("b", quantum=2)
        for item in range(4):
            drr.push("a", item)
        assert len(drr.take(10)) == 4   # b idle: one lap, no hang
        drr.push("b", "late")
        assert drr.take(10) == ["late"]

    def test_drain_all_empties(self):
        drr = DeficitRoundRobin()
        drr.register("a", quantum=1)
        drr.register("b", quantum=1)
        for item in range(3):
            drr.push("a", ("a", item))
            drr.push("b", ("b", item))
        assert len(drr.drain_all()) == 6
        assert drr.pending() == 0


def controller(limit=100, **kwargs) -> AdmissionController:
    return AdmissionController(ManualClock(), queue_limit=limit, **kwargs)


class TestAdmissionController:
    def test_unknown_tenant_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError):
            controller().admit("ghost", depth=0)

    def test_hard_limit_raises_admission_rejected(self):
        ctl = controller(limit=10)
        ctl.register("t", TenantConfig())
        with pytest.raises(AdmissionRejected):
            ctl.admit("t", depth=10)

    def test_bucket_exhaustion_sheds_with_retry_after(self):
        ctl = controller()
        ctl.register("t", TenantConfig(rate=10.0, burst=2.0))
        ctl.admit("t", depth=0)
        ctl.admit("t", depth=1)
        with pytest.raises(Overloaded) as exc_info:
            ctl.admit("t", depth=2)
        assert exc_info.value.reason == "bucket"
        assert exc_info.value.retry_after == pytest.approx(0.1)

    def test_watermark_sheds_low_priority_first(self):
        ctl = controller(limit=100, high_watermark=75, low_watermark=50)
        ctl.register("low", TenantConfig(priority=0))
        ctl.register("high", TenantConfig(priority=3))
        depth = 80                      # above high watermark
        with pytest.raises(Overloaded) as exc_info:
            ctl.admit("low", depth)
        assert exc_info.value.reason == "watermark"
        assert exc_info.value.retry_after > 0
        ctl.admit("high", depth)        # high priority still admitted

    def test_top_priority_survives_deepest_before_hard_limit(self):
        ctl = controller(limit=100, high_watermark=75, low_watermark=50)
        ctl.register("top", TenantConfig(priority=5))
        # required = 6 * (depth - 50) / 50: passes priority 5 only
        # beyond depth ~91.7 — the top tier degrades gracefully in the
        # last slice, then hits the hard bound.
        ctl.admit("top", depth=91)
        with pytest.raises(Overloaded):
            ctl.admit("top", depth=95)
        with pytest.raises(AdmissionRejected):
            ctl.admit("top", depth=100)

    def test_hysteresis_keeps_shedding_until_low_watermark(self):
        ctl = controller(limit=100, high_watermark=75, low_watermark=50)
        ctl.register("low", TenantConfig(priority=0, rate=1e9, burst=1e9))
        ctl.register("high", TenantConfig(priority=9, rate=1e9, burst=1e9))
        with pytest.raises(Overloaded):
            ctl.admit("low", depth=80)      # trips the high watermark
        assert ctl.shedding
        # Depth fell to 60 — between the watermarks.  Without
        # hysteresis priority 0 would be re-admitted and the queue
        # would oscillate; with it, shedding continues.
        with pytest.raises(Overloaded):
            ctl.admit("low", depth=60)
        ctl.admit("low", depth=50)          # at the low watermark: clear
        assert not ctl.shedding
        ctl.admit("low", depth=60)          # and 60 admits again

    def test_retry_after_scales_with_drain_rate(self):
        ctl = controller(limit=100, high_watermark=75, low_watermark=50)
        ctl.register("low", TenantConfig(priority=0))
        ctl.register("high", TenantConfig(priority=9))
        with pytest.raises(Overloaded) as fast:
            ctl.admit("low", depth=80, drain_rate=1000.0)
        with pytest.raises(Overloaded) as slow:
            ctl.admit("low", depth=80, drain_rate=10.0)
        assert slow.value.retry_after > fast.value.retry_after

    def test_invalid_watermark_ordering_rejected(self):
        with pytest.raises(ConfigurationError):
            controller(limit=100, high_watermark=40, low_watermark=60)
