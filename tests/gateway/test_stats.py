"""Shared gateway telemetry: histogram math + both gateways record it."""

import pytest

from repro.gateway.stats import GatewayStats, LatencyHistogram


class TestLatencyHistogram:
    def test_empty_reads_zero(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean() == 0.0
        assert histogram.percentile(0.99) == 0.0

    def test_percentile_is_an_upper_bound(self):
        histogram = LatencyHistogram()
        samples = [0.0001, 0.0002, 0.0004, 0.01, 0.5]
        for sample in samples:
            histogram.record(sample)
        for q in (0.5, 0.99, 0.999):
            index = min(int(q * len(samples)), len(samples) - 1)
            assert histogram.percentile(q) >= sorted(samples)[index]

    def test_percentiles_are_monotone_in_q(self):
        histogram = LatencyHistogram()
        for i in range(1, 1000):
            histogram.record(i * 1e-5)
        p50 = histogram.percentile(0.50)
        p99 = histogram.percentile(0.99)
        p999 = histogram.percentile(0.999)
        assert p50 <= p99 <= p999
        assert p99 < histogram.percentile(1.0) * 4  # same decade

    def test_bucket_bound_within_2x_of_sample(self):
        histogram = LatencyHistogram()
        histogram.record(0.003)
        bound = histogram.percentile(0.5)
        assert 0.003 <= bound <= 0.006   # log2 buckets: ≤ 2x over

    def test_negative_and_huge_samples_saturate(self):
        histogram = LatencyHistogram()
        histogram.record(-1.0)
        histogram.record(1e9)
        assert histogram.count == 2
        assert histogram.percentile(0.999) > 0

    def test_merge_sums_counts_and_mass(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(0.001)
        b.record(0.004)
        b.record(0.004)
        a.merge(b)
        assert a.count == 3
        assert a.mean() == pytest.approx(0.003)

    def test_snapshot_keys(self):
        histogram = LatencyHistogram()
        histogram.record(0.002)
        snap = histogram.snapshot()
        assert set(snap) == {"count", "mean_s", "p50_s", "p99_s",
                             "p999_s"}
        assert snap["count"] == 1


class TestGatewayStats:
    def test_snapshot_carries_latency_percentiles(self):
        stats = GatewayStats()
        stats.record_latency(0.002)
        snap = stats.snapshot()
        for key in ("latency_count", "latency_p50_s", "latency_p99_s",
                    "latency_p999_s", "streams", "stream_chunks",
                    "shed"):
            assert key in snap
        assert snap["latency_count"] == 1
        assert snap["latency_p50_s"] > 0


class TestThreadGatewayRecordsLatency:
    def test_threaded_gateway_shares_the_histogram(self):
        from repro.core.policy import PolicyBase
        from repro.core.evaluator import PolicyEvaluator
        from repro.scale.batch import BatchDecisionEngine
        from repro.scale.gateway import (GatewayStats as ReExported,
                                         Request, RequestGateway)
        from tests.scale.workloads import random_policies, random_requests
        import random

        assert ReExported is GatewayStats   # one shared class
        rng = random.Random(3)
        engine = BatchDecisionEngine(
            PolicyEvaluator(PolicyBase(random_policies(rng, 10))))
        gateway = RequestGateway(engine, workers=0)
        futures = [gateway.submit(Request(*r))
                   for r in random_requests(rng, 20)]
        gateway.process_pending()
        assert all(f.exception() is None for f in futures)
        snap = gateway.stats.snapshot()
        assert snap["latency_count"] == 20
        assert snap["latency_p99_s"] >= snap["latency_p50_s"] > 0
