"""Both front ends speak replica: wiring, sessions, typed refusals."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import PolicyBase
from repro.gateway.core import AsyncRequestGateway
from repro.replica.router import ReplicaRouter
from repro.scale.batch import BatchDecisionEngine
from repro.scale.gateway import RequestGateway


def _engine():
    return BatchDecisionEngine(PolicyEvaluator(PolicyBase()))


def _router():
    return ReplicaRouter(shard_count=2, replica_count=3, bucket_count=8)


class TestThreadedGatewayWiring:
    def test_write_then_read_your_writes(self):
        gateway = RequestGateway(_engine(), workers=0,
                                 replicas=_router())
        session = gateway.replica_session()
        version = gateway.replica_write("k", "v", session=session)
        assert version == 1
        assert gateway.replica_read("k", session=session) == "v"
        snap = gateway.stats.snapshot()
        assert snap["replica_writes"] == 1
        assert snap["replica_reads"] == 1

    def test_sessionless_reads_still_work(self):
        gateway = RequestGateway(_engine(), workers=0,
                                 replicas=_router())
        gateway.replica_write("k", "v")
        assert gateway.replica_read("k") == "v"

    def test_unwired_gateway_refuses_typed(self):
        gateway = RequestGateway(_engine(), workers=0)
        with pytest.raises(ConfigurationError):
            gateway.replica_read("k")
        with pytest.raises(ConfigurationError):
            gateway.replica_write("k", "v")
        with pytest.raises(ConfigurationError):
            gateway.replica_session()


class TestAsyncGatewayWiring:
    def test_write_then_read_your_writes(self):
        gateway = AsyncRequestGateway(_engine(), auto_dispatch=False,
                                      replicas=_router())
        session = gateway.replica_session()
        gateway.replica_write("a", "1", session=session)
        gateway.replica_write("b", "2", session=session)
        assert gateway.replica_read("a", session=session) == "1"
        assert gateway.replica_read("b", session=session) == "2"
        snap = gateway.stats.snapshot()
        assert snap["replica_writes"] == 2
        assert snap["replica_reads"] == 2

    def test_unwired_gateway_refuses_typed(self):
        gateway = AsyncRequestGateway(_engine(), auto_dispatch=False)
        with pytest.raises(ConfigurationError):
            gateway.replica_read("k")
        with pytest.raises(ConfigurationError):
            gateway.replica_session()


class TestSharedRouter:
    def test_one_router_serves_both_front_ends(self):
        router = _router()
        threaded = RequestGateway(_engine(), workers=0, replicas=router)
        asyncgw = AsyncRequestGateway(_engine(), auto_dispatch=False,
                                      replicas=router)
        session = threaded.replica_session()
        threaded.replica_write("shared", "payload", session=session)
        # The async front end reads the same replica groups; the
        # session carries read-your-writes across front ends.
        assert asyncgw.replica_read("shared", session=session) == \
            "payload"
        assert router.converged()
