"""Regression pins for GatewayStats/LatencyHistogram edge cases.

``test_stats.py`` checks the behavioral contracts (upper bound,
monotonicity, merge); this file pins *exact values* at the edges —
empty histogram, single sample, bucket floor, saturating last bucket —
so a refactor of the bucket math cannot silently shift them.  Both
front ends (threaded ``repro.scale.gateway`` and asyncio
``repro.gateway.core``) share the one class, which is also pinned.
"""

import pytest

from repro.gateway.stats import GatewayStats, LatencyHistogram
from repro.gateway.stats import _BOUNDS, _BUCKETS, _FLOOR_S, _OCTAVES, _SUBDIV


class TestEmptyHistogram:
    def test_every_percentile_is_exactly_zero(self):
        histogram = LatencyHistogram()
        for q in (0.0, 0.25, 0.5, 0.99, 0.999, 1.0):
            assert histogram.percentile(q) == 0.0
        assert histogram.mean() == 0.0
        assert histogram.count == 0

    def test_empty_snapshot_is_all_zeros(self):
        snap = LatencyHistogram().snapshot()
        assert snap == {"count": 0, "mean_s": 0.0, "p50_s": 0.0,
                        "p99_s": 0.0, "p999_s": 0.0}


class TestSingleSample:
    def test_all_quantiles_collapse_to_the_covering_bound(self):
        histogram = LatencyHistogram()
        # 0.003s sits in octave 11 (2048µs base); the linear sub-bucket
        # tops out at 2048µs * 1.5 = 3072µs — a ~2.4% overestimate
        # where the old log2 scheme reported 4096µs (+37%).
        histogram.record(0.003)
        expected = _FLOOR_S * 2.0 ** 11 * 1.5
        assert expected == 0.003072
        for q in (0.25, 0.5, 0.99, 0.999, 1.0):
            assert histogram.percentile(q) == expected

    def test_quantile_zero_reads_the_floor(self):
        # target = 0 is met before any count accumulates: q=0 reports
        # the histogram floor, not the sample's bucket.
        histogram = LatencyHistogram()
        histogram.record(0.003)
        assert histogram.percentile(0.0) == _FLOOR_S

    def test_sub_floor_sample_lands_in_the_first_bucket(self):
        histogram = LatencyHistogram()
        histogram.record(1e-9)   # below the 1µs floor
        assert histogram.percentile(1.0) == _FLOOR_S

    def test_negative_sample_clamps_to_zero_not_underflow(self):
        histogram = LatencyHistogram()
        histogram.record(-5.0)
        assert histogram.count == 1
        assert histogram.percentile(1.0) == _FLOOR_S
        assert histogram.mean() == 0.0


class TestSaturatingBucket:
    def test_huge_sample_saturates_into_the_last_bucket(self):
        histogram = LatencyHistogram()
        histogram.record(1e12)   # way past the ~hour ceiling
        assert histogram.percentile(1.0) == _BOUNDS[-1]
        assert histogram.percentile(0.5) == _BOUNDS[-1]

    def test_last_bound_value_is_pinned(self):
        # 1µs doubled 35 times: ~9.5 hours.  A change to the bucket
        # layout or _FLOOR_S shows up here first.
        assert _BUCKETS == 1 + _OCTAVES * _SUBDIV == 561
        assert _BOUNDS[-1] == pytest.approx(_FLOOR_S * 2.0 ** 35)
        assert _BOUNDS[-1] > 3600.0  # beyond any sane request

    def test_bounds_are_strictly_increasing(self):
        for left, right in zip(_BOUNDS, _BOUNDS[1:]):
            assert left < right

    def test_saturated_and_normal_samples_order_correctly(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.record(0.001)
        histogram.record(1e12)
        assert histogram.percentile(0.5) < _BOUNDS[-1]
        assert histogram.percentile(0.999) == _BOUNDS[-1]


class TestSubMillisecondResolution:
    def test_nearby_submillisecond_samples_resolve_apart(self):
        # The BENCH_gateway regression: 4µs and 12µs request latencies
        # used to collapse into one 16.384ms log2 bucket.  With linear
        # sub-buckets they land in distinct buckets and the percentiles
        # differentiate.
        histogram = LatencyHistogram()
        for _ in range(90):
            histogram.record(4e-6)
        for _ in range(10):
            histogram.record(12e-6)
        p50 = histogram.percentile(0.50)
        p99 = histogram.percentile(0.99)
        assert p50 < p99
        assert p50 <= 5e-6       # within ~6% of the 4µs mass
        assert 12e-6 <= p99 <= 13e-6

    def test_relative_overestimate_is_bounded(self):
        # Every bound overshoots the recorded value by at most
        # 1/_SUBDIV (plus the floor bucket, exempt by construction).
        for value in (3e-6, 47e-6, 0.00091, 0.0123, 0.77, 31.4):
            histogram = LatencyHistogram()
            histogram.record(value)
            bound = histogram.percentile(1.0)
            assert value <= bound <= value * (1.0 + 2.0 / _SUBDIV)


class TestStageHistograms:
    def test_fresh_stats_have_no_stage_keys(self):
        assert not [k for k in GatewayStats().snapshot()
                    if k.startswith("stage_")]

    def test_record_stage_creates_and_snapshots_the_stage(self):
        stats = GatewayStats()
        stats.record_stage("evaluate", 0.003)
        snap = stats.snapshot()
        assert snap["stage_evaluate_count"] == 1
        assert snap["stage_evaluate_p99_s"] == 0.003072
        # Other stages stay absent until they record.
        assert "stage_stream_count" not in snap

    def test_stage_accessor_reuses_one_histogram(self):
        stats = GatewayStats()
        with stats._lock:
            first = stats.stage("ipc")
            second = stats.stage("ipc")
        assert first is second


class TestSharedAcrossFrontEnds:
    def test_both_gateways_expose_the_same_stats_class(self):
        from repro.gateway.core import AsyncRequestGateway
        from repro.scale.gateway import RequestGateway
        import inspect
        # Both constructors default their stats to this one class.
        assert "GatewayStats" in inspect.getsource(RequestGateway.__init__)
        assert "GatewayStats" in inspect.getsource(
            AsyncRequestGateway.__init__)

    def test_snapshot_key_set_is_pinned(self):
        snap = GatewayStats().snapshot()
        assert set(snap) == {
            "admitted", "rejected", "shed", "completed", "failed",
            "batches", "queue_wait_s", "evaluate_s", "snapshot_reads",
            "writes", "epochs_advanced", "streams", "stream_chunks",
            "replica_reads", "replica_writes",
            "latency_count", "latency_mean_s", "latency_p50_s",
            "latency_p99_s", "latency_p999_s",
        }

    def test_replica_counters_start_zero_and_survive_snapshot(self):
        stats = GatewayStats()
        snap = stats.snapshot()
        assert snap["replica_reads"] == 0
        assert snap["replica_writes"] == 0
        stats.replica_reads += 3
        stats.replica_writes += 2
        snap = stats.snapshot()
        assert snap["replica_reads"] == 3
        assert snap["replica_writes"] == 2
