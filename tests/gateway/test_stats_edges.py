"""Regression pins for GatewayStats/LatencyHistogram edge cases.

``test_stats.py`` checks the behavioral contracts (upper bound,
monotonicity, merge); this file pins *exact values* at the edges —
empty histogram, single sample, bucket floor, saturating last bucket —
so a refactor of the bucket math cannot silently shift them.  Both
front ends (threaded ``repro.scale.gateway`` and asyncio
``repro.gateway.core``) share the one class, which is also pinned.
"""

import pytest

from repro.gateway.stats import GatewayStats, LatencyHistogram
from repro.gateway.stats import _BOUNDS, _BUCKETS, _FLOOR_S


class TestEmptyHistogram:
    def test_every_percentile_is_exactly_zero(self):
        histogram = LatencyHistogram()
        for q in (0.0, 0.25, 0.5, 0.99, 0.999, 1.0):
            assert histogram.percentile(q) == 0.0
        assert histogram.mean() == 0.0
        assert histogram.count == 0

    def test_empty_snapshot_is_all_zeros(self):
        snap = LatencyHistogram().snapshot()
        assert snap == {"count": 0, "mean_s": 0.0, "p50_s": 0.0,
                        "p99_s": 0.0, "p999_s": 0.0}


class TestSingleSample:
    def test_all_quantiles_collapse_to_the_covering_bound(self):
        histogram = LatencyHistogram()
        histogram.record(0.003)  # bucket bound: 2**12 µs = 0.004096s
        expected = _FLOOR_S * 2.0 ** 12
        for q in (0.25, 0.5, 0.99, 0.999, 1.0):
            assert histogram.percentile(q) == expected

    def test_quantile_zero_reads_the_floor(self):
        # target = 0 is met before any count accumulates: q=0 reports
        # the histogram floor, not the sample's bucket.
        histogram = LatencyHistogram()
        histogram.record(0.003)
        assert histogram.percentile(0.0) == _FLOOR_S

    def test_sub_floor_sample_lands_in_the_first_bucket(self):
        histogram = LatencyHistogram()
        histogram.record(1e-9)   # below the 1µs floor
        assert histogram.percentile(1.0) == _FLOOR_S

    def test_negative_sample_clamps_to_zero_not_underflow(self):
        histogram = LatencyHistogram()
        histogram.record(-5.0)
        assert histogram.count == 1
        assert histogram.percentile(1.0) == _FLOOR_S
        assert histogram.mean() == 0.0


class TestSaturatingBucket:
    def test_huge_sample_saturates_into_the_last_bucket(self):
        histogram = LatencyHistogram()
        histogram.record(1e12)   # way past the ~hour ceiling
        assert histogram.percentile(1.0) == _BOUNDS[-1]
        assert histogram.percentile(0.5) == _BOUNDS[-1]

    def test_last_bound_value_is_pinned(self):
        # 1µs doubled 35 times: ~9.5 hours.  A change to _BUCKETS or
        # _FLOOR_S shows up here first.
        assert _BUCKETS == 36
        assert _BOUNDS[-1] == pytest.approx(_FLOOR_S * 2.0 ** 35)
        assert _BOUNDS[-1] > 3600.0  # beyond any sane request

    def test_saturated_and_normal_samples_order_correctly(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.record(0.001)
        histogram.record(1e12)
        assert histogram.percentile(0.5) < _BOUNDS[-1]
        assert histogram.percentile(0.999) == _BOUNDS[-1]


class TestSharedAcrossFrontEnds:
    def test_both_gateways_expose_the_same_stats_class(self):
        from repro.gateway.core import AsyncRequestGateway
        from repro.scale.gateway import RequestGateway
        import inspect
        # Both constructors default their stats to this one class.
        assert "GatewayStats" in inspect.getsource(RequestGateway.__init__)
        assert "GatewayStats" in inspect.getsource(
            AsyncRequestGateway.__init__)

    def test_snapshot_key_set_is_pinned(self):
        snap = GatewayStats().snapshot()
        assert set(snap) == {
            "admitted", "rejected", "shed", "completed", "failed",
            "batches", "queue_wait_s", "evaluate_s", "snapshot_reads",
            "writes", "epochs_advanced", "streams", "stream_chunks",
            "replica_reads", "replica_writes",
            "latency_count", "latency_mean_s", "latency_p50_s",
            "latency_p99_s", "latency_p999_s",
        }

    def test_replica_counters_start_zero_and_survive_snapshot(self):
        stats = GatewayStats()
        snap = stats.snapshot()
        assert snap["replica_reads"] == 0
        assert snap["replica_writes"] == 0
        stats.replica_reads += 3
        stats.replica_writes += 2
        snap = stats.snapshot()
        assert snap["replica_reads"] == 3
        assert snap["replica_writes"] == 2
