"""Streaming dissemination: byte-identity, interning, epoch pinning."""

import asyncio
import random

import pytest

from repro.gateway import collect, serialize_pieces, stream_element
from repro.gateway.core import AsyncRequestGateway
from repro.snap.frozen import freeze_document
from repro.snap.intern import InternPool
from repro.snap.xmlstore import SnapshotXmlDatabase
from repro.xmldb.parser import parse
from repro.xmldb.serializer import serialize_element

DOCS = [
    "<doc/>",
    "<doc>text</doc>",
    "<doc><a x=\"1\" b=\"2\">hi</a><b/><a x=\"1\" b=\"2\">hi</a></doc>",
    "<r><v>a&amp;b</v><v>&lt;tag&gt;</v><v attr=\"a&quot;b\"/></r>",
    "<deep><a><b><c><d>x</d></c></b></a></deep>",
]


def random_xml(rng: random.Random, depth: int = 4) -> str:
    def element(level: int) -> str:
        tag = rng.choice("abcde")
        attrs = "".join(f' k{i}="{rng.randrange(10)}"'
                        for i in range(rng.randrange(3)))
        if level == 0 or rng.random() < 0.3:
            return (f"<{tag}{attrs}/>" if rng.random() < 0.5
                    else f"<{tag}{attrs}>t{rng.randrange(100)}</{tag}>")
        children = "".join(element(level - 1)
                           for _ in range(rng.randrange(1, 4)))
        return f"<{tag}{attrs}>{children}</{tag}>"
    return f"<root>{element(depth)}</root>"


class TestByteIdentity:
    @pytest.mark.parametrize("xml", DOCS)
    def test_pieces_concatenate_to_serial_serialization(self, xml):
        frozen = freeze_document(parse(xml, "d"))
        assert "".join(serialize_pieces(frozen.root)) == \
            serialize_element(parse(xml, "d").root)

    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 4096])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_chunks_concatenate_identically_any_chunk_size(
            self, seed, chunk_size):
        xml = random_xml(random.Random(seed))
        frozen = freeze_document(parse(xml, "d"))
        pool = InternPool()
        expected = pool.serialize(frozen.root)

        async def scenario():
            return await collect(stream_element(
                frozen.root, pool, chunk_size=chunk_size))

        assert asyncio.run(scenario()) == expected

    @pytest.mark.parametrize("seed", range(6))
    def test_stream_without_pool_matches_stream_with_pool(self, seed):
        xml = random_xml(random.Random(100 + seed))
        frozen = freeze_document(parse(xml, "d"))
        pool = InternPool()
        pool.serialize(frozen.root)     # warm every fragment

        async def scenario():
            bare = await collect(stream_element(frozen.root, None))
            warmed = await collect(stream_element(frozen.root, pool))
            return bare, warmed

        bare, warmed = asyncio.run(scenario())
        assert bare == warmed == pool.serialize(frozen.root)


class TestInternReuse:
    def test_cached_fragment_probe_is_read_only(self):
        frozen = freeze_document(parse("<doc><a>x</a></doc>", "d"))
        pool = InternPool()
        assert pool.cached_fragment(frozen.root) is None
        pool.serialize(frozen.root)
        assert pool.cached_fragment(frozen.root) == \
            pool.serialize(frozen.root)

    def test_warm_pool_streams_from_interned_fragments(self):
        """After a serial serialization, the stream of the same tree is
        a single cached-fragment emission — no re-walk."""
        xml = random_xml(random.Random(42))
        frozen = freeze_document(parse(xml, "d"))
        pool = InternPool()
        pool.serialize(frozen.root)
        pieces = list(serialize_pieces(frozen.root, pool))
        assert pieces == [pool.serialize(frozen.root)]


class TestGatewayStreaming:
    def make_db(self):
        db = SnapshotXmlDatabase()
        db.create_collection("c")
        db.insert("c", "d1",
                  "<doc><a x=\"1\">hello &amp; bye</a><b/></doc>")
        db.publish()
        return db

    def test_stream_document_matches_snapshot_serializer(self):
        db = self.make_db()
        router_free_engine = _tiny_engine()

        async def scenario():
            gateway = AsyncRequestGateway(router_free_engine, store=db,
                                          auto_dispatch=False)
            text = await collect(gateway.stream_document(
                "t", "c", "d1", chunk_size=8))
            return text, gateway.stats.snapshot()

        text, stats = asyncio.run(scenario())
        assert text == db.pool.serialize_document(
            db.current().document("c", "d1"))
        assert stats["streams"] == 1
        assert stats["stream_chunks"] >= 2
        assert stats["completed"] == 1

    def test_stream_sees_admission_epoch_despite_writes(self):
        db = self.make_db()
        # Expected bytes via a *separate* pool, so the gateway's pool
        # stays cold and the stream yields several real chunks.
        before = InternPool().serialize_document(
            db.current().document("c", "d1"))

        async def scenario():
            gateway = AsyncRequestGateway(_tiny_engine(), store=db,
                                          auto_dispatch=False)
            chunks = []
            stream = gateway.stream_document("t", "c", "d1",
                                             chunk_size=4)
            async for chunk in stream:
                chunks.append(chunk)
                # A writer publishes a new epoch between every chunk.
                gateway.write(lambda store: store.set_text(
                    "c", "d1", "/doc/a", f"edit{len(chunks)}"))
            return "".join(chunks), gateway.stats.snapshot()

        text, stats = asyncio.run(scenario())
        assert text == before               # pinned epoch, old bytes
        assert stats["epochs_advanced"] >= 2
        after = db.pool.serialize_document(
            db.current().document("c", "d1"))
        assert after != before

    def test_stream_releases_pin_on_consumer_abandon(self):
        db = self.make_db()

        async def scenario():
            gateway = AsyncRequestGateway(_tiny_engine(), store=db,
                                          auto_dispatch=False)
            stream = gateway.stream_document("t", "c", "d1",
                                             chunk_size=2)
            await stream.__anext__()
            await stream.aclose()           # consumer walks away
            epoch = db.epochs.current_epoch()
            assert db.epochs.pins(epoch) == 0

        asyncio.run(scenario())

    def test_stream_without_store_is_a_configuration_error(self):
        from repro.core.errors import ConfigurationError

        async def scenario():
            gateway = AsyncRequestGateway(_tiny_engine(),
                                          auto_dispatch=False)
            with pytest.raises(ConfigurationError):
                gateway.stream("t", lambda snapshot: snapshot)

        asyncio.run(scenario())


def _tiny_engine():
    from repro.core.evaluator import PolicyEvaluator
    from repro.core.policy import PolicyBase
    from repro.scale.batch import BatchDecisionEngine
    return BatchDecisionEngine(PolicyEvaluator(PolicyBase()))
