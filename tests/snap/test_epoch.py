"""Epoch lifecycle: publication, pinning, retirement, reclamation.

Satellite coverage for the lock-free read path's concurrency contract:
freeze-during-write isolation, a reader holding a retired epoch across a
writer burst (no reclamation until release), and double-release
detection.
"""

import pytest

from repro.core.errors import EpochRetired, SnapshotError
from repro.snap.epoch import EpochManager
from repro.snap.xmlstore import SnapshotXmlDatabase


class FakeSnapshot:
    def __init__(self, label):
        self.label = label
        self.epoch = None
        self.closed = 0

    def close(self):
        self.closed += 1


class TestPublication:
    def test_epochs_are_monotonic(self):
        manager = EpochManager()
        first = manager.publish(FakeSnapshot("a"))
        second = manager.publish(FakeSnapshot("b"))
        assert (first.epoch, second.epoch) == (0, 1)
        assert manager.current() is second
        assert manager.current_epoch() == 1

    def test_current_before_any_publish_raises(self):
        manager = EpochManager()
        with pytest.raises(SnapshotError):
            manager.current()
        with pytest.raises(SnapshotError):
            manager.acquire()

    def test_publishing_none_is_rejected(self):
        with pytest.raises(SnapshotError):
            EpochManager().publish(None)

    def test_unpinned_superseded_epoch_reclaims_immediately(self):
        manager = EpochManager()
        old = manager.publish(FakeSnapshot("a"))
        manager.publish(FakeSnapshot("b"))
        assert manager.reclaimed_epochs() == [old.epoch]
        assert manager.retired_epochs() == []
        assert old.closed == 1


class TestPinning:
    def test_reader_holding_retired_epoch_across_writer_burst(self):
        """The headline reclamation property: epoch N stays alive —
        uncounted writer publications later — until its last reader
        releases, and is reclaimed at exactly that moment."""
        manager = EpochManager()
        manager.publish(FakeSnapshot("a"))
        pinned = manager.acquire()
        for label in "bcdefg":  # a burst of 6 writer publications
            manager.publish(FakeSnapshot(label))
        assert manager.retired_epochs() == [pinned.epoch]
        assert pinned.epoch not in manager.reclaimed_epochs()
        assert pinned.closed == 0
        assert manager.pins(pinned.epoch) == 1

        manager.release(pinned)
        assert pinned.epoch in manager.reclaimed_epochs()
        assert manager.retired_epochs() == []
        assert pinned.closed == 1
        # Intermediate epochs b..f were never pinned: reclaimed at
        # publication time, before a's release.
        assert manager.reclaimed_epochs().index(pinned.epoch) == 5

    def test_multiple_pins_require_all_releases(self):
        manager = EpochManager()
        manager.publish(FakeSnapshot("a"))
        first = manager.acquire()
        second = manager.acquire()
        assert first is second
        assert manager.pins(first.epoch) == 2
        manager.publish(FakeSnapshot("b"))
        manager.release(first)
        assert first.closed == 0  # one pin still out
        manager.release(second)
        assert first.closed == 1

    def test_releasing_current_epoch_does_not_reclaim_it(self):
        manager = EpochManager()
        manager.publish(FakeSnapshot("a"))
        pinned = manager.acquire()
        manager.release(pinned)
        assert manager.reclaimed_epochs() == []
        assert manager.current() is pinned

    def test_double_release_raises(self):
        manager = EpochManager()
        manager.publish(FakeSnapshot("a"))
        pinned = manager.acquire()
        manager.release(pinned)
        with pytest.raises(EpochRetired):
            manager.release(pinned)

    def test_reading_context_manager_pins_and_releases(self):
        manager = EpochManager()
        snap = manager.publish(FakeSnapshot("a"))
        with manager.reading() as pinned:
            assert pinned is snap
            assert manager.pins(snap.epoch) == 1
        assert manager.pins(snap.epoch) == 0
        assert manager.stats.snapshot()["acquires"] == 1
        assert manager.stats.snapshot()["releases"] == 1

    def test_close_runs_exactly_once(self):
        manager = EpochManager()
        old = manager.publish(FakeSnapshot("a"))
        pinned = manager.acquire()
        manager.publish(FakeSnapshot("b"))
        manager.release(pinned)
        manager.publish(FakeSnapshot("c"))
        assert old.closed == 1


class TestFreezeDuringWrite:
    """Readers against a SnapshotXmlDatabase mid-write see only the
    last *published* epoch — a writer() block is atomic."""

    def setup_method(self):
        self.db = SnapshotXmlDatabase()
        self.db.create_collection("c")
        self.db.insert("c", "d1", "<doc><a>1</a><b>2</b></doc>")

    def test_reader_inside_writer_block_sees_pre_write_state(self):
        before = self.db.current().serialize("c", "d1")
        with self.db.epochs.reading() as pinned:
            with self.db.writer() as writer:
                writer.set_text("c", "d1", "/doc/a", "99")
                writer.set_text("c", "d1", "/doc/b", "98")
                # Mid-write: the pinned snapshot AND the current epoch
                # still serve the pre-write bytes.
                assert pinned.serialize("c", "d1") == before
                assert self.db.current().serialize("c", "d1") == before
            # Block exited: one new epoch carries both edits.
            assert pinned.serialize("c", "d1") == before
            assert self.db.current().serialize(
                "c", "d1") == "<doc><a>99</a><b>98</b></doc>"

    def test_writer_block_publishes_exactly_one_epoch(self):
        published = self.db.epochs.stats.published
        with self.db.writer() as writer:
            writer.set_text("c", "d1", "/doc/a", "x")
            writer.set_attribute("c", "d1", "/doc", "v", "2")
            writer.insert("c", "d2", "<doc2/>")
        assert self.db.epochs.stats.published == published + 1

    def test_nested_writer_blocks_defer_to_the_outermost(self):
        published = self.db.epochs.stats.published
        with self.db.writer() as writer:
            writer.set_text("c", "d1", "/doc/a", "x")
            with self.db.writer() as inner:
                inner.set_text("c", "d1", "/doc/b", "y")
            # Inner exit must not publish the half-done state.
            assert self.db.epochs.stats.published == published
        assert self.db.epochs.stats.published == published + 1
        assert self.db.current().serialize(
            "c", "d1") == "<doc><a>x</a><b>y</b></doc>"

    def test_pinned_epoch_survives_document_deletion(self):
        with self.db.epochs.reading() as pinned:
            self.db.delete("c", "d1")
            assert pinned.serialize(
                "c", "d1") == "<doc><a>1</a><b>2</b></doc>"
            assert self.db.current().doc_ids("c") == []


class TestRetainUntil:
    """Durability pins: checkpoint serialization vs reclamation."""

    def test_pin_keeps_epoch_alive_across_writer_burst(self):
        manager = EpochManager()
        pinned = manager.publish(FakeSnapshot("ckpt"))
        release = manager.retain_until(pinned, "digest-1")
        for n in range(5):
            manager.publish(FakeSnapshot(f"later-{n}"))
        # The pinned epoch is retired but NOT reclaimed: its close()
        # hook must not fire while a checkpoint serializes it.
        assert pinned.closed == 0
        assert manager.durable_pins() == {"digest-1": pinned.epoch}
        release()
        assert pinned.closed == 1
        assert manager.durable_pins() == {}

    def test_release_is_idempotent(self):
        manager = EpochManager()
        pinned = manager.publish(FakeSnapshot("ckpt"))
        release = manager.retain_until(pinned, "digest-1")
        manager.publish(FakeSnapshot("later"))
        release()
        release()  # the double release is absorbed, not miscounted
        assert pinned.closed == 1

    def test_pinning_a_reclaimed_epoch_raises(self):
        manager = EpochManager()
        stale = manager.publish(FakeSnapshot("stale"))
        manager.publish(FakeSnapshot("later"))  # stale reclaims now
        with pytest.raises(EpochRetired):
            manager.retain_until(stale, "digest-1")

    def test_pin_stacks_with_reader_pins(self):
        manager = EpochManager()
        pinned = manager.publish(FakeSnapshot("ckpt"))
        reader = manager.acquire()
        release = manager.retain_until(pinned, "digest-1")
        manager.publish(FakeSnapshot("later"))
        release()
        assert pinned.closed == 0  # the reader still holds it
        manager.release(reader)
        assert pinned.closed == 1

    def test_release_of_current_epoch_does_not_close_it(self):
        manager = EpochManager()
        current = manager.publish(FakeSnapshot("current"))
        release = manager.retain_until(current, "digest-1")
        release()
        assert current.closed == 0
        assert manager.current() is current

    def test_checkpoint_under_writer_churn_keeps_digest(self):
        # End to end: the DurableXmlStore checkpoint pins its captured
        # epoch, so concurrent publishes never dismantle it mid-pickle.
        from repro.wal.durable import DurableXmlStore
        from repro.wal.vfs import MemVfs
        vfs = MemVfs()
        store = DurableXmlStore(SnapshotXmlDatabase(), vfs, shards=1,
                                auto_flush=False)
        store.create_collection("c")
        store.insert("c", "d1", "<doc><a>1</a></doc>")
        assert store.checkpoint() is True
        assert store.inner.epochs.durable_pins() == {}  # pin released
        store.insert("c", "d2", "<doc><a>2</a></doc>")
        digest = store.state_digest()
        store.close()
        recovered, _ = DurableXmlStore.recover(vfs, shards=1,
                                               auto_flush=False)
        assert recovered.state_digest() == digest
