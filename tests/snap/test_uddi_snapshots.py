"""Snapshot UDDI registry: equivalence with the live registry."""

import pytest

from repro.core.errors import RegistryError
from repro.snap.uddi import SnapshotUddiRegistry
from repro.uddi.model import (
    PublisherAssertion,
    TModel,
    fresh_key,
    make_business,
    make_service,
)
from repro.uddi.registry import UddiRegistry


def seeded_pair():
    """The same publishes applied to a live and a snapshot registry."""
    acme = make_business("Acme", "widgets").with_service(
        make_service("Catalog", category="retail",
                     access_point="http://acme/cat"))
    globex = make_business("Globex").with_service(
        make_service("Catalog", category="wholesale"))
    tmodel = TModel(fresh_key("tm"), "uddi-org:http", "HTTP transport")
    assertion = PublisherAssertion(acme.business_key, globex.business_key,
                                   "partner")
    live = UddiRegistry()
    snap = SnapshotUddiRegistry()
    for registry in (live, snap):
        registry.save_business(acme, "acme-inc")
        registry.save_business(globex, "globex-corp")
        registry.save_tmodel(tmodel, "acme-inc")
        registry.add_assertion(assertion, "acme-inc")
    return live, snap, acme, globex, tmodel


class TestEquivalence:
    def test_state_digest_matches_live_registry(self):
        live, snap, *_ = seeded_pair()
        assert snap.current().state_digest() == live.state_digest()

    def test_state_parts_match_live_registry(self):
        live, snap, *_ = seeded_pair()
        assert snap.current().state_parts() == live.state_parts()

    def test_empty_registries_agree(self):
        assert (SnapshotUddiRegistry().current().state_digest()
                == UddiRegistry().state_digest())

    def test_inquiry_api_matches_live_registry(self):
        live, snap, acme, globex, tmodel = seeded_pair()
        view = snap.current()
        assert view.find_business("*") == live.find_business("*")
        assert view.find_business("Glo*") == live.find_business("Glo*")
        assert (view.find_service("Catalog", category="retail")
                == live.find_service("Catalog", category="retail"))
        assert view.find_tmodel("uddi-org:*") == live.find_tmodel(
            "uddi-org:*")
        assert (view.find_related_businesses(acme.business_key)
                == live.find_related_businesses(acme.business_key))
        assert (view.get_business_detail(acme.business_key)
                == live.get_business_detail(acme.business_key))
        service = acme.services[0]
        assert (view.get_service_detail(service.service_key)
                == live.get_service_detail(service.service_key))
        binding = service.bindings[0]
        assert (view.get_binding_detail(binding.binding_key)
                == live.get_binding_detail(binding.binding_key))
        assert (view.get_tmodel_detail(tmodel.tmodel_key)
                == live.get_tmodel_detail(tmodel.tmodel_key))
        assert view.owner_of(acme.business_key) == "acme-inc"
        assert view.business_keys() == live.business_keys()
        assert view.assertions() == live.assertions()
        assert len(view) == len(live)

    def test_delete_business_purges_assertions_like_live(self):
        live, snap, acme, *_ = seeded_pair()
        live.delete_business(acme.business_key, "acme-inc")
        snap.delete_business(acme.business_key, "acme-inc")
        assert snap.current().state_digest() == live.state_digest()
        assert snap.current().assertions() == []


class TestOwnership:
    def test_foreign_update_and_delete_are_rejected(self):
        _, snap, acme, *_ = seeded_pair()
        with pytest.raises(RegistryError):
            snap.save_business(acme, "mallory-corp")
        with pytest.raises(RegistryError):
            snap.delete_business(acme.business_key, "mallory-corp")
        with pytest.raises(RegistryError):
            snap.delete_business("uddi:biz:unknown", "acme-inc")

    def test_assertion_requires_an_owned_endpoint(self):
        _, snap, acme, globex, _ = seeded_pair()
        foreign = PublisherAssertion(globex.business_key,
                                     acme.business_key, "rival")
        with pytest.raises(RegistryError):
            snap.add_assertion(foreign, "mallory-corp")


class TestEpochsAndInterning:
    def test_old_epoch_keeps_its_digest_after_writes(self):
        _, snap, acme, *_ = seeded_pair()
        with snap.epochs.reading() as pinned:
            digest = pinned.state_digest()
            snap.save_business(make_business("Initech"), "initech-llc")
            assert pinned.state_digest() == digest
            assert snap.current().state_digest() != digest

    def test_unchanged_entity_parts_intern_across_epochs(self):
        """A publish touching one business leaves every other entity's
        digest part a cache hit in the next epoch."""
        _, snap, *_ = seeded_pair()
        snap.current().state_digest()  # warm the parts cache
        snap.save_business(make_business("Initech"), "initech-llc")
        stats_before = snap.parts_cache.stats.snapshot()
        snap.current().state_digest()
        stats_after = snap.parts_cache.stats.snapshot()
        # Only the new business misses; acme/globex/tmodel/assertion hit.
        assert stats_after["misses"] - stats_before["misses"] == 1
        assert stats_after["hits"] - stats_before["hits"] >= 4

    def test_writer_block_publishes_once(self):
        _, snap, acme, globex, _ = seeded_pair()
        published = snap.epochs.stats.published
        with snap.writer() as writer:
            writer.delete_business(acme.business_key, "acme-inc")
            writer.delete_business(globex.business_key, "globex-corp")
        assert snap.epochs.stats.published == published + 1
        assert snap.current().business_keys() == []
