"""Gateway over the snapshot layer: workers=0 deterministic pipeline."""

import pytest

from repro.core.credentials import anyone, has_role
from repro.core.errors import ConfigurationError
from repro.core.policy import Action, deny, grant
from repro.core.subjects import Role, Subject
from repro.scale.batch import BatchDecisionEngine
from repro.scale.gateway import Request, RequestGateway
from repro.snap.policy import EpochalPolicyEngine
from repro.snap.xmlstore import SnapshotXmlDatabase

DOCTOR = Subject("dr", roles={Role("doctor")})
VISITOR = Subject("vis")

POLICIES = [
    grant(anyone(), Action.READ, "hospital/**"),
    deny(anyone(), Action.READ, "hospital/records/ssn"),
    grant(has_role("doctor"), Action.WRITE, "hospital/records/**"),
]


def make_gateway(**kwargs):
    engine = EpochalPolicyEngine(POLICIES)
    return engine, RequestGateway(engine, workers=0, **kwargs)


class TestDeterministicDecisions:
    def test_submissions_flow_through_the_epochal_engine(self):
        _, gateway = make_gateway()
        futures = [gateway.submit(Request(subject, action, path))
                   for subject, action, path in [
                       (DOCTOR, Action.READ, "hospital/lobby"),
                       (VISITOR, Action.READ, "hospital/records/ssn"),
                       (DOCTOR, Action.WRITE, "hospital/records/r1"),
                       (VISITOR, Action.WRITE, "hospital/records/r1"),
                   ]]
        assert gateway.process_pending() == 4
        assert [f.result().granted for f in futures] == [
            True, False, True, False]
        assert gateway.stats.snapshot()["completed"] == 4

    def test_policy_write_between_batches_changes_later_decisions_only(self):
        engine, gateway = make_gateway(batch_size=4)
        request = Request(VISITOR, Action.READ, "hospital/lobby")
        before = gateway.submit(request)
        gateway.process_pending()
        engine.add_policy(deny(anyone(), Action.READ, "hospital/lobby"))
        after = gateway.submit(request)
        gateway.process_pending()
        assert before.result().granted
        assert not after.result().granted

    def test_identical_runs_are_identical(self):
        requests = [(DOCTOR, Action.READ, "hospital/records/ssn"),
                    (VISITOR, Action.READ, "hospital/x"),
                    (DOCTOR, Action.WRITE, "hospital/records/r2")]
        outcomes = []
        for _ in range(2):
            _, gateway = make_gateway()
            futures = [gateway.submit(Request(*r)) for r in requests]
            gateway.process_pending()
            outcomes.append([f.result().granted for f in futures])
        assert outcomes[0] == outcomes[1]


class TestSnapshotReadWritePath:
    def test_engine_donates_its_epoch_manager(self):
        engine, gateway = make_gateway()
        assert gateway.epochs is engine.epochs
        generation = gateway.read(lambda snapshot: snapshot.generation)
        assert generation == engine.current().generation
        assert gateway.stats.snapshot()["snapshot_reads"] == 1

    def test_reads_and_writes_against_a_snapshot_store(self):
        db = SnapshotXmlDatabase()
        db.create_collection("c")
        db.insert("c", "d1", "<doc><a>1</a></doc>")
        engine = BatchDecisionEngine(POLICIES)
        gateway = RequestGateway(engine, workers=0, publisher=db)
        assert gateway.epochs is db.epochs

        before = gateway.read(lambda s: s.serialize("c", "d1"))
        epoch_before = db.epochs.current_epoch()

        def mutate(store):
            store.set_text("c", "d1", "/doc/a", "2")
            store.insert("c", "d2", "<doc2/>")

        gateway.write(mutate)
        # One write call, one published epoch, both edits visible.
        assert db.epochs.current_epoch() == epoch_before + 1
        assert gateway.read(
            lambda s: s.serialize("c", "d1")) == "<doc><a>2</a></doc>"
        assert before == "<doc><a>1</a></doc>"
        stats = gateway.stats.snapshot()
        assert stats["writes"] == 1
        assert stats["epochs_advanced"] == 1
        assert stats["snapshot_reads"] == 2

    def test_read_during_write_sees_the_previous_epoch(self):
        db = SnapshotXmlDatabase()
        db.create_collection("c")
        db.insert("c", "d1", "<doc><a>1</a></doc>")
        gateway = RequestGateway(BatchDecisionEngine(POLICIES),
                                 workers=0, publisher=db)

        def mutate(store):
            store.set_text("c", "d1", "/doc/a", "2")
            # Mid-write, the read path still serves the old epoch.
            assert gateway.read(
                lambda s: s.serialize("c", "d1")) == "<doc><a>1</a></doc>"

        gateway.write(mutate)
        assert gateway.read(
            lambda s: s.serialize("c", "d1")) == "<doc><a>2</a></doc>"

    def test_unconfigured_gateway_raises_typed_errors(self):
        gateway = RequestGateway(BatchDecisionEngine(POLICIES), workers=0)
        assert gateway.epochs is None
        with pytest.raises(ConfigurationError):
            gateway.read(lambda snapshot: snapshot)
        with pytest.raises(ConfigurationError):
            gateway.write(lambda store: store)
