"""Snapshot policy bases decide exactly like the live evaluator."""

import pytest

from repro.core.credentials import anyone, has_role
from repro.core.errors import ConfigurationError
from repro.core.evaluator import (
    ConflictResolution,
    DefaultDecision,
    PolicyEvaluator,
)
from repro.core.policy import Action, PolicyBase, deny, grant
from repro.core.subjects import Role, Subject
from repro.snap.policy import EpochalPolicyEngine, SnapshotPolicyBase

DOCTOR = Subject("dr", roles={Role("doctor")})
NURSE = Subject("rn", roles={Role("nurse")})
VISITOR = Subject("vis")

POLICIES = [
    grant(anyone(), Action.READ, "hospital/**"),
    deny(anyone(), Action.READ, "hospital/records/ssn"),
    grant(has_role("doctor"), Action.WRITE, "hospital/records/**"),
    deny(has_role("nurse"), Action.WRITE, "hospital/records/billing"),
    grant(anyone(), Action.READ, "*"),
]

REQUESTS = [
    (subject, action, path)
    for subject in (DOCTOR, NURSE, VISITOR)
    for action in (Action.READ, Action.WRITE)
    for path in ("hospital/records/ssn", "hospital/records/billing",
                 "hospital/lobby", "pharmacy", "pharmacy/stock")
]


class TestBaseEquivalence:
    def test_candidates_match_live_policy_base(self):
        live = PolicyBase(POLICIES)
        snap = SnapshotPolicyBase(POLICIES).freeze()
        for _, action, path in REQUESTS:
            live_ids = [p.policy_id
                        for p in live.candidates(action, path)]
            snap_ids = [p.policy_id
                        for p in snap.candidates(action, path)]
            assert snap_ids == live_ids, (action, path)

    def test_applicable_matches_live_policy_base(self):
        live = PolicyBase(POLICIES)
        snap = SnapshotPolicyBase(POLICIES).freeze()
        for subject, action, path in REQUESTS:
            assert (snap.applicable(subject, action, path)
                    == live.applicable(subject, action, path))

    def test_iteration_and_len(self):
        base = SnapshotPolicyBase(POLICIES)
        assert len(base) == len(POLICIES)
        assert list(base) == POLICIES
        snap = base.freeze()
        assert len(snap) == len(POLICIES)
        assert list(snap) == POLICIES

    def test_remove_unknown_policy_raises(self):
        base = SnapshotPolicyBase(POLICIES[:2])
        with pytest.raises(ConfigurationError):
            base.remove(POLICIES[3])

    def test_freeze_is_stable_under_later_writes(self):
        base = SnapshotPolicyBase(POLICIES[:2])
        snap = base.freeze()
        extra = base.add(grant(anyone(), Action.WRITE, "hospital/lobby"))
        assert len(snap) == 2
        assert snap.applicable(VISITOR, Action.WRITE, "hospital/lobby") == []
        assert base.applicable(
            VISITOR, Action.WRITE, "hospital/lobby") == [extra]
        base.remove(POLICIES[0])
        assert list(snap)[0] is POLICIES[0]


class TestEngineEquivalence:
    @pytest.mark.parametrize("resolution", list(ConflictResolution))
    @pytest.mark.parametrize("default", list(DefaultDecision))
    def test_decisions_match_live_evaluator(self, resolution, default):
        live = PolicyEvaluator(PolicyBase(POLICIES), resolution=resolution,
                               default=default)
        engine = EpochalPolicyEngine(POLICIES, resolution=resolution,
                                     default=default)
        for subject, action, path in REQUESTS:
            expected = live.decide(subject, action, path)
            got = engine.decide(subject, action, path)
            assert got.granted == expected.granted, (subject, action, path)
            assert got.determining == expected.determining

    def test_decide_batch_matches_serial_decides(self):
        engine = EpochalPolicyEngine(POLICIES)
        serial = [engine.decide(*request) for request in REQUESTS]
        batch = engine.decide_batch(REQUESTS)
        assert [d.granted for d in batch] == [d.granted for d in serial]

    def test_policy_add_advances_the_epoch(self):
        engine = EpochalPolicyEngine(POLICIES[:1])
        before = engine.current()
        assert not engine.decide(
            DOCTOR, Action.WRITE, "hospital/records/r1").granted
        engine.add_policy(
            grant(has_role("doctor"), Action.WRITE, "hospital/records/**"))
        after = engine.current()
        assert after.epoch == before.epoch + 1
        assert engine.decide(
            DOCTOR, Action.WRITE, "hospital/records/r1").granted
        # The superseded, unpinned epoch was reclaimed.
        assert engine.epochs.reclaimed_epochs() == [before.epoch]

    def test_policy_remove_advances_the_epoch(self):
        denial = deny(anyone(), Action.READ, "hospital/records/ssn")
        engine = EpochalPolicyEngine(
            [grant(anyone(), Action.READ, "hospital/**"), denial])
        assert not engine.decide(
            NURSE, Action.READ, "hospital/records/ssn").granted
        engine.remove_policy(denial)
        assert engine.decide(
            NURSE, Action.READ, "hospital/records/ssn").granted

    def test_per_epoch_decision_cache_is_pure(self):
        """A snapshot's generation never changes, so repeat decisions hit
        the evaluator cache; a write produces a *new* evaluator rather
        than invalidating the old one."""
        engine = EpochalPolicyEngine(POLICIES)
        snapshot = engine.current()
        engine.decide(DOCTOR, Action.READ, "hospital/lobby")
        engine.decide(DOCTOR, Action.READ, "hospital/lobby")
        stats = snapshot.evaluator.cache_stats
        assert stats["hits"] >= 1
        engine.add_policy(grant(anyone(), Action.WRITE, "x"))
        assert engine.current().evaluator is not snapshot.evaluator

    def test_reader_pinning_old_epoch_decides_against_old_policies(self):
        engine = EpochalPolicyEngine(POLICIES[:1])  # read-all only
        with engine.epochs.reading() as pinned:
            engine.add_policy(deny(anyone(), Action.READ, "hospital/x"))
            assert pinned.evaluator.decide(
                VISITOR, Action.READ, "hospital/x").granted
            assert not engine.decide(
                VISITOR, Action.READ, "hospital/x").granted
