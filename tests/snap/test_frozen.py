"""Frozen trees: freeze/thaw fidelity and copy-on-write sharing."""

import pytest

from repro.core.errors import SnapshotError
from repro.snap.frozen import (
    freeze_document,
    freeze_element,
    resolve,
    shared_nodes,
    thaw_document,
    with_appended_child,
    with_attribute,
    with_text,
    without_attribute,
    without_child,
)
from repro.xmldb.parser import parse
from repro.xmldb.serializer import serialize, serialize_element

XML = ("<hospital><record id=\"1\"><name>Ann &amp; Bo</name>"
       "<diagnosis code=\"x\">flu</diagnosis></record>"
       "<record id=\"2\"><name>Cy</name></record></hospital>")


def frozen_root():
    return freeze_element(parse(XML).root)


class TestFreezeThaw:
    def test_roundtrip_is_byte_identical(self):
        document = parse(XML, name="d")
        frozen = freeze_document(document)
        assert serialize_element(frozen.root) == serialize(document)
        assert serialize(thaw_document(frozen)) == serialize(document)

    def test_frozen_document_version_is_constant(self):
        frozen = freeze_document(parse(XML))
        assert frozen.version == 0

    def test_read_surface_matches_element(self):
        live = parse(XML).root
        frozen = freeze_element(live)
        assert frozen.tag == live.tag
        assert [n.tag for n in frozen.iter()] == [n.tag
                                                  for n in live.iter()]
        assert frozen.find("record").attributes == {"id": "1"}
        assert [r.attributes["id"]
                for r in frozen.find_all("record")] == ["1", "2"]
        record = frozen.find("record")
        assert record.find("name").text == "Ann & Bo"
        assert frozen.size() == live.size()


class TestPathResolution:
    def test_resolve_addresses_positional_paths(self):
        root = frozen_root()
        node = resolve(root, "/hospital[1]/record[2]/name[1]")
        assert node.text == "Cy"
        assert resolve(root, "/hospital") is root

    def test_unqualified_segments_default_to_first(self):
        root = frozen_root()
        assert resolve(root, "/hospital/record/name").text == "Ann & Bo"

    def test_bad_paths_raise(self):
        root = frozen_root()
        with pytest.raises(SnapshotError):
            resolve(root, "/clinic/record")
        with pytest.raises(SnapshotError):
            resolve(root, "/hospital/record[9]")
        with pytest.raises(SnapshotError):
            resolve(root, "")


class TestCopyOnWrite:
    def test_with_text_shares_everything_off_the_spine(self):
        old = frozen_root()
        new = with_text(old, "/hospital/record[1]/diagnosis", "cold")
        assert resolve(new, "/hospital/record[1]/diagnosis").text == "cold"
        # Old version untouched.
        assert resolve(old, "/hospital/record[1]/diagnosis").text == "flu"
        # 6 elements; spine hospital/record[1]/diagnosis copied,
        # name + record[2] subtree (2 nodes) shared.
        assert shared_nodes(old, new) == 3
        # Shared by *identity*, not just equality.
        assert (resolve(new, "/hospital/record[2]")
                is resolve(old, "/hospital/record[2]"))

    def test_attribute_edits(self):
        old = frozen_root()
        new = with_attribute(old, "/hospital/record[2]", "ward", "7")
        assert resolve(new, "/hospital/record[2]").attributes == {
            "id": "2", "ward": "7"}
        assert resolve(old, "/hospital/record[2]").attributes == {"id": "2"}
        back = without_attribute(new, "/hospital/record[2]", "ward")
        assert resolve(back, "/hospital/record[2]").attributes == {"id": "2"}

    def test_removing_an_absent_attribute_is_a_no_op_share(self):
        old = frozen_root()
        assert without_attribute(old, "/hospital/record[1]", "nope") is old

    def test_append_and_remove_child(self):
        old = frozen_root()
        extra = freeze_element(parse("<record id=\"3\"/>").root)
        new = with_appended_child(old, "/hospital", extra)
        assert [r.attributes["id"] for r in new.find_all("record")] == [
            "1", "2", "3"]
        pruned = without_child(new, "/hospital/record[2]")
        assert [r.attributes["id"]
                for r in pruned.find_all("record")] == ["1", "3"]

    def test_root_deletion_is_rejected(self):
        root = frozen_root()
        with pytest.raises(SnapshotError):
            without_child(root, "/hospital")

    def test_edits_preserve_serialization_equivalence_with_live(self):
        """Every frozen edit serializes exactly like the same live edit."""
        live = parse(XML, name="d")
        frozen = freeze_element(live.root)

        live.root.element_children[0].element_children[1].set_text("cold")
        frozen = with_text(frozen, "/hospital/record[1]/diagnosis", "cold")
        assert serialize_element(frozen) == serialize(live)

        live.root.element_children[1].set_attribute("ward", "7")
        frozen = with_attribute(frozen, "/hospital/record[2]", "ward", "7")
        assert serialize_element(frozen) == serialize(live)

        live.root.remove(live.root.element_children[0])
        frozen = without_child(frozen, "/hospital/record[1]")
        assert serialize_element(frozen) == serialize(live)
