"""Packaging and views over snapshots match the live disseminator."""

from repro.core.credentials import anyone, has_role
from repro.core.subjects import Role, Subject
from repro.crypto.keys import KeyStore
from repro.snap.xmlstore import SnapshotXmlDatabase
from repro.snap.dissemination import SnapshotDisseminator
from repro.xmldb.parser import parse
from repro.xmldb.serializer import serialize
from repro.xmlsec.authorx import XmlPolicyBase, xml_deny, xml_grant
from repro.xmlsec.dissemination import Disseminator, open_packet
from repro.xmlsec.views import compute_view

XML = ("<hospital>"
       "<record id=\"r1\"><name>Alice</name><diagnosis>flu</diagnosis>"
       "<ssn>123</ssn></record>"
       "<record id=\"r2\"><name>Bob</name><diagnosis>cold</diagnosis>"
       "<ssn>456</ssn></record>"
       "</hospital>")

DOCTOR = Subject("dr", roles={Role("doctor")})
NURSE = Subject("nn", roles={Role("nurse")})
SUBJECTS = {"dr": DOCTOR, "nn": NURSE}


def make_base() -> XmlPolicyBase:
    return XmlPolicyBase([
        xml_grant(has_role("doctor"), "/hospital", document="records"),
        xml_deny(anyone(), "//ssn", document="records"),
        xml_grant(has_role("nurse"), "//record/name", document="records"),
    ])


def make_snapshot_disseminator():
    store = SnapshotXmlDatabase()
    store.create_collection("c")
    store.insert("c", "records", XML)
    return store, SnapshotDisseminator(store, make_base())


def opened_text(disseminator, packet, who):
    store = KeyStore(f"rx-{who}")
    for key in disseminator.distributor(SUBJECTS).grant(who).keys:
        store.import_key(key)
    return serialize(open_packet(packet, store))


class TestEquivalence:
    def test_opened_views_match_the_live_disseminator(self):
        live = Disseminator(make_base(), "dissemination")
        live_packet = live.package("records", parse(XML, name="records"))
        _, snap = make_snapshot_disseminator()
        snap_packet = snap.package("c", "records")
        for who in SUBJECTS:
            assert (opened_text(snap, snap_packet, who)
                    == opened_text(live, live_packet, who)), who

    def test_views_match_the_uncached_view_builder(self):
        store, snap = make_snapshot_disseminator()
        document = store.current().thawed("c", "records")
        for subject in SUBJECTS.values():
            expected, _ = compute_view(snap.policy_base, subject,
                                       "records", document)
            got, _ = snap.view(subject, "c", "records")
            assert serialize(got) == serialize(expected)

    def test_doctor_view_excludes_denied_ssn(self):
        _, snap = make_snapshot_disseminator()
        packet = snap.package("c", "records")
        text = opened_text(snap, packet, "dr")
        assert "Alice" in text and "flu" in text
        assert "123" not in text and "456" not in text


class TestInterning:
    def test_repeat_packaging_hits_the_prep_cache(self):
        _, snap = make_snapshot_disseminator()
        first = snap.package("c", "records")
        assert snap.stats()["prep"]["hits"] == 0
        second = snap.package("c", "records")
        assert snap.stats()["prep"]["hits"] == 1
        # Same skeleton object (zero-copy reuse); fresh nonces per packet.
        assert second.skeleton == first.skeleton
        assert second.blocks[0].nonce != first.blocks[0].nonce

    def test_prep_cache_survives_writes_to_other_documents(self):
        """Cross-epoch interning: a write elsewhere leaves this
        document's frozen root — hence its thawed identity and its
        prepared payloads — untouched."""
        store, snap = make_snapshot_disseminator()
        store.insert("c", "other", "<hospital><record id=\"r9\"/>"
                                   "</hospital>")
        snap.package("c", "records")
        store.insert("c", "other2", "<hospital/>")  # advance the epoch
        snap.package("c", "records")
        assert snap.stats()["prep"]["hits"] == 1

    def test_editing_the_document_invalidates_the_prep_cache(self):
        store, snap = make_snapshot_disseminator()
        snap.package("c", "records")
        store.set_text("c", "records", "/hospital/record[1]/diagnosis",
                       "cold")
        packet = snap.package("c", "records")
        assert snap.stats()["prep"]["hits"] == 0
        assert "cold" in opened_text(snap, packet, "dr")

    def test_repeat_views_return_the_cached_object(self):
        _, snap = make_snapshot_disseminator()
        first, _ = snap.view(NURSE, "c", "records")
        second, _ = snap.view(NURSE, "c", "records")
        assert second is first
        assert snap.stats()["views"]["hits"] == 1

    def test_policy_change_invalidates_prepared_payloads(self):
        base = make_base()
        store = SnapshotXmlDatabase()
        store.create_collection("c")
        store.insert("c", "records", XML)
        snap = SnapshotDisseminator(store, base)
        snap.package("c", "records")
        base.add(xml_grant(has_role("auditor"), "//diagnosis",
                           document="records"))
        snap.package("c", "records")
        assert snap.stats()["prep"]["hits"] == 0
