"""Snapshot XML database: equivalence with the live store + interning."""

import pytest

from repro.core.errors import ConfigurationError, QueryError
from repro.merkle.xml_merkle import document_hash
from repro.snap.intern import InternPool
from repro.snap.xmlstore import SnapshotXmlDatabase
from repro.xmldb.database import Collection
from repro.xmldb.model import Element
from repro.xmldb.parser import parse
from repro.xmldb.serializer import serialize, serialize_element

DOCS = {
    "d1": ("<hospital><record id=\"1\"><name>Ann &amp; Bo</name>"
           "<diagnosis>flu</diagnosis></record></hospital>"),
    "d2": "<hospital><record id=\"2\"><name>Cy &lt;jr&gt;</name></record>"
          "</hospital>",
    "d3": "<pharmacy><drug name=\"aspirin\">stocked</drug></pharmacy>",
}


def snapshot_db():
    db = SnapshotXmlDatabase()
    db.create_collection("c")
    for doc_id, xml in DOCS.items():
        db.insert("c", doc_id, xml)
    return db


def live_collection():
    collection = Collection("c")
    for doc_id, xml in DOCS.items():
        collection.insert(doc_id, xml)
    return collection


class TestEquivalence:
    def test_serialize_matches_live_store_byte_for_byte(self):
        snap = snapshot_db().current()
        live = live_collection()
        for doc_id in DOCS:
            assert (snap.serialize("c", doc_id)
                    == serialize(live.get(doc_id)))

    def test_merkle_root_matches_live_document_hash(self):
        snap = snapshot_db().current()
        live = live_collection()
        for doc_id in DOCS:
            assert (snap.merkle_root("c", doc_id)
                    == document_hash(live.get(doc_id)))

    def test_query_matches_live_collection(self):
        snap = snapshot_db().current()
        live = live_collection()
        for xpath in ("//record/name", "/hospital/record",
                      "//drug/@name", "//nothing"):
            live_results = [
                (doc_id, item if isinstance(item, str)
                 else serialize_element(item))
                for doc_id, item in live.query(xpath)]
            snap_results = [
                (doc_id, item if isinstance(item, str)
                 else snap._pool.serialize(item))
                for doc_id, item in snap.query("c", xpath)]
            assert snap_results == live_results, xpath

    def test_edits_keep_equivalence(self):
        db = snapshot_db()
        live = live_collection()

        db.set_text("c", "d1", "/hospital/record/diagnosis", "cold")
        doc = live.get("d1")
        doc.root.element_children[0].element_children[1].set_text("cold")

        db.set_attribute("c", "d2", "/hospital/record", "ward", "7")
        live.get("d2").root.element_children[0].set_attribute("ward", "7")

        db.append_child("c", "d3", "/pharmacy",
                        parse("<drug name=\"ibuprofen\"/>").root)
        live.get("d3").root.append(Element("drug", {"name": "ibuprofen"}))

        db.remove_child("c", "d1", "/hospital/record/name")
        record = live.get("d1").root.element_children[0]
        record.remove(record.element_children[0])

        snap = db.current()
        for doc_id in DOCS:
            assert (snap.serialize("c", doc_id)
                    == serialize(live.get(doc_id))), doc_id
            assert (snap.merkle_root("c", doc_id)
                    == document_hash(live.get(doc_id))), doc_id

    def test_thawed_document_serializes_identically_and_is_cached(self):
        snap = snapshot_db().current()
        thawed = snap.thawed("c", "d1")
        assert serialize(thawed) == snap.serialize("c", "d1")
        # Cached by frozen-root identity: same object on repeat reads.
        assert snap.thawed("c", "d1") is thawed


class TestStoreSemantics:
    def test_navigation(self):
        db = snapshot_db()
        snap = db.current()
        assert snap.collection_names() == ["c"]
        assert snap.doc_ids("c") == ["d1", "d2", "d3"]
        assert snap.total_documents() == 3
        assert dict(snap.documents("c"))["d2"].name == "d2"
        assert snap.resolve("c", "d3", "/pharmacy/drug").text == "stocked"

    def test_duplicate_and_missing_raise(self):
        db = snapshot_db()
        with pytest.raises(ConfigurationError):
            db.insert("c", "d1", "<dup/>")
        with pytest.raises(ConfigurationError):
            db.create_collection("c")
        with pytest.raises(QueryError):
            db.delete("c", "nope")
        with pytest.raises(QueryError):
            db.current().document("nope", "d1")
        with pytest.raises(QueryError):
            db.current().document("c", "nope")

    def test_replace_and_delete(self):
        db = snapshot_db()
        db.replace("c", "d3", "<pharmacy><drug>out</drug></pharmacy>")
        assert db.current().serialize(
            "c", "d3") == "<pharmacy><drug>out</drug></pharmacy>"
        db.delete("c", "d3")
        assert db.current().doc_ids("c") == ["d1", "d2"]

    def test_generation_advances_per_write(self):
        db = snapshot_db()
        generation = db.generation
        db.set_text("c", "d1", "/hospital/record/diagnosis", "x")
        assert db.generation == generation + 1
        assert db.current().generation == db.generation


class TestInterning:
    def test_repeat_serialization_is_a_cache_hit(self):
        db = snapshot_db()
        snap = db.current()
        first = snap.serialize("c", "d1")
        hits_before = db.pool.stats()["fragments"]["hits"]
        assert snap.serialize("c", "d1") == first
        assert db.pool.stats()["fragments"]["hits"] > hits_before

    def test_untouched_subtrees_reuse_bytes_across_epochs(self):
        """After an edit, the *new* epoch's serialization recomputes only
        the spine — shared subtrees hit the pool by identity."""
        db = snapshot_db()
        db.current().serialize("c", "d1")  # warm the pool on epoch N
        db.set_text("c", "d1", "/hospital/record/diagnosis", "cold")
        stats = db.pool.stats()["fragments"]
        hits, misses = stats["hits"], stats["misses"]
        db.current().serialize("c", "d1")  # epoch N+1
        stats = db.pool.stats()["fragments"]
        # <name> subtree was shared: cache hit.  Spine (hospital, record,
        # diagnosis) was rebuilt: exactly 3 fresh fragments.
        assert stats["hits"] > hits
        assert stats["misses"] - misses == 3

    def test_merkle_interning_across_epochs(self):
        db = snapshot_db()
        db.current().merkle_root("c", "d1")
        db.set_attribute("c", "d1", "/hospital/record", "ward", "9")
        misses = db.pool.stats()["merkle"]["misses"]
        db.current().merkle_root("c", "d1")
        # Spine = hospital + record; name and diagnosis subtrees shared.
        assert db.pool.stats()["merkle"]["misses"] - misses == 2

    def test_identical_subtrees_in_different_documents_do_not_alias(self):
        """Interning is by identity, not by structural equality — two
        equal-looking subtrees are distinct cache entries."""
        pool = InternPool()
        db = SnapshotXmlDatabase(pool=pool)
        db.create_collection("c")
        db.insert("c", "a", "<doc><x>same</x></doc>")
        db.insert("c", "b", "<doc><x>same</x></doc>")
        snap = db.current()
        assert snap.serialize("c", "a") == snap.serialize("c", "b")
        root_a = snap.document("c", "a").root
        root_b = snap.document("c", "b").root
        assert root_a is not root_b
