"""The examples and the bench CLI are part of the public surface:
run them and check their headline output."""

import contextlib
import io
import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "doctor reads a diagnosis: True" in output
        assert "doctor reads an SSN:     False" in output
        assert "view for dr-grey" in output
        assert "(nothing)" in output  # the visitor

    def test_hospital_records(self):
        output = run_example("hospital_records.py")
        assert output.count("verified=True") == 3
        assert "tamper: authentic=False" in output
        assert output.count("DETECTED") == 3
        assert "missed!" not in output

    def test_service_marketplace(self):
        output = run_example("service_marketplace.py")
        assert "drill-down verified" in output
        assert "21C in Como" in output
        assert "forged answer rejected" in output
        assert "ACCEPTED" not in output

    def test_privacy_mining(self):
        output = run_example("privacy_mining.py")
        assert "REFUSED" in output
        assert "identical to centralized mining: True" in output
        assert "reconstructed" in output

    def test_semantic_web_stack(self):
        output = run_example("semantic_web_stack.py")
        assert "0 triples about report17" in output
        assert "declassified" in output
        assert "residual-risk=0.00" in output
        assert "forged proof (invented rule) rejected" in output


class TestBenchCli:
    def test_single_experiment(self, capsys):
        from repro.bench.__main__ import main
        assert main(["E11"]) == 0
        output = capsys.readouterr().out
        assert "[E11]" in output
        assert "residual risk" in output

    def test_unknown_experiment_raises(self):
        from repro.bench.__main__ import main
        with pytest.raises(KeyError):
            main(["E99"])

    def test_registry_is_complete(self):
        import repro.bench.experiments as experiments
        from repro.bench.harness import all_experiments
        ids = {e.experiment_id for e in all_experiments()}
        assert set(experiments.ALL_EXPERIMENT_IDS) <= ids
