"""Integration: the full service marketplace.

Providers publish signed entries into a third-party UDDI registry;
requestors discover, Merkle-verify, check P3P policies and invoke over
the secure bus — then the agency is compromised and every property that
should survive does.
"""

import pytest

from repro.core.credentials import anyone
from repro.core.errors import AuthenticationError, ServiceFault
from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import Action, PolicyBase, grant
from repro.core.subjects import Subject
from repro.datagen.registry_gen import generate_businesses
from repro.p3p.matching import match
from repro.p3p.policy import (
    DataCategory,
    P3PPolicy,
    Purpose,
    Recipient,
    Retention,
    statement,
)
from repro.p3p.preferences import strictness_profile
from repro.uddi.architectures import ThirdPartyDeployment
from repro.uddi.model import make_business, make_service
from repro.uddi.secure import verify_authenticated_answer
from repro.wsa.actors import (
    DiscoveryAgencyActor,
    ServiceProvider,
    ServiceRequestor,
)
from repro.wsa.transport import MessageBus
from repro.wsa.wsdl import describe

ALICE = Subject("alice")


def open_evaluator() -> PolicyEvaluator:
    return PolicyEvaluator(PolicyBase([
        grant(anyone(), Action.READ, "uddi/**"),
        grant(anyone(), Action.WRITE, "uddi/**"),
        grant(anyone(), Action.READ, "ws/**"),
    ]))


def build_marketplace():
    deployment = ThirdPartyDeployment(open_evaluator())
    agency = DiscoveryAgencyActor("discovery", deployment)
    provider_key = deployment.register_provider("weatherco", key_seed=51)
    entity = make_business("WeatherCo").with_service(
        make_service("forecast service", category="weather",
                     access_point="weather"))
    deployment.publish("weatherco", entity)
    # Populate with background businesses too.
    for business in generate_businesses(5, seed=52):
        provider = f"provider-{business.business_key}"
        deployment.register_provider(provider)
        deployment.publish(provider, business)
    return deployment, agency, entity, provider_key


class TestDiscoveryAndInvocation:
    def test_discover_verify_invoke(self):
        deployment, agency, entity, provider_key = build_marketplace()
        bus = MessageBus()
        requestor = ServiceRequestor("alice", bus, key_seed=53)
        provider = ServiceProvider(
            "weather", describe("Weather",
                                forecast=(("city",), ("temp",))),
            bus, key_seed=54, require_signatures=True)
        provider.implement("forecast",
                           lambda s, p: {"temp": f"{p['city']}:21C"})
        provider.trust_requestor("alice", requestor.public_key)
        requestor.trust_provider("weather", provider.public_key)

        rows = requestor.discover(agency, ALICE,
                                  name_pattern="forecast*",
                                  category="weather")
        assert len(rows) == 1
        answer = requestor.verified_service_detail(
            agency, ALICE, rows[0].service_key, "weatherco")
        access_points = [n.text for n in answer.view.iter()
                         if n.tag == "accessPoint"]
        assert access_points == ["weather"]

        output = requestor.invoke(access_points[0], "forecast",
                                  {"city": "Como"}, sign_request=True)
        assert output["temp"] == "Como:21C"

    def test_compromised_agency_cannot_redirect_silently(self):
        deployment, agency, entity, provider_key = build_marketplace()
        deployment.compromise()
        with pytest.raises(AuthenticationError):
            ServiceRequestor(
                "alice", MessageBus(), key_seed=55
            ).verified_service_detail(
                agency, ALICE, entity.services[0].service_key,
                "weatherco")


class TestP3PGate:
    def modest(self) -> P3PPolicy:
        return P3PPolicy("weatherco", (
            statement([DataCategory.LOCATION], [Purpose.CURRENT],
                      [Recipient.OURS], Retention.NO_RETENTION),))

    def invasive(self) -> P3PPolicy:
        return P3PPolicy("tracker", (
            statement([DataCategory.LOCATION],
                      [Purpose.INDIVIDUAL_ANALYSIS],
                      [Recipient.UNRELATED], Retention.INDEFINITELY),))

    def test_consumer_gates_on_p3p(self):
        # Profile 3 covers every category including LOCATION: the modest
        # weather policy (current purpose, no retention, access offered)
        # passes; the tracker does not.
        strict = strictness_profile(3)
        assert match(self.modest(), strict).acceptable
        assert not match(self.invasive(), strict).acceptable

    def test_modest_policy_passes_lenient_consumer(self):
        assert match(self.modest(), strictness_profile(1))
