"""Integration: the privacy pipeline end to end.

Patients table → privacy + inference controllers stop a linkage attack,
while the analyst still mines useful aggregates from randomized data —
the §3.3 "national security AND privacy" resolution.
"""

import numpy as np
import pytest

from repro.core.errors import InferenceViolation
from repro.datagen.tabular import (
    load_patients,
    market_baskets,
    numeric_column,
)
from repro.privacy.association import apriori, itemset_f1, mine_randomized
from repro.privacy.constraints import PrivacyConstraintSet, PrivacyLevel
from repro.privacy.controller import PrivacyController
from repro.privacy.inference import InferenceController
from repro.privacy.multiparty import (
    centralized_apriori,
    distributed_apriori,
    partition_transactions,
)
from repro.privacy.ppdm import (
    NoiseModel,
    histogram_distance,
    randomize,
    reconstruct_distribution,
    true_distribution,
)
from repro.relational.authorization import Privilege
from repro.relational.database import Database


def build_controllers():
    database = Database()
    load_patients(database, 200, seed=21)
    database.authorization.grant("dba", "analyst", "patients",
                                 Privilege.SELECT)
    constraints = PrivacyConstraintSet()
    constraints.protect("patients", "name", PrivacyLevel.SEMI_PRIVATE)
    constraints.protect_together(
        "patients", ["name", "diagnosis"], PrivacyLevel.PRIVATE,
        name="identity-diagnosis")
    constraints.protect_together(
        "patients", ["zip", "age", "diagnosis"],
        PrivacyLevel.PRIVATE, name="quasi-identifier-linkage")
    controller = PrivacyController(database, constraints,
                                   need_to_know={"doctor"})
    return InferenceController(controller)


class TestLinkageAttackBlocked:
    def test_analyst_sees_redacted_names_not_violation(self):
        # The privacy controller already redacts SEMI_PRIVATE names for
        # the analyst, so the association never completes: the query is
        # answered safely rather than refused.
        inference = build_controllers()
        result = inference.select("analyst", "patients",
                                  ["name", "diagnosis"])
        assert set(result.column("name")) == {None}

    def test_direct_identity_diagnosis_refused_for_need_to_know(self):
        # A doctor *can* see names (need-to-know), so the joint release
        # would complete the PRIVATE association — refused.
        inference = build_controllers()
        inference.controller.database.authorization.grant(
            "dba", "doctor", "patients", Privilege.SELECT)
        with pytest.raises(InferenceViolation):
            inference.select("doctor", "patients",
                             ["name", "diagnosis"])

    def test_quasi_identifier_attack_blocked_across_queries(self):
        inference = build_controllers()
        inference.select("analyst", "patients", ["id", "zip", "age"])
        with pytest.raises(InferenceViolation):
            inference.select("analyst", "patients",
                             ["id", "diagnosis"])

    def test_aggregate_statistics_still_flow(self):
        inference = build_controllers()
        result = inference.select("analyst", "patients",
                                  ["age", "salary"])
        ages = [row[0] for row in result]
        assert len(ages) == 200
        assert 18 <= sum(ages) / len(ages) <= 95


class TestMiningUtilitySurvives:
    def test_reconstruction_recovers_bimodal_shape(self):
        ages = numeric_column(3000, seed=22)
        noise = NoiseModel("uniform", 20.0)
        released = randomize(ages, noise, seed=23)
        bins = np.linspace(15, 100, 18)
        estimated = reconstruct_distribution(released, noise, bins)
        actual = true_distribution(ages, bins)
        assert histogram_distance(estimated, actual) < 0.15
        # The two age modes are both visible in the reconstruction.
        centers = (bins[:-1] + bins[1:]) / 2
        young_mass = estimated[centers < 50].sum()
        assert 0.35 < young_mass < 0.85

    def test_randomized_basket_mining_finds_planted_patterns(self):
        baskets = market_baskets(800, seed=24)
        items = sorted({i for b in baskets for i in b})
        truth = apriori(baskets, 0.15, max_size=2)
        mined = mine_randomized(baskets, items, 0.95, 0.15,
                                max_size=2, seed=25)
        assert itemset_f1(mined.keys(), truth.keys()) > 0.6
        assert frozenset({"bread", "milk"}) in mined

    def test_multiparty_mining_without_pooling(self):
        baskets = market_baskets(600, seed=26)
        parties = partition_transactions(baskets, 4, seed=27)
        outcome = distributed_apriori(parties, 0.15, seed=28)
        assert outcome.frequent == centralized_apriori(parties, 0.15)
        assert frozenset({"bread", "milk"}) in outcome.frequent
