"""Integration: the hospital scenario end to end.

Hospital corpus → Author-X policies → views, dissemination and
third-party publishing all agree on who sees what; tampering anywhere
is detected.
"""

from repro.core.credentials import anyone, attribute_equals, has_role
from repro.core.subjects import Role, Subject
from repro.crypto.keys import KeyStore
from repro.datagen.documents import hospital_corpus
from repro.datagen.population import named_cast
from repro.pubsub import MaliciousPublisher, Owner, Publisher, SubjectVerifier
from repro.xmldb.serializer import serialize
from repro.xmldb.xpath import select_elements
from repro.xmlsec.authorx import XmlPolicyBase, xml_deny, xml_grant
from repro.xmlsec.dissemination import Disseminator, open_packet
from repro.xmlsec.views import compute_view

CAST = named_cast()


def hospital_policy_base() -> XmlPolicyBase:
    return XmlPolicyBase([
        # Doctors see whole records; oncology physicians additionally
        # prove their department by credential.
        xml_grant(has_role("doctor"), "/hospital"),
        # Nobody sees SSNs.
        xml_deny(anyone(), "//ssn"),
        # Nurses see names and treatments.
        xml_grant(has_role("nurse"), "//record/name"),
        xml_grant(has_role("nurse"), "//record/treatment"),
        # Researchers see diagnoses only (de-identified view).
        xml_grant(has_role("researcher"), "//record/diagnosis"),
        # Oncology physicians see oncology billing.
        xml_grant(attribute_equals("physician", "department",
                                   "oncology"),
                  "//record[department='oncology']/billing"),
    ])


DOC = hospital_corpus(12, seed=42)
BASE = hospital_policy_base()


class TestViewsAcrossSubjects:
    def test_doctor_never_sees_ssn(self):
        view, _ = compute_view(BASE, CAST.doctor, "h", DOC)
        ssns = {n.text for n in DOC.iter() if n.tag == "ssn"}
        text = serialize(view)
        assert not any(ssn in text for ssn in ssns)

    def test_researcher_sees_diagnoses_but_no_names(self):
        view, _ = compute_view(BASE, CAST.researcher, "h", DOC)
        text = serialize(view)
        names = {n.text for n in DOC.iter() if n.tag == "name"}
        diagnoses = {n.text for n in DOC.iter() if n.tag == "diagnosis"}
        assert not any(name in text for name in names)
        assert any(diagnosis in text for diagnosis in diagnoses)

    def test_stranger_sees_nothing(self):
        view, _ = compute_view(BASE, CAST.stranger, "h", DOC)
        assert view is None

    def test_oncology_credential_unlocks_billing(self):
        view, _ = compute_view(BASE, CAST.doctor, "h", DOC)
        text = serialize(view)
        oncology_amounts = [
            n.find("amount").text
            for n in select_elements(
                "//record[department='oncology']/billing", DOC)]
        if oncology_amounts:
            assert any(amount in text for amount in oncology_amounts)


class TestDisseminationAgreesWithViews:
    def test_received_texts_equal_view_texts(self):
        disseminator = Disseminator(BASE)
        packet = disseminator.package("h", DOC)
        subjects = {"dr-grey": CAST.doctor, "nurse-joy": CAST.nurse,
                    "prof-oak": CAST.researcher}
        distributor = disseminator.distributor(subjects)
        for name, subject in subjects.items():
            store = KeyStore(f"rx-{name}")
            for key in distributor.grant(name).keys:
                store.import_key(key)
            received = open_packet(packet, store)
            view, _ = compute_view(BASE, subject, "h", DOC)
            view_texts = sorted(n.text for n in view.iter() if n.text)
            got_texts = sorted(n.text for n in received.iter()
                               if n.text)
            assert got_texts == view_texts, name

    def test_key_count_far_below_subject_count(self):
        disseminator = Disseminator(BASE)
        disseminator.package("h", DOC)
        population = 1000  # any number of subjects reuse the same keys
        assert disseminator.key_count() < 20 < population


class TestThirdPartyPublishing:
    def test_every_cast_member_verifies_honest_answers(self):
        owner = Owner("hospital", BASE, key_seed=77)
        owner.add_document("h", DOC)
        publisher = Publisher()
        owner.publish_to(publisher)
        for subject in (CAST.doctor, CAST.nurse, CAST.researcher,
                        CAST.stranger):
            answer = publisher.request(subject, "h")
            report = SubjectVerifier(
                subject, owner.public_key, BASE).verify(answer)
            assert report.ok, subject.identity.name

    def test_all_attacks_detected_for_all_subjects(self):
        owner = Owner("hospital", BASE, key_seed=78)
        owner.add_document("h", DOC)
        owner.add_document("h2", hospital_corpus(3, seed=43))
        for mode in ("tamper", "omit", "swap"):
            publisher = MaliciousPublisher(mode)
            owner.publish_to(publisher)
            answer = publisher.request(CAST.doctor, "h")
            report = SubjectVerifier(
                CAST.doctor, owner.public_key, BASE).verify(answer)
            assert not report.ok, mode
