"""Tests for two-party vs third-party registry deployments."""

import pytest

from repro.core.credentials import anyone, has_role
from repro.core.errors import AccessDenied, AuthenticationError
from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import Action, PolicyBase, deny, grant
from repro.core.subjects import Role, Subject
from repro.uddi.architectures import (
    ThirdPartyDeployment,
    TwoPartyDeployment,
)
from repro.uddi.model import make_business, make_service
from repro.uddi.registry import UddiRegistry
from repro.uddi.secure import verify_authenticated_answer

PARTNER = Subject("pat", roles={Role("partner")})
STRANGER = Subject("sam")


def premium_entity():
    entity = make_business("Acme")
    entity = entity.with_service(make_service(
        "public lookup", category="catalog", access_point="http://a/p"))
    entity = entity.with_service(make_service(
        "partner feed", category="premium", access_point="http://a/x"))
    return entity


def evaluator_for(entity, registry_name):
    premium_key = entity.services[1].service_key
    return PolicyEvaluator(PolicyBase([
        grant(anyone(), Action.WRITE, "uddi/**"),
        grant(anyone(), Action.READ, "uddi/**"),
        deny(~has_role("partner"), Action.READ,
             f"uddi/{registry_name}/{entity.business_key}/{premium_key}"),
    ]))


class TestTwoParty:
    def make(self):
        entity = premium_entity()
        deployment = TwoPartyDeployment(
            "acme", UddiRegistry("own"), evaluator_for(entity, "own"))
        deployment.publish(Subject("acme"), entity)
        return deployment, entity

    def test_browse_respects_policies(self):
        deployment, _entity = self.make()
        assert len(deployment.find_service(PARTNER)) == 2
        assert len(deployment.find_service(STRANGER)) == 1

    def test_denials_counted(self):
        deployment, entity = self.make()
        with pytest.raises(AccessDenied):
            deployment.get_service_detail(
                STRANGER, entity.services[1].service_key)
        assert deployment.stats.denials == 1


class TestThirdPartyHonest:
    def make(self):
        entity = premium_entity()
        deployment = ThirdPartyDeployment(
            evaluator_for(entity, "third-party"))
        key = deployment.register_provider("acme", key_seed=21)
        deployment.publish("acme", entity)
        return deployment, entity, key

    def test_browse_enforced_when_honest(self):
        deployment, _entity, _key = self.make()
        assert len(deployment.find_service(STRANGER)) == 1
        assert deployment.stats.leaked_rows == 0

    def test_detail_answers_verify(self):
        deployment, entity, key = self.make()
        answer = deployment.get_service_detail(
            PARTNER, entity.services[0].service_key)
        verify_authenticated_answer(answer, key)

    def test_honest_agency_still_denies(self):
        deployment, entity, _key = self.make()
        with pytest.raises(AccessDenied):
            deployment.get_service_detail(
                STRANGER, entity.services[1].service_key)


class TestThirdPartyCompromised:
    def make(self):
        entity = premium_entity()
        deployment = ThirdPartyDeployment(
            evaluator_for(entity, "third-party"))
        key = deployment.register_provider("acme", key_seed=22)
        deployment.publish("acme", entity)
        deployment.compromise()
        return deployment, entity, key

    def test_confidentiality_lost(self):
        deployment, _entity, _key = self.make()
        rows = deployment.find_service(STRANGER)
        assert len(rows) == 2           # the premium row leaks
        assert deployment.stats.leaked_rows == 1

    def test_tampering_detected_by_requestor(self):
        deployment, entity, key = self.make()
        answer = deployment.get_service_detail(
            STRANGER, entity.services[0].service_key)
        with pytest.raises(AuthenticationError):
            verify_authenticated_answer(answer, key)
        assert deployment.stats.tampered_answers == 1

    def test_integrity_survives_compromise_via_merkle(self):
        # The point of [4]: even with a compromised agency, a requestor
        # never *accepts* a forged answer.
        deployment, entity, key = self.make()
        accepted_forgeries = 0
        for service in entity.services:
            answer = deployment.get_service_detail(
                STRANGER, service.service_key)
            try:
                verify_authenticated_answer(answer, key)
                accepted_forgeries += 1
            except AuthenticationError:
                pass
        assert accepted_forgeries == 0
