"""Tests for UDDI v3 per-element signing (§4.1)."""

from repro.crypto.rsa import generate_keypair
from repro.uddi.model import make_business, make_service
from repro.uddi.secure import sign_entry_elements, verify_entry_element

KEYS = generate_keypair(bits=256, seed=71)
OTHER = generate_keypair(bits=256, seed=72)


def entity():
    business = make_business("Acme")
    business = business.with_service(make_service(
        "lookup", category="catalog", access_point="http://a/1"))
    business = business.with_service(make_service(
        "feed", category="premium", access_point="http://a/2"))
    return business


class TestElementSigning:
    def test_each_service_verifies(self):
        business = entity()
        manifest = sign_entry_elements(business, "acme", KEYS.private)
        assert len(manifest.references) == 2
        element = business.to_element()
        for service in element.find("businessServices").element_children:
            assert verify_entry_element(manifest, service, KEYS.public)

    def test_tampered_service_fails(self):
        business = entity()
        manifest = sign_entry_elements(business, "acme", KEYS.private)
        element = business.to_element()
        service = element.find("businessServices").element_children[0]
        service.find("name").set_text("forged")
        assert not verify_entry_element(manifest, service, KEYS.public)

    def test_wrong_key_fails(self):
        business = entity()
        manifest = sign_entry_elements(business, "acme", KEYS.private)
        element = business.to_element()
        service = element.find("businessServices").element_children[0]
        assert not verify_entry_element(manifest, service, OTHER.public)

    def test_third_party_limitation(self):
        """The §4.1 point: element signatures cannot authenticate a
        *recombined* answer — moving a signed service under a different
        entry still verifies, which the Merkle scheme would catch."""
        business_a = entity()
        manifest = sign_entry_elements(business_a, "acme", KEYS.private)
        element_a = business_a.to_element()
        service = element_a.find("businessServices").element_children[0]
        # A malicious agency presents Acme's signed service as part of a
        # different (unsigned) entry: the per-element check still passes
        # because it sees only the element.
        assert verify_entry_element(manifest, service, KEYS.public)
        # The Merkle entry signature, by contrast, binds the service to
        # its entry: a view of another entry cannot reproduce it.
        from repro.merkle.xml_merkle import merkle_hash
        business_b = entity()
        assert merkle_hash(business_a.to_element()) != \
            merkle_hash(business_b.to_element())
