"""Tests for the UDDI data structures and registry inquiries."""

import pytest

from repro.core.errors import RegistryError
from repro.uddi.model import (
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    PublisherAssertion,
    TModel,
    fresh_key,
    make_business,
    make_service,
)
from repro.uddi.registry import UddiRegistry


def acme() -> BusinessEntity:
    service = make_service("Widget lookup", category="catalog",
                           access_point="http://acme/ws")
    return make_business("Acme", "widgets").with_service(service)


class TestModel:
    def test_fresh_keys_unique(self):
        assert fresh_key("biz") != fresh_key("biz")

    def test_with_service_appends(self):
        entity = acme()
        more = entity.with_service(make_service("Other"))
        assert len(more.services) == 2
        assert len(entity.services) == 1  # frozen original untouched

    def test_service_lookup(self):
        entity = acme()
        key = entity.services[0].service_key
        assert entity.service(key).name == "Widget lookup"
        with pytest.raises(RegistryError):
            entity.service("uddi:svc:missing")

    def test_to_element_structure(self):
        element = acme().to_element()
        assert element.tag == "businessEntity"
        services = element.find("businessServices")
        assert services.element_children[0].tag == "businessService"

    def test_tmodel_element(self):
        tmodel = TModel("uddi:tm:1", "SOAP binding")
        assert tmodel.to_element().attributes["tModelKey"] == "uddi:tm:1"


class TestPublish:
    def test_save_and_ownership(self):
        registry = UddiRegistry()
        entity = acme()
        registry.save_business(entity, publisher="acme-inc")
        assert registry.owner_of(entity.business_key) == "acme-inc"

    def test_update_by_owner_allowed(self):
        registry = UddiRegistry()
        entity = acme()
        registry.save_business(entity, "acme-inc")
        registry.save_business(entity.with_service(make_service("S2")),
                               "acme-inc")
        detail = registry.get_business_detail(entity.business_key)
        assert len(detail.services) == 2

    def test_update_by_other_rejected(self):
        registry = UddiRegistry()
        entity = acme()
        registry.save_business(entity, "acme-inc")
        with pytest.raises(RegistryError):
            registry.save_business(entity, "mallory-corp")

    def test_delete(self):
        registry = UddiRegistry()
        entity = acme()
        registry.save_business(entity, "acme-inc")
        registry.delete_business(entity.business_key, "acme-inc")
        assert len(registry) == 0
        with pytest.raises(RegistryError):
            registry.delete_business(entity.business_key, "acme-inc")


class TestDrillDown:
    def setup_method(self):
        self.registry = UddiRegistry()
        self.entity = acme()
        self.registry.save_business(self.entity, "acme-inc")

    def test_get_business_detail(self):
        detail = self.registry.get_business_detail(
            self.entity.business_key)
        assert detail.name == "Acme"

    def test_get_service_detail(self):
        key = self.entity.services[0].service_key
        assert self.registry.get_service_detail(key).category == "catalog"

    def test_get_binding_detail(self):
        binding = self.entity.services[0].bindings[0]
        found = self.registry.get_binding_detail(binding.binding_key)
        assert found.access_point == "http://acme/ws"

    def test_get_tmodel_detail(self):
        self.registry.save_tmodel(TModel("uddi:tm:9", "X"), "acme-inc")
        assert self.registry.get_tmodel_detail("uddi:tm:9").name == "X"

    @pytest.mark.parametrize("method,key", [
        ("get_business_detail", "uddi:biz:none"),
        ("get_service_detail", "uddi:svc:none"),
        ("get_binding_detail", "uddi:bind:none"),
        ("get_tmodel_detail", "uddi:tm:none"),
    ])
    def test_unknown_keys_raise(self, method, key):
        with pytest.raises(RegistryError):
            getattr(self.registry, method)(key)


class TestBrowse:
    def setup_method(self):
        self.registry = UddiRegistry()
        self.acme = acme()
        self.registry.save_business(self.acme, "acme-inc")
        globex = make_business("Globex").with_service(
            make_service("Payments gateway", category="payments"))
        self.globex = globex
        self.registry.save_business(globex, "globex-inc")

    def test_find_business_pattern(self):
        assert len(self.registry.find_business("*")) == 2
        rows = self.registry.find_business("acme*")
        assert [r.name for r in rows] == ["Acme"]

    def test_find_business_is_overview_not_detail(self):
        row = self.registry.find_business("acme*")[0]
        assert row.service_count == 1
        assert not hasattr(row, "services")

    def test_find_service_by_category(self):
        rows = self.registry.find_service(category="payments")
        assert [r.service_name for r in rows] == ["Payments gateway"]

    def test_find_service_by_name(self):
        rows = self.registry.find_service("widget*")
        assert len(rows) == 1

    def test_inquiry_counter(self):
        before = self.registry.inquiry_count
        self.registry.find_business()
        self.registry.find_service()
        assert self.registry.inquiry_count == before + 2


class TestAssertions:
    def test_one_sided_assertion_invisible(self):
        registry = UddiRegistry()
        a, b = acme(), make_business("Globex")
        registry.save_business(a, "pa")
        registry.save_business(b, "pb")
        registry.add_assertion(PublisherAssertion(
            a.business_key, b.business_key, "partner"), "pa")
        assert registry.find_related_businesses(a.business_key) == []

    def test_mutual_assertion_visible(self):
        registry = UddiRegistry()
        a, b = acme(), make_business("Globex")
        registry.save_business(a, "pa")
        registry.save_business(b, "pb")
        registry.add_assertion(PublisherAssertion(
            a.business_key, b.business_key, "partner"), "pa")
        registry.add_assertion(PublisherAssertion(
            b.business_key, a.business_key, "partner"), "pb")
        assert registry.find_related_businesses(a.business_key) == [
            b.business_key]

    def test_assertion_must_come_from_owner(self):
        registry = UddiRegistry()
        a, b = acme(), make_business("Globex")
        registry.save_business(a, "pa")
        registry.save_business(b, "pb")
        with pytest.raises(RegistryError):
            registry.add_assertion(PublisherAssertion(
                a.business_key, b.business_key, "partner"), "pb")
