"""Tests for the three secure-UDDI mechanisms."""

import pytest

from repro.core.credentials import anyone, has_role
from repro.core.errors import AccessDenied, AuthenticationError
from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import Action, PolicyBase, deny, grant
from repro.core.subjects import Role, Subject
from repro.crypto.keys import KeyStore
from repro.crypto.rsa import generate_keypair
from repro.uddi.model import make_business, make_service
from repro.uddi.registry import UddiRegistry
from repro.uddi.secure import (
    AccessControlledRegistry,
    AuthenticatedRegistry,
    EncryptedRegistry,
    sign_entry,
    verify_authenticated_answer,
)

PARTNER = Subject("pat", roles={Role("partner")})
STRANGER = Subject("sam")


def build_entity():
    entity = make_business("Acme", "widgets")
    entity = entity.with_service(make_service(
        "public lookup", category="catalog",
        access_point="http://acme/public"))
    entity = entity.with_service(make_service(
        "partner feed", category="premium",
        access_point="http://acme/premium"))
    return entity


class TestAccessControlled:
    def make(self):
        registry = UddiRegistry("reg")
        entity = build_entity()
        premium_key = entity.services[1].service_key
        evaluator = PolicyEvaluator(PolicyBase([
            grant(anyone(), Action.WRITE, "uddi/**"),
            grant(anyone(), Action.READ, "uddi/**"),
            deny(~has_role("partner"), Action.READ,
                 f"uddi/reg/{entity.business_key}/{premium_key}"),
        ]))
        controlled = AccessControlledRegistry(registry, evaluator)
        controlled.save_business(Subject("acme-inc"), entity)
        return controlled, entity, premium_key

    def test_browse_filters_rows_per_subject(self):
        controlled, _entity, _premium = self.make()
        assert len(controlled.find_service(PARTNER)) == 2
        assert len(controlled.find_service(STRANGER)) == 1

    def test_drill_down_enforced(self):
        controlled, _entity, premium_key = self.make()
        assert controlled.get_service_detail(PARTNER, premium_key)
        with pytest.raises(AccessDenied):
            controlled.get_service_detail(STRANGER, premium_key)

    def test_write_enforced(self):
        registry = UddiRegistry("reg")
        evaluator = PolicyEvaluator(PolicyBase([]))  # closed world
        controlled = AccessControlledRegistry(registry, evaluator)
        with pytest.raises(AccessDenied):
            controlled.save_business(STRANGER, build_entity())


class TestAuthenticated:
    def make(self):
        keys = generate_keypair(bits=256, seed=11)
        entity = build_entity()
        signature = sign_entry(entity, "acme", keys.private)
        authenticated = AuthenticatedRegistry(UddiRegistry())
        authenticated.publish(entity, signature, "acme")
        return authenticated, entity, keys

    def test_full_entry_verifies(self):
        authenticated, entity, keys = self.make()
        answer = authenticated.get_business_detail(entity.business_key)
        verify_authenticated_answer(answer, keys.public)
        assert answer.proof_hash_count() == 0

    def test_partial_answer_verifies_with_fillers(self):
        authenticated, entity, keys = self.make()
        answer = authenticated.get_service_detail(
            entity.services[0].service_key)
        verify_authenticated_answer(answer, keys.public)
        assert answer.proof_hash_count() > 0
        # the premium service's content never appears in the view
        from repro.xmldb.serializer import serialize_element
        assert "premium" not in serialize_element(answer.view)

    def test_tampered_answer_detected(self):
        authenticated, entity, keys = self.make()
        authenticated.tamper_with_answers = True
        answer = authenticated.get_service_detail(
            entity.services[0].service_key)
        with pytest.raises(AuthenticationError):
            verify_authenticated_answer(answer, keys.public)

    def test_wrong_provider_key_detected(self):
        authenticated, entity, _keys = self.make()
        other = generate_keypair(bits=256, seed=12)
        answer = authenticated.get_business_detail(entity.business_key)
        with pytest.raises(AuthenticationError):
            verify_authenticated_answer(answer, other.public)

    def test_signature_entry_binding_enforced(self):
        keys = generate_keypair(bits=256, seed=13)
        entity = build_entity()
        other_entity = build_entity()
        signature = sign_entry(other_entity, "acme", keys.private)
        authenticated = AuthenticatedRegistry(UddiRegistry())
        from repro.core.errors import RegistryError
        with pytest.raises(RegistryError):
            authenticated.publish(entity, signature, "acme")


class TestEncrypted:
    def make(self):
        provider_keys = KeyStore("acme-secrets")
        provider_keys.create("entry-key")
        entity = build_entity()
        entry = EncryptedRegistry.encrypt_entry(
            entity, provider_keys, "entry-key", index_key="acme-index")
        registry = EncryptedRegistry()
        registry.publish(entry)
        return registry, entity, provider_keys

    def test_blob_hides_content(self):
        registry, _entity, _keys = self.make()
        blob = registry.all_entries()[0].blob
        assert b"premium" not in blob.body
        assert b"Acme" not in blob.body

    def test_blind_search_finds_by_token(self):
        registry, _entity, _keys = self.make()
        token = EncryptedRegistry.search_token("acme-index", "category",
                                               "premium")
        assert len(registry.find_by_token(token)) == 1
        wrong = EncryptedRegistry.search_token("acme-index", "category",
                                               "nonexistent")
        assert registry.find_by_token(wrong) == []

    def test_token_requires_index_key(self):
        registry, _entity, _keys = self.make()
        forged = EncryptedRegistry.search_token("wrong-index",
                                                "category", "premium")
        assert registry.find_by_token(forged) == []

    def test_decrypt_roundtrip(self):
        registry, entity, keys = self.make()
        restored = EncryptedRegistry.decrypt_entry(
            registry.all_entries()[0], keys)
        assert restored.business_key == entity.business_key
        assert [s.name for s in restored.services] == [
            s.name for s in entity.services]
        assert restored.services[0].bindings[0].access_point == \
            entity.services[0].bindings[0].access_point

    def test_unindexed_field_rejected(self):
        from repro.core.errors import RegistryError
        with pytest.raises(RegistryError):
            EncryptedRegistry.search_token("i", "ssn", "x")
