"""Tests for the five W3C WSA privacy requirements audit."""

from repro.p3p.policy import (
    DataCategory,
    P3PPolicy,
    Purpose,
    Recipient,
    Retention,
    statement,
)
from repro.p3p.wsa_requirements import (
    ServiceRegistration,
    WsaPrivacyAudit,
)


def good_policy(entity: str) -> P3PPolicy:
    return P3PPolicy(entity, (
        statement([DataCategory.ONLINE], [Purpose.CURRENT],
                  [Recipient.OURS], Retention.STATED_PURPOSE),))


def compliant_services() -> list[ServiceRegistration]:
    return [
        ServiceRegistration("shop", good_policy("shop"),
                            delegates_to=("shipper",),
                            delegated_categories=(DataCategory.ONLINE,)),
        ServiceRegistration("shipper", good_policy("shipper")),
    ]


class TestCompliantDeployment:
    def test_all_requirements_pass(self):
        report = WsaPrivacyAudit(compliant_services()).run()
        assert report.compliant
        assert len(report.results) == 5
        assert report.failed() == []


class TestR1R2R3:
    def test_missing_policy_fails_r1(self):
        services = [ServiceRegistration("naked", None)]
        report = WsaPrivacyAudit(services).run()
        failed = {r.requirement.split(":")[0] for r in report.failed()}
        assert "R1" in failed

    def test_baseline_violation_fails_r2(self):
        bad = P3PPolicy("leaky", (
            statement([DataCategory.ONLINE], [Purpose.TELEMARKETING],
                      [Recipient.UNRELATED], Retention.INDEFINITELY),))
        report = WsaPrivacyAudit(
            [ServiceRegistration("leaky", bad)]).run()
        failed = {r.requirement.split(":")[0] for r in report.failed()}
        assert "R2" in failed

    def test_hidden_policy_fails_r3(self):
        services = [ServiceRegistration(
            "secretive", good_policy("secretive"),
            policy_retrievable=False)]
        report = WsaPrivacyAudit(services).run()
        failed = {r.requirement.split(":")[0] for r in report.failed()}
        assert "R3" in failed


class TestR4:
    def test_broadening_delegation_fails(self):
        broad = P3PPolicy("partner", (
            statement([DataCategory.ONLINE],
                      [Purpose.CURRENT, Purpose.TELEMARKETING],
                      [Recipient.OURS, Recipient.UNRELATED],
                      Retention.INDEFINITELY),))
        services = [
            ServiceRegistration("shop", good_policy("shop"),
                                delegates_to=("partner",),
                                delegated_categories=(
                                    DataCategory.ONLINE,)),
            ServiceRegistration("partner", broad),
        ]
        report = WsaPrivacyAudit(services).run()
        failed = {r.requirement.split(":")[0] for r in report.failed()}
        assert "R4" in failed

    def test_delegation_to_policyless_target_fails(self):
        services = [
            ServiceRegistration("shop", good_policy("shop"),
                                delegates_to=("ghost",),
                                delegated_categories=(
                                    DataCategory.ONLINE,)),
        ]
        report = WsaPrivacyAudit(services).run()
        r4 = [r for r in report.failed()
              if r.requirement.startswith("R4")]
        assert r4 and "no policy" in r4[0].details[0]


class TestR5:
    def test_forced_identification_fails(self):
        services = [ServiceRegistration(
            "id-wall", good_policy("id-wall"),
            supports_anonymous=False)]
        report = WsaPrivacyAudit(services).run()
        failed = {r.requirement.split(":")[0] for r in report.failed()}
        assert "R5" in failed
