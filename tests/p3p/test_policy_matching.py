"""Tests for P3P policies, preferences and matching."""

from repro.p3p.matching import (
    chain_acceptable,
    match,
    propagation_violations,
    statement_at_most,
)
from repro.p3p.policy import (
    DataCategory,
    P3PPolicy,
    Purpose,
    Recipient,
    Retention,
    statement,
)
from repro.p3p.preferences import (
    PreferenceSet,
    rule,
    strictness_profile,
)


def modest_policy(entity="shop") -> P3PPolicy:
    return P3PPolicy(entity, (
        statement([DataCategory.PHYSICAL, DataCategory.ONLINE],
                  [Purpose.CURRENT],
                  [Recipient.OURS, Recipient.DELIVERY],
                  Retention.STATED_PURPOSE),
        statement([DataCategory.PURCHASE],
                  [Purpose.CURRENT, Purpose.ADMIN],
                  [Recipient.OURS],
                  Retention.STATED_PURPOSE),
    ))


def invasive_policy(entity="adnet") -> P3PPolicy:
    return P3PPolicy(entity, (
        statement([DataCategory.ONLINE, DataCategory.NAVIGATION],
                  [Purpose.TELEMARKETING, Purpose.INDIVIDUAL_ANALYSIS],
                  [Recipient.UNRELATED, Recipient.PUBLIC],
                  Retention.INDEFINITELY),
    ))


class TestBaseline:
    def test_modest_policy_conforms(self):
        assert modest_policy().conforms_to_baseline()

    def test_invasive_policy_fails(self):
        violations = invasive_policy().baseline_violations()
        assert any("purposes" in v for v in violations)
        assert any("recipients" in v for v in violations)
        assert any("retention" in v for v in violations)

    def test_consent_excuses_purposes(self):
        policy = P3PPolicy("consented", (
            statement([DataCategory.ONLINE], [Purpose.TELEMARKETING],
                      [Recipient.OURS], Retention.STATED_PURPOSE,
                      consent_obtained=True),))
        assert policy.conforms_to_baseline()

    def test_legal_requirement_excuses_sharing(self):
        policy = P3PPolicy("legal", (
            statement([DataCategory.FINANCIAL], [Purpose.CURRENT],
                      [Recipient.PUBLIC], Retention.LEGAL_REQUIREMENT,
                      legally_required=True),))
        assert policy.conforms_to_baseline()


class TestMatching:
    def test_lenient_user_accepts_anything(self):
        preferences = strictness_profile(0)
        assert match(invasive_policy(), preferences)

    def test_strict_user_rejects_invasive(self):
        preferences = strictness_profile(3)
        result = match(invasive_policy(), preferences)
        assert not result
        assert result.mismatches

    def test_uncollected_categories_irrelevant(self):
        preferences = PreferenceSet("health-only", (
            rule(DataCategory.HEALTH, [Purpose.CURRENT]),),
            default_refuse=False)
        assert match(modest_policy(), preferences)

    def test_default_refuse_rejects_unmentioned(self):
        preferences = PreferenceSet("paranoid", (), default_refuse=True)
        result = match(modest_policy(), preferences)
        assert not result

    def test_purpose_violation_reported(self):
        preferences = PreferenceSet("narrow", (
            rule(DataCategory.PURCHASE, [Purpose.CURRENT]),),
            default_refuse=False)
        result = match(modest_policy(), preferences)
        assert any("purposes" in str(m) for m in result.mismatches)

    def test_retention_ceiling(self):
        preferences = PreferenceSet("short", (
            rule(DataCategory.ONLINE, list(Purpose),
                 recipients=list(Recipient),
                 max_retention=Retention.NO_RETENTION),),
            default_refuse=False)
        result = match(modest_policy(), preferences)
        assert any("retention" in str(m) for m in result.mismatches)

    def test_access_requirement(self):
        policy = P3PPolicy("no-access", modest_policy().statements,
                           access_offered=False)
        preferences = PreferenceSet("wants-access", (
            rule(DataCategory.PHYSICAL, [Purpose.CURRENT],
                 recipients=[Recipient.OURS, Recipient.DELIVERY],
                 require_access=True),),
            default_refuse=False)
        result = match(policy, preferences)
        assert any("access" in str(m) for m in result.mismatches)

    def test_strictness_profiles_monotone(self):
        acceptable = [bool(match(modest_policy(), strictness_profile(k)))
                      for k in range(4)]
        # Once a stricter profile rejects, stricter-still keeps rejecting.
        first_reject = acceptable.index(False) \
            if False in acceptable else len(acceptable)
        assert all(not a for a in acceptable[first_reject:])


class TestPropagation:
    def test_narrowing_delegate_ok(self):
        origin = statement([DataCategory.PURCHASE],
                           [Purpose.CURRENT, Purpose.ADMIN],
                           [Recipient.OURS, Recipient.DELIVERY],
                           Retention.BUSINESS_PRACTICES)
        delegate = statement([DataCategory.PURCHASE], [Purpose.CURRENT],
                             [Recipient.OURS], Retention.STATED_PURPOSE)
        assert statement_at_most(delegate, origin)
        assert not statement_at_most(origin, delegate)

    def test_chain_violation_detected(self):
        chain = [modest_policy("a"), invasive_policy("b")]
        problems = propagation_violations(chain, [DataCategory.ONLINE])
        assert problems

    def test_well_behaved_chain_passes(self):
        chain = [modest_policy("a"), modest_policy("b")]
        assert propagation_violations(chain, [DataCategory.ONLINE]) == []

    def test_category_appearing_downstream_flagged(self):
        upstream = P3PPolicy("u", (
            statement([DataCategory.PURCHASE], [Purpose.CURRENT]),))
        downstream = P3PPolicy("d", (
            statement([DataCategory.HEALTH], [Purpose.CURRENT]),))
        problems = propagation_violations(
            [upstream, downstream], [DataCategory.HEALTH])
        assert any("never collected" in p for p in problems)

    def test_chain_acceptable_combines_checks(self):
        preferences = strictness_profile(1)
        good = [modest_policy("a"), modest_policy("b")]
        bad = [modest_policy("a"), invasive_policy("b")]
        assert chain_acceptable(good, [DataCategory.ONLINE], preferences)
        assert not chain_acceptable(bad, [DataCategory.ONLINE],
                                    preferences)
