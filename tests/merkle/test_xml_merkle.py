"""Tests for Merkle hashing of XML trees and partial-view verification."""

from repro.merkle.xml_merkle import (
    FillerHashes,
    build_partial_view,
    content_hash,
    document_hash,
    is_pruned_marker,
    make_pruned_marker,
    merkle_hash,
    verify_view,
    view_hash,
)
from repro.xmldb.model import Document, Element
from repro.xmldb.parser import parse, parse_element

XML = """<hospital name="general">
  <record id="r1"><name>Alice</name><ssn>123</ssn></record>
  <record id="r2"><name>Bob</name><ssn>456</ssn></record>
</hospital>"""


class TestHashing:
    def test_deterministic(self):
        assert document_hash(parse(XML)) == document_hash(parse(XML))

    def test_any_text_change_changes_hash(self):
        changed = XML.replace("Alice", "Alicia")
        assert document_hash(parse(XML)) != document_hash(parse(changed))

    def test_any_attribute_change_changes_hash(self):
        changed = XML.replace('id="r1"', 'id="r9"')
        assert document_hash(parse(XML)) != document_hash(parse(changed))

    def test_child_order_matters(self):
        a = parse_element("<r><x/><y/></r>")
        b = parse_element("<r><y/><x/></r>")
        assert merkle_hash(a) != merkle_hash(b)

    def test_content_hash_ignores_children(self):
        a = parse_element('<r k="v">text<child/></r>')
        b = parse_element('<r k="v">text<other><deep/></other></r>')
        assert content_hash(a) == content_hash(b)


class TestMarkers:
    def test_marker_roundtrip(self):
        marker = make_pruned_marker("/a[1]/b[2]")
        assert is_pruned_marker(marker)
        assert marker.attributes["path"] == "/a[1]/b[2]"

    def test_ordinary_element_is_not_marker(self):
        assert not is_pruned_marker(Element("record"))


class TestPartialViews:
    def test_full_keep_reproduces_hash(self):
        document = parse(XML)
        view, fillers = build_partial_view(document.root, lambda n: True)
        assert len(fillers) == 0
        assert view_hash(view, fillers) == document_hash(document)

    def test_keep_one_subtree(self):
        document = parse(XML)
        view, fillers = build_partial_view(
            document.root,
            lambda n: n.attributes.get("id") == "r1")
        assert verify_view(view, fillers, document_hash(document))
        # r2 is pruned, the root is a stripped shell.
        assert any(is_pruned_marker(n) for n in view.iter())
        assert fillers.contents  # root had attributes -> content filler

    def test_keep_nothing_is_all_fillers(self):
        document = parse(XML)
        view, fillers = build_partial_view(document.root, lambda n: False)
        assert is_pruned_marker(view)
        assert view_hash(view, fillers) == document_hash(document)

    def test_tampered_view_text_fails(self):
        document = parse(XML)
        view, fillers = build_partial_view(
            document.root,
            lambda n: n.attributes.get("id") == "r1")
        for node in view.iter():
            if node.text == "Alice":
                node.set_text("Mallory")
        assert not verify_view(view, fillers, document_hash(document))

    def test_tampered_view_attribute_fails(self):
        document = parse(XML)
        view, fillers = build_partial_view(
            document.root,
            lambda n: n.attributes.get("id") == "r1")
        for node in view.iter():
            if node.attributes.get("id") == "r1":
                node.attributes["id"] = "r1-forged"
        assert not verify_view(view, fillers, document_hash(document))

    def test_dropped_subtree_without_marker_fails(self):
        document = parse(XML)
        view, fillers = build_partial_view(document.root, lambda n: True)
        record = view.find_all("record")[-1]
        view.remove(record)
        assert not verify_view(view, fillers, document_hash(document))

    def test_wrong_filler_fails(self):
        document = parse(XML)
        view, fillers = build_partial_view(
            document.root,
            lambda n: n.attributes.get("id") == "r1")
        forged = FillerHashes(
            {path: "00" * 32 for path in fillers.subtrees},
            dict(fillers.contents))
        assert not verify_view(view, forged, document_hash(document))

    def test_content_filler_only_used_when_stripped(self):
        # A node with visible content is hashed from what we see, so a
        # publisher cannot mask tampered content behind a filler.
        document = parse(XML)
        view, fillers = build_partial_view(document.root, lambda n: True)
        # Attach a (correct) content filler for the root, then tamper the
        # root's attribute: hashing must use the tampered visible value.
        root_filler = FillerHashes(
            dict(fillers.subtrees),
            {"/hospital[1]": content_hash(document.root)})
        view.attributes["name"] = "forged"
        assert not verify_view(view, root_filler,
                               document_hash(document))


class TestDocumentVsElement:
    def test_document_hash_is_root_merkle_hash(self):
        document = parse(XML)
        assert document_hash(document) == merkle_hash(document.root)
