"""Tests for the generic Merkle tree."""

import pytest

from repro.core.errors import ConfigurationError, IntegrityError
from repro.merkle.tree import (
    MerkleTree,
    hash_children,
    hash_leaf,
    verify_subset,
)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MerkleTree([])

    def test_single_leaf_root_is_leaf_hash(self):
        tree = MerkleTree(["only"])
        assert tree.root == hash_leaf("only")

    def test_two_leaves(self):
        tree = MerkleTree(["a", "b"])
        assert tree.root == hash_children(hash_leaf("a"), hash_leaf("b"))

    def test_root_depends_on_order(self):
        assert MerkleTree(["a", "b"]).root != MerkleTree(["b", "a"]).root

    def test_root_depends_on_content(self):
        assert MerkleTree(["a", "b"]).root != MerkleTree(["a", "c"]).root

    def test_bytes_and_str_leaves_agree(self):
        assert MerkleTree([b"a", b"b"]).root == MerkleTree(["a", "b"]).root

    def test_domain_separation(self):
        # An internal-node digest presented as a leaf must not verify.
        inner = hash_children(hash_leaf("a"), hash_leaf("b"))
        assert hash_leaf(inner) != inner


class TestProofs:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 33])
    def test_every_leaf_verifies(self, size):
        leaves = [f"leaf-{i}" for i in range(size)]
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            proof = tree.proof(index)
            assert proof.verify(leaf, tree.root), (size, index)

    @pytest.mark.parametrize("size", [2, 3, 5, 8, 13])
    def test_tampered_leaf_fails(self, size):
        leaves = [f"leaf-{i}" for i in range(size)]
        tree = MerkleTree(leaves)
        for index in range(size):
            assert not tree.proof(index).verify("tampered", tree.root)

    def test_proof_for_wrong_index_fails(self):
        leaves = ["a", "b", "c", "d"]
        tree = MerkleTree(leaves)
        proof = tree.proof(0)
        assert not proof.verify("b", tree.root)

    def test_out_of_range_rejected(self):
        tree = MerkleTree(["a"])
        with pytest.raises(ConfigurationError):
            tree.proof(1)
        with pytest.raises(ConfigurationError):
            tree.proof(-1)

    def test_proof_length_logarithmic(self):
        tree = MerkleTree([str(i) for i in range(64)])
        assert len(tree.proof(0)) == 6

    def test_verify_leaf_helper(self):
        leaves = ["x", "y", "z"]
        tree = MerkleTree(leaves)
        assert tree.verify_leaf(2, "z")
        assert not tree.verify_leaf(2, "w")


class TestSubsetVerification:
    def test_valid_subset(self):
        leaves = [f"entry-{i}" for i in range(10)]
        tree = MerkleTree(leaves)
        picked = [(2, leaves[2]), (5, leaves[5]), (9, leaves[9])]
        proofs = [tree.proof(i) for i, _ in picked]
        assert verify_subset(tree.root, picked, proofs)

    def test_tampered_member_fails(self):
        leaves = [f"entry-{i}" for i in range(10)]
        tree = MerkleTree(leaves)
        picked = [(2, "forged")]
        proofs = [tree.proof(2)]
        assert not verify_subset(tree.root, picked, proofs)

    def test_mismatched_index_raises(self):
        leaves = ["a", "b", "c"]
        tree = MerkleTree(leaves)
        with pytest.raises(IntegrityError):
            verify_subset(tree.root, [(1, "b")], [tree.proof(2)])
