"""CompiledPolicyEngine: byte-identical decisions, fresh by generation."""

from repro.core.audit import AuditLog
from repro.core.credentials import anyone, has_role
from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import Action, PolicyBase, deny, grant
from repro.analysis.probes import default_probe_subjects
from repro.compile import (
    CompiledPolicyEngine,
    compile_policy_base,
)


def fixture_policies():
    return [
        grant(has_role("doctor"), Action.READ, "records/**"),
        deny(anyone(), Action.READ, "records/billing/**"),
        grant(has_role("nurse"), Action.READ, "records/r*/vitals"),
        grant(has_role("doctor"), Action.WRITE, "records/*"),
        grant(anyone(), Action.READ, "notes/*",
              condition=lambda payload: payload is None
              or payload == "public"),
    ]


def fixture_requests(subjects):
    paths = ("records/r1", "records/billing/x", "records/r2/vitals",
             "notes/a", "other")
    return [(s, a, p, payload)
            for s in subjects
            for p in paths
            for a in (Action.READ, Action.WRITE)
            for payload in (None, "public", "secret")]


def test_decisions_identical_to_interpreter():
    policies = fixture_policies()
    engine = CompiledPolicyEngine(policies)
    oracle = PolicyEvaluator(PolicyBase(policies),
                             cache_decisions=False)
    for request in fixture_requests(default_probe_subjects()[:12]):
        assert engine.decide(*request) == oracle.decide(*request)


def test_decide_batch_matches_serial_and_audits_in_order():
    policies = fixture_policies()
    compiled_audit, serial_audit = AuditLog(), AuditLog()
    engine = CompiledPolicyEngine(policies, audit=compiled_audit)
    oracle = PolicyEvaluator(PolicyBase(policies), audit=serial_audit,
                             cache_decisions=False)
    requests = fixture_requests(default_probe_subjects()[:8])
    assert engine.decide_batch(requests) == \
        [oracle.decide(*r) for r in requests]
    compiled_rows = [(r.subject, r.action, r.resource, r.granted,
                      r.detail) for r in compiled_audit]
    serial_rows = [(r.subject, r.action, r.resource, r.granted,
                    r.detail) for r in serial_audit]
    assert compiled_rows == serial_rows


def test_recompiles_on_mutation_and_stays_correct():
    engine = CompiledPolicyEngine(fixture_policies())
    subject = default_probe_subjects()[0]
    first = engine.current()
    compilations = engine.stats.compilations
    extra = deny(anyone(), Action.READ, "records/r1")
    engine.add_policy(extra)
    decision = engine.decide(subject, Action.READ, "records/r1")
    assert engine.stats.compilations == compilations + 1
    assert not decision.granted
    assert engine.current() is not first
    engine.remove_policy(extra)
    oracle = PolicyEvaluator(engine.base, cache_decisions=False)
    assert engine.decide(subject, Action.READ, "records/r1") == \
        oracle.decide(subject, Action.READ, "records/r1")


def test_artifact_dropped_eagerly_by_invalidation_hook():
    engine = CompiledPolicyEngine(fixture_policies())
    engine.ensure_fresh()
    engine.base.add(deny(anyone(), Action.READ, "records/**"))
    # The hook fires on mutation even when the change bypasses the
    # engine's own writer API; current() must already recompile.
    artifact = engine.current()
    assert artifact.source_generation == engine.base.generation


def test_digest_is_deterministic_and_generation_sensitive():
    policies = fixture_policies()
    first = compile_policy_base(PolicyBase(policies))
    second = compile_policy_base(PolicyBase(policies))
    assert first.digest == second.digest
    base = PolicyBase(policies)
    base.add(grant(anyone(), Action.READ, "public/**"))
    assert compile_policy_base(base).digest != first.digest


def test_conditional_cells_are_not_memoized_per_payload():
    policies = fixture_policies()
    artifact = compile_policy_base(PolicyBase(policies))
    subject = default_probe_subjects()[0]
    granted = artifact.decide(subject, Action.READ, "notes/a",
                              "public")
    denied = artifact.decide(subject, Action.READ, "notes/a",
                             "secret")
    assert granted.granted and not denied.granted
    # Payload-free cell is memoized exactly once per (state, action,
    # profile) triple.
    cells = artifact.stats().cells_filled
    artifact.decide(subject, Action.READ, "notes/a")
    artifact.decide(subject, Action.READ, "notes/a")
    assert artifact.stats().cells_filled == cells + 1


def test_engine_duck_types_policy_base_surface():
    policies = fixture_policies()
    engine = CompiledPolicyEngine(policies)
    assert len(engine) == len(policies)
    assert sorted(p.policy_id for p in engine) == \
        sorted(p.policy_id for p in policies)
    base = PolicyBase(policies)
    assert [p.policy_id
            for p in engine.candidates(Action.READ, "records/r1")] == \
        [p.policy_id for p in base.candidates(Action.READ,
                                              "records/r1")]
    assert engine.generation == engine.base.generation


def test_stats_shape():
    artifact = compile_policy_base(PolicyBase(fixture_policies()))
    stats = artifact.stats()
    assert stats.policies == 5
    assert stats.residual_policies == 1
    assert stats.path_classes > 0
    assert stats.dfa_states >= stats.path_classes
