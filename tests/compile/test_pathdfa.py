"""The merged path DFA agrees with the interpreter bit for bit."""

import random

import pytest

from repro.core.credentials import anyone
from repro.core.errors import ConfigurationError
from repro.core.policy import Action, Propagation, grant
from repro.compile.pathdfa import (
    MergedPathDfa,
    OTHER_SEGMENT,
    glob_witnesses,
    nfa_for_policy,
)

from tests.scale.workloads import random_policies


def policy_on(resource, propagation=Propagation.CASCADE):
    return grant(anyone(), Action.READ, resource,
                 propagation=propagation)


# -- single-pattern NFAs --------------------------------------------------


@pytest.mark.parametrize("propagation", list(Propagation))
@pytest.mark.parametrize("resource", [
    "records/r1", "records/*/vitals", "records/**", "r*/x",
    "a/**/b", "**",
])
def test_nfa_matches_interpreter(resource, propagation):
    policy = policy_on(resource, propagation)
    nfa = nfa_for_policy(policy)
    paths = ["records", "records/r1", "records/r1/vitals",
             "records/r2/vitals", "records/r1/deep/deeper",
             "r9/x", "r9/x/y", "a/b", "a/x/b", "a/x/y/b/c", "other",
             "records/r1/vitals/bp"]
    for path in paths:
        mask = nfa.start_mask
        for segment in path.split("/"):
            mask = nfa.step(mask, segment)
        assert nfa.accepts(mask) == policy.applies_to_resource(path), (
            resource, propagation, path)


def test_glob_witnesses_match_their_glob():
    for segment in ("r*", "r?", "rec*ord", "[abc]x", "[!z]*"):
        witnesses = glob_witnesses(segment)
        assert witnesses, segment
        for witness in witnesses:
            from fnmatch import fnmatchcase
            assert fnmatchcase(witness, segment)
    assert glob_witnesses("*") == frozenset()
    assert glob_witnesses("**") == frozenset()


# -- merged DFA -----------------------------------------------------------


def test_classify_mask_is_exact_on_random_bases():
    rng = random.Random(20260807)
    for _ in range(12):
        policies = random_policies(rng, rng.randrange(2, 14))
        dfa = MergedPathDfa(policies)
        paths = ["hospital/records/r3", "hospital/records/r3/chart",
                 "clinic", "archive/records", "lab/summary",
                 "r1/records/r9/x", "other/place/entirely"]
        for path in paths:
            mask = dfa.applies_mask(dfa.classify(path))
            for index, policy in enumerate(policies):
                assert bool(mask >> index & 1) == \
                    policy.applies_to_resource(path)


def test_explored_witnesses_classify_back_to_their_state():
    rng = random.Random(7)
    policies = random_policies(rng, 10)
    dfa = MergedPathDfa(policies)
    dfa.explore()
    assert dfa.eager_states > 1
    for state in dfa.states():
        if state.witness is None or not state.witness:
            continue
        path = "/".join(state.witness)
        assert dfa.classify(path) == state.state_id
        for index, policy in enumerate(policies):
            assert bool(state.applies_mask >> index & 1) == \
                policy.applies_to_resource(path)


def test_state_alphabet_includes_other_segment():
    dfa = MergedPathDfa([policy_on("records/r1")])
    assert OTHER_SEGMENT in dfa.state_alphabet(dfa.start)


def test_explore_covers_every_distinct_literal_class():
    dfa = MergedPathDfa([policy_on("records/r1"),
                         policy_on("records/r2/**")])
    dfa.explore()
    masks = {dfa.applies_mask(dfa.classify(p))
             for p in ("records/r1", "records/r2", "records/r2/x",
                       "records/other", "elsewhere")}
    eager_masks = {s.applies_mask for s in dfa.states()
                   if s.witness is not None}
    assert masks <= eager_masks


def test_max_states_guard_raises():
    policies = [policy_on(f"a{i}/b{i}/c{i}") for i in range(8)]
    with pytest.raises(ConfigurationError):
        dfa = MergedPathDfa(policies, max_states=3)
        dfa.explore()
