"""Compiled XML label tables agree with the Author-X interpreter."""

from repro.core.credentials import anyone, has_role
from repro.datagen.documents import hospital_documents, hospital_schema
from repro.datagen.population import named_cast
from repro.xmldb.xpath import compile_xpath
from repro.xmlsec.authorx import (
    XmlPolicyBase,
    XmlPropagation,
    xml_deny,
    xml_grant,
)
from repro.compile import (
    compile_xml_policy_base,
    verify_label_table,
    xpath_nfa,
)


def cast_subjects():
    cast = named_cast()
    return [cast.doctor, cast.nurse, cast.researcher,
            cast.administrator, cast.stranger]


def static_base():
    base = XmlPolicyBase()
    base.add(xml_grant(has_role("doctor"), "//record"))
    base.add(xml_deny(anyone(), "//record/ssn"))
    base.add(xml_grant(has_role("nurse"), "/hospital/record/vitals",
                       propagation=XmlPropagation.ONE_LEVEL))
    base.add(xml_grant(has_role("administrator"), "/hospital/billing",
                       propagation=XmlPropagation.LOCAL))
    return base


# -- target NFAs ----------------------------------------------------------


def chain_accepted(nfa, tags):
    mask = nfa.start_mask
    for tag in tags:
        mask = nfa.step(mask, tag)
    return nfa.accepts(mask)


def test_xpath_nfa_absolute_child_path():
    nfa = xpath_nfa(compile_xpath("/hospital/record/vitals"))
    assert chain_accepted(nfa, ("hospital", "record", "vitals"))
    assert not chain_accepted(nfa, ("hospital", "record"))
    assert not chain_accepted(nfa, ("clinic", "record", "vitals"))


def test_xpath_nfa_descendant_axis():
    nfa = xpath_nfa(compile_xpath("//record/ssn"))
    assert chain_accepted(nfa, ("hospital", "record", "ssn"))
    assert chain_accepted(nfa, ("h", "ward", "record", "ssn"))
    # `//` selects strict descendants of the root: a root-tag match
    # must not count.
    assert not chain_accepted(nfa, ("record", "ssn"))


def test_xpath_nfa_value_target_is_dead():
    for target in ("/hospital/record/@id", "//record/text()"):
        nfa = xpath_nfa(compile_xpath(target))
        assert not chain_accepted(nfa, ("hospital", "record"))
        assert not chain_accepted(nfa, ("hospital",))


# -- label equivalence ----------------------------------------------------


def label_keys(labels):
    return {node_id: (label.access,
                      None if label.deciding_policy is None
                      else label.deciding_policy.policy_id)
            for node_id, label in labels.items()}


def test_label_document_matches_interpreter_on_static_base():
    base = static_base()
    schema = hospital_schema()
    table = compile_xml_policy_base(base, schema)
    mismatches = 0
    for doc_id, document in hospital_documents(3, 4, seed=11).items():
        for subject in cast_subjects():
            compiled = table.label_document(subject, document)
            interpreted = base.label_document(
                subject, doc_id, document, use_cache=False)
            if label_keys(compiled) != label_keys(interpreted):
                mismatches += 1
    assert mismatches == 0


def test_one_level_and_local_propagation_compile_exactly():
    base = XmlPolicyBase()
    base.add(xml_grant(has_role("nurse"), "/hospital/record",
                       propagation=XmlPropagation.ONE_LEVEL))
    base.add(xml_grant(has_role("administrator"), "/hospital",
                       propagation=XmlPropagation.LOCAL))
    schema = hospital_schema()
    table = compile_xml_policy_base(base, schema)
    for doc_id, document in hospital_documents(2, 3, seed=3).items():
        for subject in cast_subjects():
            compiled = table.label_document(subject, document)
            interpreted = base.label_document(
                subject, doc_id, document, use_cache=False)
            assert label_keys(compiled) == label_keys(interpreted)


def test_static_base_verification_is_proved_and_clean():
    base = static_base()
    table = compile_xml_policy_base(base, hospital_schema(),
                                    probes=cast_subjects())
    verification = verify_label_table(table, base,
                                      probes=cast_subjects())
    assert verification.verdict == "proved"
    assert verification.unexplained == 0
    assert not [f for f in verification.findings()
                if f.rule_id == "COMPILE-DIVERGE"]


def test_predicate_divergence_is_explained_as_dynamic():
    base = static_base()
    base.add(xml_grant(has_role("researcher"),
                       "//record[diagnosis='flu']/diagnosis"))
    table = compile_xml_policy_base(base, hospital_schema(),
                                    probes=cast_subjects())
    assert table.dynamic_mask
    verification = verify_label_table(table, base,
                                      probes=cast_subjects())
    assert verification.verdict == "proved"
    rule_ids = {f.rule_id for f in verification.findings()}
    assert "XML-DYNPRED" in rule_ids
    assert "COMPILE-DIVERGE" not in rule_ids


def test_drifted_table_is_refuted():
    base = static_base()
    table = compile_xml_policy_base(base, hospital_schema(),
                                    probes=cast_subjects())
    base.add(xml_deny(anyone(), "//record"))
    verification = verify_label_table(table, base,
                                      probes=cast_subjects())
    assert verification.verdict == "refuted"
    assert "COMPILE-DIVERGE" in {f.rule_id
                                 for f in verification.findings()}


def test_doc_id_filter_restricts_compiled_policies():
    base = static_base()
    base.add(xml_grant(has_role("doctor"), "//billing",
                       document="ward-ledger"))
    everywhere = compile_xml_policy_base(base, hospital_schema())
    ledger = compile_xml_policy_base(base, hospital_schema(),
                                     doc_id="ward-ledger")
    assert len(ledger.policies) == len(everywhere.policies) + 1


def test_stats_and_digest():
    base = static_base()
    table = compile_xml_policy_base(base, hospital_schema(),
                                    probes=cast_subjects())
    stats = table.stats()
    assert stats.policies == 4
    assert stats.dynamic_policies == 0
    assert stats.profile_classes >= 2
    again = compile_xml_policy_base(base, hospital_schema(),
                                    probes=cast_subjects())
    assert table.compute_digest() == again.compute_digest()
