"""Static equivalence verification proves, explains, or refutes."""

import random

from repro.core.credentials import anyone, has_role
from repro.core.policy import Action, PolicyBase, deny, grant
from repro.compile import compile_policy_base, verify_compiled

from tests.scale.workloads import random_policies


def healthy_base():
    base = PolicyBase()
    base.add(grant(has_role("doctor"), Action.READ, "records/**"))
    base.add(deny(anyone(), Action.READ, "records/*/ssn"))
    base.add(grant(has_role("nurse"), Action.READ,
                   "records/r*/vitals"))
    base.add(grant(has_role("doctor"), Action.WRITE, "records/*"))
    return base


def test_healthy_base_is_proved_with_no_disagreements():
    base = healthy_base()
    verification = verify_compiled(compile_policy_base(base), base)
    assert verification.verdict == "proved"
    assert verification.cells > 0
    assert not verification.disagreements
    assert verification.findings() == []


def test_residual_policy_reported_but_still_proved():
    base = healthy_base()
    base.add(grant(anyone(), Action.READ, "notes/*",
                   condition=lambda payload: payload is None))
    verification = verify_compiled(compile_policy_base(base), base)
    assert verification.verdict == "proved"
    assert verification.unexplained == 0
    rule_ids = [f.rule_id for f in verification.findings()]
    assert rule_ids == ["COMPILE-RESIDUAL"]


def test_stale_artifact_against_drifted_base_is_refuted():
    base = healthy_base()
    artifact = compile_policy_base(base)
    base.add(deny(anyone(), Action.READ, "records/**"))
    verification = verify_compiled(artifact, base)
    assert verification.verdict == "refuted"
    assert verification.unexplained > 0
    rule_ids = {f.rule_id for f in verification.findings()}
    assert "COMPILE-DIVERGE" in rule_ids
    diverge = [f for f in verification.findings()
               if f.rule_id == "COMPILE-DIVERGE"][0]
    assert str(base.generation) in diverge.fix_hint


def test_to_dict_shape():
    base = healthy_base()
    artifact = compile_policy_base(base)
    report = verify_compiled(artifact, base).to_dict()
    assert report["digest"] == artifact.digest
    assert report["verdict"] == "proved"
    assert set(report) == {"digest", "source_generation",
                           "base_generation", "cells", "disagreements",
                           "explained", "unexplained",
                           "residual_policies", "verdict"}


def test_random_bases_always_self_verify():
    rng = random.Random(20260808)
    for _ in range(25):
        base = PolicyBase(random_policies(rng, rng.randrange(1, 16)))
        verification = verify_compiled(compile_policy_base(base), base)
        assert verification.verdict == "proved"
        assert verification.unexplained == 0
