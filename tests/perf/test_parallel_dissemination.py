"""Parallel packet preparation must be byte-identical to serial.

``Disseminator.package(workers=N)`` reserves nonces serially and runs
the pure symmetric encryptions on a thread pool; since encryption is
deterministic given (key, nonce), the packet must not depend on the
worker count — and every subscriber must decrypt exactly the same view.
"""

from repro.core.credentials import anyone, has_role
from repro.core.subjects import Role, Subject
from repro.crypto.keys import KeyStore
from repro.xmldb.model import Document, element
from repro.xmlsec.authorx import XmlPolicyBase, xml_deny, xml_grant
from repro.xmlsec.dissemination import Disseminator, open_packet

DOCTOR = Subject("dr", roles={Role("doctor")})
NURSE = Subject("nn", roles={Role("nurse")})


def build_document(records=12):
    return Document(element(
        "hospital", None, None,
        *[element("record", None, {"id": f"r{i}"},
                  element("name", f"name-{i}"),
                  element("diagnosis", "flu" if i % 2 else "ok"),
                  element("billing", None, None,
                          element("amount", str(100 + i))))
          for i in range(records)]), name="doc")


def build_policy_base():
    base = XmlPolicyBase()
    base.add(xml_grant(has_role("doctor"), "//record"))
    base.add(xml_grant(has_role("nurse"), "//record/name"))
    base.add(xml_grant(anyone(), "/hospital"))
    base.add(xml_deny(anyone(), "//billing"))
    base.add(xml_grant(has_role("doctor"), "//billing/amount"))
    return base


class TestParallelPackaging:
    def test_parallel_packet_identical_to_serial(self):
        doc = build_document()
        # One shared policy base: configuration key ids derive from the
        # policy ids, so each disseminator must see the same policies.
        base = build_policy_base()
        serial = Disseminator(base).package("doc", doc)
        threaded = Disseminator(base).package("doc", doc, workers=4)
        assert serial.skeleton == threaded.skeleton
        assert len(serial.blocks) == len(threaded.blocks)
        for a, b in zip(serial.blocks, threaded.blocks):
            assert a.key_id == b.key_id
            assert a.nonce == b.nonce
            assert a.body == b.body
            assert a.tag == b.tag

    def test_workers_one_and_none_take_the_serial_path(self):
        doc = build_document(4)
        base = build_policy_base()
        packets = [Disseminator(base).package("doc", doc, workers=w)
                   for w in (None, 1, 3)]
        reference = packets[0]
        for packet in packets[1:]:
            assert [b.body for b in packet.blocks] == [
                b.body for b in reference.blocks]

    def test_subscribers_decrypt_same_view_either_way(self):
        doc = build_document(6)
        for workers in (None, 4):
            disseminator = Disseminator(build_policy_base())
            packet = disseminator.package("doc", doc, workers=workers)
            for subject in (DOCTOR, NURSE):
                store = KeyStore()
                grant = disseminator.distributor(
                    {subject.identity.name: subject}).grant(
                        subject.identity.name)
                for key in grant.keys:
                    store.import_key(key)
                view = open_packet(packet, store)
                assert view is not None
                tags = sorted({n.tag for n in view.iter()})
                if subject is DOCTOR:
                    assert "diagnosis" in tags and "amount" in tags
                else:
                    assert "name" in tags
                    assert "amount" not in tags
