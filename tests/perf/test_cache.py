"""Unit tests for the repro.perf caching primitives."""

import threading

import pytest

from repro.perf.cache import (
    MISS,
    Generation,
    GenerationalCache,
    LRUCache,
)


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("k") is MISS
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_falsy_values_are_cacheable(self):
        cache = LRUCache()
        cache.put("none", None)
        cache.put("zero", 0)
        assert cache.get("none") is None
        assert cache.get("zero") == 0

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refresh 'a'
        cache.put("c", 3)                   # evicts 'b'
        assert cache.get("b") is MISS
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_clear(self):
        cache = LRUCache()
        cache.put("a", 1)
        cache.clear()
        assert cache.get("a") is MISS

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)

    def test_concurrent_put_get_is_safe(self):
        cache = LRUCache(maxsize=64)

        def worker(offset):
            for i in range(200):
                cache.put((offset, i % 50), i)
                cache.get((offset, (i * 7) % 50))

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 64


class TestGeneration:
    def test_bump_increments_and_fires_hooks(self):
        generation = Generation()
        fired = []
        generation.add_hook(lambda: fired.append(generation.value))
        assert generation.value == 0
        generation.bump()
        generation.bump()
        assert generation.value == 2
        assert fired == [1, 2]


class TestGenerationalCache:
    def test_hit_requires_matching_stamp(self):
        cache = GenerationalCache()
        cache.put("k", 1, "value")
        assert cache.get("k", 1) == "value"
        assert cache.get("k", 2) is MISS
        assert cache.stats.stale_drops == 1
        # The stale entry was dropped, not kept around.
        assert cache.get("k", 1) is MISS

    def test_tuple_stamps(self):
        cache = GenerationalCache()
        cache.put("k", (3, 7), "v")
        assert cache.get("k", (3, 7)) == "v"
        assert cache.get("k", (3, 8)) is MISS

    def test_eviction(self):
        cache = GenerationalCache(maxsize=2)
        cache.put("a", 0, 1)
        cache.put("b", 0, 2)
        cache.put("c", 0, 3)
        assert cache.get("a", 0) is MISS
        assert cache.stats.evictions == 1

    def test_pins_keep_objects_alive(self):
        cache = GenerationalCache()

        class Thing:
            pass

        thing = Thing()
        cache.put(id(thing), 0, "v", pins=(thing,))
        import gc
        ref_id = id(thing)
        del thing
        gc.collect()
        # The pinned object is still reachable through the cache entry,
        # so its id cannot have been recycled by another allocation.
        assert cache.get(ref_id, 0) == "v"

    def test_stats_snapshot(self):
        cache = GenerationalCache()
        cache.put("k", 0, "v")
        cache.get("k", 0)
        cache.get("missing", 0)
        snap = cache.stats.snapshot()
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert 0.0 < snap["hit_rate"] < 1.0
