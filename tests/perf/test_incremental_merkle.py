"""Incremental Merkle recomputation must equal a full rebuild.

Two constructions are covered: ``MerkleTree.update_leaf`` (flat leaf
lists; promoted odd nodes are the tricky case) and
``IncrementalXmlHasher`` (XML trees under random mutation sequences).
Each asserts hash-for-hash equality with a from-scratch rebuild, plus
the O(log n)/O(depth) operation counts that make the optimisation worth
having.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import ConfigurationError
from repro.merkle.tree import MerkleTree
from repro.merkle.xml_merkle import (
    IncrementalXmlHasher,
    document_hash,
    merkle_hash,
)
from repro.xmldb.model import Document, Element, element


class TestMerkleTreeUpdateLeaf:
    @given(st.integers(1, 70), st.data())
    @settings(max_examples=120, deadline=None)
    def test_update_equals_rebuild(self, leaf_count, data):
        leaves = [f"leaf-{i}" for i in range(leaf_count)]
        tree = MerkleTree(leaves)
        for _ in range(data.draw(st.integers(1, 5))):
            index = data.draw(st.integers(0, leaf_count - 1))
            payload = data.draw(st.sampled_from(
                ["x", "updated", "leaf-0", ""]))
            leaves[index] = payload
            tree.update_leaf(index, payload)
            rebuilt = MerkleTree(leaves)
            assert tree.root == rebuilt.root
            assert tree._levels == rebuilt._levels

    def test_proofs_remain_valid_after_update(self):
        leaves = [f"v{i}" for i in range(13)]
        tree = MerkleTree(leaves)
        tree.update_leaf(7, "patched")
        leaves[7] = "patched"
        for index, payload in enumerate(leaves):
            assert tree.verify_leaf(index, payload)

    def test_operation_count_is_logarithmic(self):
        leaf_count = 4096
        tree = MerkleTree([f"l{i}" for i in range(leaf_count)])
        operations = tree.update_leaf(1234, "new")
        # Full rebuild hashes 2n-1 nodes; the dirty path is log2(n)+1.
        assert operations <= int(math.log2(leaf_count)) + 2
        assert operations < 2 * leaf_count - 1

    def test_rejects_out_of_range_index(self):
        tree = MerkleTree(["a", "b"])
        with pytest.raises(ConfigurationError):
            tree.update_leaf(2, "c")


def build_document():
    return Document(element(
        "hospital", None, None,
        *[element("record", None, {"id": f"r{i}"},
                  element("name", f"name-{i}"),
                  element("diagnosis", "flu" if i % 2 else "ok"))
          for i in range(8)]), name="doc")


class TestIncrementalXmlHasher:
    def test_initial_hash_matches_full(self):
        doc = build_document()
        hasher = IncrementalXmlHasher(doc)
        assert hasher.root_hash() == document_hash(doc)

    def test_mutations_track_full_rebuild(self):
        doc = build_document()
        hasher = IncrementalXmlHasher(doc)
        hasher.root_hash()
        record = doc.root.element_children[3]
        hasher.set_text(record.element_children[0], "renamed")
        assert hasher.verify_against_rebuild()
        hasher.set_attribute(record, "flag", "1")
        assert hasher.verify_against_rebuild()
        hasher.remove_attribute(record, "flag")
        assert hasher.verify_against_rebuild()
        hasher.insert_child(record, element("note", "watch"))
        assert hasher.verify_against_rebuild()
        hasher.remove_child(doc.root, doc.root.element_children[5])
        assert hasher.verify_against_rebuild()

    def test_update_rehashes_only_dirty_path(self):
        # A deep chain: an edit at the bottom must rehash O(depth)
        # nodes, not the whole sibling forest.
        depth = 30
        leaf = Element("leaf")
        node = leaf
        for i in range(depth):
            wrapper = Element(f"lvl{i}")
            wrapper.append(node)
            for j in range(3):
                wrapper.append(Element("pad", {"i": f"{i}-{j}"}))
            node = wrapper
        doc = Document(node)
        hasher = IncrementalXmlHasher(doc)
        hasher.root_hash()
        total_nodes = doc.size()
        before = hasher.hash_operations
        hasher.set_text(leaf, "dirty")
        hasher.root_hash()
        dirty_cost = hasher.hash_operations - before
        # Dirty path: depth+1 merkle hashes + 1 content hash, far below
        # the ~2n of a full recomputation.
        assert dirty_cost <= 2 * (depth + 2)
        assert dirty_cost < total_nodes

    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_property_random_edit_sequences(self, data):
        doc = build_document()
        hasher = IncrementalXmlHasher(doc)
        hasher.root_hash()
        for _ in range(data.draw(st.integers(1, 8))):
            nodes = list(doc.iter())
            kind = data.draw(st.sampled_from(
                ["text", "attr", "insert", "remove"]))
            node = nodes[data.draw(st.integers(0, len(nodes) - 1))]
            if kind == "text":
                hasher.set_text(node, data.draw(
                    st.sampled_from(["a", "bb", ""])))
            elif kind == "attr":
                hasher.set_attribute(node, "m", data.draw(
                    st.sampled_from(["0", "1"])))
            elif kind == "insert":
                hasher.insert_child(node, element("extra", "e"))
            else:
                removable = node.element_children
                if not removable or node is doc.root and \
                        len(doc.root.element_children) == 0:
                    continue
                hasher.remove_child(node, removable[0])
            assert hasher.root_hash() == merkle_hash(doc.root)
