"""The simultaneous matcher must agree with the classic engine.

``simultaneous_select`` evaluates many XPath-lite expressions in one DOM
traversal; its contract is the same *element set* as per-path
``select_elements``, returned in document (pre-order) position.  The
classic engine's own sequence order is stage-wise and can deviate from
document order on multi-step paths, so the comparisons below are
set-based plus an explicit document-order check.  Hand-picked corner
cases cover the root-matching and descendant-axis subtleties; a
hypothesis property sweeps random documents against a pool of path
shapes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.perf.multipath import simultaneous_select, supports_path
from repro.xmldb.model import Document, Element, element
from repro.xmldb.xpath import compile_xpath, select_elements

tag_strategy = st.sampled_from(["a", "b", "c", "item"])


@st.composite
def xml_tree(draw, depth=3):
    node = Element(draw(tag_strategy),
                   draw(st.dictionaries(st.sampled_from(["id", "k"]),
                                        st.sampled_from(["1", "2", "x"]),
                                        max_size=2)))
    if draw(st.booleans()):
        node.append(draw(st.sampled_from(["t", "u", "flu"])))
    if depth > 0:
        for child in draw(st.lists(xml_tree(depth=depth - 1),
                                   max_size=3)):
            node.append(child)
    return node


#: Path shapes exercising every axis/predicate combination the matcher
#: supports: absolute/relative, child/descendant first steps, wildcards,
#: attribute and relative-path predicates, mixed-axis chains.
PATH_POOL = [
    "/a", "/a/b", "/a/*", "/b/a",
    "//a", "//b", "//*", "//a/b", "//a//b", "//*/a",
    "/a//b", "/a//*", "//a/*/c",
    "a", "a/b", "*/a", "b//c",
    "//a[@id='1']", "//*[@k]", "/a[@id='1']/b",
    "//a[b]", "//a[b='t']", "//c[@id='2']//a",
]


def assert_same_selection(got, expected, root, context_text=""):
    """Set equality with the classic engine + document-order result."""
    assert {id(n) for n in got} == {id(n) for n in expected}, context_text
    assert len(got) == len(expected), context_text
    positions = {id(n): i for i, n in enumerate(root.iter())}
    order = [positions[id(n)] for n in got]
    assert order == sorted(order), context_text


def sample_doc():
    return Document(element(
        "a", None, {"id": "1"},
        element("b", "t", {"k": "x"},
                element("a", None, {"id": "2"}),
                element("c", "u")),
        element("b", "flu"),
        element("a", None, {"id": "1"},
                element("b", "t"))))


class TestSupportsPath:
    def test_rejects_positional_predicates(self):
        assert not supports_path(compile_xpath("//a[2]"))
        assert not supports_path(compile_xpath("/a/b[1]/c"))

    def test_rejects_value_selecting_final_steps(self):
        assert not supports_path(compile_xpath("//a/@id"))
        assert not supports_path(compile_xpath("//a/text()"))
        assert not supports_path(compile_xpath("//a/@*"))

    def test_accepts_element_paths(self):
        for text in PATH_POOL:
            assert supports_path(compile_xpath(text)), text

    def test_simultaneous_select_raises_on_unsupported(self):
        with pytest.raises(ValueError):
            simultaneous_select(["//a[2]"], sample_doc())


class TestAgainstClassicEngine:
    def test_pool_on_sample_document(self):
        doc = sample_doc()
        combined = simultaneous_select(PATH_POOL, doc)
        for text, got in zip(PATH_POOL, combined):
            expected = select_elements(text, doc)
            assert_same_selection(got, expected, doc.root, text)

    def test_root_only_matches_absolute_child_paths(self):
        doc = Document(element("a", None, None, element("a")))
        by_path = dict(zip(
            ["/a", "//a", "a"],
            simultaneous_select(["/a", "//a", "a"], doc)))
        assert doc.root in by_path["/a"]
        assert doc.root not in by_path["//a"]
        assert doc.root not in by_path["a"]

    def test_element_context(self):
        doc = sample_doc()
        context = doc.root.element_children[0]   # first <b>
        for text in ["a", "//a", "c", "*"]:
            got = simultaneous_select([text], context)[0]
            assert_same_selection(got, select_elements(text, context),
                                  context, text)

    def test_nested_descendant_chain(self):
        # //a//a: an <a> nested under another matched <a> must match too
        # (descendant states persist after matching).
        doc = Document(element(
            "r", None, None,
            element("a", None, None,
                    element("x", None, None,
                            element("a", None, None,
                                    element("a"))))))
        got = simultaneous_select(["//a//a"], doc)[0]
        assert_same_selection(got, select_elements("//a//a", doc),
                              doc.root)
        assert len(got) == 2

    @given(xml_tree(), st.lists(st.sampled_from(PATH_POOL),
                                min_size=1, max_size=8))
    @settings(max_examples=150, deadline=None)
    def test_property_identity_with_select_elements(self, root, paths):
        doc = Document(root)
        combined = simultaneous_select(paths, doc)
        for text, got in zip(paths, combined):
            expected = select_elements(text, doc)
            assert_same_selection(got, expected, doc.root, text)

    @given(xml_tree(), st.lists(st.sampled_from(PATH_POOL),
                                min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_property_identity_from_element_context(self, root, paths):
        relative = [p for p in paths if not p.startswith("/")]
        if not relative:
            relative = ["a"]
        combined = simultaneous_select(relative, root)
        for text, got in zip(relative, combined):
            expected = select_elements(text, root)
            assert_same_selection(got, expected, root, text)
