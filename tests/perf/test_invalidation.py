"""Property test: caches never serve a decision the current state would
not recompute.

For random interleavings of policy grants/revokes and document edits,
every cached answer — evaluator decisions, relational privilege checks,
Author-X label maps — must equal a from-scratch recomputation with
caching disabled.  This is the correctness contract of the
generation-stamp protocol (ISSUE: cached decisions always equal uncached
recomputation).
"""

from hypothesis import given, settings, strategies as st

from repro.core.credentials import anyone, has_role, is_identity
from repro.core.errors import AccessDenied
from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import Action, PolicyBase, deny, grant
from repro.core.subjects import Role, Subject
from repro.relational.authorization import AuthorizationManager, Privilege
from repro.xmldb.model import Document, element
from repro.xmlsec.authorx import XmlPolicyBase, xml_deny, xml_grant

SUBJECTS = [Subject("dr", roles={Role("doctor")}),
            Subject("nn", roles={Role("nurse")}),
            Subject("zz")]

RESOURCES = ["hospital/records", "hospital/records/r1",
             "hospital/billing", "public"]

EXPRESSIONS = [anyone(), has_role("doctor"), has_role("nurse"),
               is_identity("zz")]


@st.composite
def evaluator_ops(draw):
    ops = []
    for _ in range(draw(st.integers(2, 25))):
        kind = draw(st.sampled_from(
            ["add_grant", "add_deny", "remove", "decide", "decide",
             "decide"]))
        ops.append((kind,
                    draw(st.integers(0, len(EXPRESSIONS) - 1)),
                    draw(st.sampled_from(RESOURCES)),
                    draw(st.integers(0, len(SUBJECTS) - 1))))
    return ops


class TestEvaluatorCacheInvariant:
    @given(evaluator_ops())
    @settings(max_examples=120, deadline=None)
    def test_cached_decision_equals_uncached(self, ops):
        base = PolicyBase()
        cached = PolicyEvaluator(base, cache_decisions=True)
        uncached = PolicyEvaluator(base, cache_decisions=False)
        added = []
        for kind, expr_index, resource, subject_index in ops:
            if kind == "add_grant":
                added.append(base.add(grant(EXPRESSIONS[expr_index],
                                            Action.READ, resource)))
            elif kind == "add_deny":
                added.append(base.add(deny(EXPRESSIONS[expr_index],
                                           Action.READ, resource)))
            elif kind == "remove" and added:
                base.remove(added.pop(expr_index % len(added)))
            elif kind == "decide":
                subject = SUBJECTS[subject_index]
                hot = cached.decide(subject, Action.READ, resource)
                cold = uncached.decide(subject, Action.READ, resource)
                assert hot.granted == cold.granted
                assert hot.determining == cold.determining
                assert hot.reason == cold.reason


@st.composite
def relational_ops(draw):
    ops = []
    for _ in range(draw(st.integers(2, 20))):
        ops.append((draw(st.sampled_from(
            ["grant", "revoke", "check", "check", "restrict"])),
            draw(st.sampled_from(["dba", "alice", "bob"])),
            draw(st.sampled_from(["alice", "bob", "carol"])),
            draw(st.booleans())))
    return ops


class TestRelationalCacheInvariant:
    @staticmethod
    def uncached_has_privilege(manager, user):
        if manager.owners().get("t") == user:
            return True
        return bool(manager.grants_for(user, "t", Privilege.SELECT))

    @given(relational_ops())
    @settings(max_examples=120, deadline=None)
    def test_cached_check_equals_recomputation(self, ops):
        manager = AuthorizationManager()
        manager.set_owner("t", "dba")
        for kind, grantor, grantee, option in ops:
            if kind == "grant":
                try:
                    manager.grant(grantor, grantee, "t",
                                  Privilege.SELECT,
                                  with_grant_option=option)
                except AccessDenied:
                    pass
            elif kind == "revoke":
                try:
                    manager.revoke(grantor, grantee, "t",
                                   Privilege.SELECT)
                except Exception:
                    pass
            elif kind == "check":
                for user in ["dba", "alice", "bob", "carol"]:
                    assert manager.has_privilege(
                        user, "t", Privilege.SELECT
                    ) == self.uncached_has_privilege(manager, user)
            elif kind == "restrict":
                try:
                    first = manager.restriction(grantee, "t",
                                                Privilege.SELECT)
                except AccessDenied:
                    continue
                # A second (cached) call returns the same restriction.
                assert manager.restriction(
                    grantee, "t", Privilege.SELECT) == first


def fresh_document():
    return Document(element(
        "hospital", None, None,
        element("record", None, {"id": "r1"},
                element("name", "alice"),
                element("diagnosis", "flu")),
        element("record", None, {"id": "r2"},
                element("name", "bob"),
                element("diagnosis", "ok")),
        element("billing", None, None,
                element("amount", "100"))), name="d1")


XML_TARGETS = ["/hospital", "//record", "//record/diagnosis",
               "//record[@id='r1']", "//billing", "//name"]


@st.composite
def labelling_ops(draw):
    ops = []
    for _ in range(draw(st.integers(2, 20))):
        kind = draw(st.sampled_from(
            ["add_grant", "add_deny", "remove", "edit_text",
             "edit_attr", "add_child", "label", "label"]))
        ops.append((kind,
                    draw(st.sampled_from(XML_TARGETS)),
                    draw(st.integers(0, len(EXPRESSIONS) - 1)),
                    draw(st.integers(0, 5))))
    return ops


class TestLabelCacheInvariant:
    @given(labelling_ops())
    @settings(max_examples=100, deadline=None)
    def test_cached_labels_equal_uncached_and_per_policy(self, ops):
        base = XmlPolicyBase()
        doc = fresh_document()
        added = []
        for kind, target, expr_index, pick in ops:
            expr = EXPRESSIONS[expr_index]
            if kind == "add_grant":
                added.append(base.add(xml_grant(expr, target)))
            elif kind == "add_deny":
                added.append(base.add(xml_deny(expr, target)))
            elif kind == "remove" and added:
                base.remove(added.pop(pick % len(added)))
            elif kind == "edit_text":
                nodes = list(doc.iter())
                nodes[pick % len(nodes)].set_text(f"edited-{pick}")
            elif kind == "edit_attr":
                nodes = list(doc.iter())
                nodes[pick % len(nodes)].set_attribute("mark", str(pick))
            elif kind == "add_child":
                nodes = list(doc.iter())
                nodes[pick % len(nodes)].append(element("diagnosis",
                                                        "new"))
            elif kind == "label":
                subject = SUBJECTS[pick % len(SUBJECTS)]
                hot = base.label_document(subject, "d1", doc)
                cold = base.label_document(subject, "d1", doc,
                                           use_cache=False)
                oracle = base.label_document_per_policy(subject, "d1",
                                                        doc)
                assert hot == cold
                assert hot == oracle
