"""Striped lock manager: per-stripe independence plus cross-stripe
deadlock detection over the merged wait-for graph."""

import pytest

from repro.core.errors import TransactionError
from repro.relational.locks import (
    AcquireResult,
    LockManager,
    LockMode,
    StripedLockManager,
)


def resources_on_distinct_stripes(manager: StripedLockManager,
                                  count: int) -> list[str]:
    """Find resource names mapping to *count* distinct stripes."""
    chosen: dict[int, str] = {}
    i = 0
    while len(chosen) < count:
        name = f"res-{i}"
        stripe = manager.stripe_of(name)
        if stripe not in chosen:
            chosen[stripe] = name
        i += 1
    return list(chosen.values())


class TestStriping:
    def test_stripe_routing_is_deterministic(self):
        a = StripedLockManager(stripes=8)
        b = StripedLockManager(stripes=8)
        for i in range(100):
            assert a.stripe_of(f"t{i}") == b.stripe_of(f"t{i}")
            assert 0 <= a.stripe_of(f"t{i}") < 8

    def test_rejects_zero_stripes(self):
        with pytest.raises(TransactionError):
            StripedLockManager(stripes=0)

    def test_basic_grant_and_conflict(self):
        locks = StripedLockManager(stripes=4)
        assert locks.acquire("t1", "accounts", LockMode.EXCLUSIVE) is \
            AcquireResult.GRANTED
        assert locks.acquire("t2", "accounts", LockMode.SHARED) is \
            AcquireResult.WOULD_WAIT
        locks.release_all("t1")
        assert locks.holders("accounts") == {"t2": LockMode.SHARED}

    def test_disjoint_stripes_do_not_interact(self):
        locks = StripedLockManager(stripes=4)
        r1, r2 = resources_on_distinct_stripes(locks, 2)
        assert locks.acquire("t1", r1, LockMode.EXCLUSIVE) is \
            AcquireResult.GRANTED
        assert locks.acquire("t2", r2, LockMode.EXCLUSIVE) is \
            AcquireResult.GRANTED

    def test_release_wakes_fifo_like_single_manager(self):
        striped = StripedLockManager(stripes=4)
        single = LockManager()
        for locks in (striped, single):
            locks.acquire("t1", "r", LockMode.EXCLUSIVE)
            locks.acquire("t2", "r", LockMode.EXCLUSIVE)
            locks.acquire("t3", "r", LockMode.EXCLUSIVE)
        assert striped.release_all("t1") == single.release_all("t1")


class TestCrossStripeDeadlock:
    def test_intra_stripe_cycle_detected(self):
        locks = StripedLockManager(stripes=1)
        locks.acquire("t1", "a", LockMode.EXCLUSIVE)
        locks.acquire("t2", "b", LockMode.EXCLUSIVE)
        assert locks.acquire("t1", "b", LockMode.EXCLUSIVE) is \
            AcquireResult.WOULD_WAIT
        assert locks.acquire("t2", "a", LockMode.EXCLUSIVE) is \
            AcquireResult.DEADLOCK
        assert locks.deadlocks_detected == 1

    def test_cycle_spanning_two_stripes_detected(self):
        locks = StripedLockManager(stripes=4)
        r1, r2 = resources_on_distinct_stripes(locks, 2)
        assert locks.stripe_of(r1) != locks.stripe_of(r2)
        locks.acquire("t1", r1, LockMode.EXCLUSIVE)
        locks.acquire("t2", r2, LockMode.EXCLUSIVE)
        # t1 queues on r2 (stripe B); no cycle within either stripe yet.
        assert locks.acquire("t1", r2, LockMode.EXCLUSIVE) is \
            AcquireResult.WOULD_WAIT
        # t2 queuing on r1 (stripe A) closes t1 -> t2 -> t1 across
        # stripes: only the merged wait graph can see it.
        assert locks.acquire("t2", r1, LockMode.EXCLUSIVE) is \
            AcquireResult.DEADLOCK
        assert locks.deadlocks_detected == 1

    def test_deadlocked_request_is_withdrawn(self):
        locks = StripedLockManager(stripes=4)
        r1, r2 = resources_on_distinct_stripes(locks, 2)
        locks.acquire("t1", r1, LockMode.EXCLUSIVE)
        locks.acquire("t2", r2, LockMode.EXCLUSIVE)
        locks.acquire("t1", r2, LockMode.EXCLUSIVE)
        locks.acquire("t2", r1, LockMode.EXCLUSIVE)  # DEADLOCK, t2 dies
        locks.release_all("t2")
        # t2's queued request was withdrawn with the abort, so t1 gets
        # r2 the moment t2's holdings go away.
        assert locks.holders(r2) == {"t1": LockMode.EXCLUSIVE}

    def test_three_party_cycle_across_stripes(self):
        locks = StripedLockManager(stripes=4)
        r1, r2, r3 = resources_on_distinct_stripes(locks, 3)
        locks.acquire("t1", r1, LockMode.EXCLUSIVE)
        locks.acquire("t2", r2, LockMode.EXCLUSIVE)
        locks.acquire("t3", r3, LockMode.EXCLUSIVE)
        assert locks.acquire("t1", r2, LockMode.EXCLUSIVE) is \
            AcquireResult.WOULD_WAIT
        assert locks.acquire("t2", r3, LockMode.EXCLUSIVE) is \
            AcquireResult.WOULD_WAIT
        assert locks.acquire("t3", r1, LockMode.EXCLUSIVE) is \
            AcquireResult.DEADLOCK

    def test_acquire_or_raise_mirrors_single_manager(self):
        locks = StripedLockManager(stripes=2)
        locks.acquire("t1", "r", LockMode.EXCLUSIVE)
        with pytest.raises(TransactionError):
            locks.acquire_or_raise("t2", "r", LockMode.SHARED)


class TestCancelWait:
    def test_cancel_wait_recomputes_wait_set(self):
        locks = LockManager()
        locks.acquire("t1", "a", LockMode.EXCLUSIVE)
        locks.acquire("t2", "b", LockMode.EXCLUSIVE)
        locks.acquire("t3", "a", LockMode.EXCLUSIVE)
        locks.acquire("t3", "b", LockMode.EXCLUSIVE)
        assert locks.waiting_for("t3") == {"t1", "t2"}
        locks.cancel_wait("t3", "a")
        assert locks.waiting_for("t3") == {"t2"}
        locks.cancel_wait("t3", "b")
        assert locks.waiting_for("t3") == set()

    def test_wait_graph_is_a_copy(self):
        locks = LockManager()
        locks.acquire("t1", "a", LockMode.EXCLUSIVE)
        locks.acquire("t2", "a", LockMode.EXCLUSIVE)
        graph = locks.wait_graph()
        graph["t2"].add("poison")
        assert locks.waiting_for("t2") == {"t1"}
