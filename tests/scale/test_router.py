"""Unit tests for the consistent-hash router."""

import pytest

from repro.core.errors import ConfigurationError
from repro.scale.router import ConsistentHashRouter


class TestConsistentHashRouter:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRouter(0)
        with pytest.raises(ConfigurationError):
            ConsistentHashRouter(4, replicas=0)

    def test_routes_into_range(self):
        router = ConsistentHashRouter(5)
        for i in range(200):
            assert 0 <= router.shard_for(f"key-{i}") < 5

    def test_deterministic_across_instances(self):
        a = ConsistentHashRouter(8)
        b = ConsistentHashRouter(8)
        keys = [f"table-{i}" for i in range(300)]
        assert [a.shard_for(k) for k in keys] == \
            [b.shard_for(k) for k in keys]

    def test_single_shard_takes_everything(self):
        router = ConsistentHashRouter(1)
        assert {router.shard_for(f"k{i}") for i in range(50)} == {0}

    def test_balance_is_reasonable(self):
        router = ConsistentHashRouter(4, replicas=64)
        counts = router.spread([f"doc-{i}" for i in range(4000)])
        assert set(counts) == {0, 1, 2, 3}
        # Consistent hashing is not perfectly uniform, but with 64
        # virtual nodes no shard should be starved or hot by 3x.
        assert min(counts.values()) > 1000 / 3
        assert max(counts.values()) < 3000

    def test_resharding_moves_a_minority_of_keys(self):
        before = ConsistentHashRouter(8)
        after = ConsistentHashRouter(9)
        keys = [f"doc-{i}" for i in range(2000)]
        moved = sum(before.shard_for(k) != after.shard_for(k)
                    for k in keys)
        # The consistent-hashing guarantee: ~1/9 of keys move, not all
        # of them (hash(key) % n would move ~8/9).
        assert moved < len(keys) / 3

    def test_partition_keeps_input_order_per_shard(self):
        router = ConsistentHashRouter(3)
        keys = [f"k{i}" for i in range(60)]
        grouped = router.partition(keys)
        assert sorted(sum(grouped.values(), [])) == sorted(keys)
        for shard, members in grouped.items():
            assert members == [k for k in keys
                               if router.shard_for(k) == shard]
        assert list(grouped) == sorted(grouped)
