"""Shared random-workload builders for the repro.scale test suite.

Everything is seeded: a failing property case reports its seed and
replays exactly.
"""

import random

from repro.core.credentials import anyone, attribute_equals, has_role
from repro.core.policy import (
    Action,
    Policy,
    Propagation,
    deny,
    grant,
)
from repro.datagen.population import ROLE_NAMES, generate_population

#: Literal resource heads plus glob heads (the broadcast case).
HEADS = ("hospital", "school", "clinic", "lab", "archive")
GLOB_HEADS = ("**", "*", "r*")


def random_policy(rng: random.Random) -> Policy:
    if rng.random() < 0.2:
        head = rng.choice(GLOB_HEADS)
    else:
        head = rng.choice(HEADS)
    resource = rng.choice((
        f"{head}/records/r{rng.randrange(1, 40)}/**",
        f"{head}/records/**",
        f"{head}/**",
        head,
    ))
    if rng.random() < 0.3:
        expression = anyone()
    elif rng.random() < 0.7:
        expression = has_role(rng.choice(ROLE_NAMES))
    else:
        expression = attribute_equals(
            "physician", "department", rng.choice(("cardiology",
                                                   "oncology")))
    action = rng.choice((Action.READ, Action.WRITE))
    propagation = rng.choice((Propagation.CASCADE, Propagation.CASCADE,
                              Propagation.LOCAL, Propagation.ONE_LEVEL))
    condition = None
    if rng.random() < 0.15:
        threshold = rng.randrange(10)
        condition = (lambda payload, t=threshold:
                     isinstance(payload, dict)
                     and payload.get("severity", 0) >= t)
    priority = rng.randrange(5)
    make = deny if rng.random() < 0.25 else grant
    return make(expression, action, resource, propagation=propagation,
                condition=condition, priority=priority)


def random_policies(rng: random.Random, count: int) -> list[Policy]:
    return [random_policy(rng) for _ in range(count)]


def random_requests(rng: random.Random, count: int,
                    subject_count: int = 20) -> list[tuple]:
    directory = generate_population(subject_count, seed=rng.randrange(
        1 << 30))
    subjects = [directory.get(f"user{i:05d}")
                for i in range(subject_count)]
    requests = []
    for _ in range(count):
        head = rng.choice(HEADS + ("other", "r1"))
        path = rng.choice((
            f"{head}/records/r{rng.randrange(1, 40)}/chart",
            f"{head}/records/r{rng.randrange(1, 40)}",
            f"{head}/summary",
            head,
        ))
        payload = None
        if rng.random() < 0.2:
            payload = {"severity": rng.randrange(10)}
        requests.append((rng.choice(subjects),
                         rng.choice((Action.READ, Action.WRITE)),
                         path, payload))
    return requests
