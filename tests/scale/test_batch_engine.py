"""Batch-equivalence property: decide_batch == the serial decide loop.

The contract covers the full Decision (granted, determining policy,
applicable set, reason), the audit trail, and the decision cache —
across every conflict-resolution strategy, both defaults, payload
conditions, and many random workloads.
"""

import random

import pytest

from repro.core.audit import AuditLog
from repro.core.evaluator import (
    ConflictResolution,
    DefaultDecision,
    PolicyEvaluator,
)
from repro.core.policy import Action, PolicyBase, grant
from repro.datagen.population import generate_population
from repro.scale.batch import BatchDecisionEngine

from tests.scale.workloads import random_policies, random_requests


def build_base(seed: int, policy_count: int = 40) -> PolicyBase:
    rng = random.Random(seed)
    return PolicyBase(random_policies(rng, policy_count))


class TestBatchEquivalence:
    @pytest.mark.parametrize("resolution", list(ConflictResolution))
    @pytest.mark.parametrize("default", list(DefaultDecision))
    def test_batch_equals_sequential(self, resolution, default):
        for seed in range(6):
            base = build_base(seed)
            requests = random_requests(random.Random(1000 + seed), 120)
            serial = PolicyEvaluator(base, resolution, default)
            batch = BatchDecisionEngine(
                PolicyEvaluator(base, resolution, default))
            expected = [serial.decide(*r) for r in requests]
            actual = batch.decide_batch(requests)
            assert actual == expected, f"seed {seed} diverged"

    def test_many_seeds_default_config(self):
        for seed in range(25):
            base = build_base(seed, policy_count=25)
            requests = random_requests(random.Random(seed), 80)
            serial = PolicyEvaluator(base)
            batch = BatchDecisionEngine(PolicyEvaluator(base))
            assert batch.decide_batch(requests) == \
                [serial.decide(*r) for r in requests], f"seed {seed}"

    def test_triples_without_payload_accepted(self):
        base = build_base(3)
        requests = [r[:3] for r in
                    random_requests(random.Random(3), 40)]
        serial = PolicyEvaluator(base)
        batch = BatchDecisionEngine(PolicyEvaluator(base))
        assert batch.decide_batch(requests) == \
            [serial.decide(*r) for r in requests]

    def test_empty_batch(self):
        engine = BatchDecisionEngine(PolicyEvaluator(build_base(0)))
        assert engine.decide_batch([]) == []


class TestBatchSideEffects:
    def test_audit_records_match_serial_order(self):
        base = build_base(7)
        requests = random_requests(random.Random(7), 60)
        serial_log, batch_log = AuditLog(), AuditLog()
        serial = PolicyEvaluator(base, audit=serial_log)
        batch = BatchDecisionEngine(PolicyEvaluator(base,
                                                    audit=batch_log))
        for request in requests:
            serial.decide(*request)
        batch.decide_batch(requests)
        serial_records = [(r.subject, r.action, r.resource, r.granted)
                          for r in serial_log]
        batch_records = [(r.subject, r.action, r.resource, r.granted)
                         for r in batch_log]
        assert batch_records == serial_records

    def test_batch_fills_the_shared_decision_cache(self):
        base = build_base(11)
        evaluator = PolicyEvaluator(base)
        engine = BatchDecisionEngine(evaluator)
        requests = [r[:3] for r in
                    random_requests(random.Random(11), 50)]
        batched = engine.decide_batch(requests)
        # The serial path must now hit the cache the batch populated.
        before = evaluator.cache_stats["hits"]
        serial = [evaluator.decide(*r) for r in requests]
        assert serial == batched
        assert evaluator.cache_stats["hits"] >= before + len(requests)

    def test_batch_consumes_warm_cache_entries(self):
        base = build_base(13)
        evaluator = PolicyEvaluator(base)
        engine = BatchDecisionEngine(evaluator)
        requests = [r[:3] for r in
                    random_requests(random.Random(13), 30)]
        warm = [evaluator.decide(*r) for r in requests]
        assert engine.decide_batch(requests) == warm
        assert engine.stats.cache_hits == len(requests)

    def test_policy_mutation_between_batches_invalidates(self):
        directory = generate_population(4, seed=0)
        subject = directory.get("user00000")
        base = PolicyBase()
        engine = BatchDecisionEngine(PolicyEvaluator(base))
        triple = (subject, Action.READ, "hospital/records/r1/chart")
        assert not engine.decide_batch([triple])[0].granted
        base.add(grant(None, Action.READ, "hospital/**"))
        assert engine.decide_batch([triple])[0].granted

    def test_payload_decisions_not_cached(self):
        base = build_base(17)
        evaluator = PolicyEvaluator(base)
        engine = BatchDecisionEngine(evaluator)
        requests = [r for r in random_requests(random.Random(17), 60)
                    if r[3] is not None]
        assert requests, "workload should include payload requests"
        engine.decide_batch(requests)
        engine.decide_batch(requests)
        assert engine.stats.cache_hits == 0

    def test_amortization_counters(self):
        base = build_base(19)
        engine = BatchDecisionEngine(PolicyEvaluator(base))
        directory = generate_population(10, seed=19)
        subjects = [directory.get(f"user{i:05d}") for i in range(10)]
        # 10 subjects x 1 path: one group, resource checks once, and
        # subject qualification once per (policy, subject) pair.
        requests = [(s, Action.READ, "hospital/records/r5/chart")
                    for s in subjects]
        engine.decide_batch(requests + requests)
        assert engine.stats.groups == 1
        assert engine.stats.subject_reuses > 0
