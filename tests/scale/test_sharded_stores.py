"""Sharded store equivalence: relational, XML, and UDDI wrappers answer
exactly as their monolithic counterparts holding the same content."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.errors import AccessDenied, RegistryError
from repro.relational.authorization import Privilege
from repro.relational.database import Database
from repro.relational.table import Column, ColumnType, TableSchema
from repro.scale.registry import ShardedUddiRegistry
from repro.scale.relational import ShardedDatabase
from repro.scale.xmlstore import ShardedCollection, ShardedXmlDatabase
from repro.uddi.model import (
    BusinessEntity,
    BusinessService,
    PublisherAssertion,
    TModel,
)
from repro.uddi.registry import UddiRegistry
from repro.xmldb.database import Collection
from repro.xmldb.parser import parse


def schema(name: str) -> TableSchema:
    return TableSchema(name, (Column("id", ColumnType.INT),
                              Column("val", ColumnType.TEXT)))


def build_databases(table_count=10, rows=15):
    mono = Database("mono")
    sharded = ShardedDatabase(shard_count=4)
    for t in range(table_count):
        name = f"t{t:02d}"
        mono.create_table(schema(name), owner="dba")
        sharded.create_table(schema(name), owner="dba")
        mono.authorization.grant("dba", "reader", name,
                                 Privilege.SELECT)
        sharded.grant("dba", "reader", name, Privilege.SELECT)
        for r in range(rows):
            mono.insert("dba", name, id=r, val=f"v{t}-{r}")
            sharded.insert("dba", name, id=r, val=f"v{t}-{r}")
    return mono, sharded


class TestShardedDatabase:
    def test_selects_equal_monolithic(self):
        mono, sharded = build_databases()
        for name in mono.table_names():
            assert sharded.select("reader", name, order_by="id").rows \
                == mono.select("reader", name, order_by="id").rows

    def test_table_names_sorted_union(self):
        mono, sharded = build_databases()
        assert sharded.table_names() == mono.table_names()

    def test_enforcement_is_per_shard_but_complete(self):
        _, sharded = build_databases(table_count=6)
        # No grant for 'stranger' anywhere: every table denies.
        for name in sharded.table_names():
            with pytest.raises(AccessDenied):
                sharded.select("stranger", name)

    def test_cross_shard_join(self):
        mono, sharded = build_databases(table_count=4, rows=8)
        joined_sharded = sharded.join("reader", "t00", "t03",
                                      on=("id", "id"))
        joined_mono = mono.join("reader", "t00", "t03", on=("id", "id"))
        assert joined_sharded.rows == joined_mono.rows

    def test_select_many_deterministic_and_complete(self):
        mono, sharded = build_databases(table_count=8, rows=5)
        names = mono.table_names()
        gathered = sharded.select_many("reader", names, columns=["id"])
        assert [name for name, _ in gathered] == sorted(names)
        for name, result in gathered:
            assert result.rows == mono.select("reader", name,
                                              columns=["id"]).rows

    def test_select_many_parallel_equals_serial(self):
        with ThreadPoolExecutor(max_workers=4) as pool:
            mono, _ = build_databases(table_count=8, rows=5)
            sharded = ShardedDatabase(shard_count=4, executor=pool)
            for t in range(8):
                name = f"t{t:02d}"
                sharded.create_table(schema(name), owner="dba")
                sharded.grant("dba", "reader", name, Privilege.SELECT)
                for r in range(5):
                    sharded.insert("dba", name, id=r, val=f"v{t}-{r}")
            names = mono.table_names()
            gathered = sharded.select_many("reader", names)
            assert [(n, r.rows) for n, r in gathered] == \
                [(n, mono.select("reader", n).rows) for n in sorted(names)]

    def test_select_many_denied_table_fails_whole_request(self):
        _, sharded = build_databases(table_count=4)
        sharded.create_table(schema("secret"), owner="dba")
        with pytest.raises(AccessDenied):
            sharded.select_many("reader", ["t00", "secret"])

    def test_per_shard_auth_generations(self):
        _, sharded = build_databases(table_count=6)
        before = sharded.generation_stamps()
        target = "t00"
        shard = sharded.shard_index(target)
        sharded.grant("dba", "writer", target, Privilege.INSERT)
        after = sharded.generation_stamps()
        assert after[shard] != before[shard]
        assert all(after[i] == before[i]
                   for i in range(len(before)) if i != shard)


class TestShardedXmlStore:
    def make_pair(self, docs=30):
        mono = Collection("c")
        sharded = ShardedCollection("c", shard_count=4)
        for i in range(docs):
            document = parse(
                f"<rec><id>{i}</id><name>n{i}</name>"
                f"<dept>d{i % 5}</dept></rec>", name=f"doc{i:03d}")
            mono.insert(f"doc{i:03d}", document)
            sharded.insert(f"doc{i:03d}", document)
        return mono, sharded

    def test_query_equals_monolithic(self):
        mono, sharded = self.make_pair()
        for xpath in ("/rec/name", "/rec/name/text()",
                      "//rec[dept='d2']/id", "/rec"):
            assert sharded.query(xpath) == mono.query(xpath)

    def test_parallel_query_equals_serial(self):
        with ThreadPoolExecutor(max_workers=4) as pool:
            mono = Collection("c")
            parallel = ShardedCollection("c", shard_count=4,
                                         executor=pool)
            for i in range(30):
                document = parse(f"<rec><id>{i}</id></rec>",
                                 name=f"doc{i:03d}")
                mono.insert(f"doc{i:03d}", document)
                parallel.insert(f"doc{i:03d}", document)
            assert parallel.query("/rec/id/text()") == \
                mono.query("/rec/id/text()")

    def test_lifecycle_and_doc_ids(self):
        mono, sharded = self.make_pair(docs=12)
        assert sharded.doc_ids() == mono.doc_ids()
        assert len(sharded) == len(mono)
        assert "doc003" in sharded
        sharded.delete("doc003")
        mono.delete("doc003")
        assert sharded.doc_ids() == mono.doc_ids()
        assert "doc003" not in sharded

    def test_sharded_database_facade(self):
        db = ShardedXmlDatabase(shard_count=3)
        collection = db.create_collection("records")
        collection.insert("d1", "<rec><id>1</id></rec>")
        db.set_metadata("records", "policy", "closed")
        assert db.get_metadata("records", "policy") == "closed"
        assert db.collection_names() == ["records"]
        assert db.total_documents() == 1
        assert db.query("records", "/rec/id/text()") == [("d1", "1")]


def make_registries(businesses=20):
    mono = UddiRegistry("mono")
    sharded = ShardedUddiRegistry(shard_count=4)
    for i in range(businesses):
        entity = BusinessEntity(
            business_key=f"biz-{i:03d}", name=f"Corp {i}",
            description=f"vendor {i}",
            services=(BusinessService(
                service_key=f"svc-{i:03d}", name=f"service {i}",
                category="payments" if i % 2 else "logistics"),))
        mono.save_business(entity, publisher=f"pub{i % 3}")
        sharded.save_business(entity, publisher=f"pub{i % 3}")
    return mono, sharded


class TestShardedUddiRegistry:
    def test_finds_equal_monolithic(self):
        mono, sharded = make_registries()
        assert sharded.find_business("*") == mono.find_business("*")
        assert sharded.find_service("*") == mono.find_service("*")
        assert sharded.find_service("*", category="payments") == \
            mono.find_service("*", category="payments")

    def test_state_digest_byte_identical(self):
        mono, sharded = make_registries()
        assert sharded.state_digest() == mono.state_digest()
        tmodel = TModel(tmodel_key="tm-1", name="https-binding")
        mono.save_tmodel(tmodel, publisher="pub0")
        sharded.save_tmodel(tmodel, publisher="pub0")
        assert sharded.state_digest() == mono.state_digest()

    def test_drill_down_probes(self):
        mono, sharded = make_registries()
        assert sharded.get_business_detail("biz-004") == \
            mono.get_business_detail("biz-004")
        assert sharded.get_service_detail("svc-007") == \
            mono.get_service_detail("svc-007")
        with pytest.raises(RegistryError):
            sharded.get_service_detail("svc-999")

    def test_mutual_assertions_across_shards(self):
        mono, sharded = make_registries(businesses=10)
        pairs = [("biz-000", "biz-007"), ("biz-003", "biz-005")]
        for left, right in pairs:
            for registry in (mono, sharded):
                registry.add_assertion(
                    PublisherAssertion(left, right, "partner"),
                    publisher=registry.owner_of(left))
                registry.add_assertion(
                    PublisherAssertion(right, left, "partner"),
                    publisher=registry.owner_of(right))
        # One-sided assertion: must stay invisible in both.
        for registry in (mono, sharded):
            registry.add_assertion(
                PublisherAssertion("biz-001", "biz-002", "partner"),
                publisher=registry.owner_of("biz-001"))
        for key in [f"biz-{i:03d}" for i in range(10)]:
            assert sharded.find_related_businesses(key) == \
                mono.find_related_businesses(key)
        assert sharded.state_digest() == mono.state_digest()

    def test_delete_purges_assertions_on_other_shards(self):
        mono, sharded = make_registries(businesses=8)
        for registry in (mono, sharded):
            registry.add_assertion(
                PublisherAssertion("biz-000", "biz-001", "partner"),
                publisher=registry.owner_of("biz-000"))
            registry.add_assertion(
                PublisherAssertion("biz-001", "biz-000", "partner"),
                publisher=registry.owner_of("biz-001"))
        owner = mono.owner_of("biz-001")
        mono.delete_business("biz-001", owner)
        sharded.delete_business("biz-001", owner)
        assert sharded.find_related_businesses("biz-000") == \
            mono.find_related_businesses("biz-000") == []
        assert sharded.state_digest() == mono.state_digest()

    def test_ownership_enforced_through_routing(self):
        _, sharded = make_registries(businesses=6)
        with pytest.raises(RegistryError):
            sharded.delete_business("biz-000", "not-the-owner")
        with pytest.raises(RegistryError):
            sharded.add_assertion(
                PublisherAssertion("biz-000", "biz-001", "partner"),
                publisher="not-the-owner")

    def test_idempotent_writes_replay_across_retries(self):
        _, sharded = make_registries(businesses=4)
        entity = BusinessEntity(business_key="biz-new", name="New Corp")
        sharded.save_business(entity, "pub9", idempotency_key="op-1")
        before = sharded.publish_count
        sharded.save_business(entity, "pub9", idempotency_key="op-1")
        assert sharded.publish_count == before
        assert sharded.has_applied("op-1")
