"""Shard-aware cache generation stamps.

The regression this file pins down: with one global generation counter,
a policy write anywhere stales every warm decision.  With
:class:`ShardedGeneration`, a write to shard A bumps only shard A's
stamp — shard B's warm cache entries keep hitting.
"""

import pytest

from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import Action, PolicyBase, grant
from repro.datagen.population import generate_population
from repro.perf.cache import ShardedGeneration
from repro.relational.authorization import Privilege
from repro.relational.table import Column, ColumnType, TableSchema
from repro.scale.engine import ShardedPolicyEngine
from repro.scale.relational import ShardedDatabase


class TestShardedGenerationApi:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ShardedGeneration(0)

    def test_bump_is_per_shard(self):
        generations = ShardedGeneration(4)
        assert generations.shard_count == 4
        before = generations.stamps()
        generations.bump(2)
        after = generations.stamps()
        assert after[2] != before[2]
        assert all(after[i] == before[i] for i in (0, 1, 3))
        assert generations.stamp(2) == after[2]

    def test_hooks_fire_only_for_their_shard(self):
        generations = ShardedGeneration(3)
        fired: list[int] = []
        for shard in range(3):
            generations.add_hook(shard,
                                 lambda shard=shard: fired.append(shard))
        generations.bump(1)
        generations.bump(1)
        generations.bump(2)
        assert fired == [1, 1, 2]


def distinct_shard_heads(engine: ShardedPolicyEngine,
                         count: int) -> list[tuple[int, str]]:
    """(shard, head) pairs landing on *count* different shards."""
    chosen: dict[int, str] = {}
    i = 0
    while len(chosen) < count:
        head = f"zone{i}"
        shard = engine.shard_for_path(f"{head}/x")
        if shard not in chosen:
            chosen[shard] = head
        i += 1
    return list(chosen.items())


class TestWarmCacheSurvivesOtherShardWrites:
    def test_engine_write_stales_only_its_own_shard(self):
        engine = ShardedPolicyEngine(shard_count=4)
        (shard_a, head_a), (shard_b, head_b) = \
            distinct_shard_heads(engine, 2)
        engine.add(grant(None, Action.READ, f"{head_a}/**"))
        engine.add(grant(None, Action.READ, f"{head_b}/**"))
        subject = generate_population(2, seed=0).get("user00000")
        path_a, path_b = f"{head_a}/records/r1", f"{head_b}/records/r1"
        warm_a = engine.decide(subject, Action.READ, path_a)
        warm_b = engine.decide(subject, Action.READ, path_b)

        stamps = engine.generations.stamps()
        engine.add(grant(None, Action.WRITE, f"{head_a}/private/**"))
        after = engine.generations.stamps()
        assert after[shard_a] != stamps[shard_a]
        assert after[shard_b] == stamps[shard_b]

        # Shard B's warm entry survives the shard-A write ...
        hits_b = engine.evaluator(shard_b).cache_stats["hits"]
        assert engine.decide(subject, Action.READ, path_b) == warm_b
        assert engine.evaluator(shard_b).cache_stats["hits"] == hits_b + 1
        # ... while shard A's own entry was (correctly) staled.
        hits_a = engine.evaluator(shard_a).cache_stats["hits"]
        assert engine.decide(subject, Action.READ, path_a) == warm_a
        assert engine.evaluator(shard_a).cache_stats["hits"] == hits_a

    def test_monolithic_contrast_global_stamp_stales_everything(self):
        subject = generate_population(2, seed=0).get("user00000")
        base = PolicyBase([grant(None, Action.READ, "zone0/**"),
                           grant(None, Action.READ, "zone1/**")])
        evaluator = PolicyEvaluator(base)
        warm = evaluator.decide(subject, Action.READ, "zone1/records/r1")
        hits = evaluator.cache_stats["hits"]
        # A write about zone0 — unrelated to the warm zone1 entry.
        base.add(grant(None, Action.WRITE, "zone0/private/**"))
        assert evaluator.decide(subject, Action.READ,
                                "zone1/records/r1") == warm
        assert evaluator.cache_stats["hits"] == hits  # staled: a miss

    def test_broadcast_write_stales_every_shard(self):
        engine = ShardedPolicyEngine(shard_count=4)
        stamps = engine.generations.stamps()
        engine.add(grant(None, Action.READ, "**"))
        after = engine.generations.stamps()
        assert all(after[i] != stamps[i] for i in range(4))


class TestShardedDatabaseStamps:
    def test_grant_bumps_only_owning_shard(self):
        db = ShardedDatabase(shard_count=4)
        for t in range(8):
            db.create_table(
                TableSchema(f"t{t}", (Column("id", ColumnType.INT),)),
                owner="dba")
        before = db.generation_stamps()
        db.grant("dba", "reader", "t3", Privilege.SELECT)
        after = db.generation_stamps()
        shard = db.shard_index("t3")
        assert after[shard] != before[shard]
        assert all(after[i] == before[i]
                   for i in range(len(before)) if i != shard)

    def test_revoke_bumps_like_grant(self):
        db = ShardedDatabase(shard_count=4)
        db.create_table(
            TableSchema("t0", (Column("id", ColumnType.INT),)),
            owner="dba")
        db.grant("dba", "reader", "t0", Privilege.SELECT)
        before = db.generation_stamps()
        db.revoke("dba", "reader", "t0", Privilege.SELECT)
        after = db.generation_stamps()
        shard = db.shard_index("t0")
        assert after[shard] != before[shard]
        assert all(after[i] == before[i]
                   for i in range(len(before)) if i != shard)
