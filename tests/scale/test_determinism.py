"""Determinism of sharded results: ordering must not depend on shard
count, insertion order, or dict/set iteration order.

Every scatter-gather merge in :mod:`repro.scale` sorts by a canonical
key before returning, so a sharded store answers byte-for-byte like its
monolithic counterpart no matter how the content was spread or in what
order it arrived.
"""

import random

import pytest

from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import PolicyBase
from repro.relational.authorization import Privilege
from repro.relational.table import Column, ColumnType, TableSchema
from repro.scale.engine import ShardedPolicyEngine
from repro.scale.registry import ShardedUddiRegistry
from repro.scale.relational import ShardedDatabase
from repro.scale.xmlstore import ShardedCollection
from repro.uddi.model import BusinessEntity
from repro.xmldb.parser import parse

from tests.scale.workloads import random_policies, random_requests

SHARD_COUNTS = (1, 2, 3, 5, 8)


class TestEngineInsertionOrder:
    @pytest.mark.parametrize("shard_count", SHARD_COUNTS)
    def test_policy_insertion_order_is_irrelevant(self, shard_count):
        rng = random.Random(31)
        policies = random_policies(rng, 40)
        shuffled = list(policies)
        random.Random(32).shuffle(shuffled)
        ordered = ShardedPolicyEngine(shard_count=shard_count)
        scrambled = ShardedPolicyEngine(shard_count=shard_count)
        for policy in policies:
            ordered.add(policy)
        for policy in shuffled:
            scrambled.add(policy)
        requests = random_requests(random.Random(33), 80)
        assert ordered.decide_batch(requests) == \
            scrambled.decide_batch(requests)

    def test_shard_count_is_irrelevant(self):
        rng = random.Random(34)
        policies = random_policies(rng, 40)
        mono = PolicyEvaluator(PolicyBase(policies))
        requests = random_requests(random.Random(35), 60)
        expected = [mono.decide(*r) for r in requests]
        for shard_count in SHARD_COUNTS:
            engine = ShardedPolicyEngine(shard_count=shard_count)
            for policy in policies:
                engine.add(policy)
            assert engine.decide_batch(requests) == expected

    def test_policies_listing_is_sorted_and_deduped(self):
        rng = random.Random(36)
        policies = random_policies(rng, 30)
        engine = ShardedPolicyEngine(shard_count=4)
        for policy in reversed(policies):
            engine.add(policy)
        listed = list(engine.policies())
        assert listed == sorted(listed, key=lambda p: p.policy_id)
        assert len(listed) == len(policies)


class TestRelationalOrdering:
    def build(self, table_order):
        db = ShardedDatabase(shard_count=4)
        for name in table_order:
            db.create_table(
                TableSchema(name, (Column("id", ColumnType.INT),)),
                owner="dba")
            db.grant("dba", "reader", name, Privilege.SELECT)
            for r in range(4):
                db.insert("dba", name, id=r)
        return db

    def test_table_names_and_select_many_order(self):
        names = [f"t{i:02d}" for i in range(10)]
        shuffled = list(names)
        random.Random(41).shuffle(shuffled)
        a, b = self.build(names), self.build(shuffled)
        assert a.table_names() == b.table_names() == sorted(names)
        gather_a = a.select_many("reader", shuffled)
        gather_b = b.select_many("reader", names)
        assert [n for n, _ in gather_a] == sorted(names)
        assert [(n, r.rows) for n, r in gather_a] == \
            [(n, r.rows) for n, r in gather_b]


class TestXmlOrdering:
    def test_query_order_survives_insertion_shuffle(self):
        ids = [f"doc{i:03d}" for i in range(20)]
        documents = {
            doc_id: parse(f"<rec><id>{i}</id></rec>", name=doc_id)
            for i, doc_id in enumerate(ids)}
        shuffled = list(ids)
        random.Random(51).shuffle(shuffled)
        ordered = ShardedCollection("c", shard_count=4)
        scrambled = ShardedCollection("c", shard_count=4)
        for doc_id in ids:
            ordered.insert(doc_id, documents[doc_id])
        for doc_id in shuffled:
            scrambled.insert(doc_id, documents[doc_id])
        assert ordered.doc_ids() == scrambled.doc_ids() == sorted(ids)
        assert ordered.query("/rec/id/text()") == \
            scrambled.query("/rec/id/text()")


class TestUddiOrdering:
    def build(self, order):
        registry = ShardedUddiRegistry(shard_count=4)
        for i in order:
            registry.save_business(
                BusinessEntity(business_key=f"biz-{i:03d}",
                               name=f"Corp {i}"),
                publisher=f"pub{i % 3}")
        return registry

    def test_find_and_digest_survive_insertion_shuffle(self):
        order = list(range(15))
        shuffled = list(order)
        random.Random(61).shuffle(shuffled)
        a, b = self.build(order), self.build(shuffled)
        assert a.find_business("*") == b.find_business("*")
        assert a.state_digest() == b.state_digest()
