"""RequestGateway: admission control, batching, ordering, lifecycle."""

import random

import pytest

from repro.core.errors import AdmissionRejected
from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import PolicyBase
from repro.scale.batch import BatchDecisionEngine
from repro.scale.engine import ShardedPolicyEngine
from repro.scale.gateway import Request, RequestGateway

from tests.scale.workloads import random_policies, random_requests


def build_engine(seed=5, shards=4):
    rng = random.Random(seed)
    policies = random_policies(rng, 30)
    engine = ShardedPolicyEngine(shard_count=shards)
    for policy in policies:
        engine.add(policy)
    return policies, engine


class TestAdmission:
    def test_queue_limit_sheds_load_with_typed_error(self):
        _, engine = build_engine()
        gateway = RequestGateway(engine, workers=0, queue_limit=5)
        requests = random_requests(random.Random(1), 10)
        admitted = 0
        rejected = 0
        for r in requests:
            try:
                gateway.submit(Request(*r))
                admitted += 1
            except AdmissionRejected:
                rejected += 1
        assert admitted == 5 and rejected == 5
        stats = gateway.stats.snapshot()
        assert stats["admitted"] == 5 and stats["rejected"] == 5
        gateway.process_pending()

    def test_rejected_request_was_never_evaluated(self):
        _, engine = build_engine()
        gateway = RequestGateway(engine, workers=0, queue_limit=1)
        requests = random_requests(random.Random(2), 3)
        gateway.submit(Request(*requests[0]))
        with pytest.raises(AdmissionRejected):
            gateway.submit(Request(*requests[1]))
        gateway.process_pending()
        assert gateway.stats.snapshot()["completed"] == 1

    def test_submit_after_close_rejected(self):
        _, engine = build_engine()
        gateway = RequestGateway(engine, workers=0)
        gateway.close()
        with pytest.raises(AdmissionRejected):
            gateway.submit(Request(*random_requests(
                random.Random(3), 1)[0]))


class TestSynchronousPipeline:
    def test_results_match_serial_evaluation(self):
        policies, engine = build_engine(seed=7)
        mono = PolicyEvaluator(PolicyBase(policies))
        requests = random_requests(random.Random(7), 60)
        gateway = RequestGateway(engine, workers=0, batch_size=16)
        futures = [gateway.submit(Request(*r)) for r in requests]
        processed = gateway.process_pending()
        assert processed == len(requests)
        assert [f.result() for f in futures] == \
            [mono.decide(*r) for r in requests]

    def test_monolithic_batch_engine_works_too(self):
        policies, _ = build_engine(seed=8)
        mono = PolicyEvaluator(PolicyBase(policies))
        batch = BatchDecisionEngine(PolicyEvaluator(PolicyBase(policies)))
        requests = random_requests(random.Random(8), 30)
        gateway = RequestGateway(batch, workers=0)
        futures = [gateway.submit(Request(*r)) for r in requests]
        gateway.process_pending()
        assert [f.result() for f in futures] == \
            [mono.decide(*r) for r in requests]

    def test_stage_counters(self):
        _, engine = build_engine(seed=9)
        requests = random_requests(random.Random(9), 40)
        gateway = RequestGateway(engine, workers=0, batch_size=8)
        for r in requests:
            gateway.submit(Request(*r))
        gateway.process_pending()
        stats = gateway.stats.snapshot()
        assert stats["admitted"] == stats["completed"] == 40
        assert stats["batches"] == 5
        assert stats["failed"] == 0
        assert stats["queue_wait_s"] >= 0
        assert stats["evaluate_s"] > 0

    def test_validation_of_parameters(self):
        _, engine = build_engine()
        with pytest.raises(ValueError):
            RequestGateway(engine, workers=0, queue_limit=0)
        with pytest.raises(ValueError):
            RequestGateway(engine, workers=0, batch_size=0)


class TestThreadedPipeline:
    def test_workers_produce_serial_answers(self):
        policies, engine = build_engine(seed=11, shards=8)
        mono = PolicyEvaluator(PolicyBase(policies))
        requests = random_requests(random.Random(11), 120)
        with RequestGateway(engine, workers=4, batch_size=32) as gateway:
            futures = [gateway.submit(Request(*r)) for r in requests]
            results = [f.result(timeout=30) for f in futures]
        assert results == [mono.decide(*r) for r in requests]

    def test_close_drains_admitted_work(self):
        _, engine = build_engine(seed=12)
        gateway = RequestGateway(engine, workers=2, batch_size=8)
        futures = [gateway.submit(Request(*r))
                   for r in random_requests(random.Random(12), 30)]
        gateway.close()
        assert all(f.done() for f in futures)
        assert gateway.stats.snapshot()["completed"] == 30

    def test_close_without_drain_fails_pending(self):
        _, engine = build_engine(seed=13)
        gateway = RequestGateway(engine, workers=0)
        futures = [gateway.submit(Request(*r))
                   for r in random_requests(random.Random(13), 5)]
        gateway.close(drain=False)
        for future in futures:
            with pytest.raises(AdmissionRejected):
                future.result()
