"""Sharding-equivalence property: sharded engine == monolithic evaluator.

Routing literal-head policies to the ring owner of their head and
broadcasting glob-head policies to every shard must leave each request's
candidate set — and therefore its Decision — exactly what the
monolithic policy base would produce.
"""

import random

import pytest

from repro.core.evaluator import (
    ConflictResolution,
    DefaultDecision,
    PolicyEvaluator,
)
from repro.core.policy import PolicyBase, grant
from repro.scale.engine import ShardedPolicyEngine, is_broadcast

from tests.scale.workloads import random_policies, random_requests


def build_sharded(policies, shard_count, **kwargs):
    engine = ShardedPolicyEngine(shard_count=shard_count, **kwargs)
    for policy in policies:
        engine.add(policy)
    return engine


class TestShardingEquivalence:
    @pytest.mark.parametrize("shard_count", [1, 2, 3, 5, 8])
    def test_decide_matches_monolithic(self, shard_count):
        for seed in range(5):
            rng = random.Random(seed)
            policies = random_policies(rng, 40)
            mono = PolicyEvaluator(PolicyBase(policies))
            sharded = build_sharded(policies, shard_count)
            for request in random_requests(random.Random(seed), 80):
                assert sharded.decide(*request) == mono.decide(*request)

    @pytest.mark.parametrize("resolution", list(ConflictResolution))
    def test_resolutions_survive_sharding(self, resolution):
        rng = random.Random(42)
        policies = random_policies(rng, 50)
        mono = PolicyEvaluator(PolicyBase(policies), resolution,
                               DefaultDecision.OPEN)
        sharded = build_sharded(policies, 4, resolution=resolution,
                                default=DefaultDecision.OPEN)
        for request in random_requests(random.Random(43), 60):
            assert sharded.decide(*request) == mono.decide(*request)

    def test_batch_matches_monolithic_serial(self):
        for seed in range(8):
            rng = random.Random(seed)
            policies = random_policies(rng, 35)
            mono = PolicyEvaluator(PolicyBase(policies))
            sharded = build_sharded(policies, 4)
            requests = random_requests(random.Random(seed + 500), 100)
            assert sharded.decide_batch(requests) == \
                [mono.decide(*r) for r in requests], f"seed {seed}"

    def test_batch_results_align_with_input_order(self):
        rng = random.Random(9)
        policies = random_policies(rng, 30)
        sharded = build_sharded(policies, 4)
        requests = random_requests(random.Random(9), 50)
        decisions = sharded.decide_batch(requests)
        assert len(decisions) == len(requests)
        singles = [sharded.decide(*r) for r in requests]
        assert decisions == singles


class TestPolicyPlacement:
    def test_broadcast_policies_live_on_every_shard(self):
        engine = ShardedPolicyEngine(shard_count=4)
        glob_policy = grant(None, resource="**")
        literal_policy = grant(None, resource="hospital/records/**")
        assert is_broadcast(glob_policy)
        assert not is_broadcast(literal_policy)
        assert engine.shards_for_policy(glob_policy) == (0, 1, 2, 3)
        assert len(engine.shards_for_policy(literal_policy)) == 1

    def test_policies_deduplicates_broadcast(self):
        engine = ShardedPolicyEngine(shard_count=4)
        engine.add(grant(None, resource="**"))
        engine.add(grant(None, resource="hospital/**"))
        assert len(engine) == 2

    def test_remove_routes_like_add(self):
        rng = random.Random(21)
        policies = random_policies(rng, 30)
        engine = build_sharded(policies, 4)
        for policy in policies:
            engine.remove(policy)
        assert len(engine) == 0
        for shard in range(4):
            assert len(engine.base(shard)) == 0

    def test_per_shard_generations_bump_independently(self):
        engine = ShardedPolicyEngine(shard_count=4)
        stamps = engine.generations.stamps()
        policy = grant(None, resource="hospital/records/**")
        (shard,) = engine.shards_for_policy(policy)
        engine.add(policy)
        after = engine.generations.stamps()
        assert after[shard] != stamps[shard]
        assert all(after[i] == stamps[i]
                   for i in range(4) if i != shard)

    def test_broadcast_add_bumps_every_shard(self):
        engine = ShardedPolicyEngine(shard_count=4)
        stamps = engine.generations.stamps()
        engine.add(grant(None, resource="**"))
        after = engine.generations.stamps()
        assert all(after[i] != stamps[i] for i in range(4))
