"""Tests for the third-party publishing protocol (owner/publisher/subject)."""

import pytest

from repro.core.credentials import anyone, has_role
from repro.core.errors import (
    AuthenticationError,
    CompletenessError,
    IntegrityError,
    RegistryError,
)
from repro.core.subjects import Role, Subject
from repro.xmldb.parser import parse
from repro.xmlsec.authorx import XmlPolicyBase, xml_deny, xml_grant
from repro.pubsub import (
    MaliciousPublisher,
    Owner,
    Publisher,
    SubjectVerifier,
    credential_digest,
)

DOCTOR = Subject("dr", roles={Role("doctor")})
NURSE = Subject("nn", roles={Role("nurse")})


def build_world():
    base = XmlPolicyBase([
        xml_grant(has_role("doctor"), "/hospital"),
        xml_deny(anyone(), "//ssn"),
        xml_grant(has_role("nurse"), "//record/name"),
    ])
    owner = Owner("hospital", base, key_seed=7)
    owner.add_document("records", parse(
        '<hospital><record id="r1"><name>Alice</name>'
        '<diagnosis>flu</diagnosis><ssn>123</ssn></record>'
        '<record id="r2"><name>Bob</name><diagnosis>cold</diagnosis>'
        '<ssn>456</ssn></record></hospital>'))
    owner.add_document("annex", parse(
        '<hospital><record id="r9"><name>Zed</name>'
        '<diagnosis>ok</diagnosis><ssn>789</ssn></record></hospital>'))
    return base, owner


class TestOwner:
    def test_summary_signature_verifies(self):
        _base, owner = build_world()
        summary = owner.summary_signature("records")
        assert summary.verify(owner.public_key)

    def test_policy_map_verifies(self):
        _base, owner = build_world()
        assert owner.policy_map("records").verify(owner.public_key)

    def test_ticket_binds_credentials(self):
        _base, owner = build_world()
        ticket = owner.issue_ticket(DOCTOR)
        assert ticket.verify(owner.public_key)
        assert ticket.credential_digest == credential_digest(DOCTOR)

    def test_credential_digest_sensitive_to_roles(self):
        assert credential_digest(DOCTOR) != credential_digest(NURSE)


class TestHonestPublisher:
    def test_doctor_answer_verifies(self):
        base, owner = build_world()
        publisher = Publisher()
        owner.publish_to(publisher)
        answer = publisher.request(DOCTOR, "records")
        verifier = SubjectVerifier(DOCTOR, owner.public_key, base)
        report = verifier.verify(answer)
        assert report.ok
        assert not report.over_delivered_paths

    def test_nurse_answer_verifies_with_content_fillers(self):
        base, owner = build_world()
        publisher = Publisher()
        owner.publish_to(publisher)
        answer = publisher.request(NURSE, "records")
        assert answer.fillers.contents  # stripped connectors
        report = SubjectVerifier(NURSE, owner.public_key, base).verify(
            answer)
        assert report.ok

    def test_unknown_document_raises(self):
        _base, owner = build_world()
        publisher = Publisher()
        owner.publish_to(publisher)
        with pytest.raises(RegistryError):
            publisher.request(DOCTOR, "ghost")

    def test_unfed_publisher_raises(self):
        with pytest.raises(RegistryError):
            Publisher().request(DOCTOR, "records")

    def test_entitled_paths_differ_by_subject(self):
        base, owner = build_world()
        publisher = Publisher()
        owner.publish_to(publisher)
        answer = publisher.request(DOCTOR, "records")
        doctor_paths = SubjectVerifier(
            DOCTOR, owner.public_key, base).entitled_paths(answer)
        nurse_paths = SubjectVerifier(
            NURSE, owner.public_key, base).entitled_paths(answer)
        assert nurse_paths < doctor_paths
        assert not any("ssn" in path for path in doctor_paths)


class TestAttacks:
    @pytest.mark.parametrize("mode,authentic,complete", [
        ("tamper", False, True),
        ("omit", False, False),
        ("swap", False, True),
    ])
    def test_attack_detection(self, mode, authentic, complete):
        base, owner = build_world()
        publisher = MaliciousPublisher(mode)
        owner.publish_to(publisher)
        answer = publisher.request(DOCTOR, "records")
        report = SubjectVerifier(DOCTOR, owner.public_key, base).verify(
            answer)
        assert report.authentic is authentic
        assert report.complete is complete

    def test_tamper_raises_integrity_error(self):
        base, owner = build_world()
        publisher = MaliciousPublisher("tamper")
        owner.publish_to(publisher)
        answer = publisher.request(DOCTOR, "records")
        verifier = SubjectVerifier(DOCTOR, owner.public_key, base)
        with pytest.raises(IntegrityError):
            verifier.check_authenticity(answer)

    def test_swap_raises_authentication_error(self):
        base, owner = build_world()
        publisher = MaliciousPublisher("swap")
        owner.publish_to(publisher)
        answer = publisher.request(DOCTOR, "records")
        verifier = SubjectVerifier(DOCTOR, owner.public_key, base)
        with pytest.raises(AuthenticationError):
            verifier.check_authenticity(answer)

    def test_omit_raises_completeness_error(self):
        base, owner = build_world()
        publisher = MaliciousPublisher("omit")
        owner.publish_to(publisher)
        answer = publisher.request(DOCTOR, "records")
        verifier = SubjectVerifier(DOCTOR, owner.public_key, base)
        with pytest.raises(CompletenessError):
            verifier.check_completeness(answer)

    def test_unknown_attack_mode_rejected(self):
        with pytest.raises(RegistryError):
            MaliciousPublisher("explode")
