"""Checkpoint files: atomicity, digest-keyed skips, fail-closed reads."""

import pytest

from repro.core.errors import WalCorrupt
from repro.wal.checkpoint import (
    CheckpointStore,
    checkpoint_name,
    decode_checkpoint,
    encode_checkpoint,
    parse_checkpoint_name,
)
from repro.wal.vfs import MemVfs


class TestEncoding:
    def test_round_trip(self):
        data = encode_checkpoint(42, "digest-abc", b"payload")
        assert decode_checkpoint(data) == (42, "digest-abc", b"payload")

    def test_any_flipped_byte_is_refused(self):
        data = bytearray(encode_checkpoint(42, "digest-abc", b"payload"))
        for offset in range(len(data)):
            damaged = bytearray(data)
            damaged[offset] ^= 0xFF
            with pytest.raises(WalCorrupt):
                decode_checkpoint(bytes(damaged))

    def test_truncated_file_is_refused(self):
        data = encode_checkpoint(42, "digest-abc", b"payload")
        with pytest.raises(WalCorrupt):
            decode_checkpoint(data[:10])

    def test_name_round_trip(self):
        assert parse_checkpoint_name(checkpoint_name(7)) == 7
        assert parse_checkpoint_name("ckpt-abc.rckp") is None


class TestStore:
    def test_latest_returns_newest(self):
        store = CheckpointStore(MemVfs())
        assert store.latest() is None
        store.write(5, "d5", b"five")
        store.write(9, "d9", b"nine")
        assert store.latest() == (9, "d9", b"nine")

    def test_unchanged_digest_skips_the_write(self):
        store = CheckpointStore(MemVfs())
        assert store.write(5, "same", b"five") is True
        assert store.write(9, "same", b"nine") is False
        assert store.latest()[0] == 5
        assert (store.written, store.skipped) == (1, 1)

    def test_write_is_atomic_under_power_loss(self):
        vfs = MemVfs()
        store = CheckpointStore(vfs)
        store.write(5, "d5", b"five")
        store.write(9, "d9", b"nine" * 100)
        # The rename only ever exposes fully-synced bytes: power loss
        # right after the write leaves both checkpoints intact.
        vfs.crash()
        assert CheckpointStore(vfs).latest() == (9, "d9", b"nine" * 100)

    def test_corrupt_newest_fails_closed(self):
        vfs = MemVfs()
        store = CheckpointStore(vfs)
        store.write(5, "d5", b"five")
        store.write(9, "d9", b"nine")
        vfs.corrupt_byte(checkpoint_name(9), 30)
        # No silent fallback to checkpoint 5: it may cover truncated
        # log, so replaying from it could land in a hole.
        with pytest.raises(WalCorrupt):
            CheckpointStore(vfs).latest()

    def test_prune_keeps_the_newest(self):
        vfs = MemVfs()
        store = CheckpointStore(vfs)
        for lsn in (1, 2, 3):
            store.write(lsn, f"d{lsn}", b"x")
        assert store.prune(keep=1) == 2
        assert store.latest()[0] == 3
