"""Kill a real writer process mid-commit; recover from real files.

The MemVfs chaos battery models *power loss* (the page cache dies with
the machine).  This test covers the other half of the contract with a
real SIGKILL: a writer process doing fsync-acked inserts against
:class:`OsVfs` is killed at a random moment, and recovery from the
surviving directory must (a) succeed or refuse typed, (b) be
self-consistent — the recovered digest equals a reference replay of
exactly the records the scan decoded — and (c) durable: every op the
writer *acknowledged* (recorded in a side log it fsyncs per ack) is
present in the recovered store.
"""

import multiprocessing
import os
import pickle
import signal
import time

import pytest

from repro.snap.xmlstore import SnapshotXmlDatabase
from repro.wal.durable import DurableXmlStore
from repro.wal.replay import recover as scan_logs
from repro.wal.vfs import OsVfs

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="platform has no fork start method"),
]

SHARDS = 2


def _writer_process(root: str, acked_path: str) -> None:
    """Insert forever with ack-on-fsync; record each ack durably."""
    store = DurableXmlStore(
        SnapshotXmlDatabase(), OsVfs(root), shards=SHARDS,
        durability="fsync", segment_bytes=8 * 1024)
    store.create_collection("kills")
    with open(acked_path, "ab") as acked:
        for n in range(1_000_000):
            store.insert("kills", f"d{n}",
                         f"<doc n=\"{n}\"><v>value-{n}</v></doc>")
            acked.write(f"d{n}\n".encode())
            acked.flush()
            os.fsync(acked.fileno())


def _reference_digest(records) -> str:
    reference = SnapshotXmlDatabase()
    store = DurableXmlStore.__new__(DurableXmlStore)
    store.inner = reference
    for _, payload in records:
        op, args, kwargs = pickle.loads(payload)
        DurableXmlStore._apply(store, op, args, kwargs)
    return DurableXmlStore._digest_of(reference.freeze())


@pytest.mark.parametrize("grace", [0.4, 0.9])
def test_sigkill_mid_commit_recovers_byte_identical(tmp_path, grace):
    root = tmp_path / "wal"
    acked_path = tmp_path / "acked.log"
    context = multiprocessing.get_context("fork")
    writer = context.Process(target=_writer_process,
                             args=(str(root), str(acked_path)))
    writer.start()
    deadline = time.monotonic() + 30
    # Let the writer make real progress, then kill it dead mid-stride.
    while time.monotonic() < deadline:
        if acked_path.exists() and acked_path.stat().st_size > 200:
            break
        time.sleep(0.02)
    time.sleep(grace)
    os.kill(writer.pid, signal.SIGKILL)
    writer.join(timeout=10)
    assert writer.exitcode == -signal.SIGKILL

    acked = [line for line in
             acked_path.read_text().splitlines() if line]
    assert acked, "writer never acknowledged anything"

    vfs = OsVfs(root)
    scan = scan_logs(vfs, SHARDS, apply_truncation=False)
    recovered, report = DurableXmlStore.recover(
        vfs, shards=SHARDS, workers=2, auto_flush=False,
        segment_bytes=8 * 1024)
    # (b) self-consistent: recovered state is the reference replay of
    # exactly the records the scan decoded, byte for byte.
    assert recovered.state_digest() == _reference_digest(scan.records)
    # (c) durable: every fsync-acked insert survived the SIGKILL.
    snapshot = recovered.freeze()
    survivors = set(snapshot.doc_ids("kills"))
    lost = [doc for doc in acked if doc not in survivors]
    assert not lost, (
        f"SIGKILL lost {len(lost)} acknowledged inserts "
        f"(first: {lost[:3]}, report: {report})")

    # The recovered store keeps writing against the same directory —
    # reopen never appends to old segments, the LSN space continues.
    recovered.insert("kills", "post-kill", "<doc><v>revived</v></doc>")
    assert recovered.durability_lag == 0
    digest = recovered.state_digest()
    recovered.close()
    second, _ = DurableXmlStore.recover(
        vfs, shards=SHARDS, auto_flush=False, segment_bytes=8 * 1024)
    assert second.state_digest() == digest
    second.close()
