"""Frame/segment encoding and the torn-vs-corrupt scanner verdicts."""

import pytest

from repro.core.errors import WalCorrupt
from repro.wal.checksum import ALGORITHMS, algorithm_id
from repro.wal.format import (
    HEADER_SIZE,
    decode_segment_header,
    encode_frame,
    encode_segment_header,
    parse_segment_name,
    scan_segment,
    segment_name,
)

ALG = algorithm_id("crc32")


def segment(frames, shard=0, base_lsn=0):
    return encode_segment_header(shard, base_lsn, "crc32") + b"".join(frames)


class TestNames:
    def test_round_trip(self):
        assert parse_segment_name(segment_name(3, 17)) == (3, 17)

    @pytest.mark.parametrize("name", [
        "seg-003.wal", "ckpt-0.rckp", "seg-a-b.wal", "seg-1-2.log"])
    def test_non_segments_parse_to_none(self, name):
        assert parse_segment_name(name) is None


class TestHeader:
    def test_round_trip(self):
        header = decode_segment_header(
            encode_segment_header(5, 99, "crc32"))
        assert (header.shard, header.base_lsn) == (5, 99)

    def test_flipped_byte_is_refused(self):
        data = bytearray(encode_segment_header(5, 99, "crc32"))
        data[9] ^= 0xFF
        with pytest.raises(WalCorrupt):
            decode_segment_header(bytes(data))

    def test_short_header_is_refused(self):
        with pytest.raises(WalCorrupt):
            decode_segment_header(b"RWAL")


class TestScan:
    def test_clean_segment_yields_every_frame(self):
        frames = [encode_frame(lsn, f"op-{lsn}".encode(), ALG)
                  for lsn in (1, 2, 5)]
        result = scan_segment(segment(frames))
        assert [f.lsn for f in result.frames] == [1, 2, 5]
        assert [f.payload for f in result.frames] == [
            b"op-1", b"op-2", b"op-5"]
        assert not result.torn

    @pytest.mark.parametrize(
        "algorithm", sorted(name for name, _ in ALGORITHMS.values()))
    def test_every_checksum_algorithm_round_trips(self, algorithm):
        alg = algorithm_id(algorithm)
        data = (encode_segment_header(0, 0, algorithm)
                + encode_frame(1, b"payload", alg))
        result = scan_segment(data)
        assert result.frames[0].payload == b"payload"

    def test_partial_final_frame_is_a_torn_tail(self):
        frames = [encode_frame(1, b"first", ALG),
                  encode_frame(2, b"second", ALG)]
        data = segment(frames)
        result = scan_segment(data[:-3])
        assert result.torn
        assert [f.lsn for f in result.frames] == [1]
        assert result.valid_end == HEADER_SIZE + len(frames[0])

    def test_every_cut_point_is_torn_never_corrupt(self):
        # A prefix cut anywhere inside the final frame must always read
        # as a torn tail: there is nothing valid after the damage.
        frames = [encode_frame(1, b"first", ALG),
                  encode_frame(2, b"second", ALG)]
        data = segment(frames)
        start = HEADER_SIZE + len(frames[0])
        for cut in range(start + 1, len(data)):
            result = scan_segment(data[:cut])
            assert result.torn
            assert len(result.frames) == 1

    def test_interior_damage_before_live_data_is_corrupt(self):
        frames = [encode_frame(1, b"first", ALG),
                  encode_frame(2, b"second", ALG),
                  encode_frame(3, b"third", ALG)]
        data = bytearray(segment(frames))
        data[HEADER_SIZE + len(frames[0]) + 10] ^= 0xFF
        with pytest.raises(WalCorrupt) as excinfo:
            scan_segment(bytes(data))
        assert "possibly-acknowledged" in str(excinfo.value)

    def test_lsn_running_backwards_is_corrupt(self):
        frames = [encode_frame(5, b"first", ALG),
                  encode_frame(3, b"second", ALG)]
        with pytest.raises(WalCorrupt) as excinfo:
            scan_segment(segment(frames))
        assert "not above predecessor" in str(excinfo.value)

    def test_wrong_shard_is_refused(self):
        data = segment([encode_frame(1, b"x", ALG)], shard=2)
        with pytest.raises(WalCorrupt):
            scan_segment(data, expect_shard=1)
