"""Segment chains and group commit: batching, lag bounds, fault seals."""

import threading

import pytest

from repro.core.errors import DurabilityLagExceeded, WalError
from repro.faults.clock import FaultClock
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan
from repro.wal.log import LsnAllocator, ShardedWal, WriteAheadLog
from repro.wal.pipeline import CommitPipeline
from repro.wal.replay import scan_shard
from repro.wal.vfs import MemVfs


def make_log(vfs=None, **kwargs):
    vfs = vfs if vfs is not None else MemVfs()
    return vfs, WriteAheadLog(vfs, 0, LsnAllocator(), **kwargs)


class TestWriteAheadLog:
    def test_append_scan_round_trip(self):
        vfs, log = make_log()
        for n in range(5):
            log.append(f"op-{n}".encode())
        log.sync()
        scan = scan_shard(vfs, 0)
        assert [payload for _, payload in scan.records] == [
            b"op-0", b"op-1", b"op-2", b"op-3", b"op-4"]

    def test_rotation_seals_previous_segment_durably(self):
        vfs, log = make_log(segment_bytes=128)
        for n in range(10):
            log.append(b"x" * 40)
        # Every sealed (rotated-away) segment was synced before the
        # next opened, so only the final segment can have pending bytes.
        names = vfs.listdir()
        assert len(names) > 1
        for name in names[:-1]:
            assert vfs.durable_size(name) == vfs.size(name)

    def test_lsn_going_backwards_is_refused(self):
        _, log = make_log()
        log.append(b"x", lsn=7)
        with pytest.raises(WalError):
            log.append(b"y", lsn=7)

    def test_reopen_never_appends_to_existing_segments(self):
        vfs, log = make_log()
        log.append(b"x")
        log.close()
        _, second = make_log(vfs)
        second.append(b"y")
        second.close()
        assert len(vfs.listdir()) == 2

    def test_truncate_until_removes_only_covered_prefix(self):
        vfs, log = make_log(segment_bytes=64)
        lsns = [log.append(b"p" * 30) for _ in range(8)]
        log.sync()
        removed = log.truncate_until(lsns[3])
        assert removed >= 1
        scan = scan_shard(vfs, 0)
        survivors = [lsn for lsn, _ in scan.records]
        # Everything past the checkpoint LSN must survive the trim.
        assert [lsn for lsn in lsns if lsn > lsns[3]] == [
            lsn for lsn in survivors if lsn > lsns[3]]


class TestGroupCommit:
    def test_one_sync_covers_the_whole_batch(self):
        vfs, log = make_log()
        pipeline = CommitPipeline(log, auto_flush=False)
        tickets = [pipeline.submit(f"op-{n}".encode()) for n in range(32)]
        assert log.stats.syncs == 0
        assert pipeline.flush() == 32
        assert log.stats.syncs == 1
        assert all(ticket.synced for ticket in tickets)
        stats = pipeline.stats_snapshot()
        assert stats["batches"] == 1
        assert stats["records_flushed"] == 32

    def test_submit_order_is_lsn_order_is_file_order(self):
        vfs, log = make_log()
        pipeline = CommitPipeline(log, auto_flush=False)
        tickets = [pipeline.submit(f"op-{n}".encode()) for n in range(10)]
        pipeline.flush()
        scan = scan_shard(vfs, 0)
        assert [lsn for lsn, _ in scan.records] == [
            ticket.lsn for ticket in tickets]

    def test_lag_bound_throws_typed_backpressure_at_submit(self):
        _, log = make_log()
        pipeline = CommitPipeline(log, auto_flush=False, max_lag=3)
        for n in range(3):
            pipeline.submit(b"x")
        with pytest.raises(DurabilityLagExceeded) as excinfo:
            pipeline.submit(b"one too many")
        assert excinfo.value.lag == 3
        assert excinfo.value.limit == 3
        pipeline.flush()
        pipeline.submit(b"fits again")

    def test_concurrent_writers_share_fsync_batches(self):
        vfs, log = make_log()
        pipeline = CommitPipeline(log, max_batch=64)
        barrier = threading.Barrier(8)

        def writer():
            barrier.wait()
            for _ in range(16):
                pipeline.submit(b"payload").wait(timeout=5)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        pipeline.close()
        stats = pipeline.stats_snapshot()
        assert stats["records_flushed"] == 128
        # Group commit earns its keep: strictly fewer syncs than
        # records, i.e. at least one batch carried several writers.
        assert stats["syncs"] < 128
        assert [lsn for lsn, _ in scan_shard(vfs, 0).records] == sorted(
            lsn for lsn, _ in scan_shard(vfs, 0).records)

    def test_device_fault_fails_every_ticket_and_seals(self):
        plan = FaultPlan()
        plan.add("wal:0", 0, FaultKind.CRASH)
        injector = FaultInjector(plan, FaultClock())
        _, log = make_log()
        pipeline = CommitPipeline(log, auto_flush=False,
                                  injector=injector)
        tickets = [pipeline.submit(b"x") for _ in range(4)]
        pipeline.flush()
        for ticket in tickets:
            with pytest.raises(WalError):
                ticket.wait(timeout=1)
        # Sealed: a log whose tail failed must not accept later appends.
        with pytest.raises(WalError) as excinfo:
            pipeline.submit(b"after the fault")
        assert "sealed" in str(excinfo.value)

    def test_nothing_is_acked_before_its_fsync(self):
        _, log = make_log()
        pipeline = CommitPipeline(log, auto_flush=False)
        ticket = pipeline.submit(b"x")
        assert not ticket.synced
        pipeline.flush()
        assert ticket.synced

    def test_concurrent_flushes_never_drop_a_batch(self):
        # Unserialized flushers take disjoint batches and race to
        # append them; a later-LSN batch landing first turns the
        # earlier one into applied-but-unlogged records and strands
        # its tickets.
        vfs, log = make_log()
        pipeline = CommitPipeline(log, auto_flush=False, max_batch=4)
        tickets = [pipeline.submit(f"op-{n}".encode()) for n in range(64)]
        errors = []

        def drain():
            try:
                while pipeline.flush():
                    pass
            except WalError as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=drain) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        for ticket in tickets:
            ticket.wait(timeout=5)
        assert [lsn for lsn, _ in scan_shard(vfs, 0).records] == [
            ticket.lsn for ticket in tickets]

    def test_failed_flush_resolves_its_taken_batch_typed(self):
        # A flush that dies after taking its batch must fail those
        # tickets — leaving them unresolved hangs their waiters.
        _, log = make_log()
        pipeline = CommitPipeline(log, auto_flush=False)
        ticket = pipeline.submit(b"x")
        log.append(b"interloper", lsn=ticket.lsn + 100)
        with pytest.raises(WalError):
            pipeline.flush()
        with pytest.raises(WalError) as excinfo:
            ticket.wait(timeout=1)
        assert "timed out" not in str(excinfo.value)
        assert pipeline.stats_snapshot()["sealed"] is True


class TestShardedWal:
    def test_shards_share_one_lsn_space(self):
        wal = ShardedWal(MemVfs(), 3)
        lsns = [wal.logs[n % 3].append(b"x") for n in range(9)]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == 9

    def test_sync_all_reports_durable_floor(self):
        wal = ShardedWal(MemVfs(), 2)
        wal.logs[0].append(b"x")
        last = wal.logs[1].append(b"y")
        assert wal.sync_all() == last
