"""Recovery scans: merge order, contiguity, torn tails, parallelism."""

import multiprocessing

import pytest

from repro.core.errors import WalCorrupt
from repro.wal.format import HEADER_SIZE, segment_name
from repro.wal.log import ShardedWal
from repro.wal.replay import recover, scan_shard
from repro.wal.vfs import MemVfs, OsVfs


def build_wal(vfs, shards=2, records=12, segment_bytes=256):
    wal = ShardedWal(vfs, shards, segment_bytes=segment_bytes)
    lsns = []
    for n in range(records):
        lsns.append(wal.logs[n % shards].append(f"op-{n}".encode()))
    wal.close()
    return wal, lsns


class TestMerge:
    def test_cross_shard_merge_is_lsn_ordered(self):
        vfs = MemVfs()
        _, lsns = build_wal(vfs)
        result = recover(vfs, 2)
        assert [lsn for lsn, _ in result.records] == lsns
        assert [payload for _, payload in result.records] == [
            f"op-{n}".encode() for n in range(12)]

    def test_from_lsn_skips_the_checkpointed_prefix(self):
        vfs = MemVfs()
        _, lsns = build_wal(vfs)
        result = recover(vfs, 2, from_lsn=lsns[5])
        assert [lsn for lsn, _ in result.records] == lsns[6:]

    def test_duplicate_lsn_across_shards_is_corrupt(self):
        vfs = MemVfs()
        wal = ShardedWal(vfs, 2)
        wal.logs[0].append(b"a", lsn=7)
        wal.logs[1].append(b"b", lsn=7)
        wal.close()
        with pytest.raises(WalCorrupt) as excinfo:
            recover(vfs, 2)
        assert "two shards" in str(excinfo.value)


class TestDamage:
    def test_missing_interior_segment_is_corrupt(self):
        vfs = MemVfs()
        build_wal(vfs, shards=1, records=10, segment_bytes=64)
        names = [n for n in vfs.listdir() if n.startswith("seg-000-")]
        assert len(names) >= 3
        vfs.delete(names[1])
        with pytest.raises(WalCorrupt) as excinfo:
            scan_shard(vfs, 0)
        assert "missing segment" in str(excinfo.value)

    def test_torn_tail_is_truncated_fail_closed(self):
        vfs = MemVfs()
        _, lsns = build_wal(vfs, shards=1, records=4,
                            segment_bytes=1 << 20)
        name = segment_name(0, 0)
        vfs.truncate(name, vfs.size(name) - 3)
        result = recover(vfs, 1)
        assert [lsn for lsn, _ in result.records] == lsns[:3]
        assert result.truncated == [(name, vfs.size(name))]
        # Truncation applied: a second scan is clean.
        assert not recover(vfs, 1).truncated

    def test_torn_header_of_final_segment_is_truncated(self):
        vfs = MemVfs()
        _, lsns = build_wal(vfs, shards=1, records=4,
                            segment_bytes=1 << 20)
        tail = segment_name(0, 1)
        handle = vfs.create(tail)
        handle.write(b"RWAL\x00")  # crash mid-header, nothing synced
        handle.close()
        result = recover(vfs, 1)
        assert [lsn for lsn, _ in result.records] == lsns
        assert result.truncated == [(tail, 0)]

    def test_torn_header_tail_is_deleted_not_left_empty(self):
        # Truncating the mid-header tail to zero bytes would leave an
        # empty file that sits mid-chain once post-recovery segments
        # append behind it, failing every later recovery.
        vfs = MemVfs()
        _, lsns = build_wal(vfs, shards=1, records=4,
                            segment_bytes=1 << 20)
        tail = segment_name(0, 1)
        handle = vfs.create(tail)
        handle.write(b"RWAL\x00")
        handle.close()
        result = recover(vfs, 1)
        assert not vfs.exists(tail)
        wal = ShardedWal(vfs, 1, start_lsn=result.last_lsn)
        extra = wal.logs[0].append(b"post-recovery")
        wal.close()
        assert [lsn for lsn, _ in recover(vfs, 1).records] == (
            lsns + [extra])

    def test_short_interior_segment_is_corrupt(self):
        vfs = MemVfs()
        build_wal(vfs, shards=1, records=4, segment_bytes=1 << 20)
        vfs.truncate(segment_name(0, 0), HEADER_SIZE - 4)
        hole = vfs.create(segment_name(0, 1))
        hole.write(b"RWAL")
        hole.close()
        with pytest.raises(WalCorrupt):
            scan_shard(vfs, 0)

    def test_corrupt_interior_frame_is_typed_not_truncated(self):
        vfs = MemVfs()
        build_wal(vfs, shards=1, records=6, segment_bytes=1 << 20)
        vfs.corrupt_byte(segment_name(0, 0), HEADER_SIZE + 8)
        with pytest.raises(WalCorrupt):
            recover(vfs, 1)


class TestParallel:
    def test_memvfs_never_forks(self):
        vfs = MemVfs()
        build_wal(vfs)
        assert recover(vfs, 2, workers=4).parallel is False

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="platform has no fork start method")
    def test_process_scan_matches_sequential(self, tmp_path):
        vfs = OsVfs(tmp_path)
        _, lsns = build_wal(vfs, shards=3, records=30)
        sequential = recover(vfs, 3, workers=1)
        parallel = recover(vfs, 3, workers=3)
        assert parallel.parallel is True
        assert sequential.parallel is False
        assert parallel.records == sequential.records
        assert [lsn for lsn, _ in parallel.records] == lsns
