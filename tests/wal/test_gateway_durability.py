"""Gateway durability wiring: ack-on-fsync vs ack-on-enqueue."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import PolicyBase
from repro.gateway.core import AsyncRequestGateway
from repro.scale.batch import BatchDecisionEngine
from repro.scale.gateway import RequestGateway
from repro.snap.xmlstore import SnapshotXmlDatabase
from repro.wal.durable import DurableXmlStore
from repro.wal.vfs import MemVfs


def engine():
    return BatchDecisionEngine(PolicyEvaluator(PolicyBase()))


def durable_store(vfs, **kwargs):
    kwargs.setdefault("auto_flush", False)
    return DurableXmlStore(SnapshotXmlDatabase(), vfs, shards=2, **kwargs)


class TestThreadedGateway:
    def test_fsync_write_acks_only_after_settle(self):
        vfs = MemVfs()
        store = durable_store(vfs)
        gateway = RequestGateway(engine(), workers=0, publisher=store,
                                 durability="fsync")

        def seed(publisher):
            publisher.create_collection("g")
            publisher.insert("g", "d1", "<doc><v>1</v></doc>")

        gateway.write(seed)
        assert store.durability_lag == 0
        digest = store.state_digest()
        store.close()
        recovered, _ = DurableXmlStore.recover(vfs, shards=2,
                                               auto_flush=False)
        assert recovered.state_digest() == digest

    def test_enqueue_write_acks_before_the_fsync(self):
        store = durable_store(MemVfs(), durability="enqueue")
        gateway = RequestGateway(engine(), workers=0, publisher=store,
                                 durability="enqueue")
        gateway.write(lambda s: s.create_collection("g"))
        assert store.durability_lag > 0  # acked, durability trails
        store.wal_sync()
        assert store.durability_lag == 0

    def test_durability_needs_a_durable_publisher(self):
        with pytest.raises(ConfigurationError) as excinfo:
            RequestGateway(engine(), workers=0,
                           publisher=SnapshotXmlDatabase(),
                           durability="fsync")
        assert "wal_sync" in str(excinfo.value)

    def test_unknown_mode_is_refused(self):
        with pytest.raises(ConfigurationError):
            RequestGateway(engine(), workers=0,
                           publisher=durable_store(MemVfs()),
                           durability="paranoid")


class TestAsyncGateway:
    def test_fsync_write_settles_before_ack(self):
        store = durable_store(MemVfs())
        gateway = AsyncRequestGateway(engine(), store=store,
                                      auto_dispatch=False,
                                      durability="fsync")
        gateway.write(lambda s: s.create_collection("g"))
        assert store.durability_lag == 0

    def test_durability_needs_a_durable_store(self):
        with pytest.raises(ConfigurationError):
            AsyncRequestGateway(engine(), store=SnapshotXmlDatabase(),
                                auto_dispatch=False, durability="fsync")
