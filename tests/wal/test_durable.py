"""Durable wrappers: log-then-ack, checkpoints, recovery digests."""

import pytest

from repro.core.credentials import anyone
from repro.core.errors import (
    DurabilityLagExceeded,
    WalCorrupt,
    WalError,
)
from repro.core.policy import Action, PolicyBase, grant
from repro.relational.authorization import Privilege
from repro.relational.table import Column, ColumnType, TableSchema
from repro.scale.registry import ShardedUddiRegistry
from repro.scale.relational import ShardedDatabase
from repro.snap.xmlstore import SnapshotXmlDatabase
from repro.uddi.model import BusinessEntity
from repro.wal.durable import (
    DurablePolicyStore,
    DurableRelationalStore,
    DurableUddiRegistry,
    DurableXmlStore,
)
from repro.wal.vfs import MemVfs


def xml_store(vfs, **kwargs):
    kwargs.setdefault("auto_flush", False)
    return DurableXmlStore(SnapshotXmlDatabase(), vfs, shards=2, **kwargs)


def seed_xml(store):
    store.create_collection("orders")
    store.insert("orders", "o1", "<order id=\"1\"><total>9</total></order>")
    store.insert("orders", "o2", "<order id=\"2\"><total>7</total></order>")
    store.replace("orders", "o1",
                  "<order id=\"1\"><total>12</total></order>")


class TestXmlStore:
    def test_recovery_is_byte_identical(self):
        vfs = MemVfs()
        store = xml_store(vfs)
        seed_xml(store)
        digest = store.state_digest()
        store.close()
        recovered, report = DurableXmlStore.recover(
            vfs, shards=2, auto_flush=False)
        assert recovered.state_digest() == digest
        assert report.records_replayed == 4
        assert "total>12" in recovered.current().serialize("orders", "o1")

    def test_checkpoint_bounds_replay(self):
        vfs = MemVfs()
        store = xml_store(vfs)
        seed_xml(store)
        assert store.checkpoint() is True
        store.delete("orders", "o2")
        digest = store.state_digest()
        store.close()
        recovered, report = DurableXmlStore.recover(
            vfs, shards=2, auto_flush=False)
        assert recovered.state_digest() == digest
        assert report.checkpoint_lsn == 4
        assert report.records_replayed == 1  # just the delete

    def test_unchanged_digest_skips_the_checkpoint(self):
        store = xml_store(MemVfs())
        seed_xml(store)
        assert store.checkpoint() is True
        assert store.checkpoint() is False

    def test_rejected_op_is_never_logged(self):
        vfs = MemVfs()
        store = xml_store(vfs)
        seed_xml(store)
        before = store.wal.last_appended
        with pytest.raises(Exception):
            store.insert("nowhere", "d1", "<x/>")
        assert store.wal.last_appended == before

    def test_group_settles_in_one_sync_per_shard(self):
        store = xml_store(MemVfs())
        with store.group():
            seed_xml(store)
        stats = store.wal_stats()
        assert stats["lag"] == 0
        assert stats["log"]["syncs"] <= 2  # at most one per shard

    def test_enqueue_mode_bounds_the_lag_typed(self):
        store = xml_store(MemVfs(), durability="enqueue", max_lag=3)
        store.create_collection("c")
        shard = store._shard_for("c")
        for n in range(3 - store.pipelines[shard].lag):
            store.insert("c", f"d{n}", "<x/>")
        with pytest.raises(DurabilityLagExceeded):
            store.insert("c", "overflow", "<x/>")
        store.wal_sync()
        store.insert("c", "fits", "<x/>")

    def test_corrupt_log_recovers_typed(self):
        vfs = MemVfs()
        store = xml_store(vfs)
        seed_xml(store)
        store.close()
        segments = [n for n in vfs.listdir() if n.endswith(".wal")
                    and vfs.durable_size(n) > 40]
        vfs.corrupt_byte(segments[0], 30)
        with pytest.raises(WalCorrupt):
            DurableXmlStore.recover(vfs, shards=2, auto_flush=False)

    def test_restart_checkpoint_restart_cycle_stays_recoverable(self):
        # Pre-recovery segments must register as sealed on reopen:
        # otherwise a checkpoint deletes only newly-sealed higher
        # -index segments around them, punching an index gap the next
        # recovery reads as a missing segment — an ordinary restart +
        # checkpoint + restart cycle would brick the store.
        vfs = MemVfs()
        store = xml_store(vfs, segment_bytes=192)
        seed_xml(store)
        store.close()
        first, _ = DurableXmlStore.recover(
            vfs, shards=2, auto_flush=False, segment_bytes=192)
        inherited = [n for n in vfs.listdir() if n.endswith(".wal")]
        for n in range(8):
            first.insert("orders", f"n{n}", f"<order id=\"{n}\"/>")
        assert first.checkpoint() is True
        digest = first.state_digest()
        first.close()
        # The checkpoint reclaimed the pre-recovery chain prefix...
        assert not any(vfs.exists(name) for name in inherited)
        # ...and what remains is a recoverable contiguous chain.
        second, _ = DurableXmlStore.recover(
            vfs, shards=2, auto_flush=False, segment_bytes=192)
        assert second.state_digest() == digest

    def test_writer_block_is_one_durable_group(self):
        vfs = MemVfs()
        store = xml_store(vfs)
        with store.writer():
            store.create_collection("batch")
            store.insert("batch", "d1", "<x/>")
        assert store.durability_lag == 0
        digest = store.state_digest()
        store.close()
        recovered, _ = DurableXmlStore.recover(
            vfs, shards=2, auto_flush=False)
        assert recovered.state_digest() == digest


class TestUddiRegistry:
    def test_cross_shard_delete_replays_in_order(self):
        vfs = MemVfs()
        registry = DurableUddiRegistry(
            ShardedUddiRegistry(shard_count=4), vfs, shards=2,
            auto_flush=False)
        registry.save_business(
            BusinessEntity(business_key="biz-001", name="Acme"), "alice")
        registry.save_business(
            BusinessEntity(business_key="biz-002", name="Globex"),
            "alice")
        registry.delete_business("biz-001", "alice")
        digest = registry.state_digest()
        registry.close()
        recovered, report = DurableUddiRegistry.recover(
            vfs, shards=2, auto_flush=False,
            inner_kwargs={"shard_count": 4})
        assert recovered.state_digest() == digest
        assert report.records_replayed == 3


class TestRelationalStore:
    def test_wal_only_replay_rebuilds_rows_and_grants(self):
        vfs = MemVfs()
        db = DurableRelationalStore(
            ShardedDatabase(), vfs, shards=2, auto_flush=False)
        schema = TableSchema("patients", (
            Column("id", ColumnType.INT),
            Column("name", ColumnType.TEXT)), primary_key="id")
        db.create_table(schema, "root")
        db.insert("root", "patients", id=1, name="Ada")
        db.insert("root", "patients", id=2, name="Grace")
        digest = db.state_digest()
        db.close()
        recovered, report = DurableRelationalStore.recover(
            vfs, shards=2, auto_flush=False)
        assert recovered.state_digest() == digest
        assert report.checkpoint_lsn == 0  # WAL-only: no checkpoint
        assert report.records_replayed == 3

    def test_columns_named_like_wrapper_params_are_data(self):
        # Column values travel as a positional dict: a column named
        # "op" or "shard" must insert and replay as data, not collide
        # with _durable_op's own parameters.
        vfs = MemVfs()
        db = DurableRelationalStore(
            ShardedDatabase(), vfs, shards=2, auto_flush=False)
        schema = TableSchema("audit", (
            Column("id", ColumnType.INT),
            Column("op", ColumnType.TEXT),
            Column("shard", ColumnType.INT)), primary_key="id")
        db.create_table(schema, "root")
        db.insert("root", "audit", id=1, op="grant", shard=3)
        digest = db.state_digest()
        db.close()
        recovered, report = DurableRelationalStore.recover(
            vfs, shards=2, auto_flush=False)
        assert recovered.state_digest() == digest
        assert report.records_replayed == 2

    def test_checkpoint_is_refused_typed(self):
        db = DurableRelationalStore(
            ShardedDatabase(), MemVfs(), shards=2, auto_flush=False)
        with pytest.raises(WalError):
            db.checkpoint()

    def test_unpicklable_args_are_refused_before_apply(self):
        db = DurableRelationalStore(
            ShardedDatabase(), MemVfs(), shards=2, auto_flush=False)
        schema = TableSchema("t", (Column("id", ColumnType.INT),),
                             primary_key="id")
        db.create_table(schema, "root")
        before = (db.state_digest(), db.wal.last_appended)
        with pytest.raises(WalError) as excinfo:
            db.grant("root", "bob", "t", Privilege.SELECT,
                     row_filter=lambda row: True)
        assert "unpicklable" in str(excinfo.value)
        # The refused grant neither applied nor logged.
        assert (db.state_digest(), db.wal.last_appended) == before


class TestPolicyStore:
    def test_remove_by_id_survives_pickle_round_trip(self):
        vfs = MemVfs()
        store = DurablePolicyStore(PolicyBase(), vfs, shards=1,
                                   auto_flush=False)
        store.add(grant(anyone(), Action.READ, "/a"))
        dropped = store.add(grant(anyone(), Action.READ, "/b"))
        store.remove(dropped)
        digest = store.state_digest()
        store.checkpoint()
        store.close()
        recovered, report = DurablePolicyStore.recover(
            vfs, shards=1, auto_flush=False)
        assert recovered.state_digest() == digest
        assert report.records_replayed == 0  # checkpoint covers all
