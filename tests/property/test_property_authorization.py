"""Property-based test: System R revocation leaves exactly the grants
supported by a timestamp-increasing chain from the owner."""

from hypothesis import given, settings, strategies as st

from repro.core.errors import AccessDenied, ConfigurationError
from repro.relational.authorization import AuthorizationManager, Privilege

USERS = ["dba", "a", "b", "c", "d"]


def reachable_support(grants, owner: str) -> set[int]:
    """Independent model: a grant edge is supported iff its grantor is
    the owner, or holds an earlier with-grant-option supported edge."""
    supported: set[int] = set()
    changed = True
    while changed:
        changed = False
        for edge in grants:
            if edge.grant_id in supported:
                continue
            if edge.grantor == owner:
                supported.add(edge.grant_id)
                changed = True
                continue
            if any(other.grant_id in supported
                   and other.grantee == edge.grantor
                   and other.with_grant_option
                   and other.sequence < edge.sequence
                   for other in grants):
                supported.add(edge.grant_id)
                changed = True
    return supported


@st.composite
def operation_sequence(draw):
    ops = []
    for _ in range(draw(st.integers(1, 20))):
        kind = draw(st.sampled_from(["grant", "revoke"]))
        grantor = draw(st.sampled_from(USERS))
        grantee = draw(st.sampled_from(USERS[1:]))
        option = draw(st.booleans())
        ops.append((kind, grantor, grantee, option))
    return ops


class TestRevocationInvariant:
    @given(operation_sequence())
    @settings(max_examples=150, deadline=None)
    def test_surviving_grants_are_exactly_the_supported_ones(self, ops):
        manager = AuthorizationManager()
        manager.set_owner("t", "dba")
        for kind, grantor, grantee, option in ops:
            try:
                if kind == "grant":
                    manager.grant(grantor, grantee, "t",
                                  Privilege.SELECT,
                                  with_grant_option=option)
                else:
                    manager.revoke(grantor, grantee, "t",
                                   Privilege.SELECT)
            except (AccessDenied, ConfigurationError):
                continue
        survivors = manager.all_grants()
        supported = reachable_support(survivors, "dba")
        # Every surviving grant must be supported...
        assert {g.grant_id for g in survivors} == supported

    @given(operation_sequence())
    @settings(max_examples=150, deadline=None)
    def test_privilege_iff_surviving_grant_or_ownership(self, ops):
        manager = AuthorizationManager()
        manager.set_owner("t", "dba")
        for kind, grantor, grantee, option in ops:
            try:
                if kind == "grant":
                    manager.grant(grantor, grantee, "t",
                                  Privilege.SELECT,
                                  with_grant_option=option)
                else:
                    manager.revoke(grantor, grantee, "t",
                                   Privilege.SELECT)
            except (AccessDenied, ConfigurationError):
                continue
        holders = {g.grantee for g in manager.all_grants()}
        for user in USERS:
            expected = user == "dba" or user in holders
            assert manager.has_privilege(user, "t",
                                         Privilege.SELECT) == expected
