"""Property tests: document labelling is a pure function of the policy
*set* — deterministic, and independent of the order policies were added
to the base (conflicts at equal depth are tie-broken by policy id, not
by insertion order)."""

from hypothesis import given, settings, strategies as st

from repro.core.credentials import anyone, has_role
from repro.core.subjects import Role, Subject
from repro.xmldb.parser import parse
from repro.xmlsec.authorx import (
    Privilege,
    XmlPolicyBase,
    XmlPropagation,
    xml_deny,
    xml_grant,
)

DOC = parse("""<hospital>
  <record id="r1"><name>Alice</name><diagnosis>flu</diagnosis>
    <ssn>123</ssn></record>
  <record id="r2"><name>Bob</name><diagnosis>cold</diagnosis>
    <ssn>456</ssn></record>
</hospital>""", name="records")

SUBJECTS = [
    Subject("dr", roles={Role("doctor")}),
    Subject("nn", roles={Role("nurse")}),
    Subject("zz"),
]

_EXPRESSIONS = [anyone(), has_role("doctor"), has_role("nurse")]
_TARGETS = ["/hospital", "/hospital/record", "//record/name",
            "//record/ssn", "//diagnosis", "//record"]

policy_strategy = st.builds(
    lambda sign, expr, target, privilege, propagation: sign(
        expr, target, privilege=privilege, propagation=propagation),
    st.sampled_from([xml_grant, xml_deny]),
    st.sampled_from(_EXPRESSIONS),
    st.sampled_from(_TARGETS),
    st.sampled_from([Privilege.READ, Privilege.NAVIGATE]),
    st.sampled_from(list(XmlPropagation)),
)


def outcome(base: XmlPolicyBase, subject: Subject):
    labels = base.label_document(subject, "records", DOC)
    decided = {}
    for node in DOC.iter():
        label = labels[id(node)]
        deciding = (label.deciding_policy.policy_id
                    if label.deciding_policy else None)
        decided[node.node_path()] = (label.access, deciding)
    return decided


@given(st.lists(policy_strategy, min_size=1, max_size=6).flatmap(
    lambda ps: st.tuples(st.just(ps), st.permutations(ps))))
@settings(max_examples=60, deadline=None)
def test_labelling_is_insertion_order_independent(policies_and_shuffle):
    policies, shuffled = policies_and_shuffle
    original = XmlPolicyBase(list(policies))
    reordered = XmlPolicyBase(list(shuffled))
    for subject in SUBJECTS:
        assert outcome(original, subject) == outcome(reordered, subject)


@given(st.lists(policy_strategy, min_size=1, max_size=6))
@settings(max_examples=30, deadline=None)
def test_labelling_is_deterministic(policies):
    base = XmlPolicyBase(list(policies))
    for subject in SUBJECTS:
        assert outcome(base, subject) == outcome(base, subject)
