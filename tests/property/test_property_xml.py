"""Property-based tests for XML parse/serialize and XPath."""

from hypothesis import given, settings, strategies as st

from repro.xmldb.model import Document, Element
from repro.xmldb.parser import parse
from repro.xmldb.serializer import serialize, serialize_element
from repro.xmldb.xpath import evaluate, select_elements

tag_strategy = st.sampled_from(["a", "b", "c", "item", "x-y", "n_1"])
# Text without XML-significant characters handled via escaping anyway;
# exclude control chars and surrogates which XML cannot carry.
text_strategy = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    min_size=1, max_size=12).filter(lambda s: s.strip() == s and s)
attr_name_strategy = st.sampled_from(["id", "k", "v", "n"])


@st.composite
def xml_tree(draw, depth=3):
    node = Element(draw(tag_strategy),
                   draw(st.dictionaries(attr_name_strategy,
                                        text_strategy, max_size=2)))
    if draw(st.booleans()):
        node.append(draw(text_strategy))
    if depth > 0:
        for child in draw(st.lists(xml_tree(depth=depth - 1),
                                   max_size=3)):
            node.append(child)
    return node


class TestRoundtrip:
    @given(xml_tree())
    @settings(max_examples=80, deadline=None)
    def test_parse_of_serialize_is_identity(self, root):
        document = Document(root)
        reparsed = parse(serialize(document))
        assert reparsed.root.structurally_equal(root)

    @given(xml_tree())
    @settings(max_examples=80, deadline=None)
    def test_serialize_is_canonical(self, root):
        text = serialize_element(root)
        assert serialize_element(parse(text).root) == text


class TestXPathProperties:
    @given(xml_tree())
    @settings(max_examples=60, deadline=None)
    def test_descendant_wildcard_matches_iter(self, root):
        document = Document(root)
        via_xpath = select_elements("//*", document)
        via_iter = [n for n in root.iter() if n is not root]
        assert len(via_xpath) == len(via_iter)
        assert all(a is b for a, b in zip(via_xpath, via_iter))

    @given(xml_tree(), st.sampled_from(["a", "b", "item"]))
    @settings(max_examples=60, deadline=None)
    def test_descendant_tag_matches_naive_scan(self, root, tag):
        document = Document(root)
        via_xpath = select_elements(f"//{tag}", document)
        naive = [n for n in root.iter()
                 if n.tag == tag and n is not root]
        assert via_xpath == naive

    @given(xml_tree())
    @settings(max_examples=60, deadline=None)
    def test_child_step_is_subset_of_descendant(self, root):
        document = Document(root)
        children = select_elements(f"/{root.tag}/*", document)
        descendants = select_elements("//*", document)
        descendant_ids = {id(n) for n in descendants}
        assert all(id(n) in descendant_ids for n in children)

    @given(xml_tree())
    @settings(max_examples=60, deadline=None)
    def test_attribute_results_are_strings(self, root):
        document = Document(root)
        for value in evaluate("//@*", document):
            assert isinstance(value, str)


class TestNodePaths:
    @given(xml_tree())
    @settings(max_examples=60, deadline=None)
    def test_node_paths_unique(self, root):
        paths = [n.node_path() for n in root.iter()]
        assert len(paths) == len(set(paths))

    @given(xml_tree())
    @settings(max_examples=60, deadline=None)
    def test_size_consistent(self, root):
        assert root.size() == len(list(root.iter()))
