"""Property-based tests for policy evaluation and MLS invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.credentials import anyone, has_role, is_identity
from repro.core.evaluator import (
    ConflictResolution,
    DefaultDecision,
    PolicyEvaluator,
)
from repro.core.mls import Label, Level, can_read
from repro.core.objects import ResourcePath, ResourcePattern
from repro.core.policy import Action, PolicyBase, deny, grant
from repro.core.subjects import Role, Subject

segment = st.sampled_from(["a", "b", "c", "d"])
path_strategy = st.lists(segment, min_size=0, max_size=4).map(
    lambda parts: ResourcePath("/".join(parts)))
pattern_strategy = st.lists(
    st.sampled_from(["a", "b", "c", "d", "*", "**"]),
    min_size=1, max_size=4).map(lambda parts: "/".join(parts))

role_strategy = st.sampled_from(["doctor", "nurse", "admin"])


@st.composite
def policy_strategy(draw):
    factory = deny if draw(st.booleans()) else grant
    subject_expr = draw(st.sampled_from([
        anyone(), has_role("doctor"), has_role("nurse"),
        is_identity("alice")]))
    return factory(subject_expr, Action.READ, draw(pattern_strategy))


@st.composite
def subject_strategy(draw):
    name = draw(st.sampled_from(["alice", "bob"]))
    roles = {Role(r) for r in draw(st.sets(role_strategy, max_size=2))}
    return Subject(name, roles=roles)


class TestEvaluatorProperties:
    @given(st.lists(policy_strategy(), max_size=8), subject_strategy(),
           path_strategy)
    @settings(max_examples=120, deadline=None)
    def test_deny_overrides_never_grants_denied_request(
            self, policies, subject, path):
        base = PolicyBase(policies)
        evaluator = PolicyEvaluator(base)
        decision = evaluator.decide(subject, Action.READ, path)
        applicable = base.applicable(subject, Action.READ, path)
        has_deny = any(p.sign.value == "deny" for p in applicable)
        if has_deny:
            assert not decision.granted

    @given(st.lists(policy_strategy(), max_size=8), subject_strategy(),
           path_strategy)
    @settings(max_examples=120, deadline=None)
    def test_closed_world_grants_only_with_grant_policy(
            self, policies, subject, path):
        evaluator = PolicyEvaluator(PolicyBase(policies),
                                    default=DefaultDecision.CLOSED)
        decision = evaluator.decide(subject, Action.READ, path)
        if decision.granted:
            assert decision.determining is not None
            assert decision.determining.sign.value == "grant"

    @given(st.lists(policy_strategy(), max_size=8), subject_strategy(),
           path_strategy,
           st.sampled_from(list(ConflictResolution)))
    @settings(max_examples=120, deadline=None)
    def test_decision_deterministic(self, policies, subject, path,
                                    resolution):
        first = PolicyEvaluator(PolicyBase(policies),
                                resolution=resolution)
        second = PolicyEvaluator(PolicyBase(policies),
                                 resolution=resolution)
        assert (first.decide(subject, Action.READ, path).granted
                == second.decide(subject, Action.READ, path).granted)

    @given(st.lists(policy_strategy(), max_size=8), subject_strategy(),
           path_strategy)
    @settings(max_examples=100, deadline=None)
    def test_candidates_superset_of_applicable(self, policies, subject,
                                               path):
        base = PolicyBase(policies)
        candidates = {p.policy_id
                      for p in base.candidates(Action.READ, path)}
        applicable = {p.policy_id for p in
                      base.applicable(subject, Action.READ, path)}
        assert applicable <= candidates


class TestPatternProperties:
    @given(pattern_strategy, path_strategy)
    @settings(max_examples=200, deadline=None)
    def test_matching_is_deterministic(self, pattern, path):
        assert (ResourcePattern(pattern).matches(path)
                == ResourcePattern(pattern).matches(path))

    @given(st.lists(segment, min_size=1, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_literal_pattern_matches_itself_only(self, parts):
        pattern = ResourcePattern("/".join(parts))
        assert pattern.matches(ResourcePath("/".join(parts)))
        assert not pattern.matches(ResourcePath("/".join(parts + ["x"])))


label_strategy = st.builds(
    Label,
    st.sampled_from(list(Level)),
    st.sets(st.sampled_from(["n", "c", "x"]), max_size=3))


class TestLatticeProperties:
    @given(label_strategy, label_strategy)
    @settings(max_examples=150, deadline=None)
    def test_join_is_upper_bound(self, a, b):
        joined = a.join(b)
        assert joined.dominates(a) and joined.dominates(b)

    @given(label_strategy, label_strategy)
    @settings(max_examples=150, deadline=None)
    def test_meet_is_lower_bound(self, a, b):
        met = a.meet(b)
        assert a.dominates(met) and b.dominates(met)

    @given(label_strategy, label_strategy, label_strategy)
    @settings(max_examples=150, deadline=None)
    def test_dominance_transitive(self, a, b, c):
        if a.dominates(b) and b.dominates(c):
            assert a.dominates(c)

    @given(label_strategy, label_strategy)
    @settings(max_examples=150, deadline=None)
    def test_read_write_duality(self, clearance, obj):
        # can_read(a, b) iff can_write(b, a)
        from repro.core.mls import can_write
        assert can_read(clearance, obj) == can_write(obj, clearance)
