"""Property: a stream's epoch, pinned at admission, is never reclaimed
mid-stream — however writers interleave with chunk delivery.

Hypothesis generates an interleaving schedule: at every chunk boundary
of an in-flight stream, zero or more writers publish new epochs (point
edits that change the document bytes).  The driver asserts, at every
boundary, that the stream's pinned epoch is still alive (never in the
reclaimed list) — and at the end, that the delivered bytes are exactly
the admission-time snapshot's serialization, byte-identical, no torn
reads.  Abandoned streams (consumer stops early) must still release
their pin so the epoch is eventually reclaimed.
"""

import asyncio

from hypothesis import given, settings, strategies as st

from repro.gateway.core import AsyncRequestGateway
from repro.snap.intern import InternPool
from repro.snap.xmlstore import SnapshotXmlDatabase

BASE_XML = ("<doc>" + "".join(
    f"<rec id=\"{i}\"><v>value {i}</v></rec>" for i in range(12))
    + "</doc>")

#: Per-chunk-boundary writer activity: how many epochs the writer
#: publishes while the consumer holds that boundary.
schedules = st.lists(st.integers(min_value=0, max_value=3),
                     min_size=1, max_size=12)


def _engine():
    from repro.core.evaluator import PolicyEvaluator
    from repro.core.policy import PolicyBase
    from repro.scale.batch import BatchDecisionEngine
    return BatchDecisionEngine(PolicyEvaluator(PolicyBase()))


def make_db() -> SnapshotXmlDatabase:
    db = SnapshotXmlDatabase()
    db.create_collection("c")
    db.insert("c", "d", BASE_XML)
    db.publish()
    return db


class TestPinnedEpochSurvivesWriters:
    @settings(max_examples=60, deadline=None)
    @given(schedule=schedules, chunk_size=st.sampled_from([8, 32, 128]))
    def test_stream_bytes_are_admission_snapshot_bytes(
            self, schedule, chunk_size):
        db = make_db()
        expected = InternPool().serialize_document(
            db.current().document("c", "d"))

        async def scenario():
            gateway = AsyncRequestGateway(_engine(), store=db,
                                          auto_dispatch=False)
            stream = gateway.stream_document("t", "c", "d",
                                             chunk_size=chunk_size)
            pinned_epoch = db.epochs.current_epoch()
            edits = 0
            chunks = []
            boundary = 0
            async for chunk in stream:
                chunks.append(chunk)
                for _ in range(schedule[boundary % len(schedule)]):
                    edits += 1
                    gateway.write(lambda store, n=edits: store.set_text(
                        "c", "d", "/doc/rec/v", f"edit {n}"))
                boundary += 1
                # The pinned epoch must be alive at every boundary.
                assert pinned_epoch not in db.epochs.reclaimed_epochs()
                assert db.epochs.pins(pinned_epoch) == 1
            return "".join(chunks), pinned_epoch, edits

        delivered, pinned_epoch, edits = asyncio.run(scenario())
        assert delivered == expected
        # Stream finished: the pin is gone and — if writers advanced
        # the epoch — the old snapshot is reclaimable and reclaimed.
        assert db.epochs.pins(pinned_epoch) == 0
        if edits:
            assert pinned_epoch in db.epochs.reclaimed_epochs()
            current = InternPool().serialize_document(
                db.current().document("c", "d"))
            assert current != expected

    @settings(max_examples=25, deadline=None)
    @given(stop_after=st.integers(min_value=1, max_value=5),
           writer_epochs=st.integers(min_value=1, max_value=4))
    def test_abandoned_stream_releases_its_pin(self, stop_after,
                                               writer_epochs):
        db = make_db()

        async def scenario():
            gateway = AsyncRequestGateway(_engine(), store=db,
                                          auto_dispatch=False)
            stream = gateway.stream_document("t", "c", "d",
                                             chunk_size=8)
            pinned_epoch = db.epochs.current_epoch()
            seen = 0
            async for _chunk in stream:
                seen += 1
                if seen >= stop_after:
                    break                   # consumer walks away
            await stream.aclose()
            for index in range(writer_epochs):
                gateway.write(lambda store, n=index: store.set_text(
                    "c", "d", "/doc/rec/v", f"post-abandon {n}"))
            return pinned_epoch

        pinned_epoch = asyncio.run(scenario())
        assert db.epochs.pins(pinned_epoch) == 0
        assert pinned_epoch in db.epochs.reclaimed_epochs()

    @settings(max_examples=20, deadline=None)
    @given(streams=st.integers(min_value=2, max_value=5))
    def test_concurrent_streams_pin_independently(self, streams):
        """N interleaved streams admitted at different epochs each see
        their own admission-time bytes."""
        db = make_db()

        async def scenario():
            gateway = AsyncRequestGateway(_engine(), store=db,
                                          auto_dispatch=False)
            opened = []
            for index in range(streams):
                expected = InternPool().serialize_document(
                    db.current().document("c", "d"))
                opened.append((gateway.stream_document(
                    "t", "c", "d", chunk_size=16), expected))
                gateway.write(lambda store, n=index: store.set_text(
                    "c", "d", "/doc/rec/v", f"between-streams {n}"))
            # Drain round-robin so the streams interleave.
            pending = [(s, e, []) for s, e in opened]
            while pending:
                still = []
                for stream, expected, chunks in pending:
                    try:
                        chunks.append(await stream.__anext__())
                        still.append((stream, expected, chunks))
                    except StopAsyncIteration:
                        assert "".join(chunks) == expected
                pending = still

        asyncio.run(scenario())
