"""Property-based tests for Merkle trees and XML Merkle hashing."""

from hypothesis import given, settings, strategies as st

from repro.merkle.tree import MerkleTree
from repro.merkle.xml_merkle import (
    build_partial_view,
    document_hash,
    merkle_hash,
    view_hash,
)
from repro.xmldb.model import Document, Element

leaves_strategy = st.lists(st.text(min_size=0, max_size=20),
                           min_size=1, max_size=40)


class TestMerkleTreeProperties:
    @given(leaves_strategy)
    @settings(max_examples=60, deadline=None)
    def test_every_proof_verifies(self, leaves):
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            assert tree.proof(index).verify(leaf, tree.root)

    @given(leaves_strategy, st.data())
    @settings(max_examples=60, deadline=None)
    def test_tampered_leaf_never_verifies(self, leaves, data):
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(0, len(leaves) - 1))
        forged = data.draw(st.text(max_size=20).filter(
            lambda t: t != leaves[index]))
        assert not tree.proof(index).verify(forged, tree.root)

    @given(leaves_strategy, st.data())
    @settings(max_examples=40, deadline=None)
    def test_any_leaf_change_changes_root(self, leaves, data):
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(0, len(leaves) - 1))
        forged = data.draw(st.text(max_size=20).filter(
            lambda t: t != leaves[index]))
        modified = list(leaves)
        modified[index] = forged
        assert MerkleTree(modified).root != tree.root


# -- random XML trees ------------------------------------------------------

tag_strategy = st.sampled_from(["a", "b", "c", "record", "name"])
text_strategy = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    max_size=10)


@st.composite
def xml_tree(draw, depth=3):
    tag = draw(tag_strategy)
    attributes = draw(st.dictionaries(
        st.sampled_from(["id", "k", "v"]), text_strategy, max_size=2))
    node = Element(tag, attributes)
    text = draw(text_strategy)
    if text.strip():
        node.append(text.strip())
    if depth > 0:
        for child in draw(st.lists(xml_tree(depth=depth - 1),
                                   max_size=3)):
            node.append(child)
    return node


class TestXmlMerkleProperties:
    @given(xml_tree())
    @settings(max_examples=50, deadline=None)
    def test_hash_deterministic_under_copy(self, root):
        assert merkle_hash(root) == merkle_hash(root.deep_copy())

    @given(xml_tree(), st.data())
    @settings(max_examples=50, deadline=None)
    def test_partial_view_always_recomputes_root(self, root, data):
        nodes = list(root.iter())
        kept = data.draw(st.sets(
            st.sampled_from(range(len(nodes))), max_size=len(nodes)))
        kept_ids = {id(nodes[i]) for i in kept}
        view, fillers = build_partial_view(
            root, lambda n: id(n) in kept_ids)
        assert view_hash(view, fillers) == merkle_hash(root)

    @given(xml_tree())
    @settings(max_examples=50, deadline=None)
    def test_text_tamper_always_detected(self, root):
        original = merkle_hash(root)
        clone = root.deep_copy()
        # Tamper the first node deterministically.
        target = next(iter(clone.iter()))
        target.set_text(target.text + "!tampered!")
        assert merkle_hash(clone) != original

    @given(xml_tree())
    @settings(max_examples=50, deadline=None)
    def test_document_hash_equals_root_hash(self, root):
        assert document_hash(Document(root)) == merkle_hash(root)
