"""Property-based tests for crypto primitives and view computation."""

from hypothesis import given, settings, strategies as st

from repro.core.credentials import anyone, has_role
from repro.core.subjects import Role, Subject
from repro.crypto.rsa import generate_keypair, sign, verify
from repro.crypto.symmetric import SymmetricKey, decrypt, encrypt
from repro.merkle.xml_merkle import is_pruned_marker
from repro.xmldb.model import Document, Element
from repro.xmlsec.authorx import XmlPolicyBase, xml_deny, xml_grant
from repro.xmlsec.views import compute_view

KEYS = generate_keypair(bits=256, seed=99)
SYM = SymmetricKey.derive("prop", "secret")


class TestCryptoProperties:
    @given(st.binary(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_symmetric_roundtrip(self, payload):
        assert decrypt(SYM, encrypt(SYM, payload, nonce=1)) == payload

    @given(st.binary(min_size=1, max_size=100), st.integers(0, 2 ** 32))
    @settings(max_examples=40, deadline=None)
    def test_signature_roundtrip(self, message, salt):
        signature = sign(KEYS.private, message)
        assert verify(KEYS.public, message, signature)

    @given(st.binary(min_size=1, max_size=50),
           st.binary(min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_signature_binds_message(self, first, second):
        if first == second:
            return
        signature = sign(KEYS.private, first)
        assert not verify(KEYS.public, second, signature)


# -- random documents + random policy bases --------------------------------

tag_strategy = st.sampled_from(["hospital", "record", "name", "ssn",
                                "diagnosis"])
text_strategy = st.sampled_from(["alpha", "beta", "gamma", ""])


@st.composite
def document_strategy(draw):
    root = Element("hospital")
    for _ in range(draw(st.integers(1, 4))):
        record = Element("record",
                         {"id": f"r{draw(st.integers(1, 9))}"})
        for tag in ("name", "diagnosis", "ssn"):
            child = Element(tag)
            text = draw(text_strategy)
            if text:
                child.append(text)
            record.append(child)
        root.append(record)
    return Document(root, name="doc")


@st.composite
def xml_policy_base(draw):
    base = XmlPolicyBase()
    expressions = [anyone(), has_role("doctor"), has_role("nurse")]
    targets = ["/hospital", "//record", "//name", "//ssn",
               "//record/diagnosis"]
    for _ in range(draw(st.integers(1, 5))):
        factory = xml_deny if draw(st.booleans()) else xml_grant
        base.add(factory(draw(st.sampled_from(expressions)),
                         draw(st.sampled_from(targets))))
    return base


SUBJECTS = [Subject("dr", roles={Role("doctor")}),
            Subject("nn", roles={Role("nurse")}),
            Subject("zz")]


class TestViewProperties:
    @given(document_strategy(), xml_policy_base(),
           st.sampled_from(SUBJECTS))
    @settings(max_examples=80, deadline=None)
    def test_view_is_subset(self, document, base, subject):
        """Every text/attribute in a view exists in the original."""
        view, _stats = compute_view(base, subject, "doc", document)
        if view is None:
            return
        original_texts = {n.text for n in document.iter()}
        original_attrs = {(k, v) for n in document.iter()
                          for k, v in n.attributes.items()}
        for node in view.iter():
            assert node.text in original_texts or node.text == ""
            for item in node.attributes.items():
                assert item in original_attrs

    @given(document_strategy(), xml_policy_base(),
           st.sampled_from(SUBJECTS))
    @settings(max_examples=80, deadline=None)
    def test_view_never_contains_denied_to_all(self, document, base,
                                               subject):
        """Content denied to anyone() at the deepest level never shows."""
        base.add(xml_deny(anyone(), "//ssn"))
        view, _stats = compute_view(base, subject, "doc", document)
        if view is None:
            return
        for node in view.iter():
            if node.tag == "ssn":
                assert node.text == ""  # at most a bare connector

    @given(document_strategy(), xml_policy_base(),
           st.sampled_from(SUBJECTS))
    @settings(max_examples=60, deadline=None)
    def test_marker_view_consistent_with_plain_view(
            self, document, base, subject):
        plain, _ = compute_view(base, subject, "doc", document)
        marked, _ = compute_view(base, subject, "doc", document,
                                 with_markers=True)
        if plain is None:
            return
        plain_texts = sorted(n.text for n in plain.iter() if n.text)
        marked_texts = sorted(
            n.text for n in (marked.iter() if marked else [])
            if n.text and not is_pruned_marker(n))
        assert plain_texts == marked_texts

    @given(document_strategy(), xml_policy_base())
    @settings(max_examples=60, deadline=None)
    def test_original_never_mutated(self, document, base):
        from repro.xmldb.serializer import serialize
        before = serialize(document)
        for subject in SUBJECTS:
            compute_view(base, subject, "doc", document,
                         with_markers=True)
        assert serialize(document) == before
