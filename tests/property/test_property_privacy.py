"""Property-based tests for privacy primitives."""

import random

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.privacy.association import apriori
from repro.privacy.multiparty import (
    Party,
    centralized_apriori,
    distributed_apriori,
    secure_sum,
)
from repro.privacy.ppdm import (
    NoiseModel,
    reconstruct_distribution,
)

ITEMS = ["a", "b", "c", "d"]
basket_strategy = st.sets(st.sampled_from(ITEMS), min_size=1)
transactions_strategy = st.lists(basket_strategy, min_size=1,
                                 max_size=30)


class TestSecureSumProperties:
    @given(st.lists(st.integers(0, 10 ** 9), min_size=1, max_size=10),
           st.integers(0, 2 ** 31))
    @settings(max_examples=100, deadline=None)
    def test_total_always_exact(self, values, seed):
        names = [f"p{i}" for i in range(len(values))]
        trace = secure_sum(values, names, random.Random(seed))
        assert trace.total == sum(values)

    @given(st.lists(st.integers(0, 10 ** 6), min_size=2, max_size=8),
           st.integers(0, 2 ** 31))
    @settings(max_examples=100, deadline=None)
    def test_message_count_linear(self, values, seed):
        names = [f"p{i}" for i in range(len(values))]
        trace = secure_sum(values, names, random.Random(seed))
        assert trace.messages == len(values)


class TestDistributedMiningProperties:
    @given(transactions_strategy, st.integers(2, 5),
           st.sampled_from([0.2, 0.4, 0.6]), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_distributed_equals_centralized(self, transactions,
                                            party_count, min_support,
                                            seed):
        rng = random.Random(seed)
        parties = [Party(f"p{i}", []) for i in range(party_count)]
        for basket in transactions:
            parties[rng.randrange(party_count)].transactions.append(
                frozenset(basket))
        outcome = distributed_apriori(parties, min_support, seed=seed)
        assert outcome.frequent == centralized_apriori(parties,
                                                       min_support)


class TestAprioriProperties:
    @given(transactions_strategy, st.sampled_from([0.1, 0.3, 0.5]))
    @settings(max_examples=60, deadline=None)
    def test_downward_closure(self, transactions, min_support):
        frequent = apriori(transactions, min_support)
        import itertools
        for itemset in frequent:
            for size in range(1, len(itemset)):
                for subset in itertools.combinations(itemset, size):
                    assert frozenset(subset) in frequent

    @given(transactions_strategy, st.sampled_from([0.1, 0.3, 0.5]))
    @settings(max_examples=60, deadline=None)
    def test_supports_are_exact_fractions(self, transactions,
                                          min_support):
        frequent = apriori(transactions, min_support)
        baskets = [frozenset(t) for t in transactions]
        for itemset, support in frequent.items():
            exact = sum(1 for b in baskets if itemset <= b) / len(baskets)
            assert abs(support - exact) < 1e-12
            assert support >= min_support


class TestReconstructionProperties:
    @given(st.integers(0, 100), st.sampled_from([5.0, 15.0, 30.0]))
    @settings(max_examples=20, deadline=None)
    def test_output_is_probability_vector(self, seed, scale):
        rng = np.random.default_rng(seed)
        values = rng.normal(50, 10, 300)
        noise = NoiseModel("uniform", scale)
        released = values + noise.sample(len(values),
                                         np.random.default_rng(seed + 1))
        bins = np.linspace(0, 100, 11)
        estimated = reconstruct_distribution(released, noise, bins)
        assert abs(estimated.sum() - 1.0) < 1e-6
        assert (estimated >= -1e-12).all()
