"""Property-based test: the compiled policy engine is byte-identical to
the serial evaluator and the batch engine under random grant/revoke
interleavings, with recompilation happening between batches."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.audit import AuditLog
from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import PolicyBase
from repro.scale.batch import BatchDecisionEngine
from repro.compile import CompiledPolicyEngine, verify_compiled

from tests.scale.workloads import random_policies, random_requests


@st.composite
def interleaving(draw):
    """(seed, steps): adds, removes and decision batches, interleaved."""
    seed = draw(st.integers(0, 1 << 30))
    steps = [draw(st.sampled_from(["add", "add", "remove", "batch"]))
             for _ in range(draw(st.integers(2, 14)))]
    steps.append("batch")
    return seed, steps


class TestCompiledEngineEquivalence:
    @given(interleaving())
    @settings(max_examples=40, deadline=None)
    def test_three_engines_agree_under_mutation(self, case):
        seed, steps = case
        rng = random.Random(seed)
        base = PolicyBase()
        serial = PolicyEvaluator(base, cache_decisions=False)
        batch = BatchDecisionEngine(
            PolicyEvaluator(base, cache_decisions=False))
        compiled_audit = AuditLog()
        compiled = CompiledPolicyEngine(base=base, audit=compiled_audit)
        live = []
        for step in steps:
            if step == "add":
                live.append(base.add(random_policies(rng, 1)[0]))
            elif step == "remove" and live:
                base.remove(live.pop(rng.randrange(len(live))))
            elif step == "batch":
                requests = random_requests(rng, rng.randrange(1, 12))
                serial_decisions = [serial.decide(*r) for r in requests]
                assert batch.decide_batch(requests) == serial_decisions
                assert compiled.decide_batch(requests) == \
                    serial_decisions
        # The audit trail of the compiled engine replays the request
        # stream with the serial evaluator's verdicts and reasons.
        rows = [(r.granted, r.detail) for r in compiled_audit]
        assert len(rows) == compiled.stats.decisions

    @given(st.integers(0, 1 << 30))
    @settings(max_examples=40, deadline=None)
    def test_recompiled_artifact_always_self_verifies(self, seed):
        rng = random.Random(seed)
        base = PolicyBase(random_policies(rng, rng.randrange(1, 10)))
        engine = CompiledPolicyEngine(base=base)
        for _ in range(3):
            verification = verify_compiled(engine.current(), base)
            assert verification.verdict == "proved"
            assert verification.unexplained == 0
            base.add(random_policies(rng, 1)[0])
