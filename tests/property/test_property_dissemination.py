"""Property-based tests: dissemination agrees with view computation,
and UDDI entries survive the encrypt/decrypt roundtrip."""

from hypothesis import given, settings, strategies as st

from repro.core.credentials import anyone, has_role
from repro.core.subjects import Role, Subject
from repro.crypto.keys import KeyStore
from repro.uddi.model import BindingTemplate, BusinessEntity, BusinessService
from repro.uddi.secure import EncryptedRegistry
from repro.xmldb.model import Document, Element
from repro.xmlsec.authorx import XmlPolicyBase, xml_deny, xml_grant
from repro.xmlsec.dissemination import Disseminator, open_packet
from repro.xmlsec.views import compute_view

SUBJECTS = {
    "dr": Subject("dr", roles={Role("doctor")}),
    "nn": Subject("nn", roles={Role("nurse")}),
    "zz": Subject("zz"),
}

text_strategy = st.sampled_from(["alpha", "beta", "gamma", "delta", ""])


@st.composite
def document_strategy(draw):
    root = Element("hospital")
    for _ in range(draw(st.integers(1, 3))):
        record = Element("record",
                         {"id": f"r{draw(st.integers(1, 9))}"})
        for tag in ("name", "diagnosis", "ssn"):
            child = Element(tag)
            text = draw(text_strategy)
            if text:
                child.append(text)
            record.append(child)
        root.append(record)
    return Document(root, name="doc")


@st.composite
def policy_base_strategy(draw):
    base = XmlPolicyBase()
    expressions = [anyone(), has_role("doctor"), has_role("nurse")]
    targets = ["/hospital", "//record", "//name", "//ssn",
               "//diagnosis"]
    for _ in range(draw(st.integers(1, 5))):
        factory = xml_deny if draw(st.booleans()) else xml_grant
        base.add(factory(draw(st.sampled_from(expressions)),
                         draw(st.sampled_from(targets))))
    return base


class TestDisseminationMatchesViews:
    @given(document_strategy(), policy_base_strategy())
    @settings(max_examples=40, deadline=None)
    def test_received_texts_equal_view_texts(self, document, base):
        """For every subject, opening the broadcast packet yields exactly
        the text content of the subject's computed view."""
        disseminator = Disseminator(base)
        packet = disseminator.package("doc", document)
        distributor = disseminator.distributor(SUBJECTS)
        for name, subject in SUBJECTS.items():
            store = KeyStore(f"rx-{name}")
            for key in distributor.grant(name).keys:
                store.import_key(key)
            received = open_packet(packet, store)
            view, _stats = compute_view(base, subject, "doc", document)
            view_texts = sorted(n.text for n in view.iter() if n.text) \
                if view is not None else []
            got_texts = sorted(n.text for n in received.iter()
                               if n.text) if received is not None else []
            assert got_texts == view_texts, name

    @given(document_strategy(), policy_base_strategy())
    @settings(max_examples=40, deadline=None)
    def test_unentitled_keys_never_distributed(self, document, base):
        disseminator = Disseminator(base)
        disseminator.package("doc", document)
        for subject in SUBJECTS.values():
            for key_id in disseminator.entitled_key_ids(subject):
                configuration = disseminator._configurations[key_id]
                assert disseminator.can_unlock(subject, configuration)


# -- UDDI entity roundtrip ---------------------------------------------------

name_strategy = st.text(
    alphabet="abcdefghijklmnop -", min_size=1, max_size=12).filter(
    lambda s: s.strip() == s and s)


@st.composite
def entity_strategy(draw):
    services = []
    for s in range(draw(st.integers(0, 3))):
        bindings = tuple(
            BindingTemplate(f"uddi:bind:{s}-{b}",
                            f"http://x/{s}/{b}",
                            draw(name_strategy),
                            tuple(f"uddi:tm:{t}" for t in
                                  range(draw(st.integers(0, 2)))))
            for b in range(draw(st.integers(0, 2))))
        services.append(BusinessService(
            f"uddi:svc:{s}", draw(name_strategy), draw(name_strategy),
            draw(st.sampled_from(["catalog", "premium", ""])),
            bindings))
    return BusinessEntity("uddi:biz:x", draw(name_strategy),
                          draw(name_strategy), draw(name_strategy),
                          tuple(services))


class TestUddiRoundtrip:
    @given(entity_strategy())
    @settings(max_examples=50, deadline=None)
    def test_encrypt_decrypt_roundtrip(self, entity):
        store = KeyStore("prov")
        store.create("k")
        entry = EncryptedRegistry.encrypt_entry(entity, store, "k",
                                                "idx")
        restored = EncryptedRegistry.decrypt_entry(entry, store)
        assert restored == entity
