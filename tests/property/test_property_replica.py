"""Properties of the replication layer, driven by hypothesis.

Two invariants from the replica design, each over a randomized space:

1. **Repair equivalence** — for any divergence set (random mutations,
   deletions, and insertions applied to the source after the fork),
   Merkle anti-entropy repair leaves the target byte-identical to what
   a full resync produces, while shipping only the divergent buckets:
   ``buckets_shipped`` equals the exact count of buckets whose payload
   differs (checked against a direct payload comparison, not the Merkle
   walk itself), and bytes on the wire stay proportional to divergence,
   not to store size.

2. **Watermark monotonicity** — a read-your-writes session never
   observes a watermark regression, however writes, reads, failovers,
   and injected faults interleave.  The oracle is structural:
   ``ReplicaSession.observed`` raises ``IntegrityError`` on regression
   (a ``SecurityError``, deliberately outside the ``TransportError``
   tree the driver retries through), so the property is simply "no
   IntegrityError escapes".  Value-level read-your-writes is asserted
   on the quiet subset: keys with no unacknowledged write in flight
   and no failover since their last ack — the lineage within which the
   design promises it.
"""

from hypothesis import given, settings, strategies as st

from repro.core.errors import TransportError
from repro.faults.clock import FaultClock
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.replica.antientropy import (
    HASH_WIRE_BYTES,
    NODE_ID_WIRE_BYTES,
    antientropy_repair,
    diff_divergent_buckets,
    full_resync,
)
from repro.replica.router import ReplicaRouter
from repro.replica.store import BucketedMerkleStore

KEYS = [f"key-{i}" for i in range(120)]

#: A divergence script: per-step (kind, key index, value salt).
mutations = st.lists(
    st.tuples(st.sampled_from(["put", "del", "new"]),
              st.integers(min_value=0, max_value=119),
              st.integers(min_value=0, max_value=9)),
    min_size=0, max_size=25)


def _forked_pair(bucket_count):
    base = {key: f"val-{i}" for i, key in enumerate(KEYS)}
    source = BucketedMerkleStore(bucket_count)
    target = BucketedMerkleStore(bucket_count)
    source.load(base)
    target.load(base)
    return source, target


def _apply_script(store, script):
    for kind, index, salt in script:
        if kind == "put":
            store.put(KEYS[index], f"mutated-{salt}")
        elif kind == "del":
            store.delete(KEYS[index])
        else:
            store.put(f"fresh-{index}-{salt}", f"inserted-{salt}")


class TestRepairEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(script=mutations, bucket_count=st.sampled_from([7, 16, 64]))
    def test_repair_digest_identical_to_full_resync(
            self, script, bucket_count):
        source, repaired = _forked_pair(bucket_count)
        _, resynced = _forked_pair(bucket_count)
        _apply_script(source, script)

        # Independent oracle: compare payloads directly, bypassing the
        # Merkle machinery the repair path relies on.
        truly_divergent = {
            index for index in range(bucket_count)
            if source.payload(index) != repaired.payload(index)}

        report = antientropy_repair(source, repaired)
        full_resync(source, resynced)

        # Byte-identical end state either way (the acceptance oracle):
        # same root, same materialized entries.
        assert repaired.root == resynced.root == source.root
        assert dict(repaired.items()) == dict(resynced.items())

        # The repair shipped exactly the divergent buckets — no more.
        assert report.buckets_shipped == len(report.divergent_buckets)
        assert set(report.divergent_buckets) == truly_divergent

    @settings(max_examples=60, deadline=None)
    @given(script=mutations)
    def test_bytes_shipped_scale_with_divergence_not_store_size(
            self, script):
        bucket_count = 64
        source, target = _forked_pair(bucket_count)
        _apply_script(source, script)
        divergent = diff_divergent_buckets(source.tree, target.tree)

        report = antientropy_repair(source, target)
        assert target.root == source.root

        # Entry bytes: only the divergent payloads (plus a node id per
        # shipped bucket), never the whole keyspace.
        payload_bytes = sum(
            len(source.payload(index).encode("utf-8")) +
            NODE_ID_WIRE_BYTES
            for index in divergent)
        assert report.entry_bytes == payload_bytes

        # Hash traffic: one root-to-leaf walk per divergent bucket is
        # the worst case — O(d log n), far below shipping all n leaf
        # hashes for a flat comparison.
        tree_height = source.tree.level_count
        walk_budget = 1 + 2 * tree_height * max(1, len(divergent))
        assert report.hashes_compared <= min(walk_budget,
                                             2 * bucket_count + 1)
        if not divergent:
            assert report.bytes_shipped == HASH_WIRE_BYTES


#: An interleaving: per-step (op kind, key index); faults come from a
#: seeded plan so every example is reproducible.
interleavings = st.lists(
    st.tuples(st.sampled_from(["write", "read", "failover", "repair"]),
              st.integers(min_value=0, max_value=7)),
    min_size=1, max_size=30)


class TestWatermarkMonotonicity:
    @settings(max_examples=50, deadline=None)
    @given(steps=interleavings,
           fault_seed=st.integers(min_value=0, max_value=999))
    def test_sessions_never_observe_regression(self, steps, fault_seed):
        sites = [f"replica:{shard}/{i}"
                 for shard in range(2) for i in range(3)]
        plan = FaultPlan.random(seed=fault_seed, sites=sites,
                                rate=0.15, horizon=80)
        faults = FaultInjector(plan, FaultClock(), seed=fault_seed)
        router = ReplicaRouter(shard_count=2, replica_count=3,
                               bucket_count=8, faults=faults)
        session = router.session()
        acked: dict[str, tuple[str, int]] = {}  # key -> (value, lineage)
        tainted: set[str] = set()  # keys with an unacked write in flight

        floors_before: dict[int, int] = {}
        for step, (kind, index) in enumerate(steps):
            key = f"k{index}"
            if kind == "write":
                try:
                    router.put(key, f"v{step}", session=session)
                except TransportError:
                    # The write may or may not have applied; value
                    # assertions for this key are off until re-acked.
                    tainted.add(key)
                    continue
                acked[key] = (f"v{step}", router.failovers)
                tainted.discard(key)
            elif kind == "read":
                try:
                    # session.observed() inside raises IntegrityError
                    # on any regression — the property under test; it
                    # is NOT a TransportError, so it escapes here.
                    value = router.get(key, session=session)
                except TransportError:
                    continue
                if key in acked and key not in tainted:
                    expected, lineage = acked[key]
                    if router.failovers == lineage:
                        # Read-your-writes within one primary lineage.
                        assert value == expected
            elif kind == "failover":
                group = router.groups[index % router.shard_count]
                try:
                    group.failover()
                except TransportError:
                    continue
            else:
                router.anti_entropy(max_rounds=1)

            # Floors only ever rise, step over step.
            floors_now = session.snapshot()
            for shard, floor in floors_before.items():
                assert floors_now.get(shard, 0) >= floor
            floors_before = floors_now
