"""Property-based test: every retained snapshot of the copy-on-write
store is byte-identical to a serial replay of the same write prefix on
the live mutable model, and retired epochs are reclaimed only after
their last reader releases."""

from hypothesis import given, settings, strategies as st

from repro.snap.xmlstore import SnapshotXmlDatabase
from repro.xmldb.model import Element
from repro.xmldb.parser import parse
from repro.xmldb.serializer import serialize

BASE_XML = "<doc><a><b>1</b></a><c attr=\"x\">2</c></doc>"

#: Paths that exist in BASE_XML for point edits (appends only add
#: fresh <n/> children under /doc/a, so these stay resolvable).
EDIT_PATHS = ["/doc", "/doc/a", "/doc/a/b", "/doc/c"]

TEXTS = ["", "v", "a&b", "<t>", "7"]


def live_resolve(root: Element, path: str) -> Element:
    """Serial-replay oracle's resolver: same first-match-per-segment
    semantics as :func:`repro.snap.frozen.resolve`."""
    node = root
    for tag in path.strip("/").split("/")[1:]:
        node = node.find(tag)
    return node


def apply_live(document, op) -> None:
    kind = op[0]
    if kind == "text":
        live_resolve(document.root, op[1]).set_text(op[2])
    elif kind == "attr":
        live_resolve(document.root, op[1]).set_attribute(op[2], op[3])
    elif kind == "append":
        live_resolve(document.root, "/doc/a").append(Element("n"))


def apply_snap(db: SnapshotXmlDatabase, op) -> None:
    kind = op[0]
    if kind == "text":
        db.set_text("c", "d", op[1], op[2])
    elif kind == "attr":
        db.set_attribute("c", "d", op[1], op[2], op[3])
    elif kind == "append":
        db.append_child("c", "d", "/doc/a", Element("n"))


@st.composite
def interleaving(draw):
    """A mixed sequence of writes and 'freeze' observation points."""
    steps = []
    for _ in range(draw(st.integers(1, 25))):
        kind = draw(st.sampled_from(
            ["text", "attr", "append", "freeze", "freeze"]))
        if kind == "text":
            steps.append(("text", draw(st.sampled_from(EDIT_PATHS)),
                          draw(st.sampled_from(TEXTS))))
        elif kind == "attr":
            steps.append(("attr", draw(st.sampled_from(EDIT_PATHS)),
                          draw(st.sampled_from(["k", "k2"])),
                          draw(st.sampled_from(TEXTS))))
        else:
            steps.append((kind,))
    steps.append(("freeze",))
    return steps


class TestSnapshotEquivalence:
    @given(interleaving())
    @settings(max_examples=120, deadline=None)
    def test_retained_snapshots_replay_their_write_prefix(self, steps):
        db = SnapshotXmlDatabase()
        db.create_collection("c")
        db.insert("c", "d", BASE_XML)
        oracle_doc = parse(BASE_XML, name="d")
        retained = []  # (pinned snapshot, oracle bytes at that point)
        for step in steps:
            if step[0] == "freeze":
                retained.append((db.epochs.acquire(),
                                 serialize(oracle_doc)))
            else:
                apply_snap(db, step)
                apply_live(oracle_doc, step)
        # Writes that happened *after* a snapshot was pinned must not
        # leak into it: each pinned epoch replays exactly its prefix.
        for snapshot, expected in retained:
            assert snapshot.serialize("c", "d") == expected
        # And the Merkle roots agree with a fresh parse of the bytes.
        for snapshot, expected in retained:
            from repro.merkle.xml_merkle import document_hash
            assert (snapshot.merkle_root("c", "d")
                    == document_hash(parse(expected, name="d")))
        for snapshot, _ in retained:
            db.epochs.release(snapshot)

    @given(interleaving())
    @settings(max_examples=60, deadline=None)
    def test_reclamation_waits_for_the_last_release(self, steps):
        db = SnapshotXmlDatabase()
        db.create_collection("c")
        db.insert("c", "d", BASE_XML)
        pinned = []
        for step in steps:
            if step[0] == "freeze":
                pinned.append(db.epochs.acquire())
            else:
                apply_snap(db, step)
        current = db.epochs.current_epoch()
        superseded = sorted({s.epoch for s in pinned
                             if s.epoch != current})
        # Every pinned, superseded epoch is retired — not reclaimed.
        assert db.epochs.retired_epochs() == superseded
        reclaimed = set(db.epochs.reclaimed_epochs())
        assert not reclaimed.intersection(superseded)
        for snapshot in pinned:
            db.epochs.release(snapshot)
        # All pins dropped: everything superseded is now reclaimed.
        assert db.epochs.retired_epochs() == []
        assert set(superseded).issubset(set(db.epochs.reclaimed_epochs()))
