"""Tests for the secure database facade and transactions."""

import pytest

from repro.core.errors import AccessDenied, QueryError, TransactionError
from repro.relational.authorization import Privilege
from repro.relational.database import Database
from repro.relational.table import schema
from repro.relational.transactions import TransactionManager


def build() -> Database:
    database = Database()
    database.create_table(
        schema("emp", primary_key="id",
               id="int", name="text", dept="text", salary="float"),
        owner="dba")
    database.insert("dba", "emp", id=1, name="Alice", dept="onc",
                    salary=90.0)
    database.insert("dba", "emp", id=2, name="Bob", dept="icu",
                    salary=80.0)
    return database


class TestDatabase:
    def test_select_requires_privilege(self):
        database = build()
        with pytest.raises(AccessDenied):
            database.select("nobody", "emp")

    def test_grant_restrictions_injected(self):
        database = build()
        database.authorization.grant(
            "dba", "ann", "emp", Privilege.SELECT,
            row_filter=lambda r: r["dept"] == "onc",
            column_mask=["salary"])
        result = database.select("ann", "emp")
        rows = result.as_dicts()
        assert len(rows) == 1
        assert rows[0]["name"] == "Alice"
        assert rows[0]["salary"] is None

    def test_join_enforces_both_sides(self):
        database = build()
        database.create_table(schema("dept", primary_key="code",
                                     code="text", floor="int"), "dba")
        database.insert("dba", "dept", code="onc", floor=3)
        database.authorization.grant("dba", "ann", "emp",
                                     Privilege.SELECT)
        with pytest.raises(AccessDenied):
            database.join("ann", "emp", "dept", ("dept", "code"))

    def test_metadata(self):
        database = build()
        database.set_metadata("emp", "privacy", "constrained")
        assert database.get_metadata("emp", "privacy") == "constrained"
        with pytest.raises(QueryError):
            database.set_metadata("ghost", "k", "v")

    def test_duplicate_table_rejected(self):
        database = build()
        with pytest.raises(QueryError):
            database.create_table(schema("emp", a="int"), "dba")


class TestTransactions:
    def build_tm(self):
        database = build()
        manager = TransactionManager(database)
        manager.add_integrity_constraint(
            "emp", "salary-positive",
            lambda table: all(row[3] is None or row[3] >= 0
                              for row in table))
        return database, manager

    def test_commit_applies_changes(self):
        database, manager = self.build_tm()
        txn = manager.begin("dba")
        manager.insert(txn, "emp", id=3, name="Carol", dept="onc",
                       salary=70.0)
        manager.commit(txn)
        assert len(database.table("emp")) == 3
        assert manager.committed == 1

    def test_integrity_violation_rolls_back(self):
        database, manager = self.build_tm()
        txn = manager.begin("dba")
        manager.update(txn, "emp", lambda r: r["id"] == 1,
                       {"salary": -1.0})
        manager.insert(txn, "emp", id=3, name="X", dept="onc",
                       salary=1.0)
        with pytest.raises(TransactionError):
            manager.commit(txn)
        assert database.table("emp").get(1)[3] == 90.0
        assert len(database.table("emp")) == 2
        assert manager.aborted == 1

    def test_security_constraint_enforced(self):
        database, manager = self.build_tm()
        manager.add_security_constraint(
            "emp", "no-bulk-insert-by-interns",
            lambda user, table, staged: not (
                user == "intern" and len(staged) > 1))
        database.authorization.grant("dba", "intern", "emp",
                                     Privilege.INSERT)
        txn = manager.begin("intern")
        manager.insert(txn, "emp", id=3, name="A", dept="onc",
                       salary=1.0)
        manager.insert(txn, "emp", id=4, name="B", dept="onc",
                       salary=1.0)
        with pytest.raises(TransactionError):
            manager.commit(txn)
        assert len(database.table("emp")) == 2

    def test_explicit_abort(self):
        database, manager = self.build_tm()
        txn = manager.begin("dba")
        manager.delete(txn, "emp", lambda r: True)
        manager.abort(txn)
        assert len(database.table("emp")) == 2

    def test_operations_on_finished_txn_rejected(self):
        _database, manager = self.build_tm()
        txn = manager.begin("dba")
        manager.commit(txn)
        with pytest.raises(TransactionError):
            manager.insert(txn, "emp", id=9, name="X", dept="onc",
                           salary=1.0)

    def test_access_control_inside_transaction(self):
        _database, manager = self.build_tm()
        txn = manager.begin("stranger")
        with pytest.raises(AccessDenied):
            manager.insert(txn, "emp", id=9, name="X", dept="onc",
                           salary=1.0)
