"""Tests for the two web-transaction (auction) models."""

import pytest

from repro.core.errors import TransactionError
from repro.relational.bidding import (
    Bid,
    ImmediateLockAuction,
    ItemState,
    OpenBidAuction,
)


class TestImmediateLock:
    def test_first_bid_locks(self):
        auction = ImmediateLockAuction()
        auction.list_item("i1", 10.0)
        assert auction.place_bid(Bid("alice", "i1", 12.0))
        assert auction.item("i1").state is ItemState.LOCKED

    def test_later_bids_rejected_while_locked(self):
        auction = ImmediateLockAuction()
        auction.list_item("i1", 10.0)
        auction.place_bid(Bid("alice", "i1", 12.0))
        assert not auction.place_bid(Bid("bob", "i1", 50.0))
        assert auction.stats.bids_rejected == 1

    def test_below_reserve_rejected(self):
        auction = ImmediateLockAuction()
        auction.list_item("i1", 10.0)
        assert not auction.place_bid(Bid("alice", "i1", 5.0))

    def test_complete_sale(self):
        auction = ImmediateLockAuction()
        auction.list_item("i1", 10.0)
        auction.place_bid(Bid("alice", "i1", 12.0))
        item = auction.complete_sale("i1")
        assert item.state is ItemState.SOLD
        assert item.winner == "alice" and item.sale_price == 12.0
        assert auction.stats.revenue == 12.0

    def test_complete_without_lock_raises(self):
        auction = ImmediateLockAuction()
        auction.list_item("i1", 10.0)
        with pytest.raises(TransactionError):
            auction.complete_sale("i1")

    def test_release_reopens(self):
        auction = ImmediateLockAuction()
        auction.list_item("i1", 10.0)
        auction.place_bid(Bid("alice", "i1", 12.0))
        auction.release("i1")
        assert auction.item("i1").state is ItemState.OPEN
        assert auction.place_bid(Bid("bob", "i1", 11.0))

    def test_lock_holder_gets_item_even_if_lower(self):
        # The documented pathology: the first bidder wins regardless of
        # later, better offers.
        auction = ImmediateLockAuction()
        auction.list_item("i1", 10.0)
        auction.place_bid(Bid("cheap", "i1", 10.0))
        auction.place_bid(Bid("rich", "i1", 100.0))
        item = auction.complete_sale("i1")
        assert item.winner == "cheap" and item.sale_price == 10.0

    def test_duplicate_listing_rejected(self):
        auction = ImmediateLockAuction()
        auction.list_item("i1", 10.0)
        with pytest.raises(TransactionError):
            auction.list_item("i1", 10.0)


class TestOpenBid:
    def test_bids_accumulate(self):
        auction = OpenBidAuction()
        auction.list_item("i1", 10.0)
        for amount in (11.0, 12.0, 9.0):
            assert auction.place_bid(Bid(f"b{amount}", "i1", amount))
        assert auction.bid_count("i1") == 3
        assert auction.stats.bids_rejected == 0

    def test_close_sells_to_best(self):
        auction = OpenBidAuction()
        auction.list_item("i1", 10.0)
        auction.place_bid(Bid("cheap", "i1", 10.0))
        auction.place_bid(Bid("rich", "i1", 100.0))
        item = auction.close("i1")
        assert item.winner == "rich" and item.sale_price == 100.0

    def test_reserve_enforced_at_close(self):
        auction = OpenBidAuction()
        auction.list_item("i1", 50.0)
        auction.place_bid(Bid("low", "i1", 20.0))
        item = auction.close("i1")
        assert item.winner is None and item.sale_price is None
        assert auction.stats.items_sold == 0

    def test_bids_after_close_rejected(self):
        auction = OpenBidAuction()
        auction.list_item("i1", 10.0)
        auction.close("i1")
        assert not auction.place_bid(Bid("late", "i1", 99.0))

    def test_double_close_raises(self):
        auction = OpenBidAuction()
        auction.list_item("i1", 10.0)
        auction.close("i1")
        with pytest.raises(TransactionError):
            auction.close("i1")

    def test_tie_broken_deterministically(self):
        auction = OpenBidAuction()
        auction.list_item("i1", 1.0)
        auction.place_bid(Bid("aaa", "i1", 5.0))
        auction.place_bid(Bid("zzz", "i1", 5.0))
        assert auction.close("i1").winner == "zzz"


class TestModelComparison:
    def test_open_bid_extracts_more_revenue(self):
        # Same bid stream through both models: open bidding finds the
        # best price; immediate locking keeps the first.
        stream = [Bid("b1", "i", 10.0), Bid("b2", "i", 30.0),
                  Bid("b3", "i", 20.0)]
        locked = ImmediateLockAuction()
        locked.list_item("i", 10.0)
        for bid in stream:
            locked.place_bid(bid)
        locked.complete_sale("i")

        open_model = OpenBidAuction()
        open_model.list_item("i", 10.0)
        for bid in stream:
            open_model.place_bid(bid)
        open_model.close("i")

        assert open_model.stats.revenue > locked.stats.revenue
        assert locked.stats.bids_rejected > 0
        assert open_model.stats.bids_rejected == 0
