"""Tests for the lock manager and WAL recovery."""

import dataclasses

import pytest

from repro.core.errors import IntegrityError, TransactionError
from repro.relational.database import Database
from repro.relational.locks import (
    AcquireResult,
    LockManager,
    LockMode,
)
from repro.relational.recovery import (
    LoggedDatabase,
    LogKind,
    WriteAheadLog,
    recover,
)
from repro.relational.table import schema


class TestLockCompatibility:
    def test_shared_locks_coexist(self):
        manager = LockManager()
        assert manager.acquire("t1", "r", LockMode.SHARED) is \
            AcquireResult.GRANTED
        assert manager.acquire("t2", "r", LockMode.SHARED) is \
            AcquireResult.GRANTED

    def test_exclusive_blocks_everyone(self):
        manager = LockManager()
        manager.acquire("t1", "r", LockMode.EXCLUSIVE)
        assert manager.acquire("t2", "r", LockMode.SHARED) is \
            AcquireResult.WOULD_WAIT
        assert manager.acquire("t3", "r", LockMode.EXCLUSIVE) is \
            AcquireResult.WOULD_WAIT

    def test_reacquire_is_idempotent(self):
        manager = LockManager()
        manager.acquire("t1", "r", LockMode.EXCLUSIVE)
        assert manager.acquire("t1", "r", LockMode.EXCLUSIVE) is \
            AcquireResult.GRANTED
        assert manager.acquire("t1", "r", LockMode.SHARED) is \
            AcquireResult.GRANTED  # X covers S

    def test_upgrade_when_sole_holder(self):
        manager = LockManager()
        manager.acquire("t1", "r", LockMode.SHARED)
        assert manager.acquire("t1", "r", LockMode.EXCLUSIVE) is \
            AcquireResult.GRANTED

    def test_upgrade_blocked_by_other_sharer(self):
        manager = LockManager()
        manager.acquire("t1", "r", LockMode.SHARED)
        manager.acquire("t2", "r", LockMode.SHARED)
        assert manager.acquire("t1", "r", LockMode.EXCLUSIVE) is not \
            AcquireResult.GRANTED


class TestDeadlockDetection:
    def test_two_party_cycle_detected(self):
        manager = LockManager()
        manager.acquire("t1", "a", LockMode.EXCLUSIVE)
        manager.acquire("t2", "b", LockMode.EXCLUSIVE)
        assert manager.acquire("t1", "b", LockMode.EXCLUSIVE) is \
            AcquireResult.WOULD_WAIT
        assert manager.acquire("t2", "a", LockMode.EXCLUSIVE) is \
            AcquireResult.DEADLOCK
        assert manager.deadlocks_detected == 1

    def test_three_party_cycle_detected(self):
        manager = LockManager()
        for txn, resource in (("t1", "a"), ("t2", "b"), ("t3", "c")):
            manager.acquire(txn, resource, LockMode.EXCLUSIVE)
        assert manager.acquire("t1", "b", LockMode.EXCLUSIVE) is \
            AcquireResult.WOULD_WAIT
        assert manager.acquire("t2", "c", LockMode.EXCLUSIVE) is \
            AcquireResult.WOULD_WAIT
        assert manager.acquire("t3", "a", LockMode.EXCLUSIVE) is \
            AcquireResult.DEADLOCK

    def test_no_false_positive_on_chain(self):
        manager = LockManager()
        manager.acquire("t1", "a", LockMode.EXCLUSIVE)
        manager.acquire("t2", "b", LockMode.EXCLUSIVE)
        assert manager.acquire("t3", "a", LockMode.SHARED) is \
            AcquireResult.WOULD_WAIT
        assert manager.acquire("t3", "b", LockMode.SHARED) is \
            AcquireResult.WOULD_WAIT  # waiting on two, no cycle

    def test_acquire_or_raise(self):
        manager = LockManager()
        manager.acquire("t1", "a", LockMode.EXCLUSIVE)
        with pytest.raises(TransactionError):
            manager.acquire_or_raise("t2", "a", LockMode.SHARED)


class TestReleaseAndWakeup:
    def test_release_grants_fifo(self):
        manager = LockManager()
        manager.acquire("t1", "r", LockMode.EXCLUSIVE)
        manager.acquire("t2", "r", LockMode.EXCLUSIVE)
        manager.acquire("t3", "r", LockMode.EXCLUSIVE)
        woken = manager.release_all("t1")
        assert woken == ["t2"]
        assert manager.holders("r") == {"t2": LockMode.EXCLUSIVE}

    def test_release_grants_compatible_group(self):
        manager = LockManager()
        manager.acquire("t1", "r", LockMode.EXCLUSIVE)
        manager.acquire("t2", "r", LockMode.SHARED)
        manager.acquire("t3", "r", LockMode.SHARED)
        woken = manager.release_all("t1")
        assert set(woken) == {"t2", "t3"}

    def test_release_clears_wait_edges(self):
        manager = LockManager()
        manager.acquire("t1", "a", LockMode.EXCLUSIVE)
        manager.acquire("t2", "b", LockMode.EXCLUSIVE)
        manager.acquire("t1", "b", LockMode.EXCLUSIVE)  # t1 waits on t2
        manager.release_all("t2")
        # No stale edge: t2 requesting a should not be a "deadlock".
        assert manager.acquire("t2", "a", LockMode.EXCLUSIVE) is \
            AcquireResult.WOULD_WAIT


def patient_schemas():
    return [schema("emp", primary_key="id", id="int", name="text")]


class TestRecovery:
    def build(self):
        database = Database()
        for table_schema in patient_schemas():
            database.create_table(table_schema, owner="dba")
        return LoggedDatabase(database)

    def test_committed_changes_survive_crash(self):
        logged = self.build()
        txn = logged.begin()
        logged.insert(txn, "dba", "emp", id=1, name="Alice")
        logged.insert(txn, "dba", "emp", id=2, name="Bob")
        logged.commit(txn)
        # crash: in-memory database is lost, only the log remains
        recovered = recover(logged.log, patient_schemas())
        assert len(recovered.table("emp")) == 2
        assert recovered.table("emp").get(1)[1] == "Alice"

    def test_uncommitted_changes_undone(self):
        logged = self.build()
        committed = logged.begin()
        logged.insert(committed, "dba", "emp", id=1, name="Alice")
        logged.commit(committed)
        in_flight = logged.begin()
        logged.insert(in_flight, "dba", "emp", id=2, name="Ghost")
        # crash before commit
        recovered = recover(logged.log, patient_schemas())
        assert len(recovered.table("emp")) == 1
        assert recovered.table("emp").get(2) is None

    def test_aborted_changes_undone(self):
        logged = self.build()
        txn = logged.begin()
        logged.insert(txn, "dba", "emp", id=1, name="Oops")
        logged.abort(txn)
        recovered = recover(logged.log, patient_schemas())
        assert len(recovered.table("emp")) == 0

    def test_deletes_replayed(self):
        logged = self.build()
        txn = logged.begin()
        logged.insert(txn, "dba", "emp", id=1, name="Alice")
        logged.insert(txn, "dba", "emp", id=2, name="Bob")
        logged.commit(txn)
        txn2 = logged.begin()
        assert logged.delete(txn2, "dba", "emp", id=1) == 1
        logged.commit(txn2)
        recovered = recover(logged.log, patient_schemas())
        assert len(recovered.table("emp")) == 1
        assert recovered.table("emp").get(1) is None

    def test_operations_need_active_txn(self):
        logged = self.build()
        txn = logged.begin()
        logged.commit(txn)
        with pytest.raises(TransactionError):
            logged.insert(txn, "dba", "emp", id=1, name="X")

    def test_tampered_log_refused(self):
        logged = self.build()
        txn = logged.begin()
        logged.insert(txn, "dba", "emp", id=1, name="Alice")
        logged.commit(txn)
        records = logged.log._records
        records[1] = dataclasses.replace(records[1],
                                         row=(1, "Mallory"))
        with pytest.raises(IntegrityError):
            recover(logged.log, patient_schemas())

    def test_log_kinds_recorded(self):
        logged = self.build()
        txn = logged.begin()
        logged.insert(txn, "dba", "emp", id=1, name="A")
        logged.commit(txn)
        kinds = [record.kind for record in logged.log]
        assert kinds == [LogKind.BEGIN, LogKind.INSERT, LogKind.COMMIT]
