"""Tests for System R GRANT/REVOKE."""

import pytest

from repro.core.errors import AccessDenied, ConfigurationError
from repro.relational.authorization import (
    AuthorizationManager,
    Privilege,
)


def manager() -> AuthorizationManager:
    auth = AuthorizationManager()
    auth.set_owner("emp", "dba")
    return auth


class TestGranting:
    def test_owner_has_everything(self):
        auth = manager()
        for privilege in Privilege:
            assert auth.has_privilege("dba", "emp", privilege)

    def test_owner_can_grant(self):
        auth = manager()
        auth.grant("dba", "alice", "emp", Privilege.SELECT)
        assert auth.has_privilege("alice", "emp", Privilege.SELECT)
        assert not auth.has_privilege("alice", "emp", Privilege.INSERT)

    def test_non_holder_cannot_grant(self):
        auth = manager()
        with pytest.raises(AccessDenied):
            auth.grant("mallory", "friend", "emp", Privilege.SELECT)

    def test_grantee_without_option_cannot_regrant(self):
        auth = manager()
        auth.grant("dba", "alice", "emp", Privilege.SELECT)
        with pytest.raises(AccessDenied):
            auth.grant("alice", "bob", "emp", Privilege.SELECT)

    def test_grant_option_enables_regrant(self):
        auth = manager()
        auth.grant("dba", "alice", "emp", Privilege.SELECT,
                   with_grant_option=True)
        auth.grant("alice", "bob", "emp", Privilege.SELECT)
        assert auth.has_privilege("bob", "emp", Privilege.SELECT)

    def test_enforce_raises(self):
        auth = manager()
        with pytest.raises(AccessDenied):
            auth.enforce("nobody", "emp", Privilege.SELECT)


class TestRestrictions:
    def test_owner_unrestricted(self):
        auth = manager()
        row_filter, mask = auth.restriction("dba", "emp",
                                            Privilege.SELECT)
        assert row_filter is None and mask == ()

    def test_single_grant_restriction(self):
        auth = manager()
        auth.grant("dba", "alice", "emp", Privilege.SELECT,
                   row_filter=lambda r: r["dept"] == "onc",
                   column_mask=["salary"])
        row_filter, mask = auth.restriction("alice", "emp",
                                            Privilege.SELECT)
        assert row_filter({"dept": "onc"})
        assert not row_filter({"dept": "icu"})
        assert mask == ("salary",)

    def test_union_of_filters(self):
        auth = manager()
        auth.grant("dba", "alice", "emp", Privilege.SELECT,
                   row_filter=lambda r: r["dept"] == "onc")
        auth.grant("dba", "alice", "emp", Privilege.SELECT,
                   row_filter=lambda r: r["dept"] == "icu")
        row_filter, _ = auth.restriction("alice", "emp",
                                         Privilege.SELECT)
        assert row_filter({"dept": "onc"})
        assert row_filter({"dept": "icu"})
        assert not row_filter({"dept": "lab"})

    def test_unfiltered_grant_wins(self):
        auth = manager()
        auth.grant("dba", "alice", "emp", Privilege.SELECT,
                   row_filter=lambda r: False)
        auth.grant("dba", "alice", "emp", Privilege.SELECT)
        row_filter, _ = auth.restriction("alice", "emp",
                                         Privilege.SELECT)
        assert row_filter is None

    def test_mask_intersection(self):
        auth = manager()
        auth.grant("dba", "alice", "emp", Privilege.SELECT,
                   column_mask=["salary", "name"])
        auth.grant("dba", "alice", "emp", Privilege.SELECT,
                   column_mask=["salary"])
        _, mask = auth.restriction("alice", "emp", Privilege.SELECT)
        assert mask == ("salary",)

    def test_no_grant_raises(self):
        auth = manager()
        with pytest.raises(AccessDenied):
            auth.restriction("nobody", "emp", Privilege.SELECT)


class TestRevocation:
    def test_simple_revoke(self):
        auth = manager()
        auth.grant("dba", "alice", "emp", Privilege.SELECT)
        auth.revoke("dba", "alice", "emp", Privilege.SELECT)
        assert not auth.has_privilege("alice", "emp", Privilege.SELECT)

    def test_revoke_nothing_raises(self):
        auth = manager()
        with pytest.raises(ConfigurationError):
            auth.revoke("dba", "alice", "emp", Privilege.SELECT)

    def test_cascading_revoke(self):
        auth = manager()
        auth.grant("dba", "alice", "emp", Privilege.SELECT,
                   with_grant_option=True)
        auth.grant("alice", "bob", "emp", Privilege.SELECT)
        removed = auth.revoke("dba", "alice", "emp", Privilege.SELECT)
        assert len(removed) == 2
        assert not auth.has_privilege("bob", "emp", Privilege.SELECT)

    def test_independent_path_survives(self):
        auth = manager()
        auth.grant("dba", "alice", "emp", Privilege.SELECT,
                   with_grant_option=True)
        auth.grant("dba", "carol", "emp", Privilege.SELECT,
                   with_grant_option=True)
        auth.grant("alice", "bob", "emp", Privilege.SELECT)
        auth.grant("carol", "bob", "emp", Privilege.SELECT)
        auth.revoke("dba", "alice", "emp", Privilege.SELECT)
        assert auth.has_privilege("bob", "emp", Privilege.SELECT)

    def test_timestamp_rule(self):
        # System R: a regrant made *before* the grantor acquired an
        # independent path does not survive on that path.
        auth = manager()
        auth.grant("dba", "alice", "emp", Privilege.SELECT,
                   with_grant_option=True)
        auth.grant("alice", "bob", "emp", Privilege.SELECT)       # t1
        auth.grant("dba", "alice2", "emp", Privilege.SELECT,
                   with_grant_option=True)
        # bob's grant predates nothing else from alice; revoking alice
        # kills bob even though alice2 could re-grant later.
        auth.revoke("dba", "alice", "emp", Privilege.SELECT)
        assert not auth.has_privilege("bob", "emp", Privilege.SELECT)

    def test_deep_cascade(self):
        auth = manager()
        auth.grant("dba", "a", "emp", Privilege.SELECT,
                   with_grant_option=True)
        auth.grant("a", "b", "emp", Privilege.SELECT,
                   with_grant_option=True)
        auth.grant("b", "c", "emp", Privilege.SELECT,
                   with_grant_option=True)
        auth.grant("c", "d", "emp", Privilege.SELECT)
        removed = auth.revoke("dba", "a", "emp", Privilege.SELECT)
        assert len(removed) == 4
        for user in ("a", "b", "c", "d"):
            assert not auth.has_privilege(user, "emp", Privilege.SELECT)


class TestRevocationCycles:
    """Regressions for cascading revoke across grant-option cycles.

    Mutually supporting grant options (alice -> bob -> alice) must not
    keep each other alive once the owner's grant is revoked: every edge
    in the cycle postdates the revoked one, so System R's timestamp
    rule sweeps the whole component.  The static analyzer flags these
    graphs ahead of time as REL-CYCLE.
    """

    def _cyclic_pair(self):
        auth = manager()
        auth.grant("dba", "alice", "emp", Privilege.SELECT,
                   with_grant_option=True)
        auth.grant("alice", "bob", "emp", Privilege.SELECT,
                   with_grant_option=True)
        auth.grant("bob", "alice", "emp", Privilege.SELECT,
                   with_grant_option=True)
        return auth

    def test_revoking_root_sweeps_the_cycle(self):
        auth = self._cyclic_pair()
        removed = auth.revoke("dba", "alice", "emp", Privilege.SELECT)
        assert len(removed) == 3
        assert not auth.has_privilege("alice", "emp", Privilege.SELECT)
        assert not auth.has_privilege("bob", "emp", Privilege.SELECT)
        assert auth.all_grants() == []

    def test_cycle_does_not_resurrect_grantor(self):
        # Revoking inside the cycle: bob's back-edge to alice postdates
        # alice's original authority, so it cannot stand in for it.
        auth = self._cyclic_pair()
        auth.revoke("alice", "bob", "emp", Privilege.SELECT)
        assert not auth.has_privilege("bob", "emp", Privilege.SELECT)
        # alice keeps her owner-rooted grant.
        assert auth.has_privilege("alice", "emp", Privilege.SELECT)

    def test_cycle_with_dependent_leaf(self):
        # carol hangs off bob; the sweep must reach her through the
        # collapsing cycle.
        auth = self._cyclic_pair()
        auth.grant("bob", "carol", "emp", Privilege.SELECT)
        removed = auth.revoke("dba", "alice", "emp", Privilege.SELECT)
        assert len(removed) == 4
        assert not auth.has_privilege("carol", "emp", Privilege.SELECT)

    def test_independent_second_root_survives_cycle_sweep(self):
        auth = self._cyclic_pair()
        auth.grant("dba", "dave", "emp", Privilege.SELECT,
                   with_grant_option=True)
        auth.revoke("dba", "alice", "emp", Privilege.SELECT)
        assert auth.has_privilege("dave", "emp", Privilege.SELECT)
        assert not auth.has_privilege("bob", "emp", Privilege.SELECT)
