"""Tests for tables and the query engine."""

import pytest

from repro.core.errors import QueryError
from repro.relational.query import aggregate, join, select
from repro.relational.table import ColumnType, Table, schema


def employees() -> Table:
    table = Table(schema("emp", primary_key="id",
                         id="int", name="text", dept="text",
                         salary="float"))
    table.insert(1, "Alice", "onc", 90.0)
    table.insert(2, "Bob", "icu", 80.0)
    table.insert(3, "Carol", "onc", 70.0)
    return table


def departments() -> Table:
    table = Table(schema("dept", primary_key="code",
                         code="text", floor="int"))
    table.insert("onc", 3)
    table.insert("icu", 1)
    return table


class TestSchema:
    def test_duplicate_columns_rejected(self):
        from repro.relational.table import Column, TableSchema
        with pytest.raises(QueryError):
            TableSchema("t", (Column("a", ColumnType.INT),
                              Column("a", ColumnType.INT)))

    def test_pk_must_be_column(self):
        with pytest.raises(QueryError):
            schema("t", primary_key="ghost", a="int")

    def test_type_acceptance(self):
        assert ColumnType.INT.accepts(5)
        assert not ColumnType.INT.accepts(True)
        assert not ColumnType.INT.accepts("5")
        assert ColumnType.FLOAT.accepts(5)
        assert ColumnType.TEXT.accepts("x")
        assert ColumnType.BOOL.accepts(False)
        assert ColumnType.INT.accepts(None)


class TestTable:
    def test_insert_and_pk_lookup(self):
        table = employees()
        assert table.get(2)[1] == "Bob"
        assert table.get(99) is None

    def test_wrong_arity_rejected(self):
        with pytest.raises(QueryError):
            employees().insert(4, "Dave")

    def test_wrong_type_rejected(self):
        with pytest.raises(QueryError):
            employees().insert("x", "Dave", "onc", 1.0)

    def test_duplicate_pk_rejected(self):
        with pytest.raises(QueryError):
            employees().insert(1, "Dup", "onc", 1.0)

    def test_insert_dict(self):
        table = employees()
        table.insert_dict(id=4, name="Dave", dept="icu", salary=60.0)
        assert table.get(4)[1] == "Dave"
        with pytest.raises(QueryError):
            table.insert_dict(id=5, ghost=1)

    def test_update_where(self):
        table = employees()
        changed = table.update_where(lambda r: r["dept"] == "onc",
                                     {"salary": 99.0})
        assert changed == 2
        assert table.get(1)[3] == 99.0

    def test_delete_where(self):
        table = employees()
        removed = table.delete_where(lambda r: r["salary"] < 85.0)
        assert removed == 2
        assert len(table) == 1
        assert table.get(2) is None  # pk index rebuilt

    def test_snapshot_restore(self):
        table = employees()
        snapshot = table.snapshot()
        table.delete_where(lambda r: True)
        table.restore(snapshot)
        assert len(table) == 3 and table.get(1) is not None


class TestSelect:
    def test_projection(self):
        result = select(employees(), ["name"])
        assert result.columns == ("name",)
        assert result.column("name") == ["Alice", "Bob", "Carol"]

    def test_where(self):
        result = select(employees(), where=lambda r: r["dept"] == "onc")
        assert len(result) == 2

    def test_unknown_column_rejected(self):
        with pytest.raises(QueryError):
            select(employees(), ["ghost"])

    def test_order_and_limit(self):
        result = select(employees(), ["salary"], order_by="salary",
                        limit=2)
        assert result.column("salary") == [70.0, 80.0]

    def test_row_filter_applies_before_where(self):
        result = select(employees(),
                        where=lambda r: r["salary"] is not None,
                        row_filter=lambda r: r["dept"] == "icu")
        assert len(result) == 1

    def test_column_mask_nulls_values(self):
        result = select(employees(), column_mask=["salary"])
        assert set(result.column("salary")) == {None}
        assert result.column("name") == ["Alice", "Bob", "Carol"]

    def test_as_dicts(self):
        rows = select(employees(), ["id", "name"]).as_dicts()
        assert rows[0] == {"id": 1, "name": "Alice"}


class TestJoin:
    def test_equi_join(self):
        result = join(employees(), departments(), ("dept", "code"))
        assert len(result) == 3
        floors = result.column("dept.floor")
        assert set(floors) == {1, 3}

    def test_join_projection_and_where(self):
        result = join(employees(), departments(), ("dept", "code"),
                      columns=["emp.name", "dept.floor"],
                      where=lambda r: r["dept.floor"] == 3)
        assert sorted(result.column("emp.name")) == ["Alice", "Carol"]

    def test_join_side_filters(self):
        result = join(employees(), departments(), ("dept", "code"),
                      left_filter=lambda r: r["salary"] > 75.0)
        assert len(result) == 2

    def test_unknown_join_column_rejected(self):
        with pytest.raises(QueryError):
            join(employees(), departments(), ("ghost", "code"))


class TestAggregate:
    def test_count_sum_avg_min_max(self):
        result = select(employees(), ["salary"])
        assert aggregate(result, "salary", "count") == 3
        assert aggregate(result, "salary", "sum") == 240.0
        assert aggregate(result, "salary", "avg") == 80.0
        assert aggregate(result, "salary", "min") == 70.0
        assert aggregate(result, "salary", "max") == 90.0

    def test_empty_returns_none(self):
        result = select(employees(), ["salary"],
                        where=lambda r: False)
        assert aggregate(result, "salary", "sum") is None

    def test_unknown_function_rejected(self):
        with pytest.raises(QueryError):
            aggregate(select(employees(), ["salary"]), "salary", "median")
