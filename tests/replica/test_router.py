"""ReplicaRouter: sharded placement, sessions, retry + failover."""

import pytest

from repro.core.errors import (
    ConfigurationError,
    IntegrityError,
    RetryExhausted,
)
from repro.faults.clock import FaultClock
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.resilience import RetryPolicy
from repro.replica.router import ReplicaRouter, ReplicaSession


def test_keys_route_deterministically():
    router = ReplicaRouter(shard_count=4, replica_count=3,
                           bucket_count=16)
    shards = {key: router.shard_for_key(key) for key in
              (f"key{i}" for i in range(40))}
    assert shards == {key: router.shard_for_key(key) for key in shards}
    assert len(set(shards.values())) > 1  # the ring actually spreads


def test_write_read_roundtrip_with_session():
    router = ReplicaRouter(shard_count=4, replica_count=3,
                           bucket_count=16)
    session = router.session()
    for i in range(30):
        router.put(f"key{i}", f"val{i}", session=session)
    for i in range(30):
        assert router.get(f"key{i}", session=session) == f"val{i}"
    assert router.converged()
    assert router.writes == 30 and router.reads == 30


def test_delete_routes_and_replicates():
    router = ReplicaRouter(shard_count=2, replica_count=2,
                           bucket_count=8)
    session = router.session()
    router.put("k", "v", session=session)
    router.delete("k", session=session)
    assert router.get("k", session=session) is None
    assert router.converged()


def test_session_floor_rises_monotonically():
    router = ReplicaRouter(shard_count=2, replica_count=3,
                           bucket_count=8)
    session = router.session()
    floors = []
    for i in range(10):
        router.put(f"key{i}", f"v{i}", session=session)
        shard = router.shard_for_key(f"key{i}")
        floors.append((shard, session.floor(shard)))
    seen: dict[int, int] = {}
    for shard, floor in floors:
        assert floor >= seen.get(shard, 0)
        seen[shard] = floor


def test_session_observed_regression_is_integrity_error():
    session = ReplicaSession()
    session.advance(0, 5)
    with pytest.raises(IntegrityError):
        session.observed(0, 3)


def test_reads_spread_across_replicas():
    router = ReplicaRouter(shard_count=1, replica_count=4,
                           bucket_count=8)
    session = router.session()
    router.put("k", "v", session=session)
    for _ in range(30):
        router.get("k", session=session)
    served = router.reads_by_replica()
    readers = {site: count for site, count in served.items()
               if count > 0}
    assert len(readers) == 3  # all three read replicas take traffic
    assert max(readers.values()) <= 2 * min(readers.values())


def test_primary_crash_fails_over_and_write_survives():
    plan = FaultPlan().add("replica:0/0", 0,
                           FaultEvent(FaultKind.CRASH, magnitude=4))
    faults = FaultInjector(plan, FaultClock(), seed=1)
    router = ReplicaRouter(shard_count=1, replica_count=3,
                           bucket_count=8, faults=faults)
    session = router.session()
    version = router.put("k", "v", session=session)
    assert version >= 1
    assert router.failovers >= 1
    assert router.get("k", session=session) == "v"


def test_retry_exhaustion_is_typed():
    plan = FaultPlan()
    for site in ("replica:0/0", "replica:0/1", "replica:0/2"):
        plan.add(site, 0, FaultEvent(FaultKind.CRASH, magnitude=500))
    faults = FaultInjector(plan, FaultClock(), seed=1)
    router = ReplicaRouter(shard_count=1, replica_count=3,
                           bucket_count=8, faults=faults,
                           retry=RetryPolicy(max_attempts=3))
    with pytest.raises(RetryExhausted):
        router.put("k", "v")


def test_state_digest_is_reproducible():
    def build():
        router = ReplicaRouter(shard_count=3, replica_count=2,
                               bucket_count=8)
        for i in range(20):
            router.put(f"key{i}", f"val{i}")
        return router.state_digest()

    assert build() == build()


def test_shard_count_validated():
    with pytest.raises(ConfigurationError):
        ReplicaRouter(shard_count=0)
