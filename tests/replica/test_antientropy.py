"""Merkle anti-entropy: exact divergence localization, cheap repair."""

import pytest

from repro.core.errors import ConfigurationError
from repro.replica.antientropy import (
    HASH_WIRE_BYTES,
    RepairReport,
    antientropy_repair,
    diff_divergent_buckets,
    full_resync,
)
from repro.replica.store import BucketedMerkleStore


def _pair(bucket_count=64, entries=300):
    source = BucketedMerkleStore(bucket_count)
    target = BucketedMerkleStore(bucket_count)
    data = {f"key-{i}": f"val-{i}" for i in range(entries)}
    source.load(data)
    target.load(data)
    return source, target


def test_identical_stores_diff_to_nothing():
    source, target = _pair()
    report = RepairReport()
    assert diff_divergent_buckets(source.tree, target.tree, report) == []
    # One root comparison settles it — no descent at all.
    assert report.hashes_compared == 1
    assert report.bytes_shipped == HASH_WIRE_BYTES


def test_diff_finds_exactly_the_mutated_buckets():
    source, target = _pair()
    touched = {source.put("key-3", "changed"),
               source.put("key-150", "changed"),
               source.delete("key-42")}
    divergent = diff_divergent_buckets(source.tree, target.tree)
    assert set(divergent) == touched


def test_repair_converges_and_ships_only_divergence():
    source, target = _pair()
    source.put("key-7", "changed")
    source.put("key-200", "changed")
    report = antientropy_repair(source, target)
    assert target.root == source.root
    assert dict(target.items()) == dict(source.items())
    assert report.buckets_shipped == len(report.divergent_buckets)
    assert report.buckets_shipped <= 2
    assert not report.full_resync


def test_repair_comparisons_are_logarithmic_per_discrepancy():
    source, target = _pair(bucket_count=256, entries=1000)
    source.put("key-11", "changed")
    report = antientropy_repair(source, target)
    # One divergent leaf over 256 buckets: the walk opens one root-to-
    # leaf path, comparing both children at each of ~8 levels, plus
    # the root — far below the 256 leaf comparisons of a linear scan.
    assert report.hashes_compared <= 2 * 9 + 1
    assert target.root == source.root


def test_full_resync_ships_every_bucket():
    source, target = _pair(bucket_count=32)
    source.put("key-5", "changed")
    report = full_resync(source, target)
    assert target.root == source.root
    assert report.buckets_shipped == 32
    assert report.full_resync


def test_repair_digest_matches_full_resync_digest():
    source, repaired = _pair()
    _, resynced = _pair()
    for key in ("key-1", "key-77", "key-130"):
        source.put(key, "mutated")
    antientropy_repair(source, repaired)
    full_resync(source, resynced)
    assert repaired.root == resynced.root == source.root


def test_mismatched_layouts_refused():
    source = BucketedMerkleStore(16)
    target = BucketedMerkleStore(32)
    with pytest.raises(ConfigurationError):
        diff_divergent_buckets(source.tree, target.tree)
    with pytest.raises(ConfigurationError):
        full_resync(source, target)


def test_single_bucket_store_diffs():
    source = BucketedMerkleStore(1)
    target = BucketedMerkleStore(1)
    source.put("a", "1")
    assert diff_divergent_buckets(source.tree, target.tree) == [0]
    antientropy_repair(source, target)
    assert target.root == source.root


def test_odd_bucket_counts_diff_correctly():
    """Promoted-node tree shapes line up between the two trees."""
    for bucket_count in (3, 5, 7, 9, 11, 13):
        source = BucketedMerkleStore(bucket_count)
        target = BucketedMerkleStore(bucket_count)
        data = {f"k{i}": f"v{i}" for i in range(50)}
        source.load(data)
        target.load(data)
        index = source.put("k1", "changed")
        assert diff_divergent_buckets(source.tree, target.tree) == [index]
        antientropy_repair(source, target)
        assert target.root == source.root
