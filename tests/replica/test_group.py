"""ReplicaGroup: write path, failover, anti-entropy, typed faults."""

import pytest

from repro.core.errors import (
    ConfigurationError,
    MessageDropped,
    ReplicaDiverged,
    ReplicaUnavailable,
    StaleRead,
)
from repro.faults.clock import FaultClock
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.replica.group import Delta, ReplicaGroup
from repro.replica.store import BucketedMerkleStore


def _group(plan=None, seed=0, replica_count=3, bucket_count=16):
    faults = None
    if plan is not None:
        faults = FaultInjector(plan, FaultClock(), seed=seed)
    return ReplicaGroup(shard="0", replica_count=replica_count,
                        bucket_count=bucket_count, faults=faults)


class TestFaultFreePath:
    def test_writes_replicate_and_converge(self):
        group = _group()
        for i in range(12):
            version = group.write((("put", f"k{i}", f"v{i}"),))
            assert version == i + 1
        assert group.watermarks() == [12, 12, 12]
        assert group.converged()
        reference = BucketedMerkleStore(16)
        for i in range(12):
            reference.put(f"k{i}", f"v{i}")
        assert group.state_digest() == reference.root

    def test_reads_fan_over_read_replicas(self):
        group = _group()
        group.write((("put", "k", "v"),))
        for _ in range(10):
            value, watermark, _ = group.read("k", min_watermark=1)
            assert value == "v" and watermark == 1
        served = [replica.reads_served for replica in group.replicas]
        # Round-robin: the two read replicas split the traffic and the
        # primary serves none of it.
        assert served[0] == 0
        assert served[1] == served[2] == 5

    def test_single_replica_group_acks_on_primary_alone(self):
        group = _group(replica_count=1)
        assert group.write((("put", "k", "v"),)) == 1
        assert group.converged()

    def test_replica_count_validated(self):
        with pytest.raises(ConfigurationError):
            ReplicaGroup(replica_count=0)


class TestDeltaContiguity:
    def test_dropped_delta_leaves_gap_then_repair_closes_it(self):
        plan = FaultPlan().add("replica:0/1", 0, FaultKind.DROP)
        group = _group(plan)
        group.write((("put", "a", "1"),))       # replica 1 misses v1
        assert group.replicas[1].watermark == 0
        group.write((("put", "b", "2"),))       # v2 is non-contiguous there
        assert group.replicas[1].watermark == 0  # fell behind, no hole
        assert group.replicas[2].watermark == 2
        assert not group.converged()
        reports = group.anti_entropy_round()
        assert group.converged()
        assert group.replicas[1].watermark == 2
        # Only replica 1 needed repair, and only its divergent buckets.
        assert len(reports) == 1
        index, report = reports[0]
        assert index == 1 and 0 < report.buckets_shipped <= 2

    def test_noncontiguous_delta_raises_typed(self):
        group = _group()
        replica = group.replicas[1]
        with pytest.raises(ReplicaDiverged):
            replica.receive(Delta(5, (("put", "x", "1"),)))
        assert replica.watermark == 0

    def test_duplicate_delivery_is_idempotent(self):
        plan = FaultPlan().add("replica:0/1", 0, FaultKind.DUPLICATE)
        group = _group(plan)
        group.write((("put", "a", "1"),))
        assert group.replicas[1].watermark == 1
        assert group.converged()

    def test_unacked_when_no_read_replica_holds_the_delta(self):
        plan = (FaultPlan()
                .add("replica:0/1", 0, FaultKind.DROP)
                .add("replica:0/2", 0, FaultKind.DROP))
        group = _group(plan)
        with pytest.raises(MessageDropped):
            group.write((("put", "a", "1"),))
        assert group.unacked_writes == 1
        # The primary did apply; repair + retry converge the group.
        group.anti_entropy_round()
        group.write((("put", "a", "1"),))
        assert group.converged()

    def test_lost_ack_raises_after_applying(self):
        plan = FaultPlan().add("replica:0/0", 0, FaultKind.DROP)
        group = _group(plan)
        with pytest.raises(MessageDropped):
            group.write((("put", "a", "1"),))
        # The write DID apply and ship — a retry double-applies
        # harmlessly (idempotent ops, version no-op at the replicas).
        version = group.write((("put", "a", "1"),))
        assert version == 2
        assert group.primary.store.get("a") == "1"
        assert group.converged()


class TestFailover:
    def test_primary_crash_promotes_freshest(self):
        plan = FaultPlan().add("replica:0/0", 3,
                               FaultEvent(FaultKind.CRASH, magnitude=30))
        group = _group(plan)
        group.write((("put", "a", "1"),))   # ops 0..2 at the primary
        with pytest.raises(ReplicaUnavailable):
            group.write((("put", "b", "2"),))
        promoted = group.failover()
        assert promoted == group.primary_index != 0
        assert group.version == group.primary.watermark
        # Writes continue on the new primary; the acked write survived.
        group.write((("put", "b", "2"),))
        assert group.primary.store.get("a") == "1"
        assert group.primary.store.get("b") == "2"

    def test_failover_prefers_highest_watermark(self):
        group = _group()
        group.write((("put", "a", "1"),))
        # Manufacture a lag: replica 1 misses the next delta.
        group.replicas[2].receive(Delta(2, (("put", "b", "2"),)))
        group.primary.apply_authoritative(Delta(2, (("put", "b", "2"),)))
        group.version = 2
        assert group.replicas[1].watermark == 1
        assert group.replicas[2].watermark == 2
        assert group.failover() == 2

    def test_version_numbers_never_rewind_across_failover(self):
        plan = FaultPlan().add("replica:0/0", 6,
                               FaultEvent(FaultKind.CRASH, magnitude=40))
        group = _group(plan)
        acked = [group.write((("put", f"k{i}", f"v{i}"),))
                 for i in range(2)]
        with pytest.raises(ReplicaUnavailable):
            group.write((("put", "kx", "vx"),))
        group.failover()
        next_version = group.write((("put", "ky", "vy"),))
        assert next_version > max(acked)
        assert group.version == next_version

    def test_no_promotable_replica_raises_typed(self):
        plan = (FaultPlan()
                .add("replica:0/1", 0,
                     FaultEvent(FaultKind.CRASH, magnitude=10))
                .add("replica:0/2", 0,
                     FaultEvent(FaultKind.CRASH, magnitude=10)))
        group = _group(plan)
        with pytest.raises(ReplicaUnavailable):
            group.failover()


class TestReadPath:
    def test_lagging_replica_answers_stale_and_is_skipped(self):
        plan = FaultPlan().add("replica:0/1", 0, FaultKind.DROP)
        group = _group(plan)
        group.write((("put", "a", "1"),))
        # Replica 1 is at watermark 0; demanding >=1 must skip it.
        value, watermark, index = group.read("a", min_watermark=1)
        assert value == "1" and watermark == 1 and index != 1
        # Without a floor, replica 1 may answer (stale but allowed).
        value, watermark, index = group.read("a", min_watermark=0)
        assert watermark in (0, 1)

    def test_all_replicas_below_floor_raises_stale(self):
        group = _group()
        group.write((("put", "a", "1"),))
        with pytest.raises(StaleRead):
            group.read("a", min_watermark=99)

    def test_stale_read_fault_serves_previous_epoch(self):
        plan = FaultPlan().add("replica:0/1", 1, FaultKind.STALE_READ)
        group = _group(plan)
        group.write((("put", "a", "old"),))    # replica 1 op 0
        group.write((("put", "a", "new"),))    # replica 1 op 1? no —
        # op 1 at replica 1 is its *second* operation: the second
        # delta delivery consumes it, so inject earlier instead.
        # (This test pins the previous-epoch mechanism directly.)
        replica = group.replicas[2]
        previous = replica._previous
        assert previous is not None
        assert previous.watermark == 1
        assert previous.get("a") == "old"

    def test_crashed_replica_read_falls_through(self):
        plan = FaultPlan().add("replica:0/1", 1,
                               FaultEvent(FaultKind.CRASH, magnitude=5))
        group = _group(plan)
        group.write((("put", "a", "1"),))
        for _ in range(4):
            value, _, index = group.read("a", min_watermark=1)
            assert value == "1" and index != 1


class TestTrace:
    def test_trace_is_deterministic_and_replayable(self):
        def run():
            plan = FaultPlan.random(
                seed=42, sites=[f"replica:0/{i}" for i in range(3)],
                rate=0.2, horizon=30)
            group = _group(plan, seed=42)
            for i in range(8):
                try:
                    group.write((("put", f"k{i}", f"v{i}"),))
                except Exception:
                    pass
            group.anti_entropy_round()
            return tuple(group.trace)

        assert run() == run()
