"""BucketedMerkleStore: canonical digests + incremental summaries."""

import pytest

from repro.core.errors import ConfigurationError
from repro.merkle.tree import MerkleTree
from repro.replica.store import BucketedMerkleStore, bucket_payload


def test_roundtrip_put_get_delete():
    store = BucketedMerkleStore(16)
    store.put("alpha", "1")
    store.put("beta", "2")
    assert store.get("alpha") == "1"
    assert store.get("beta") == "2"
    assert "alpha" in store and len(store) == 2
    store.delete("alpha")
    assert store.get("alpha") is None
    assert len(store) == 1


def test_digest_is_content_addressed_not_history_addressed():
    """Same final state ⇒ same root, whatever the write order was."""
    a = BucketedMerkleStore(16)
    b = BucketedMerkleStore(16)
    for i in range(50):
        a.put(f"k{i}", f"v{i}")
    for i in reversed(range(50)):
        b.put(f"k{i}", f"v{i}")
    a.put("k7", "rewritten")
    a.put("k7", "v7")          # overwrite back
    b.put("extra", "x")
    b.delete("extra")          # add then remove
    assert a.root == b.root


def test_incremental_root_equals_full_rebuild():
    store = BucketedMerkleStore(16)
    for i in range(40):
        store.put(f"k{i}", f"v{i}")
    rebuilt = BucketedMerkleStore(16)
    rebuilt.load(dict(store.items()))
    assert store.root == rebuilt.root


def test_load_equals_puts():
    entries = {f"key-{i}": f"val-{i}" for i in range(30)}
    loaded = BucketedMerkleStore(8)
    loaded.load(entries)
    written = BucketedMerkleStore(8)
    for key, value in entries.items():
        written.put(key, value)
    assert loaded.root == written.root
    assert dict(loaded.items()) == dict(written.items())


def test_hash_ops_stay_logarithmic():
    """One put rehashes a root path, not the whole tree."""
    store = BucketedMerkleStore(256)
    store.load({f"k{i}": "v" for i in range(1000)})
    before = store.hash_ops
    store.put("k1", "changed")
    spent = store.hash_ops - before
    # Root path of a 256-leaf tree: 8 internal levels + 1 leaf hash.
    assert spent <= 10


def test_noop_put_and_delete_leave_root_unchanged():
    store = BucketedMerkleStore(8)
    store.put("a", "1")
    root = store.root
    store.put("a", "1")          # same value
    store.delete("missing")      # absent key
    assert store.root == root


def test_bucket_transfer_roundtrip():
    source = BucketedMerkleStore(8)
    source.load({f"k{i}": f"v{i}" for i in range(20)})
    target = BucketedMerkleStore(8)
    for index in range(8):
        target.replace_bucket(index, source.bucket_entries(index))
        assert target.payload(index) == source.payload(index)
    assert target.root == source.root


def test_payload_is_injective_ordering():
    assert bucket_payload({"b": "2", "a": "1"}) == \
        bucket_payload({"a": "1", "b": "2"})
    assert bucket_payload({"a": "1"}) != bucket_payload({"a": "2"})


def test_bucket_count_validation():
    with pytest.raises(ConfigurationError):
        BucketedMerkleStore(0)


def test_cow_buckets_keep_published_views_immutable():
    store = BucketedMerkleStore(4)
    store.put("a", "1")
    view = store.buckets_view()
    frozen = {k: dict(b) for k, b in enumerate(view)}
    store.put("a", "2")
    store.put("b", "3")
    assert {k: dict(b) for k, b in enumerate(view)} == frozen


class TestAlignedNodeAccess:
    """MerkleTree.children_of spans every shape the store produces."""

    @pytest.mark.parametrize("leaf_count", list(range(1, 18)))
    def test_children_partition_each_level(self, leaf_count):
        tree = MerkleTree([f"leaf{i}" for i in range(leaf_count)])
        for level in range(1, tree.level_count):
            seen = []
            for index in range(tree.level_width(level)):
                seen.extend(tree.children_of(level, index))
            assert sorted(seen) == list(range(tree.level_width(level - 1)))

    @pytest.mark.parametrize("leaf_count", [1, 2, 5, 9, 16])
    def test_node_hash_matches_recomputation(self, leaf_count):
        from repro.merkle.tree import hash_children
        tree = MerkleTree([f"leaf{i}" for i in range(leaf_count)])
        for level in range(1, tree.level_count):
            for index in range(tree.level_width(level)):
                children = tree.children_of(level, index)
                if len(children) == 1:
                    expected = tree.node_hash(level - 1, children[0])
                else:
                    expected = hash_children(
                        tree.node_hash(level - 1, children[0]),
                        tree.node_hash(level - 1, children[1]))
                assert tree.node_hash(level, index) == expected

    def test_bounds_checked(self):
        tree = MerkleTree(["a", "b", "c"])
        with pytest.raises(ConfigurationError):
            tree.children_of(0, 0)
        with pytest.raises(ConfigurationError):
            tree.children_of(tree.level_count, 0)
        with pytest.raises(ConfigurationError):
            tree.node_hash(0, 99)
