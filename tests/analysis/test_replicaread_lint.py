"""LINT-REPLICAREAD: replica reads without a staleness guard."""

from repro.analysis.codelint import lint_source


def rule_ids(source, path="t.py"):
    return [f.rule_id for f in lint_source(source, path)]


class TestReplicaReadRule:
    def test_flags_bare_replica_get_in_function(self):
        src = (
            "def lookup(replica_pool, key):\n"
            "    return replica_pool.get(key)\n")
        assert "LINT-REPLICAREAD" in rule_ids(src)

    def test_flags_attribute_chain_receivers(self):
        src = (
            "def lookup(router, key):\n"
            "    return router.replicas[0].serve_read(key)\n")
        assert "LINT-REPLICAREAD" in rule_ids(src)

    def test_non_replica_receivers_are_exempt(self):
        src = (
            "def lookup(store, key):\n"
            "    return store.get(key)\n")
        assert "LINT-REPLICAREAD" not in rule_ids(src)

    def test_non_read_verbs_are_exempt(self):
        src = (
            "def push(replica, delta):\n"
            "    return replica.receive(delta)\n")
        assert "LINT-REPLICAREAD" not in rule_ids(src)

    def test_module_level_reads_are_exempt(self):
        src = "VALUE = REPLICA.get('k')\n"
        assert "LINT-REPLICAREAD" not in rule_ids(src)

    def test_watermark_guard_suppresses(self):
        src = (
            "def lookup(replica, key, floor):\n"
            "    if replica.watermark < floor:\n"
            "        raise StaleRead(key)\n"
            "    return replica.get(key)\n")
        assert "LINT-REPLICAREAD" not in rule_ids(src)

    def test_session_parameter_suppresses(self):
        # A function that *takes* a session is staleness-aware: the
        # ast.arg name itself counts as a guard token.
        src = (
            "def lookup(replica, key, session):\n"
            "    return replica.get(key)\n")
        assert "LINT-REPLICAREAD" not in rule_ids(src)

    def test_min_watermark_keyword_suppresses(self):
        src = (
            "def lookup(replica, key, floor):\n"
            "    return replica.serve_read(key, min_watermark=floor)\n")
        assert "LINT-REPLICAREAD" not in rule_ids(src)

    def test_nested_function_inherits_guard_context(self):
        src = (
            "def serve(replica, keys, session):\n"
            "    def one(key):\n"
            "        return replica.get(key)\n"
            "    return [one(k) for k in keys]\n")
        assert "LINT-REPLICAREAD" not in rule_ids(src)

    def test_pragma_waives_exactly_this_rule(self):
        src = (
            "def lookup(replica_pool, key):\n"
            "    return replica_pool.get(key)"
            "  # lint: allow=LINT-REPLICAREAD\n")
        assert "LINT-REPLICAREAD" not in rule_ids(src)

    def test_severity_is_warning(self):
        src = (
            "def lookup(replica_pool, key):\n"
            "    return replica_pool.get(key)\n")
        findings = [f for f in lint_source(src, "t.py")
                    if f.rule_id == "LINT-REPLICAREAD"]
        assert len(findings) == 1
        assert findings[0].severity.name == "WARNING"

    def test_src_tree_is_clean(self):
        import pathlib

        from repro.analysis.codelint import lint_paths
        src_root = pathlib.Path(__file__).resolve().parents[2] / "src"
        report = lint_paths([src_root])
        assert report.by_rule("LINT-REPLICAREAD") == []
