"""Tests for the custom AST code lint."""

import pathlib
import textwrap

from repro.analysis.codelint import lint_paths, lint_source

SRC_ROOT = pathlib.Path(__file__).resolve().parents[2] / "src"


def rule_ids(source):
    return [f.rule_id for f in lint_source(textwrap.dedent(source))]


class TestMutableDefaults:
    def test_literal_and_call_defaults_flagged(self):
        assert rule_ids("def f(a=[]): pass") == ["LINT-MUTDEF"]
        assert rule_ids("def f(a={}): pass") == ["LINT-MUTDEF"]
        assert rule_ids("def f(*, a=dict()): pass") == ["LINT-MUTDEF"]

    def test_immutable_defaults_pass(self):
        assert rule_ids("def f(a=(), b=None, c=0): pass") == []


class TestBareExcept:
    def test_bare_except_flagged(self):
        source = """\
        try:
            pass
        except:
            pass
        """
        assert rule_ids(source) == ["LINT-BAREEXC"]

    def test_typed_except_passes(self):
        source = """\
        try:
            pass
        except ValueError:
            pass
        """
        assert rule_ids(source) == []


class TestHash:
    def test_builtin_hash_outside_dunder_flagged(self):
        assert rule_ids("seed = hash('x')") == ["LINT-HASH"]

    def test_hash_inside_dunder_hash_allowed(self):
        source = """\
        class C:
            def __hash__(self):
                return hash(('C', 1))
        """
        assert rule_ids(source) == []


class TestCheckerVerdicts:
    def test_silent_checker_flagged(self):
        source = """\
        def check_labels(labels):
            for label in labels:
                label.strip()
        """
        assert rule_ids(source) == ["LINT-CHECKRET"]

    def test_raising_checker_passes(self):
        source = """\
        def verify_proof(proof):
            if not proof:
                raise ValueError('bad proof')
        """
        assert rule_ids(source) == []

    def test_discarded_verdict_flagged(self):
        source = """\
        def check_quorum(votes):
            return len(votes) > 2

        def tally(votes):
            check_quorum(votes)
        """
        assert rule_ids(source) == ["LINT-CHECKRET"]

    def test_consumed_verdict_passes(self):
        source = """\
        def check_quorum(votes):
            return len(votes) > 2

        def tally(votes):
            return check_quorum(votes)
        """
        assert rule_ids(source) == []

    def test_private_helpers_exempt(self):
        source = """\
        def _check_node(node):
            node.visit()
        """
        assert rule_ids(source) == []


class TestSyntaxErrors:
    def test_unparseable_source_is_a_finding(self):
        findings = lint_source("def broken(:", path="bad.py")
        assert [f.rule_id for f in findings] == ["LINT-SYNTAX"]
        assert findings[0].location.startswith("bad.py:")


class TestTreeLint:
    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "bad.py").write_text(
            "def f(a=[]): pass\n", encoding="utf-8")
        (tmp_path / "pkg" / "good.py").write_text(
            "def f(a=None): pass\n", encoding="utf-8")
        report = lint_paths([tmp_path])
        assert [f.rule_id for f in report] == ["LINT-MUTDEF"]
        assert "bad.py" in report.findings[0].location

    def test_repo_src_tree_is_clean(self):
        # The CI gate: the shipping tree must carry zero lint findings.
        report = lint_paths([SRC_ROOT])
        assert list(report) == []
