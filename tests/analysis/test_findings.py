"""Tests for the Finding record, Report and rule registry."""

import json

import pytest

from repro.analysis.findings import (
    Finding,
    REGISTRY,
    Report,
    RuleRegistry,
    Severity,
)


class TestRegistry:
    def test_duplicate_rule_id_rejected(self):
        registry = RuleRegistry()
        registry.register("T-1", Severity.ERROR, "test", "one")
        with pytest.raises(ValueError):
            registry.register("T-1", Severity.INFO, "test", "again")

    def test_checker_requires_registered_rule(self):
        registry = RuleRegistry()
        with pytest.raises(ValueError):
            registry.checker("T-MISSING")

    def test_run_domain_collects_checker_findings(self):
        registry = RuleRegistry()
        registry.register("T-1", Severity.WARNING, "test", "one")

        @registry.checker("T-1")
        def check(context):
            return [registry.make_finding("T-1", "here", str(context))]

        findings = registry.run_domain("test", "ctx")
        assert [f.message for f in findings] == ["ctx"]
        assert findings[0].severity is Severity.WARNING

    def test_make_finding_severity_override(self):
        registry = RuleRegistry()
        registry.register("T-1", Severity.ERROR, "test", "one")
        finding = registry.make_finding("T-1", "loc", "msg",
                                        severity=Severity.INFO)
        assert finding.severity is Severity.INFO

    def test_global_registry_has_every_domain(self):
        import repro.analysis  # noqa: F401  (registers all domains)
        domains = {rule.domain for rule in REGISTRY.rules()}
        assert {"xml", "grants", "privacy", "rdf", "lint"} <= domains

    def test_every_registered_rule_cites_a_claim(self):
        import repro.analysis  # noqa: F401
        for rule in REGISTRY.rules():
            assert rule.claim, rule.rule_id


class TestReport:
    def _report(self):
        return Report([
            Finding("B-RULE", Severity.INFO, "loc-b", "info msg"),
            Finding("A-RULE", Severity.ERROR, "loc-a", "error msg",
                    fix_hint="do the thing"),
            Finding("C-RULE", Severity.WARNING, "loc-c", "warn msg"),
        ])

    def test_sorted_puts_errors_first(self):
        ordered = self._report().sorted()
        assert [f.severity for f in ordered] == [
            Severity.ERROR, Severity.WARNING, Severity.INFO]

    def test_exit_code_follows_errors(self):
        assert self._report().exit_code == 1
        assert Report().exit_code == 0
        warn_only = Report([Finding("X", Severity.WARNING, "l", "m")])
        assert warn_only.exit_code == 0

    def test_render_text_includes_counts_and_hint(self):
        text = self._report().render_text()
        assert "3 finding(s): 1 error(s), 1 warning(s), 1 info" in text
        assert "(fix: do the thing)" in text
        assert Report().render_text() == "no findings"

    def test_to_json_roundtrips(self):
        decoded = json.loads(self._report().to_json())
        assert [entry["rule_id"] for entry in decoded] == [
            "A-RULE", "C-RULE", "B-RULE"]
        assert decoded[0]["severity"] == "error"

    def test_by_rule_and_rule_ids(self):
        report = self._report()
        assert len(report.by_rule("A-RULE")) == 1
        assert report.rule_ids() == {"A-RULE", "B-RULE", "C-RULE"}
