"""LINT-BATCHLOOP: per-item policy evaluation inside a loop."""

from repro.analysis.codelint import lint_source


def rule_ids(source):
    return [f.rule_id for f in lint_source(source, "t.py")]


class TestBatchLoopRule:
    def test_flags_decide_in_for_loop(self):
        src = (
            "def f(evaluator, requests):\n"
            "    for subject, action, path in requests:\n"
            "        evaluator.decide(subject, action, path)\n")
        assert "LINT-BATCHLOOP" in rule_ids(src)

    def test_flags_check_in_while_loop(self):
        src = (
            "def f(engine, queue):\n"
            "    while queue:\n"
            "        s, a, p = queue.pop()\n"
            "        engine.check(s, a, p)\n")
        assert "LINT-BATCHLOOP" in rule_ids(src)

    def test_ignores_calls_outside_loops(self):
        src = (
            "def f(evaluator, s, a, p):\n"
            "    return evaluator.decide(s, a, p)\n")
        assert "LINT-BATCHLOOP" not in rule_ids(src)

    def test_ignores_single_argument_calls(self):
        # One-argument .decide()/.check() are not the evaluator
        # signature (e.g. a referee deciding a match) — leave them be.
        src = (
            "def f(referee, matches):\n"
            "    for m in matches:\n"
            "        referee.decide(m)\n")
        assert "LINT-BATCHLOOP" not in rule_ids(src)

    def test_ignores_bare_name_calls(self):
        src = (
            "def f(requests):\n"
            "    for s, a, p in requests:\n"
            "        decide(s, a, p)\n")
        assert "LINT-BATCHLOOP" not in rule_ids(src)

    def test_ignores_batched_evaluation(self):
        src = (
            "def f(engine, requests):\n"
            "    triples = [(s, a, p) for s, a, p in requests]\n"
            "    return engine.decide_batch(triples)\n")
        assert "LINT-BATCHLOOP" not in rule_ids(src)

    def test_nested_function_resets_loop_depth(self):
        src = (
            "def f(evaluator, requests):\n"
            "    for r in requests:\n"
            "        def probe(s, a, p):\n"
            "            return evaluator.decide(s, a, p)\n"
            "        probe(*r)\n")
        assert "LINT-BATCHLOOP" not in rule_ids(src)

    def test_allow_pragma_waives_the_named_rule(self):
        src = (
            "def f(evaluator, requests):\n"
            "    for s, a, p in requests:\n"
            "        evaluator.check(  # lint: allow=LINT-BATCHLOOP\n"
            "            s, a, p)\n")
        assert "LINT-BATCHLOOP" not in rule_ids(src)

    def test_allow_pragma_is_rule_specific(self):
        # Waiving a different rule on the line suppresses nothing.
        src = (
            "def f(evaluator, requests):\n"
            "    for s, a, p in requests:\n"
            "        evaluator.check(  # lint: allow=LINT-XPATHLOOP\n"
            "            s, a, p)\n")
        assert "LINT-BATCHLOOP" in rule_ids(src)

    def test_allow_pragma_is_line_specific(self):
        src = (
            "def f(evaluator, requests):\n"
            "    # lint: allow=LINT-BATCHLOOP\n"
            "    for s, a, p in requests:\n"
            "        evaluator.check(s, a, p)\n")
        assert "LINT-BATCHLOOP" in rule_ids(src)

    def test_fix_hint_points_at_batch_engine(self):
        src = (
            "def f(evaluator, requests):\n"
            "    for s, a, p in requests:\n"
            "        evaluator.decide(s, a, p)\n")
        finding = [f for f in lint_source(src, "t.py")
                   if f.rule_id == "LINT-BATCHLOOP"][0]
        assert finding.severity.name == "WARNING"
        assert "decide_batch" in finding.fix_hint
