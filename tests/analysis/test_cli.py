"""Tests for the ``python -m repro.analysis`` CLI."""

import json
import textwrap

import pytest

from repro.analysis.cli import main
from repro.analysis.selfcheck import (
    BAD_SOURCE,
    EXPECTED_RULE_IDS,
    run_self_check,
)

CLEAN_FIXTURE = """\
from repro.core.credentials import has_role
from repro.datagen.documents import hospital_schema
from repro.xmlsec.authorx import XmlPolicyBase, xml_grant

SCHEMA = hospital_schema()
POLICIES = XmlPolicyBase([xml_grant(has_role("doctor"),
                                    "/hospital/record")])
"""

FLAWED_FIXTURE = """\
from repro.relational.authorization import (
    AuthorizationManager,
    Privilege,
)

GRANTS = AuthorizationManager()
GRANTS.set_owner("emp", "dba")
GRANTS.import_grant("mallory", "eve", "emp", Privilege.UPDATE)
"""


def write(tmp_path, name, content):
    path = tmp_path / name
    path.write_text(textwrap.dedent(content), encoding="utf-8")
    return str(path)


class TestFixtureAnalysis:
    def test_clean_fixture_exits_zero(self, tmp_path, capsys):
        path = write(tmp_path, "clean.py", CLEAN_FIXTURE)
        assert main([path]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_flawed_fixture_exits_nonzero(self, tmp_path, capsys):
        path = write(tmp_path, "flawed.py", FLAWED_FIXTURE)
        assert main([path]) == 1
        assert "REL-DANGLING" in capsys.readouterr().out

    def test_directory_scan_collects_every_fixture(self, tmp_path,
                                                   capsys):
        write(tmp_path, "clean.py", CLEAN_FIXTURE)
        write(tmp_path, "flawed.py", FLAWED_FIXTURE)
        write(tmp_path, "_private.py", "raise RuntimeError('skipped')")
        assert main([str(tmp_path)]) == 1
        assert "REL-DANGLING" in capsys.readouterr().out

    def test_warning_threshold(self, tmp_path, capsys):
        # A two-hop option chain is WARNING-severity only.
        path = write(tmp_path, "esc.py", """\
        from repro.relational.authorization import (
            AuthorizationManager,
            Privilege,
        )

        GRANTS = AuthorizationManager()
        GRANTS.set_owner("emp", "dba")
        GRANTS.grant("dba", "alice", "emp", Privilege.SELECT,
                     with_grant_option=True)
        GRANTS.grant("alice", "bob", "emp", Privilege.SELECT,
                     with_grant_option=True)
        """)
        assert main([path]) == 0
        capsys.readouterr()
        assert main(["--max-severity", "warning", path]) == 1

    def test_json_output(self, tmp_path, capsys):
        path = write(tmp_path, "flawed.py", FLAWED_FIXTURE)
        assert main(["--json", path]) == 1
        decoded = json.loads(capsys.readouterr().out)
        assert decoded[0]["rule_id"] == "REL-DANGLING"
        assert decoded[0]["severity"] == "error"


class TestLintMode:
    def test_seeded_violation_fails_the_build(self, tmp_path, capsys):
        # The acceptance gate: introducing a lint violation in a
        # fixture must flip the CLI to a failing exit code.
        path = write(tmp_path, "seeded.py", BAD_SOURCE)
        assert main(["--lint", path]) == 1
        out = capsys.readouterr().out
        for rule_id in ("LINT-MUTDEF", "LINT-BAREEXC", "LINT-HASH",
                        "LINT-CHECKRET"):
            assert rule_id in out

    def test_clean_tree_passes(self, tmp_path, capsys):
        write(tmp_path, "ok.py", "def f(a=None):\n    return a\n")
        assert main(["--lint", str(tmp_path)]) == 0


class TestSelfCheck:
    def test_cli_self_check_passes(self, capsys):
        assert main(["--self-check"]) == 0
        assert "self-check OK" in capsys.readouterr().out

    def test_every_expected_rule_fires(self):
        result = run_self_check()
        assert result.ok
        assert EXPECTED_RULE_IDS <= result.fired


class TestMisc:
    def test_rules_catalog_lists_every_rule(self, capsys):
        assert main(["--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in EXPECTED_RULE_IDS:
            assert rule_id in out

    def test_no_arguments_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_missing_path_is_usage_error_not_clean_pass(self, capsys):
        # A typo'd CI path must fail loudly, not report "no findings".
        with pytest.raises(SystemExit) as excinfo:
            main(["--lint", "/no/such/tree"])
        assert excinfo.value.code == 2
        assert "/no/such/tree" in capsys.readouterr().err
