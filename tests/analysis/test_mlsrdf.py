"""Tests for MLS/RDF classification-consistency analysis."""

from repro.analysis.mlsrdf import analyze_rdf
from repro.core.mls import Label, Level
from repro.rdfdb.containers import create_container
from repro.rdfdb.model import IRI, Literal, Triple
from repro.rdfdb.reification import reify
from repro.rdfdb.security import SecureRdfStore

EX = "http://example.org/"


def statement() -> Triple:
    return Triple(IRI(EX + "patient1"), IRI(EX + "diagnosis"),
                  Literal("arrhythmia"))


class TestReification:
    def test_unprotected_reification_of_secret_statement_leaks(self):
        secure = SecureRdfStore()
        triple = statement()
        secure.add(triple)
        reify(secure.store, triple)
        secure.classify(triple, Label(Level.SECRET),
                        protect_reifications=False)
        report = analyze_rdf(secure)
        leaks = report.by_rule("RDF-REIFY")
        assert len(leaks) == 1
        assert "subject" in leaks[0].message
        assert report.exit_code == 1

    def test_protected_reification_is_consistent(self):
        secure = SecureRdfStore()
        triple = statement()
        secure.add(triple)
        reify(secure.store, triple)
        secure.classify(triple, Label(Level.SECRET))
        report = analyze_rdf(secure)
        assert report.by_rule("RDF-REIFY") == []


class TestContainers:
    def _store_with_bag(self):
        secure = SecureRdfStore()
        node = create_container(
            secure.store, "Bag",
            [Literal("entry-1"), Literal("entry-2"), Literal("entry-3")])
        return secure, node

    def test_partially_classified_container_is_flagged(self):
        secure, node = self._store_with_bag()
        for triple in secure.store.match(node, None, None):
            if triple.predicate.local_name == "_2":
                secure.classify(triple, Label(Level.CONFIDENTIAL))
        report = analyze_rdf(secure)
        partial = report.by_rule("RDF-CONTAINER")
        assert len(partial) == 1
        assert "_2" in partial[0].message

    def test_uniformly_classified_container_is_consistent(self):
        secure, node = self._store_with_bag()
        for triple in secure.store.match(node, None, None):
            secure.classify(triple, Label(Level.CONFIDENTIAL))
        report = analyze_rdf(secure)
        assert report.by_rule("RDF-CONTAINER") == []
