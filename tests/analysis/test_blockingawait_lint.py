"""LINT-BLOCKINGAWAIT: blocking calls inside ``async def`` bodies."""

from repro.analysis.codelint import lint_source
from repro.analysis.findings import Severity


def rule_ids(source, path="t.py"):
    return [f.rule_id for f in lint_source(source, path)]


def blocking_findings(source):
    return [f for f in lint_source(source, "t.py")
            if f.rule_id == "LINT-BLOCKINGAWAIT"]


class TestBlockingAwaitRule:
    def test_flags_time_sleep_in_async_def(self):
        src = (
            "import time\n"
            "async def serve():\n"
            "    time.sleep(0.1)\n")
        assert rule_ids(src) == ["LINT-BLOCKINGAWAIT"]

    def test_flags_unawaited_acquire_in_async_def(self):
        src = (
            "async def serve(lock):\n"
            "    lock.acquire()\n")
        assert "LINT-BLOCKINGAWAIT" in rule_ids(src)

    def test_flags_sync_open_in_async_def(self):
        src = (
            "async def serve(path):\n"
            "    with open(path) as handle:\n"
            "        return handle.read()\n")
        assert "LINT-BLOCKINGAWAIT" in rule_ids(src)

    def test_awaited_acquire_is_the_async_api(self):
        src = (
            "async def serve(lock):\n"
            "    await lock.acquire()\n")
        assert "LINT-BLOCKINGAWAIT" not in rule_ids(src)

    def test_asyncio_sleep_is_fine(self):
        src = (
            "import asyncio\n"
            "async def serve():\n"
            "    await asyncio.sleep(0.1)\n")
        assert "LINT-BLOCKINGAWAIT" not in rule_ids(src)

    def test_with_lock_guard_is_fine(self):
        src = (
            "async def serve(lock, stats):\n"
            "    with lock:\n"
            "        stats.completed += 1\n")
        assert "LINT-BLOCKINGAWAIT" not in rule_ids(src)

    def test_sync_function_unaffected(self):
        src = (
            "import time\n"
            "def serve(lock, path):\n"
            "    time.sleep(0.1)\n"
            "    lock.acquire()\n"
            "    open(path)\n")
        assert "LINT-BLOCKINGAWAIT" not in rule_ids(src)

    def test_nested_sync_def_inside_async_not_flagged(self):
        """A sync closure's body is not necessarily run on the loop."""
        src = (
            "import time\n"
            "async def serve():\n"
            "    def backoff():\n"
            "        time.sleep(0.1)\n"
            "    return backoff\n")
        assert "LINT-BLOCKINGAWAIT" not in rule_ids(src)

    def test_async_def_nested_in_sync_def_is_flagged(self):
        src = (
            "import time\n"
            "def factory():\n"
            "    async def serve():\n"
            "        time.sleep(0.1)\n"
            "    return serve\n")
        assert "LINT-BLOCKINGAWAIT" in rule_ids(src)

    def test_pragma_waives_the_rule(self):
        src = (
            "import time\n"
            "async def bench_worst_case():\n"
            "    time.sleep(0.1)  # lint: allow=LINT-BLOCKINGAWAIT\n")
        assert "LINT-BLOCKINGAWAIT" not in rule_ids(src)

    def test_severity_is_warning(self):
        src = (
            "import time\n"
            "async def serve():\n"
            "    time.sleep(0.1)\n")
        (finding,) = blocking_findings(src)
        assert finding.severity is Severity.WARNING

    def test_clock_dot_sleep_is_not_time_sleep(self):
        """Logical clocks (FaultClock.sleep) charge ticks, not wall
        time — only the ``time`` module's sleep blocks."""
        src = (
            "async def serve(clock):\n"
            "    clock.sleep(3)\n")
        assert "LINT-BLOCKINGAWAIT" not in rule_ids(src)
