"""The policy rule domain: dead, conflicting, shadowed policies."""

import random

import pytest

from repro.analysis.corepolicy import (
    analyze_core_policies,
    dedupe_findings,
    patterns_overlap,
)
from repro.core.credentials import anyone, has_role
from repro.core.policy import Action, PolicyBase, deny, grant
from repro.scale.engine import ShardedPolicyEngine

from tests.scale.workloads import random_policies


def seeded_defect_policies():
    return [
        # conflict pair: shared subjects, overlapping resources
        grant(has_role("doctor"), Action.READ, "records/**"),
        deny(anyone(), Action.READ, "records/ssn"),
        # dead: no probe subject carries this role
        grant(has_role("chief-haruspex"), Action.WRITE, "labs/*"),
        # shadowed: every path it reaches denied for all its subjects
        grant(has_role("nurse"), Action.WRITE, "archive/old"),
        deny(anyone(), Action.WRITE, "archive/**"),
    ]


def finding_keys(report):
    return sorted((f.rule_id, f.location, f.message) for f in report)


def test_all_three_rules_fire_on_seeded_base():
    report = analyze_core_policies(seeded_defect_policies())
    rule_ids = {f.rule_id for f in report}
    assert rule_ids == {"POL-DEAD", "POL-CONFLICT", "POL-SHADOW"}


def test_healthy_base_is_clean():
    base = PolicyBase()
    base.add(grant(has_role("doctor"), Action.READ, "records/**"))
    base.add(grant(has_role("nurse"), Action.READ, "records/*/vitals"))
    base.add(deny(anyone(), Action.WRITE, "archive/**"))
    assert len(analyze_core_policies(base)) == 0


@pytest.mark.parametrize("shard_count", [1, 2, 3, 4, 8])
def test_sharded_report_matches_monolithic(shard_count):
    policies = seeded_defect_policies()
    engine = ShardedPolicyEngine(shard_count=shard_count)
    for policy in policies:
        engine.add(policy)
    assert finding_keys(analyze_core_policies(engine)) == \
        finding_keys(analyze_core_policies(policies))


@pytest.mark.parametrize("shard_count", [1, 2, 5, 8])
def test_broadcast_glob_policies_report_once(shard_count):
    """Glob-head policies live on every shard; findings must not."""
    policies = [
        grant(has_role("doctor"), Action.READ, "**"),
        deny(anyone(), Action.READ, "**"),
    ]
    engine = ShardedPolicyEngine(shard_count=shard_count)
    for policy in policies:
        engine.add(policy)
    report = analyze_core_policies(engine)
    conflicts = [f for f in report if f.rule_id == "POL-CONFLICT"]
    assert len(conflicts) == 1


def test_random_bases_are_shard_invariant():
    rng = random.Random(20260808)
    for _ in range(6):
        policies = random_policies(rng, rng.randrange(3, 12))
        monolithic = finding_keys(analyze_core_policies(policies))
        for shard_count in (1, 3, 7):
            engine = ShardedPolicyEngine(shard_count=shard_count)
            for policy in policies:
                engine.add(policy)
            assert finding_keys(analyze_core_policies(engine)) == \
                monolithic, shard_count


def test_dedupe_findings_keeps_first_order():
    report = analyze_core_policies(seeded_defect_policies())
    findings = list(report) + list(report)
    assert dedupe_findings(findings) == list(report)


def test_patterns_overlap_cases():
    def policy(resource, **kwargs):
        return grant(anyone(), Action.READ, resource, **kwargs)

    assert patterns_overlap(policy("records/**"), policy("records/ssn"))
    assert patterns_overlap(policy("r*/x"), policy("records/x"))
    assert patterns_overlap(policy("**"), policy("a/b/c"))
    assert not patterns_overlap(policy("records/a"), policy("records/b"))
    assert not patterns_overlap(policy("lab/**"), policy("archive/**"))
