"""Tests for static inference-channel detection."""

from repro.analysis.channels import PrivacyAnalysis, analyze_privacy
from repro.privacy.constraints import PrivacyConstraintSet, PrivacyLevel


class TestChannels:
    def test_completable_association_is_a_channel(self):
        constraints = PrivacyConstraintSet()
        constraints.protect_together(
            "patients", ["name", "diagnosis"], PrivacyLevel.PRIVATE,
            name="identity-condition")
        report = analyze_privacy(constraints)
        channels = report.by_rule("INF-CHANNEL")
        assert len(channels) == 1
        assert channels[0].location == "patients:identity-condition"
        assert "diagnosis" in channels[0].message

    def test_blocked_member_column_closes_the_channel(self):
        constraints = PrivacyConstraintSet()
        constraints.protect_together(
            "patients", ["name", "diagnosis"], PrivacyLevel.PRIVATE)
        constraints.protect("patients", "diagnosis",
                            PrivacyLevel.PRIVATE)
        report = analyze_privacy(constraints)
        assert report.by_rule("INF-CHANNEL") == []

    def test_semi_private_association_leaks_to_need_to_know_only(self):
        # Need-to-know subjects may see the association, so only the
        # public audience can exploit the channel.
        constraints = PrivacyConstraintSet()
        constraints.protect_together(
            "patients", ["name", "treatment"],
            PrivacyLevel.SEMI_PRIVATE)
        report = analyze_privacy(constraints,
                                 need_to_know=["auditor"])
        channels = report.by_rule("INF-CHANNEL")
        assert len(channels) == 1
        assert "public" in channels[0].message
        assert "auditor" not in channels[0].message


class TestRedundant:
    def test_association_behind_private_column_is_redundant(self):
        constraints = PrivacyConstraintSet()
        constraints.protect("patients", "ssn", PrivacyLevel.PRIVATE)
        constraints.protect_together(
            "patients", ["ssn", "insurer"], PrivacyLevel.PRIVATE,
            name="billing-identity")
        report = analyze_privacy(constraints)
        redundant = report.by_rule("INF-REDUNDANT")
        assert len(redundant) == 1
        assert "ssn" in redundant[0].message
        # Redundancy is informational, never build-breaking.
        assert report.exit_code == 0

    def test_live_association_is_not_redundant(self):
        constraints = PrivacyConstraintSet()
        constraints.protect_together(
            "patients", ["name", "diagnosis"], PrivacyLevel.PRIVATE)
        report = analyze_privacy(constraints)
        assert report.by_rule("INF-REDUNDANT") == []


class TestAudiences:
    def test_build_synthesizes_need_to_know_when_roster_empty(self):
        analysis = PrivacyAnalysis.build(PrivacyConstraintSet())
        names = [a.name for a in analysis.audiences]
        assert names == ["public", "need-to-know"]

    def test_build_uses_given_roster(self):
        analysis = PrivacyAnalysis.build(
            PrivacyConstraintSet(), need_to_know=["zoe", "abe", "zoe"])
        names = [a.name for a in analysis.audiences]
        assert names == ["public", "abe", "zoe"]
