"""LINT-XPATHLOOP: literal XPath compiled/evaluated inside a loop."""

from repro.analysis.codelint import lint_source


def rule_ids(source):
    return [f.rule_id for f in lint_source(source, "t.py")]


class TestXpathLoopRule:
    def test_flags_compile_in_for_loop(self):
        src = (
            "def f(docs):\n"
            "    for d in docs:\n"
            "        compile_xpath('//record')\n")
        assert "LINT-XPATHLOOP" in rule_ids(src)

    def test_flags_evaluate_and_select_in_while_loop(self):
        src = (
            "def f(doc):\n"
            "    while doc:\n"
            "        evaluate('//a', doc)\n"
            "        select_elements('//b', doc)\n")
        assert rule_ids(src).count("LINT-XPATHLOOP") == 2

    def test_flags_attribute_calls(self):
        src = (
            "def f(engine, docs):\n"
            "    for d in docs:\n"
            "        engine.evaluate('//a', d)\n")
        assert "LINT-XPATHLOOP" in rule_ids(src)

    def test_ignores_calls_outside_loops(self):
        src = (
            "def f(doc):\n"
            "    return select_elements('//record', doc)\n")
        assert "LINT-XPATHLOOP" not in rule_ids(src)

    def test_ignores_nonliteral_paths_in_loops(self):
        src = (
            "def f(paths, doc):\n"
            "    for p in paths:\n"
            "        select_elements(p, doc)\n")
        assert "LINT-XPATHLOOP" not in rule_ids(src)

    def test_ignores_hoisted_compile(self):
        src = (
            "def f(docs):\n"
            "    path = compile_xpath('//record')\n"
            "    for d in docs:\n"
            "        select_elements(path, d)\n")
        assert "LINT-XPATHLOOP" not in rule_ids(src)

    def test_nested_function_resets_loop_depth(self):
        # The inner function's body is not executed per iteration of the
        # outer loop; defining it there must not trip the rule.
        src = (
            "def f(docs):\n"
            "    for d in docs:\n"
            "        def probe():\n"
            "            return select_elements('//a', d)\n"
            "        probe()\n")
        assert "LINT-XPATHLOOP" not in rule_ids(src)

    def test_loop_inside_nested_function_is_still_flagged(self):
        src = (
            "def f():\n"
            "    def inner(docs):\n"
            "        for d in docs:\n"
            "            evaluate('//a', d)\n"
            "    return inner\n")
        assert "LINT-XPATHLOOP" in rule_ids(src)

    def test_rule_is_warning_severity(self):
        src = (
            "def f(docs):\n"
            "    for d in docs:\n"
            "        compile_xpath('//record')\n")
        finding = [f for f in lint_source(src, "t.py")
                   if f.rule_id == "LINT-XPATHLOOP"][0]
        assert finding.severity.name == "WARNING"
