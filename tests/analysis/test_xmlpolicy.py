"""Tests for static XML policy-base analysis over the hospital DTD."""

from repro.analysis.xmlpolicy import (
    DtdGraph,
    analyze_xml_policies,
    attachment_tags,
)
from repro.core.credentials import anyone, has_role, is_identity
from repro.datagen.documents import hospital_schema
from repro.xmldb.xpath import compile_xpath
from repro.xmlsec.authorx import (
    Privilege,
    XmlPolicyBase,
    XmlPropagation,
    xml_deny,
    xml_grant,
)

SCHEMA = hospital_schema()


def analyze(*policies):
    return analyze_xml_policies(XmlPolicyBase(list(policies)), SCHEMA)


class TestDtdGraph:
    def test_attachment_of_descendant_axis(self):
        graph = DtdGraph(SCHEMA)
        assert attachment_tags(compile_xpath("//record/ssn"),
                               graph) == {"ssn"}
        assert attachment_tags(compile_xpath("/hospital/record"),
                               graph) == {"record"}

    def test_undeclared_element_attaches_nowhere(self):
        graph = DtdGraph(SCHEMA)
        assert attachment_tags(compile_xpath("//prescription"),
                               graph) == set()


class TestConflicts:
    def test_overlapping_grant_and_deny_is_conflict(self):
        report = analyze(
            xml_grant(has_role("doctor"), "//record/ssn"),
            xml_deny(anyone(), "//record/ssn"))
        conflicts = report.by_rule("XML-CONFLICT")
        assert len(conflicts) == 1
        # The finding names the overlapping deny and witness subjects.
        assert "policy#" in conflicts[0].message
        assert "dr-grey" in conflicts[0].message

    def test_disjoint_subjects_do_not_conflict(self):
        report = analyze(
            xml_grant(is_identity("dr-grey"), "//record/ssn"),
            xml_deny(is_identity("nurse-joy"), "//record/ssn"))
        assert report.by_rule("XML-CONFLICT") == []

    def test_different_privileges_do_not_conflict(self):
        report = analyze(
            xml_grant(has_role("doctor"), "//record/ssn",
                      privilege=Privilege.NAVIGATE),
            xml_deny(anyone(), "//record/ssn"))
        assert report.by_rule("XML-CONFLICT") == []


class TestDeadPolicies:
    def test_undeclared_target_is_dead(self):
        report = analyze(xml_grant(has_role("nurse"), "//prescription"))
        dead = report.by_rule("XML-DEAD")
        assert len(dead) == 1
        assert dead[0].severity.name == "ERROR"

    def test_valid_target_is_alive(self):
        report = analyze(xml_grant(has_role("nurse"), "//record/name"))
        assert report.by_rule("XML-DEAD") == []


class TestShadowing:
    def test_grant_fully_covered_by_deny_is_shadowed(self):
        report = analyze(
            xml_grant(has_role("nurse"), "//billing/amount"),
            xml_deny(anyone(), "//billing/amount"))
        shadowed = report.by_rule("XML-SHADOWED")
        assert len(shadowed) == 1

    def test_partial_subject_overlap_is_not_shadowed(self):
        # The deny hits only doctors; nurse requests still succeed.
        report = analyze(
            xml_grant(has_role("nurse"), "//billing/amount"),
            xml_deny(has_role("doctor"), "//billing/amount"))
        assert report.by_rule("XML-SHADOWED") == []

    def test_shallower_deny_does_not_shadow_deeper_grant(self):
        # Most-specific-wins: the deeper grant beats the ancestor deny,
        # so the pair conflicts but the grant is not dead weight.
        report = analyze(
            xml_grant(has_role("doctor"), "//record/ssn"),
            xml_deny(anyone(), "/hospital",
                     propagation=XmlPropagation.CASCADE))
        assert report.by_rule("XML-SHADOWED") == []


class TestCleanBase:
    def test_healthy_base_has_no_findings(self):
        report = analyze(
            xml_grant(has_role("doctor"), "/hospital/record"),
            xml_deny(has_role("nurse"), "//record/ssn"))
        assert len(report) == 0
