"""LINT-STALECOMPILE: compiled-artifact reads without a freshness check."""

from repro.analysis.codelint import lint_source


def rule_ids(source, path="t.py"):
    return [f.rule_id for f in lint_source(source, path)]


class TestStaleCompileRule:
    def test_flags_bare_compiled_read_in_function(self):
        src = (
            "def route(engine, request):\n"
            "    return engine.compiled_table.decide(*request)\n")
        assert "LINT-STALECOMPILE" in rule_ids(src)

    def test_module_level_reads_are_exempt(self):
        src = "TABLE = ENGINE.compiled_table\n"
        assert "LINT-STALECOMPILE" not in rule_ids(src)

    def test_generation_comparison_suppresses(self):
        src = (
            "def route(engine, base, request):\n"
            "    if engine.compiled_table.source_generation != "
            "base.generation:\n"
            "        engine.recompile()\n"
            "    return engine.compiled_table.decide(*request)\n")
        assert "LINT-STALECOMPILE" not in rule_ids(src)

    def test_ensure_fresh_call_suppresses(self):
        src = (
            "def route(engine, request):\n"
            "    engine.ensure_fresh()\n"
            "    return engine.compiled_table.decide(*request)\n")
        assert "LINT-STALECOMPILE" not in rule_ids(src)

    def test_compile_machinery_functions_are_exempt(self):
        src = (
            "def recompile_artifacts(engine):\n"
            "    return engine.compiled_table\n")
        assert "LINT-STALECOMPILE" not in rule_ids(src)

    def test_pragma_waives_exactly_this_rule(self):
        src = (
            "def route(engine, request):\n"
            "    table = engine.compiled_table"
            "  # lint: allow=LINT-STALECOMPILE\n"
            "    return table.decide(*request)\n")
        assert "LINT-STALECOMPILE" not in rule_ids(src)

    def test_write_targets_are_not_reads(self):
        src = (
            "def install(engine, table):\n"
            "    engine.compiled_table = table\n")
        assert "LINT-STALECOMPILE" not in rule_ids(src)

    def test_nested_function_inherits_fresh_context(self):
        src = (
            "def serve(engine, requests):\n"
            "    engine.ensure_fresh()\n"
            "    def one(request):\n"
            "        return engine.compiled_table.decide(*request)\n"
            "    return [one(r) for r in requests]\n")
        assert "LINT-STALECOMPILE" not in rule_ids(src)

    def test_src_tree_is_clean(self):
        import pathlib

        from repro.analysis.codelint import lint_paths
        src_root = pathlib.Path(__file__).resolve().parents[2] / "src"
        report = lint_paths([src_root])
        assert report.by_rule("LINT-STALECOMPILE") == []
