"""Tests for static grant-graph analysis."""

from repro.analysis.grants import (
    analyze_grants,
    escalation_paths,
    grant_option_cycles,
    unsupported_grants,
)
from repro.relational.authorization import (
    AuthorizationManager,
    Privilege,
)


def manager() -> AuthorizationManager:
    auth = AuthorizationManager()
    auth.set_owner("emp", "dba")
    return auth


class TestDangling:
    def test_imported_edge_without_support_is_dangling(self):
        auth = manager()
        auth.import_grant("mallory", "eve", "emp", Privilege.UPDATE)
        report = analyze_grants(auth)
        dangling = report.by_rule("REL-DANGLING")
        assert len(dangling) == 1
        assert "mallory" in dangling[0].message

    def test_dangling_detection_is_transitive(self):
        # eve's re-grant rests solely on the unsupported edge, so the
        # fixpoint removes both.
        auth = manager()
        auth.import_grant("mallory", "eve", "emp", Privilege.UPDATE,
                          with_grant_option=True)
        auth.import_grant("eve", "trudy", "emp", Privilege.UPDATE)
        assert len(unsupported_grants(auth)) == 2

    def test_owner_rooted_grants_are_supported(self):
        auth = manager()
        auth.grant("dba", "alice", "emp", Privilege.SELECT,
                   with_grant_option=True)
        auth.grant("alice", "bob", "emp", Privilege.SELECT)
        assert unsupported_grants(auth) == []
        assert analyze_grants(auth).by_rule("REL-DANGLING") == []


class TestCycles:
    def test_mutual_grant_options_form_cycle(self):
        auth = manager()
        auth.grant("dba", "alice", "emp", Privilege.SELECT,
                   with_grant_option=True)
        auth.grant("alice", "bob", "emp", Privilege.SELECT,
                   with_grant_option=True)
        auth.grant("bob", "alice", "emp", Privilege.SELECT,
                   with_grant_option=True)
        cycles = grant_option_cycles(auth)
        assert cycles == [("emp", "select", ["alice", "bob"])]
        report = analyze_grants(auth)
        assert len(report.by_rule("REL-CYCLE")) == 1

    def test_acyclic_chain_reports_no_cycle(self):
        auth = manager()
        auth.grant("dba", "alice", "emp", Privilege.SELECT,
                   with_grant_option=True)
        auth.grant("alice", "bob", "emp", Privilege.SELECT,
                   with_grant_option=True)
        assert grant_option_cycles(auth) == []


class TestEscalation:
    def test_two_hop_option_chain_is_escalation(self):
        auth = manager()
        auth.grant("dba", "alice", "emp", Privilege.SELECT,
                   with_grant_option=True)
        auth.grant("alice", "bob", "emp", Privilege.SELECT,
                   with_grant_option=True)
        paths = escalation_paths(auth)
        assert paths == [("emp", "select", ["dba", "alice", "bob"])]
        report = analyze_grants(auth)
        escalations = report.by_rule("REL-ESCALATION")
        assert len(escalations) == 1
        assert "bob" in escalations[0].message

    def test_single_hop_is_direct_trust_not_escalation(self):
        auth = manager()
        auth.grant("dba", "alice", "emp", Privilege.SELECT,
                   with_grant_option=True)
        assert escalation_paths(auth) == []

    def test_non_option_grants_never_escalate(self):
        auth = manager()
        auth.grant("dba", "alice", "emp", Privilege.SELECT,
                   with_grant_option=True)
        auth.grant("alice", "bob", "emp", Privilege.SELECT)
        assert escalation_paths(auth) == []
