"""LINT-HOTCOPY: whole-structure deep copies in loops / hot modules."""

from repro.analysis.codelint import lint_source


def rule_ids(source, path="t.py"):
    return [f.rule_id for f in lint_source(source, path)]


class TestHotCopyRule:
    def test_flags_deepcopy_in_for_loop(self):
        src = (
            "import copy\n"
            "def f(docs):\n"
            "    out = []\n"
            "    for d in docs:\n"
            "        out.append(copy.deepcopy(d))\n"
            "    return out\n")
        assert "LINT-HOTCOPY" in rule_ids(src)

    def test_flags_deep_copy_method_in_while_loop(self):
        src = (
            "def f(doc):\n"
            "    while doc:\n"
            "        doc = doc.deep_copy()\n")
        assert "LINT-HOTCOPY" in rule_ids(src)

    def test_flags_clone_in_loop(self):
        src = (
            "def f(trees):\n"
            "    return [t.clone() for t in trees if t]\n"
            "def g(trees):\n"
            "    for t in trees:\n"
            "        t.clone()\n")
        assert "LINT-HOTCOPY" in rule_ids(src)

    def test_flags_any_copy_in_hot_path_module(self):
        src = (
            "import copy\n"
            "def snapshot(state):\n"
            "    return copy.deepcopy(state)\n")
        assert "LINT-HOTCOPY" in rule_ids(
            src, path="src/repro/scale/engine.py")
        assert "LINT-HOTCOPY" in rule_ids(
            src, path="src/repro/snap/xmlstore.py")
        assert "LINT-HOTCOPY" in rule_ids(
            src, path="src/repro/perf/cache.py")

    def test_ignores_unlooped_copy_outside_hot_modules(self):
        src = (
            "import copy\n"
            "def snapshot(state):\n"
            "    return copy.deepcopy(state)\n")
        assert "LINT-HOTCOPY" not in rule_ids(
            src, path="src/repro/wsa/transport.py")

    def test_hot_module_match_is_on_directories_not_filename(self):
        src = (
            "import copy\n"
            "def f(state):\n"
            "    return copy.deepcopy(state)\n")
        # A *file* named perf.py outside the hot dirs is not hot.
        assert "LINT-HOTCOPY" not in rule_ids(src, path="src/repro/perf.py")

    def test_copy_routines_may_copy(self):
        src = (
            "def deep_copy(self):\n"
            "    clone = Node(self.tag)\n"
            "    for child in self.children:\n"
            "        clone.append(child.deep_copy())\n"
            "    return clone\n")
        assert "LINT-HOTCOPY" not in rule_ids(src)

    def test_pragma_waives_exactly_this_rule(self):
        src = (
            "import copy\n"
            "def f(docs):\n"
            "    for d in docs:\n"
            "        keep(copy.deepcopy(d))  # lint: allow=LINT-HOTCOPY\n")
        assert "LINT-HOTCOPY" not in rule_ids(src)

    def test_src_tree_is_clean(self):
        import pathlib

        from repro.analysis.codelint import lint_paths
        src_root = pathlib.Path(__file__).resolve().parents[2] / "src"
        report = lint_paths([src_root])
        assert report.by_rule("LINT-HOTCOPY") == []
