"""LINT-FORKSTATE: module-level mutable state in forking modules."""

from repro.analysis.codelint import lint_source


def rule_ids(source, path="t.py"):
    return [f.rule_id for f in lint_source(source, path)]


FORKING_PREAMBLE = (
    "import multiprocessing\n"
    "import threading\n"
    "CTX = multiprocessing.get_context('fork')\n")


class TestForkStateRule:
    def test_flags_module_level_lock_in_forking_module(self):
        src = FORKING_PREAMBLE + "SEND_LOCK = threading.Lock()\n"
        assert "LINT-FORKSTATE" in rule_ids(src)

    def test_flags_module_level_queue(self):
        src = FORKING_PREAMBLE + "REPLIES = CTX.Queue()\n"
        assert "LINT-FORKSTATE" in rule_ids(src)

    def test_flags_mutable_cache_by_target_name(self):
        src = FORKING_PREAMBLE + "DECISION_CACHE = {}\n"
        assert "LINT-FORKSTATE" in rule_ids(src)

    def test_spawn_string_marks_the_module(self):
        src = (
            "import multiprocessing\n"
            "import threading\n"
            "CTX = multiprocessing.get_context('spawn')\n"
            "SEND_LOCK = threading.Lock()\n")
        assert "LINT-FORKSTATE" in rule_ids(src)

    def test_annotated_assignment_counts(self):
        src = FORKING_PREAMBLE + (
            "import queue\n"
            "BACKLOG: queue.Queue = queue.Queue()\n")
        assert "LINT-FORKSTATE" in rule_ids(src)

    def test_non_forking_module_is_exempt(self):
        src = (
            "import threading\n"
            "SEND_LOCK = threading.Lock()\n")
        assert "LINT-FORKSTATE" not in rule_ids(src)

    def test_plain_mutable_binding_without_cache_name_is_exempt(self):
        # An ordinary module-level dict (a registry populated at import
        # time, say) is not flagged — only locks/channels by
        # constructor and caches by name.
        src = FORKING_PREAMBLE + "HANDLERS = {}\n"
        assert "LINT-FORKSTATE" not in rule_ids(src)

    def test_immutable_module_constants_are_exempt(self):
        src = FORKING_PREAMBLE + (
            "import struct\n"
            "HEADER = struct.Struct('!I')\n"
            "LIMIT = 4096\n")
        assert "LINT-FORKSTATE" not in rule_ids(src)

    def test_reinitialized_binding_is_exempt(self):
        # The post-fork re-init discipline: a function re-assigns the
        # module global, so each child can rebuild its own copy.
        src = FORKING_PREAMBLE + (
            "SEND_LOCK = threading.Lock()\n"
            "def reset_after_fork():\n"
            "    global SEND_LOCK\n"
            "    SEND_LOCK = threading.Lock()\n")
        assert "LINT-FORKSTATE" not in rule_ids(src)

    def test_function_local_state_is_exempt(self):
        src = FORKING_PREAMBLE + (
            "def make_channel():\n"
            "    lock = threading.Lock()\n"
            "    return lock\n")
        assert "LINT-FORKSTATE" not in rule_ids(src)

    def test_pragma_waives_exactly_this_rule(self):
        src = FORKING_PREAMBLE + (
            "SEND_LOCK = threading.Lock()"
            "  # lint: allow=LINT-FORKSTATE\n")
        assert "LINT-FORKSTATE" not in rule_ids(src)

    def test_severity_is_warning(self):
        src = FORKING_PREAMBLE + "SEND_LOCK = threading.Lock()\n"
        findings = [f for f in lint_source(src, "t.py")
                    if f.rule_id == "LINT-FORKSTATE"]
        assert len(findings) == 1
        assert findings[0].severity.name == "WARNING"

    def test_src_tree_is_clean(self):
        import pathlib

        from repro.analysis.codelint import lint_paths
        src_root = pathlib.Path(__file__).resolve().parents[2] / "src"
        report = lint_paths([src_root])
        assert report.by_rule("LINT-FORKSTATE") == []

    def test_selfcheck_fixture_fires_it(self):
        from repro.analysis.selfcheck import run_self_check
        result = run_self_check()
        assert "LINT-FORKSTATE" in result.fired
        assert result.ok
