"""The resilience toolkit: retry, timeout, breaker, idempotency."""

import pytest

from repro.core.errors import (
    AuthenticationError,
    CallTimeout,
    CircuitOpen,
    MessageDropped,
    RetryExhausted,
)
from repro.faults import (
    CircuitBreaker,
    FaultClock,
    IdempotencyLedger,
    RetryPolicy,
    RetryTelemetry,
    call_with_timeout,
    idempotency_key,
    retry_with_backoff,
)


class TestRetryWithBackoff:
    def test_succeeds_after_transient_failures(self):
        clock = FaultClock()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 4:
                raise MessageDropped("lost")
            return "done"

        telemetry = RetryTelemetry()
        result = retry_with_backoff(flaky, RetryPolicy(), clock,
                                    telemetry=telemetry)
        assert result == "done"
        assert telemetry.attempts == 4
        assert clock.now() == telemetry.backoff_ticks > 0

    def test_exhaustion_raises_typed_wrapper(self):
        clock = FaultClock()

        def always_fails():
            raise MessageDropped("lost forever")

        with pytest.raises(RetryExhausted) as excinfo:
            retry_with_backoff(always_fails,
                               RetryPolicy(max_attempts=3), clock)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, MessageDropped)

    def test_security_errors_are_never_retried(self):
        clock = FaultClock()
        calls = []

        def forged():
            calls.append(1)
            raise AuthenticationError("bad signature")

        with pytest.raises(AuthenticationError):
            retry_with_backoff(forged, RetryPolicy(), clock)
        assert len(calls) == 1

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(base_delay=1, multiplier=2, max_delay=8,
                             jitter_seed=0)
        raw = [policy.delay_before(a, "k") for a in range(1, 7)]
        # jitter <= delay, so each value lies in [delay, 2*delay]
        for attempt, value in enumerate(raw, start=1):
            delay = min(2 ** (attempt - 1), 8)
            assert delay <= value <= 2 * delay

    def test_jitter_is_deterministic_per_seed_and_key(self):
        a = RetryPolicy(jitter_seed=1)
        b = RetryPolicy(jitter_seed=1)
        c = RetryPolicy(jitter_seed=2)
        assert [a.delay_before(i, "k") for i in range(1, 5)] \
            == [b.delay_before(i, "k") for i in range(1, 5)]
        series_c = [c.delay_before(i, "k") for i in range(1, 5)]
        assert series_c != [a.delay_before(i, "k") for i in range(1, 5)]


class TestCallWithTimeout:
    def test_fast_call_passes(self):
        clock = FaultClock()
        assert call_with_timeout(lambda: 42, clock, 10) == 42

    def test_slow_call_times_out_and_result_is_discarded(self):
        clock = FaultClock()

        def slow():
            clock.advance(11)  # a delay fault charged mid-call
            return "late answer"

        with pytest.raises(CallTimeout):
            call_with_timeout(slow, clock, 10)


class TestCircuitBreaker:
    def failing(self):
        raise MessageDropped("down")

    def test_opens_after_threshold(self):
        clock = FaultClock()
        breaker = CircuitBreaker(clock, failure_threshold=2, reset_ticks=5)
        for _ in range(2):
            with pytest.raises(MessageDropped):
                breaker.call(self.failing)
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpen):
            breaker.call(lambda: "never runs")

    def test_half_open_probe_closes_on_success(self):
        clock = FaultClock()
        breaker = CircuitBreaker(clock, failure_threshold=1, reset_ticks=5)
        with pytest.raises(MessageDropped):
            breaker.call(self.failing)
        clock.advance(5)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = FaultClock()
        breaker = CircuitBreaker(clock, failure_threshold=3, reset_ticks=5)
        for _ in range(3):
            with pytest.raises(MessageDropped):
                breaker.call(self.failing)
        clock.advance(5)
        with pytest.raises(MessageDropped):
            breaker.call(self.failing)  # single half-open failure
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2


class TestIdempotency:
    def test_ledger_applies_once_and_replays(self):
        ledger = IdempotencyLedger()
        applied = []

        def write():
            applied.append(1)
            return "result"

        assert ledger.apply("k1", write) == "result"
        assert ledger.apply("k1", write) == "result"
        assert len(applied) == 1
        assert ledger.replays == 1
        assert "k1" in ledger

    def test_key_is_stable_and_discriminating(self):
        assert idempotency_key("save", "a", "b") \
            == idempotency_key("save", "a", "b")
        assert idempotency_key("save", "a", "b") \
            != idempotency_key("save", "a", "c")
