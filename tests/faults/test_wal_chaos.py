"""The WAL kill-and-recover battery: 60 seeds, two lawful outcomes.

Every seed runs the fixed grouped workload from :mod:`repro.wal.chaos`
against a :class:`DurableXmlStore` over the :class:`MemVfs` power-loss
model, cuts the power at a seeded point under one of three adversarial
overlays (torn tail, corrupt frame, device fault), then recovers and
demands **byte-identical-or-typed**: the recovered digest equals the
reference replay of the durable record set with every acknowledged op
present — or recovery refuses with :class:`WalCorrupt` because the
damage cannot be a torn tail.  Silent loss of acknowledged data is
never on the menu.
"""

import pytest

from repro.wal.chaos import SCENARIOS, run_chaos

SEEDS = range(60)


class TestChaosBattery:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_recovery_is_byte_identical_or_typed(self, seed):
        result = run_chaos(seed)
        assert result.outcome == result.expected_outcome, (
            f"seed {seed} ({result.scenario}): expected "
            f"{result.expected_outcome}, got {result.outcome} "
            f"({result.error})")
        if result.outcome == "identical":
            assert result.digest_matches, (
                f"seed {seed} ({result.scenario}) recovered to the "
                f"WRONG state: {result.trace}")
            assert result.acked_durable, (
                f"seed {seed} ({result.scenario}) LOST acknowledged "
                f"records: {result.trace}")
            assert result.revived, (
                f"seed {seed}: recovered store refused new writes")
        assert result.ok

    def test_every_scenario_is_exercised(self):
        seen = {run_chaos(seed).scenario for seed in (0, 1, 2)}
        assert seen == set(SCENARIOS)

    def test_acks_happen_before_any_fault_scenario_ends_them(self):
        # The battery is vacuous if seeds never acknowledge anything.
        assert all(run_chaos(seed).acked > 0 for seed in range(6))


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 2, 17, 41, 59])
    def test_same_seed_same_result(self, seed):
        first = run_chaos(seed)
        second = run_chaos(seed)
        assert first == second  # frozen dataclass: full field equality

    def test_different_seeds_draw_different_traces(self):
        traces = {run_chaos(seed).trace for seed in (0, 3, 6, 9)}
        assert len(traces) > 1
