"""Chaos battery for dissemination and third-party publishing.

Subscribers under fault injection either rebuild a view byte-identical
to the fault-free one or raise a typed error — corrupted blocks are
never rendered, omitted blocks never silently truncate the view.
"""

import pytest

from repro.core.credentials import anyone, has_role
from repro.core.errors import (
    IncompletePackageError,
    IntegrityError,
    RetryExhausted,
    TamperedPackageError,
    TransportError,
)
from repro.core.subjects import Role, Subject
from repro.crypto.keys import KeyStore
from repro.faults import (
    FaultClock,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    RetryPolicy,
)
from repro.xmldb.parser import parse
from repro.xmldb.serializer import serialize
from repro.xmlsec.authorx import XmlPolicyBase, xml_deny, xml_grant
from repro.xmlsec.dissemination import (
    Disseminator,
    FaultyChannel,
    ResilientSubscriber,
    omit_block,
    open_packet,
    open_packet_checked,
)

DOC_TEXT = """<hospital>
  <record id="r1"><name>Alice</name><diagnosis>flu</diagnosis>
    <ssn>123</ssn></record>
  <record id="r2"><name>Bob</name><diagnosis>cold</diagnosis>
    <ssn>456</ssn></record>
</hospital>"""

DOCTOR = Subject("dr", roles={Role("doctor")})


def make_setup():
    document = parse(DOC_TEXT, name="records")
    base = XmlPolicyBase([
        xml_grant(has_role("doctor"), "/hospital"),
        xml_deny(anyone(), "//ssn"),
        xml_grant(has_role("nurse"), "//record/name"),
    ])
    disseminator = Disseminator(base)
    packet = disseminator.package("records", document)
    distributor = disseminator.distributor({"dr": DOCTOR})
    store = KeyStore("rx-dr")
    for key in distributor.grant("dr").keys:
        store.import_key(key)
    return packet, store, disseminator.key_store


PACKET, STORE, OWNER_STORE = make_setup()
ORACLE_VIEW = serialize(open_packet(PACKET, STORE))


def make_subscriber(seed, rate=0.3):
    clock = FaultClock()
    plan = FaultPlan.random(seed, ["dissemination:channel"], rate,
                            horizon=40)
    channel = FaultyChannel(FaultInjector(plan, clock, seed=seed))
    subscriber = ResilientSubscriber(
        STORE, RetryPolicy(max_attempts=8, jitter_seed=seed), clock)
    return channel, subscriber


class TestFailClosedInvariant:
    @pytest.mark.parametrize("seed", range(110))
    def test_identical_view_or_typed_error(self, seed):
        channel, subscriber = make_subscriber(seed)
        try:
            view = subscriber.receive(lambda: channel.deliver(PACKET))
        except (TransportError, TamperedPackageError,
                IncompletePackageError):
            return  # fail-closed
        assert serialize(view) == ORACLE_VIEW

    def test_majority_of_seeds_complete(self):
        completed = 0
        for seed in range(110):
            channel, subscriber = make_subscriber(seed)
            try:
                view = subscriber.receive(
                    lambda: channel.deliver(PACKET))
                assert serialize(view) == ORACLE_VIEW
                completed += 1
            except (TransportError, TamperedPackageError,
                    IncompletePackageError):
                pass
        assert completed >= 100

    def test_exhaustion_keeps_the_typed_cause(self):
        # Corrupt every delivery; a subscriber holding every key (the
        # worst case for detection surface) must exhaust, not render.
        clock = FaultClock()
        plan = FaultPlan()
        for op in range(8):
            plan.add("dissemination:channel", op, FaultKind.CORRUPT)
        channel = FaultyChannel(FaultInjector(plan, clock))
        subscriber = ResilientSubscriber(
            OWNER_STORE, RetryPolicy(max_attempts=3, jitter_seed=0), clock)
        with pytest.raises(RetryExhausted) as excinfo:
            subscriber.receive(lambda: channel.deliver(PACKET))
        assert isinstance(excinfo.value.last_error, TamperedPackageError)


class TestCheckedOpening:
    def test_corrupt_block_raises_tampered(self):
        clock = FaultClock()
        plan = FaultPlan().add("dissemination:channel", 0,
                               FaultKind.CORRUPT)
        channel = FaultyChannel(FaultInjector(plan, clock))
        damaged = channel.deliver(PACKET)
        with pytest.raises(TamperedPackageError):
            open_packet_checked(damaged, OWNER_STORE)

    def test_corrupt_block_never_rendered_even_unchecked(self):
        """Defense in depth: even legacy unchecked opening cannot render
        rotted bytes, because the symmetric MAC rejects them."""
        clock = FaultClock()
        plan = FaultPlan().add("dissemination:channel", 0,
                               FaultKind.CORRUPT)
        channel = FaultyChannel(FaultInjector(plan, clock))
        damaged = channel.deliver(PACKET)
        with pytest.raises(IntegrityError):
            open_packet(damaged, OWNER_STORE)

    def test_omitted_held_block_raises_incomplete(self):
        held = [b.key_id for b in PACKET.blocks if b.key_id in STORE]
        faithless = omit_block(PACKET, held[0])
        with pytest.raises(IncompletePackageError):
            open_packet_checked(faithless, STORE)

    def test_omitting_unheld_block_is_not_the_subscribers_problem(self):
        unheld = [b.key_id for b in PACKET.blocks
                  if b.key_id not in STORE]
        pruned = omit_block(PACKET, unheld[0])
        assert serialize(open_packet_checked(pruned, STORE)) == ORACLE_VIEW

    def test_duplicate_identical_blocks_are_tolerated(self):
        clock = FaultClock()
        plan = FaultPlan().add("dissemination:channel", 0,
                               FaultKind.DUPLICATE)
        channel = FaultyChannel(FaultInjector(plan, clock))
        doubled = channel.deliver(PACKET)
        assert len(doubled.blocks) == len(PACKET.blocks) + 1
        assert serialize(open_packet_checked(doubled, STORE)) == ORACLE_VIEW

    def test_reversed_block_order_is_harmless(self):
        clock = FaultClock()
        channel = FaultyChannel(FaultInjector(FaultPlan(), clock))
        shuffled = channel.deliver(PACKET)
        assert list(shuffled.blocks) == list(reversed(PACKET.blocks))
        assert serialize(open_packet_checked(shuffled, STORE)) == ORACLE_VIEW

    def test_clean_packet_matches_unchecked_opening(self):
        assert serialize(open_packet_checked(PACKET, STORE)) == ORACLE_VIEW


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        outcomes = []
        for _ in range(2):
            channel, subscriber = make_subscriber(23)
            try:
                view = subscriber.receive(
                    lambda: channel.deliver(PACKET))
                outcomes.append(("ok", serialize(view),
                                 subscriber.telemetry.attempts))
            except (TransportError, TamperedPackageError,
                    IncompletePackageError) as exc:
                outcomes.append(("err", type(exc).__name__))
        assert outcomes[0] == outcomes[1]
