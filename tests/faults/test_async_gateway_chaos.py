"""Chaos battery for the asyncio gateway.

The fail-closed invariant carried over from the threaded battery, over
60 seeds and with *concurrent tenants*: every response from an
:class:`AsyncRequestGateway` under a bounded fault plan is either
byte-identical to the fault-free run's response for the same request,
or a *typed* :class:`TransportError` — never a silently wrong grant,
and streams never yield corrupted bytes.

``auto_dispatch=False`` + ``process_pending`` keeps each run
deterministic: batches drain in deficit-round-robin order on the
caller's task, so the injector's per-site step counters advance
identically for identical (seed, plan) pairs.
"""

import asyncio
import json
import random

import pytest

from repro.core.errors import TransportError
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.gateway import (
    AsyncRequestGateway,
    EpochalShardRouter,
    TenantConfig,
    collect,
)
from repro.scale.gateway import Request
from repro.snap.intern import InternPool
from repro.snap.xmlstore import SnapshotXmlDatabase

from tests.scale.workloads import random_policies, random_requests

SHARDS = 4
SITES = tuple(f"agateway:shard{i}" for i in range(SHARDS)) + (
    "agateway:stream",)
SEEDS = range(60)
TENANTS = ("alpha", "beta", "gamma")


def build_engine(seed: int) -> EpochalShardRouter:
    return EpochalShardRouter.from_policies(
        random_policies(random.Random(seed), 25), shard_count=SHARDS)


def workload(seed: int):
    return random_requests(random.Random(seed + 9000), 40)


def decision_bytes(decision) -> bytes:
    """Canonical wire form — what the byte-identity oracle compares."""
    return json.dumps({
        "granted": decision.granted,
        "determining": decision.determining.policy_id
        if decision.determining is not None else None,
        "applicable": [p.policy_id for p in decision.applicable],
        "reason": decision.reason,
    }, sort_keys=True).encode()


def run(engine: EpochalShardRouter, requests,
        faults: FaultInjector | None = None, batch_size: int = 8):
    """One deterministic async run → per-request outcome list.

    Requests are spread round-robin over three tenants, so every batch
    the DRR scheduler cuts interleaves tenants — the engine is shared
    between oracle and chaotic runs (decisions are read-only)."""

    async def scenario():
        gateway = AsyncRequestGateway(
            engine, batch_size=batch_size, faults=faults,
            auto_dispatch=False,
            default_tenant=TenantConfig(rate=1e9, burst=1e9))
        futures = [
            gateway.submit_nowait(TENANTS[index % len(TENANTS)],
                                  Request(*request))
            for index, request in enumerate(requests)]
        await gateway.process_pending()
        outcomes = []
        for future in futures:
            error = future.exception()
            if error is None:
                outcomes.append(("ok", decision_bytes(future.result())))
            else:
                outcomes.append(("err", type(error).__name__))
        return outcomes

    return asyncio.run(scenario())


class TestFailClosed:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_byte_identical_or_typed_error(self, seed):
        engine, requests = build_engine(seed), workload(seed)
        oracle = run(engine, requests)
        assert all(kind == "ok" for kind, _ in oracle)
        plan = FaultPlan.random(seed, sites=SITES, rate=0.3,
                                horizon=50)
        chaotic = run(engine, requests, faults=FaultInjector(plan))
        for (kind, value), (_, expected) in zip(chaotic, oracle):
            if kind == "ok":
                assert value == expected
            else:
                error_type = getattr(
                    __import__("repro.core.errors", fromlist=[value]),
                    value)
                assert issubclass(error_type, TransportError)

    @pytest.mark.parametrize("seed", [0, 7, 23, 41])
    def test_same_seed_same_outcomes(self, seed):
        engine, requests = build_engine(seed), workload(seed)
        plan = FaultPlan.random(seed, sites=SITES, rate=0.4,
                                horizon=50)
        first = run(engine, requests, faults=FaultInjector(plan))
        again = run(engine, requests, faults=FaultInjector(
            FaultPlan.random(seed, sites=SITES, rate=0.4, horizon=50)))
        assert first == again

    @pytest.mark.parametrize("seed", [3, 19])
    def test_faults_never_flip_a_decision(self, seed):
        engine, requests = build_engine(seed), workload(seed)
        oracle = dict(enumerate(run(engine, requests)))
        plan = FaultPlan.random(seed, sites=SITES, rate=0.6,
                                horizon=50)
        chaotic = run(engine, requests, faults=FaultInjector(plan))
        survivors = [i for i, (kind, _) in enumerate(chaotic)
                     if kind == "ok"]
        assert survivors, "rate 0.6 should still let some through"
        for index in survivors:
            assert chaotic[index] == oracle[index]


class TestTargetedFaults:
    def test_crash_one_shard_delay_another_under_concurrent_tenants(self):
        """The ISSUE's targeted scenario: one shard crashed, another
        delayed, three tenants interleaved.  Crashed-shard requests
        fail typed, delayed-shard and healthy-shard requests answer
        byte-identically to the oracle."""
        seed = 5
        engine, requests = build_engine(seed), workload(seed)
        oracle = run(engine, requests)
        shard_of = [engine.shard_for_path(r[2]) for r in requests]
        crashed = max(set(shard_of), key=shard_of.count)
        delayed = next(s for s in sorted(set(shard_of))
                       if s != crashed)
        plan = FaultPlan()
        for op_index in range(40):
            plan.add(f"agateway:shard{crashed}", op_index,
                     FaultKind.CRASH)
            plan.add(f"agateway:shard{delayed}", op_index,
                     FaultKind.DELAY)
        injector = FaultInjector(plan)
        chaotic = run(engine, requests, faults=injector)
        for index, (kind, value) in enumerate(chaotic):
            if shard_of[index] == crashed:
                assert (kind, value) == ("err", "ReplicaUnavailable")
            else:
                assert (kind, value) == oracle[index]
        assert injector.clock.now() > 0     # the delays charged time

    def test_drop_is_typed_not_silent(self):
        seed = 12
        engine, requests = build_engine(seed), workload(seed)
        target = engine.shard_for_path(requests[0][2])
        plan = FaultPlan()
        plan.add(f"agateway:shard{target}", 0, FaultKind.DROP)
        chaotic = run(engine, requests, faults=FaultInjector(plan))
        dropped = [value for kind, value in chaotic if kind == "err"]
        assert dropped and set(dropped) == {"MessageDropped"}


class TestStreamingChaos:
    def make_store(self):
        db = SnapshotXmlDatabase()
        db.create_collection("c")
        db.insert(
            "c", "d1",
            "<doc>" + "".join(
                f"<rec id=\"{i}\"><v>payload {i}</v></rec>"
                for i in range(30)) + "</doc>")
        db.publish()
        return db

    def stream_once(self, db, faults=None, chunk_size=64):
        async def scenario():
            gateway = AsyncRequestGateway(
                _noop_engine(), store=db, faults=faults,
                auto_dispatch=False,
                default_tenant=TenantConfig(rate=1e9, burst=1e9))
            try:
                text = await collect(gateway.stream_document(
                    "t", "c", "d1", chunk_size=chunk_size))
                return ("ok", text)
            except TransportError as exc:
                return ("err", type(exc).__name__)

        return asyncio.run(scenario())

    @pytest.mark.parametrize("seed", range(20))
    def test_stream_bytes_identical_or_typed_error(self, seed):
        db = self.make_store()
        expected = InternPool().serialize_document(
            db.current().document("c", "d1"))
        kind, value = self.stream_once(db)
        assert (kind, value) == ("ok", expected)
        plan = FaultPlan.random(seed, sites=("agateway:stream",),
                                rate=0.25, horizon=40)
        kind, value = self.stream_once(db, faults=FaultInjector(plan))
        if kind == "ok":
            assert value == expected        # full fidelity
        else:
            error_type = getattr(
                __import__("repro.core.errors", fromlist=[value]),
                value)
            assert issubclass(error_type, TransportError)

    def test_stream_fault_releases_the_pinned_epoch(self):
        db = self.make_store()
        plan = FaultPlan()
        plan.add("agateway:stream", 1, FaultKind.CRASH)
        kind, value = self.stream_once(db,
                                       faults=FaultInjector(plan),
                                       chunk_size=16)
        assert (kind, value) == ("err", "ReplicaUnavailable")
        assert db.epochs.pins(db.epochs.current_epoch()) == 0


def _noop_engine():
    from repro.core.evaluator import PolicyEvaluator
    from repro.core.policy import PolicyBase
    from repro.scale.batch import BatchDecisionEngine
    return BatchDecisionEngine(PolicyEvaluator(PolicyBase()))
