"""Chaos battery for the multicore dispatcher.

The same fail-closed contract every serving tier in this repo honors,
now across process-shaped failure: under a bounded fault plan at the
``mcore:worker<i>`` sites — and under the kill-a-worker overlay — every
response is either byte-identical to the fault-free oracle's response
for the same request, or a *typed* :class:`TransportError`.  Never a
silently wrong grant, never stale policy.

Runs in ``workers=0`` deterministic mode: the worker code and the frame
codec are fully exercised on the caller's task, so identical
(seed, plan) pairs produce identical outcome traces — the property the
``test_same_seed_same_outcomes`` cases pin directly.
"""

import asyncio
import json
import random

import pytest

from repro.core.errors import ReplicaUnavailable, TransportError
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.gateway import TenantConfig
from repro.multicore import MulticoreGateway
from repro.scale.gateway import Request

from tests.scale.workloads import random_policies, random_requests

WORKERS = 4
SHARDS = 8
SITES = tuple(f"mcore:worker{i}" for i in range(WORKERS))
SEEDS = range(60)
TENANTS = ("alpha", "beta", "gamma")
WIDE_OPEN = TenantConfig(rate=1e9, burst=1e9)


def workload(seed: int):
    policies = random_policies(random.Random(seed), 25)
    requests = random_requests(random.Random(seed + 9000), 40)
    return policies, requests


def decision_bytes(decision) -> bytes:
    return json.dumps({
        "granted": decision.granted,
        "determining": decision.determining.policy_id
        if decision.determining is not None else None,
        "applicable": [p.policy_id for p in decision.applicable],
        "reason": decision.reason,
    }, sort_keys=True).encode()


def run(policies, requests, faults=None, kill_after=None,
        kill_worker=None):
    """One deterministic multicore run → per-request outcome list.

    ``kill_after``/``kill_worker`` drive the kill-a-worker overlay:
    the first *kill_after* requests are submitted and fully drained,
    the worker dies, and the rest of the workload runs degraded.
    """

    async def scenario():
        gateway = MulticoreGateway(
            policies, workers=0, logical_workers=WORKERS,
            shard_count=SHARDS, batch_size=8, faults=faults,
            auto_dispatch=False, default_tenant=WIDE_OPEN)
        await gateway.start()
        futures = []

        def submit(batch):
            for index, request in enumerate(batch, start=len(futures)):
                futures.append(gateway.submit_nowait(
                    TENANTS[index % len(TENANTS)], Request(*request)))

        if kill_after is None:
            submit(requests)
            await gateway.process_pending()
        else:
            submit(requests[:kill_after])
            await gateway.process_pending()
            gateway.kill_worker(kill_worker)
            submit(requests[kill_after:])
            await gateway.process_pending()
        outcomes = []
        for future in futures:
            error = future.exception()
            if error is None:
                outcomes.append(("ok", decision_bytes(future.result())))
            else:
                outcomes.append(("err", type(error).__name__))
        await gateway.close()
        return outcomes

    return asyncio.run(scenario())


def assert_fail_closed(chaotic, oracle):
    for (kind, value), (_, expected) in zip(chaotic, oracle):
        if kind == "ok":
            assert value == expected
        else:
            error_type = getattr(
                __import__("repro.core.errors", fromlist=[value]),
                value)
            assert issubclass(error_type, TransportError)


class TestKillAWorker:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_byte_identical_or_typed_error(self, seed):
        """The ≥60-seed battery: kill one seeded-choice worker partway
        through; every response is oracle-identical or typed."""
        policies, requests = workload(seed)
        oracle = run(policies, requests)
        assert all(kind == "ok" for kind, _ in oracle)
        rng = random.Random(seed + 500)
        chaotic = run(policies, requests,
                      kill_after=rng.randrange(5, 30),
                      kill_worker=rng.randrange(WORKERS))
        assert_fail_closed(chaotic, oracle)

    @pytest.mark.parametrize("seed", [2, 17, 33, 58])
    def test_victims_requests_fail_replica_unavailable(self, seed):
        policies, requests = workload(seed)
        kill_after, victim = 10, seed % WORKERS
        chaotic = run(policies, requests, kill_after=kill_after,
                      kill_worker=victim)
        gateway = MulticoreGateway(
            policies, workers=0, logical_workers=WORKERS,
            shard_count=SHARDS, default_tenant=WIDE_OPEN)
        owners = [gateway.worker_for_shard(
            gateway.router.shard_for_path(r[2])) for r in requests]
        for index in range(kill_after, len(requests)):
            kind, value = chaotic[index]
            if owners[index] == victim:
                assert (kind, value) == ("err", "ReplicaUnavailable")
            else:
                assert kind == "ok"

    @pytest.mark.parametrize("seed", [0, 13, 29, 47])
    def test_same_seed_same_outcomes(self, seed):
        policies, requests = workload(seed)
        kwargs = dict(kill_after=12, kill_worker=seed % WORKERS)
        assert (run(policies, requests, **kwargs)
                == run(policies, requests, **kwargs))


class TestFaultPlans:
    @pytest.mark.parametrize("seed", range(0, 60, 3))
    def test_byte_identical_or_typed_error_under_random_plan(self, seed):
        policies, requests = workload(seed)
        oracle = run(policies, requests)
        plan = FaultPlan.random(seed, sites=SITES, rate=0.3, horizon=50)
        chaotic = run(policies, requests, faults=FaultInjector(plan))
        assert_fail_closed(chaotic, oracle)

    @pytest.mark.parametrize("seed", [5, 21, 44])
    def test_same_plan_same_outcomes(self, seed):
        policies, requests = workload(seed)

        def chaotic_run():
            plan = FaultPlan.random(seed, sites=SITES, rate=0.4,
                                    horizon=50)
            return run(policies, requests, faults=FaultInjector(plan))

        assert chaotic_run() == chaotic_run()

    def test_crash_retires_the_worker_permanently(self):
        policies, requests = workload(9)
        plan = FaultPlan()
        plan.add("mcore:worker0", 0, FaultKind.CRASH)
        chaotic = run(policies, requests, faults=FaultInjector(plan))
        gateway = MulticoreGateway(
            policies, workers=0, logical_workers=WORKERS,
            shard_count=SHARDS, default_tenant=WIDE_OPEN)
        owners = [gateway.worker_for_shard(
            gateway.router.shard_for_path(r[2])) for r in requests]
        victims = [i for i, owner in enumerate(owners) if owner == 0]
        assert victims, "some requests must land on worker 0"
        for index in victims:
            assert chaotic[index] == ("err", "ReplicaUnavailable")

    def test_drop_is_typed_not_silent(self):
        policies, requests = workload(12)
        plan = FaultPlan()
        plan.add("mcore:worker1", 0, FaultKind.DROP)
        chaotic = run(policies, requests, faults=FaultInjector(plan))
        dropped = {value for kind, value in chaotic if kind == "err"}
        assert dropped == {"MessageDropped"}

    def test_faults_never_flip_a_decision(self):
        seed = 19
        policies, requests = workload(seed)
        oracle = run(policies, requests)
        plan = FaultPlan.random(seed, sites=SITES, rate=0.6, horizon=50)
        chaotic = run(policies, requests, faults=FaultInjector(plan))
        survivors = [i for i, (kind, _) in enumerate(chaotic)
                     if kind == "ok"]
        assert survivors, "rate 0.6 should still let some through"
        for index in survivors:
            assert chaotic[index] == oracle[index]
