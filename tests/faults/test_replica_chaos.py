"""The replica chaos battery: 60 seeds, one oracle, zero tolerance.

Every seed runs the fixed workload from :mod:`repro.replica.chaos`
against a 3-replica group under a seeded fault plan plus one of three
adversarial overlays (kill-primary-mid-publish, partition-one-delay-
another, stale-read injection), then demands convergence to the
**byte-identical fault-free digest** — the exact root a store reaches
with no fault ever firing.  A determinism spot-check replays seeds and
requires the same event trace, tuple for tuple.
"""

import pytest

from repro.replica.chaos import (
    ChaosResult,
    chaos_ops,
    oracle_digest,
    run_chaos,
    scenario_plan,
)

SEEDS = range(60)

#: Computed once: every seed must land exactly here.
ORACLE = oracle_digest()


class TestChaosBattery:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_seed_converges_to_fault_free_digest(self, seed):
        result = run_chaos(seed)
        assert result.converged, (
            f"seed {seed} never converged "
            f"(unacked={result.unacked_writes}, "
            f"failovers={result.failovers})")
        assert result.write_failures == 0, (
            f"seed {seed}: {result.write_failures} writes never acked")
        assert result.read_failures == 0, (
            f"seed {seed}: {result.read_failures} reads never served")
        assert result.matches_oracle
        assert result.digest == ORACLE, (
            f"seed {seed} converged to the WRONG state")


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 2, 17, 41, 59])
    def test_same_seed_same_trace(self, seed):
        first = run_chaos(seed)
        second = run_chaos(seed)
        assert first.trace == second.trace
        assert first.digest == second.digest
        assert first.repairs == second.repairs
        assert first.failovers == second.failovers
        assert first == second  # frozen dataclass: full field equality

    def test_different_seeds_draw_different_plans(self):
        # Not a strict requirement per pair, but across six seeds at
        # rate 0.12 identical traces would mean the seed is ignored.
        traces = {run_chaos(seed).trace for seed in (0, 1, 2, 3, 4, 5)}
        assert len(traces) > 1


class TestScenarioOverlays:
    """Each overlay actually bites — the battery isn't vacuous."""

    def test_kill_primary_scenario_forces_failover(self):
        # Scenario 0 (seed % 3 == 0) opens a crash window at the
        # primary; some seed in the family must record a failover.
        assert any(run_chaos(seed).failovers > 0
                   for seed in (0, 3, 6, 9, 12))

    def test_partition_scenario_forces_repairs(self):
        # Scenario 1 partitions replica 1 for 14 ops: it must come
        # back via Merkle repair, not via the delta stream.
        assert any(run_chaos(seed).repairs > 0
                   for seed in (1, 4, 7, 10, 13))

    def test_plans_are_seed_deterministic(self):
        a = scenario_plan(7)
        b = scenario_plan(7)
        assert list(a) == list(b)

    def test_workload_is_fixed(self):
        assert chaos_ops() == chaos_ops()
        assert oracle_digest() == ORACLE


class TestResultShape:
    def test_result_is_frozen_and_comparable(self):
        result = run_chaos(11)
        assert isinstance(result, ChaosResult)
        with pytest.raises(AttributeError):
            result.seed = 99
