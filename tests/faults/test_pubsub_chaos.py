"""Chaos battery for the third-party publishing client path.

:func:`fetch_verified` under an unreliable answer channel: the subject
either receives a fully verified answer whose view is byte-identical
to the fault-free one, or a typed error — tampered and truncated
answers are caught by the Merkle/completeness checks and retried,
never returned.
"""

import pytest

from repro.core.credentials import anyone, has_role
from repro.core.errors import (
    AuthenticationError,
    CompletenessError,
    IntegrityError,
    RetryExhausted,
    TransportError,
)
from repro.core.subjects import Role, Subject
from repro.faults import (
    FaultClock,
    FaultInjector,
    FaultKind,
    FaultPlan,
    RetryPolicy,
    RetryTelemetry,
)
from repro.pubsub import (
    FaultyAnswerChannel,
    Owner,
    Publisher,
    SubjectVerifier,
    fetch_verified,
)
from repro.xmldb.parser import parse
from repro.xmldb.serializer import serialize
from repro.xmlsec.authorx import XmlPolicyBase, xml_deny, xml_grant

DOCTOR = Subject("dr", roles={Role("doctor")})

VERIFY_ERRORS = (TransportError, AuthenticationError, IntegrityError,
                 CompletenessError, RetryExhausted)


def build_world():
    base = XmlPolicyBase([
        xml_grant(has_role("doctor"), "/hospital"),
        xml_deny(anyone(), "//ssn"),
    ])
    owner = Owner("hospital", base, key_seed=7)
    owner.add_document("records", parse(
        '<hospital><record id="r1"><name>Alice</name>'
        '<diagnosis>flu</diagnosis><ssn>123</ssn></record>'
        '<record id="r2"><name>Bob</name><diagnosis>cold</diagnosis>'
        '<ssn>456</ssn></record></hospital>'))
    publisher = Publisher()
    owner.publish_to(publisher)
    verifier = SubjectVerifier(DOCTOR, owner.public_key, base)
    return publisher, verifier


PUBLISHER, VERIFIER = build_world()
ORACLE_VIEW = serialize(PUBLISHER.request(DOCTOR, "records").view)


def make_channel(seed, rate=0.3):
    clock = FaultClock()
    plan = FaultPlan.random(seed, ["pubsub:answers"], rate, horizon=40)
    return FaultyAnswerChannel(FaultInjector(plan, clock, seed=seed)), clock


class TestFailClosedInvariant:
    @pytest.mark.parametrize("seed", range(110))
    def test_verified_identical_or_typed_error(self, seed):
        channel, clock = make_channel(seed)
        try:
            answer = fetch_verified(
                PUBLISHER, VERIFIER, DOCTOR, "records", channel=channel,
                policy=RetryPolicy(max_attempts=8, jitter_seed=seed))
        except VERIFY_ERRORS:
            return  # fail-closed
        assert serialize(answer.view) == ORACLE_VIEW

    def test_majority_of_seeds_complete(self):
        completed = 0
        for seed in range(110):
            channel, _ = make_channel(seed)
            try:
                fetch_verified(
                    PUBLISHER, VERIFIER, DOCTOR, "records",
                    channel=channel,
                    policy=RetryPolicy(max_attempts=8, jitter_seed=seed))
                completed += 1
            except VERIFY_ERRORS:
                pass
        assert completed >= 100


class TestSingleFaults:
    def channel_with(self, kind, ops=1):
        clock = FaultClock()
        plan = FaultPlan()
        for op in range(ops):
            plan.add("pubsub:answers", op, kind)
        return FaultyAnswerChannel(FaultInjector(plan, clock)), clock

    def test_corrupt_answer_fails_authenticity_then_retry_heals(self):
        channel, _ = self.channel_with(FaultKind.CORRUPT)
        telemetry = RetryTelemetry()
        answer = fetch_verified(
            PUBLISHER, VERIFIER, DOCTOR, "records", channel=channel,
            policy=RetryPolicy(max_attempts=4, jitter_seed=0),
            telemetry=telemetry)
        assert serialize(answer.view) == ORACLE_VIEW
        assert telemetry.attempts == 2
        assert any("Authentication" in e or "Integrity" in e
                   for e in telemetry.errors)

    def test_truncated_answer_fails_completeness_then_retry_heals(self):
        channel, _ = self.channel_with(FaultKind.REORDER)
        telemetry = RetryTelemetry()
        answer = fetch_verified(
            PUBLISHER, VERIFIER, DOCTOR, "records", channel=channel,
            policy=RetryPolicy(max_attempts=4, jitter_seed=0),
            telemetry=telemetry)
        assert serialize(answer.view) == ORACLE_VIEW
        assert telemetry.attempts == 2

    def test_persistent_tampering_exhausts_with_typed_cause(self):
        channel, _ = self.channel_with(FaultKind.CORRUPT, ops=10)
        with pytest.raises(RetryExhausted) as excinfo:
            fetch_verified(
                PUBLISHER, VERIFIER, DOCTOR, "records", channel=channel,
                policy=RetryPolicy(max_attempts=3, jitter_seed=0))
        assert isinstance(excinfo.value.last_error,
                          (AuthenticationError, IntegrityError))

    def test_direct_tampered_answer_never_verifies(self):
        channel, _ = self.channel_with(FaultKind.CORRUPT)
        damaged = channel.deliver(PUBLISHER.request(DOCTOR, "records"))
        assert serialize(damaged.view) != ORACLE_VIEW
        with pytest.raises((AuthenticationError, IntegrityError)):
            VERIFIER.check_authenticity(damaged)

    def test_fault_free_channel_is_transparent(self):
        channel, _ = self.channel_with(FaultKind.CORRUPT, ops=0)
        answer = fetch_verified(
            PUBLISHER, VERIFIER, DOCTOR, "records", channel=channel,
            policy=RetryPolicy(max_attempts=1, jitter_seed=0))
        assert serialize(answer.view) == ORACLE_VIEW
