"""Differential test: every corrupt-fault mutation is caught by Merkle
verification, across 200 seeded runs.

Each seed drives the deterministic corruption primitive
(:meth:`FaultInjector.corrupt_bytes` / ``corrupt_text``) against data
protected by the repo's three Merkle surfaces — binary leaf trees,
XML merkle hashes, and the incremental hasher — and asserts the
verifier side rejects the mutation every single time.  One accepted
mutation is one silent integrity failure, so the pass criterion is
universal, not statistical.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.merkle.tree import MerkleTree, verify_subset
from repro.merkle.xml_merkle import (
    IncrementalXmlHasher,
    document_hash,
    merkle_hash,
)
from repro.xmldb.parser import parse

SEEDS = range(200)

LEAVES = [f"record-{i}:payload".encode("utf-8") for i in range(8)]

DOC_TEXT = ('<hospital><record id="r1"><name>Alice</name>'
            '<diagnosis>flu</diagnosis><ssn>123</ssn></record>'
            '<record id="r2"><name>Bob</name><diagnosis>cold</diagnosis>'
            '<ssn>456</ssn></record></hospital>')


def injector(seed):
    return FaultInjector(FaultPlan(), seed=seed)


class TestLeafTreeRejectsCorruption:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_proof_rejects_corrupted_leaf(self, seed):
        tree = MerkleTree(LEAVES)
        index = seed % len(LEAVES)
        proof = tree.proof(index)
        corrupted = injector(seed).corrupt_bytes(LEAVES[index],
                                                 f"leaf:{index}")
        assert corrupted != LEAVES[index]
        assert proof.verify(LEAVES[index], tree.root)
        assert not proof.verify(corrupted, tree.root)

    @pytest.mark.parametrize("seed", range(50))
    def test_subset_verification_rejects_one_bad_leaf(self, seed):
        tree = MerkleTree(LEAVES)
        index = seed % len(LEAVES)
        proofs = [tree.proof(i) for i in range(len(LEAVES))]
        good = [(i, LEAVES[i]) for i in range(len(LEAVES))]
        assert verify_subset(tree.root, good, proofs)
        bad = list(good)
        bad[index] = (index,
                      injector(seed).corrupt_bytes(LEAVES[index], "s"))
        assert not verify_subset(tree.root, bad, proofs)


class TestXmlMerkleRejectsCorruption:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_document_hash_detects_text_rot(self, seed):
        document = parse(DOC_TEXT, name="records")
        baseline = document_hash(document)
        nodes = [n for n in document.iter() if n.text]
        victim = nodes[seed % len(nodes)]
        victim.set_text(injector(seed).corrupt_text(victim.text, "xml"))
        assert document_hash(document) != baseline

    @pytest.mark.parametrize("seed", range(50))
    def test_subtree_hash_localizes_the_damage(self, seed):
        document = parse(DOC_TEXT, name="records")
        records = document.root.element_children
        baselines = [merkle_hash(r) for r in records]
        victim_idx = seed % len(records)
        victim = [n for n in records[victim_idx].iter() if n.text][0]
        victim.set_text(injector(seed).corrupt_text(victim.text, "sub"))
        after = [merkle_hash(r) for r in records]
        assert after[victim_idx] != baselines[victim_idx]
        for i, (a, b) in enumerate(zip(after, baselines)):
            if i != victim_idx:
                assert a == b  # untouched subtrees keep their hashes


class TestIncrementalHasherRejectsCorruption:
    @pytest.mark.parametrize("seed", range(50))
    def test_tracked_mutation_changes_root_and_rebuild_agrees(self, seed):
        document = parse(DOC_TEXT, name="records")
        hasher = IncrementalXmlHasher(document)
        baseline = hasher.root_hash()
        nodes = [n for n in document.iter() if n.text]
        victim = nodes[seed % len(nodes)]
        hasher.set_text(victim,
                        injector(seed).corrupt_text(victim.text, "inc"))
        assert hasher.root_hash() != baseline
        assert hasher.verify_against_rebuild()

    @pytest.mark.parametrize("seed", range(50))
    def test_untracked_mutation_is_caught_by_rebuild(self, seed):
        """A corruption that bypasses the hasher's API (in-flight rot)
        makes the cached root a lie — the rebuild check exposes it."""
        document = parse(DOC_TEXT, name="records")
        hasher = IncrementalXmlHasher(document)
        hasher.root_hash()
        nodes = [n for n in document.iter() if n.text]
        victim = nodes[seed % len(nodes)]
        victim.set_text(injector(seed).corrupt_text(victim.text, "raw"))
        assert not hasher.verify_against_rebuild()
