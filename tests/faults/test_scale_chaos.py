"""Chaos battery for the closed-loop gateway.

The fail-closed invariant, over ≥50 seeds: every response from a
:class:`RequestGateway` under a bounded fault plan is either
byte-identical to the fault-free run's response for the same request,
or a *typed* :class:`TransportError` — never a silently wrong grant.

``workers=0`` keeps each run deterministic: requests drain on the
caller's thread in submission order, so the injector's per-site step
counters advance identically for identical (seed, plan) pairs.
"""

import json
import random

import pytest

from repro.core.errors import (
    ReplicaUnavailable,
    StaleRead,
    TransportError,
)
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.scale.engine import ShardedPolicyEngine
from repro.scale.gateway import Request, RequestGateway

from tests.scale.workloads import random_policies, random_requests

SHARDS = 4
SITES = tuple(f"gateway:shard{i}" for i in range(SHARDS))
SEEDS = range(60)


def build_engine(seed: int) -> ShardedPolicyEngine:
    engine = ShardedPolicyEngine(shard_count=SHARDS)
    for policy in random_policies(random.Random(seed), 25):
        engine.add(policy)
    return engine


def workload(seed: int):
    return random_requests(random.Random(seed + 9000), 40)


def decision_bytes(decision) -> bytes:
    """Canonical wire form — what the byte-identity oracle compares."""
    return json.dumps({
        "granted": decision.granted,
        "determining": decision.determining.policy_id
        if decision.determining is not None else None,
        "applicable": [p.policy_id for p in decision.applicable],
        "reason": decision.reason,
    }, sort_keys=True).encode()


def run(engine: ShardedPolicyEngine, requests,
        faults: FaultInjector | None = None, batch_size: int = 8):
    """One deterministic gateway run → per-request outcome list.

    The engine is shared between the oracle and the chaotic run:
    decisions are read-only, and policy ids (which the byte oracle
    serializes) are only comparable within one engine build.
    """
    gateway = RequestGateway(engine, workers=0,
                             batch_size=batch_size, faults=faults)
    futures = [gateway.submit(Request(*r)) for r in requests]
    gateway.process_pending()
    outcomes = []
    for future in futures:
        error = future.exception()
        if error is None:
            outcomes.append(("ok", decision_bytes(future.result())))
        else:
            outcomes.append(("err", type(error).__name__))
    return outcomes


class TestFailClosed:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_byte_identical_or_typed_error(self, seed):
        engine, requests = build_engine(seed), workload(seed)
        oracle = run(engine, requests)
        assert all(kind == "ok" for kind, _ in oracle)
        plan = FaultPlan.random(seed, sites=SITES, rate=0.3,
                                horizon=50)
        chaotic = run(engine, requests, faults=FaultInjector(plan))
        for (kind, value), (_, expected) in zip(chaotic, oracle):
            if kind == "ok":
                assert value == expected
            else:
                error_type = getattr(
                    __import__("repro.core.errors", fromlist=[value]),
                    value)
                assert issubclass(error_type, TransportError)

    @pytest.mark.parametrize("seed", [0, 7, 23, 41])
    def test_same_seed_same_outcomes(self, seed):
        engine, requests = build_engine(seed), workload(seed)
        plan = FaultPlan.random(seed, sites=SITES, rate=0.4,
                                horizon=50)
        first = run(engine, requests, faults=FaultInjector(plan))
        again = run(engine, requests, faults=FaultInjector(
            FaultPlan.random(seed, sites=SITES, rate=0.4, horizon=50)))
        assert first == again

    @pytest.mark.parametrize("seed", [3, 19])
    def test_faults_never_flip_a_decision(self, seed):
        """Stronger than fail-closed: every OK answer under chaos is the
        oracle answer — a fault can suppress a response, not alter it."""
        engine, requests = build_engine(seed), workload(seed)
        oracle = dict(enumerate(run(engine, requests)))
        plan = FaultPlan.random(seed, sites=SITES, rate=0.6,
                                horizon=50)
        chaotic = run(engine, requests, faults=FaultInjector(plan))
        survivors = [i for i, (kind, _) in enumerate(chaotic)
                     if kind == "ok"]
        for index in survivors:
            assert chaotic[index] == oracle[index]


class TestTargetedFaults:
    def test_crashed_shard_fails_typed_while_others_answer(self):
        seed = 5
        engine, requests = build_engine(seed), workload(seed)
        oracle = run(engine, requests)
        shard_of = [engine.shard_for_path(r[2]) for r in requests]
        crashed = max(set(shard_of), key=shard_of.count)
        delayed = next(s for s in sorted(set(shard_of))
                       if s != crashed)
        plan = FaultPlan()
        for op_index in range(40):
            plan.add(f"gateway:shard{crashed}", op_index,
                     FaultKind.CRASH)
            plan.add(f"gateway:shard{delayed}", op_index,
                     FaultKind.DELAY)
        injector = FaultInjector(plan)
        chaotic = run(engine, requests, faults=injector)
        for index, (kind, value) in enumerate(chaotic):
            if shard_of[index] == crashed:
                assert (kind, value) == \
                    ("err", ReplicaUnavailable.__name__)
            else:
                # DELAY charges the fault clock only; answers —
                # including the delayed shard's — stay byte-identical.
                assert (kind, value) == oracle[index]
        assert injector.clock.now() > 0

    def test_stale_read_surfaces_as_typed_error(self):
        seed = 11
        engine, requests = build_engine(seed), workload(seed)
        plan = FaultPlan()
        plan.add("gateway:shard0", 0, FaultKind.STALE_READ)
        plan.add("gateway:shard1", 0, FaultKind.STALE_READ)
        plan.add("gateway:shard2", 0, FaultKind.STALE_READ)
        plan.add("gateway:shard3", 0, FaultKind.STALE_READ)
        chaotic = run(engine, requests, faults=FaultInjector(plan),
                      batch_size=100)
        assert {value for kind, value in chaotic if kind == "err"} \
            == {StaleRead.__name__}
        # One big batch → exactly one injector step per shard, so every
        # request failed with the stale-read error.
        assert all(kind == "err" for kind, _ in chaotic)


class TestThreadedChaosSmoke:
    def test_threaded_gateway_stays_fail_closed(self):
        seed = 2
        engine, requests = build_engine(seed), workload(seed)
        oracle = {value for kind, value in run(engine, requests)
                  if kind == "ok"}
        plan = FaultPlan.random(seed, sites=SITES, rate=0.3,
                                horizon=200)
        gateway = RequestGateway(engine, workers=3, batch_size=8,
                                 faults=FaultInjector(plan))
        futures = [gateway.submit(Request(*r)) for r in requests]
        gateway.close()
        for future in futures:
            error = future.exception()
            if error is not None:
                assert isinstance(error, TransportError)
            else:
                assert decision_bytes(future.result()) in oracle
