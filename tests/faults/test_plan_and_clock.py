"""The fault substrate itself: determinism, boundedness, accounting."""

import pytest

from repro.core.errors import ConfigurationError
from repro.faults import (
    FaultClock,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    merge_plans,
)


class TestFaultClock:
    def test_starts_at_zero_and_advances(self):
        clock = FaultClock()
        assert clock.now() == 0
        clock.advance(5)
        clock.sleep(2)
        assert clock.now() == 7

    def test_never_goes_backward(self):
        with pytest.raises(ConfigurationError):
            FaultClock().advance(-1)

    def test_deadline(self):
        clock = FaultClock()
        deadline = clock.deadline(10)
        clock.advance(10)
        assert not deadline.expired()  # inclusive boundary
        assert deadline.remaining() == 0
        clock.advance(1)
        assert deadline.expired()


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        a = FaultPlan.random(42, ["s1", "s2"], 0.3, horizon=100)
        b = FaultPlan.random(42, ["s1", "s2"], 0.3, horizon=100)
        assert list(a) == list(b)

    def test_different_seeds_differ(self):
        a = FaultPlan.random(1, ["s"], 0.3, horizon=200)
        b = FaultPlan.random(2, ["s"], 0.3, horizon=200)
        assert list(a) != list(b)

    def test_bounded_by_horizon(self):
        plan = FaultPlan.random(7, ["s"], 1.0, horizon=30)
        assert plan.horizon("s") <= 30
        assert plan.events_for("s", 31) == ()

    def test_zero_rate_is_empty(self):
        assert len(FaultPlan.random(3, ["s"], 0.0)) == 0

    def test_rate_roughly_respected(self):
        plan = FaultPlan.random(11, ["s"], 0.2, horizon=1000)
        assert 120 <= plan.fault_count() <= 280

    def test_explicit_add_and_merge(self):
        a = FaultPlan().add("s", 0, FaultKind.DROP)
        b = FaultPlan().add("s", 0, FaultEvent(FaultKind.DELAY, 4))
        merged = merge_plans([a, b])
        kinds = {e.kind for e in merged.events_for("s", 0)}
        assert kinds == {FaultKind.DROP, FaultKind.DELAY}

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.random(0, ["s"], 1.5)

    def test_magnitude_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.DELAY, 0)


class TestFaultInjector:
    def test_counts_operations_per_site(self):
        injector = FaultInjector(FaultPlan())
        injector.step("a")
        injector.step("a")
        injector.step("b")
        assert injector.op_count("a") == 2
        assert injector.op_count("b") == 1

    def test_delay_charges_the_clock(self):
        plan = FaultPlan().add("s", 1, FaultEvent(FaultKind.DELAY, 7))
        injector = FaultInjector(plan)
        injector.step("s")
        assert injector.clock.now() == 0
        injector.step("s")
        assert injector.clock.now() == 7

    def test_crash_window_spans_operations(self):
        plan = FaultPlan().add("s", 0, FaultEvent(FaultKind.CRASH, 3))
        injector = FaultInjector(plan)
        crashed = [any(e.kind is FaultKind.CRASH for e in injector.step("s"))
                   for _ in range(5)]
        assert crashed == [True, True, True, False, False]

    def test_corruption_is_deterministic_and_always_differs(self):
        a = FaultInjector(FaultPlan(), seed=5)
        b = FaultInjector(FaultPlan(), seed=5)
        payload = b"the quick brown fox"
        assert a.corrupt_bytes(payload, "s") == b.corrupt_bytes(payload, "s")
        assert a.corrupt_bytes(payload, "s") != payload
        text = "hello world"
        assert a.corrupt_text(text, "s") == b.corrupt_text(text, "s")
        assert a.corrupt_text(text, "s") != text

    def test_corruption_of_empty_inputs(self):
        injector = FaultInjector(FaultPlan(), seed=1)
        assert injector.corrupt_bytes(b"", "s") != b""
        assert injector.corrupt_text("", "s") != ""

    @pytest.mark.parametrize("seed", range(20))
    def test_corrupt_text_differs_for_every_seed(self, seed):
        injector = FaultInjector(FaultPlan(), seed=seed)
        for text in ("a", "xy", "some longer value 123"):
            assert injector.corrupt_text(text, "site") != text

    def test_stats_tally(self):
        plan = (FaultPlan()
                .add("s", 0, FaultKind.DROP)
                .add("s", 1, FaultKind.CORRUPT)
                .add("s", 1, FaultEvent(FaultKind.DELAY, 2)))
        injector = FaultInjector(plan)
        for _ in range(3):
            injector.step("s")
        assert injector.stats.operations == 3
        assert injector.stats.injected == {"drop": 1, "corrupt": 1,
                                           "delay": 1}
        assert injector.stats.total_injected() == 3
