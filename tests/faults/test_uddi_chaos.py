"""Chaos battery for the federated UDDI path.

Property over ≥100 seeds: a retried publish/inquiry workload run
against fault-injected replicas either converges every replica to the
*fault-free oracle* registry state (equal ``state_digest``) or fails
closed with a typed :class:`TransportError` — and idempotency keys
keep ``publish_count`` exact even under ack-lost and duplicate faults.
"""

import pytest

from repro.core.errors import TransportError
from repro.faults import (
    FaultClock,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    RetryPolicy,
)
from repro.uddi.model import BusinessEntity, BusinessService, TModel
from repro.uddi.registry import UddiRegistry
from repro.uddi.resilient import (
    FaultyRegistry,
    FederatedRegistry,
    ResilientUddiClient,
)

N_BUSINESSES = 4


def entities():
    """Fixed-key workload (fresh_key() is a global counter, so the
    oracle and the chaos runs must not share it)."""
    out = []
    for i in range(N_BUSINESSES):
        services = tuple(
            BusinessService(f"svc-{i}-{j}", f"Service {i}.{j}",
                            category=f"cat-{j}")
            for j in range(2))
        out.append(BusinessEntity(f"biz-{i}", f"Biz {i}", f"desc {i}",
                                  f"contact-{i}", services))
    return out


def run_workload(client):
    for entity in entities():
        client.save_business(entity, publisher=f"pub-{entity.business_key}")
    client.save_tmodel(TModel("tm-1", "uddi-org:inquiry"), publisher="pub-0")
    client.get_business_detail("biz-0")
    client.find_service("*")


def oracle_digest():
    registry = UddiRegistry("oracle")
    for entity in entities():
        registry.save_business(entity, publisher=f"pub-{entity.business_key}")
    registry.save_tmodel(TModel("tm-1", "uddi-org:inquiry"),
                         publisher="pub-0")
    return registry.state_digest()


ORACLE = oracle_digest()


def make_client(seed, rate=0.25, replicas=2, max_attempts=10):
    clock = FaultClock()
    reps = []
    for i in range(replicas):
        plan = FaultPlan.random(seed * replicas + i,
                                [f"registry:rep{i}"], rate, horizon=80)
        injector = FaultInjector(plan, clock, seed=seed)
        reps.append(FaultyRegistry(UddiRegistry(f"rep{i}"), injector))
    federation = FederatedRegistry(reps)
    client = ResilientUddiClient(
        federation,
        RetryPolicy(max_attempts=max_attempts, jitter_seed=seed),
        clock)
    return client, reps


class TestConvergenceProperty:
    @pytest.mark.parametrize("seed", range(110))
    def test_converges_to_oracle_or_fails_closed(self, seed):
        client, reps = make_client(seed)
        try:
            run_workload(client)
        except TransportError:
            return  # fail-closed: retries exhausted, typed, loud
        for replica in reps:
            assert replica.registry.state_digest() == ORACLE

    def test_most_seeds_converge(self):
        converged = 0
        for seed in range(110):
            client, reps = make_client(seed)
            try:
                run_workload(client)
            except TransportError:
                continue
            if all(r.registry.state_digest() == ORACLE for r in reps):
                converged += 1
        assert converged >= 95

    @pytest.mark.parametrize("seed", range(30))
    def test_publish_count_is_exact_despite_duplicates(self, seed):
        """Ack-lost retries and duplicate applications must not inflate
        the publish counter — that is the idempotency ledger's job."""
        client, reps = make_client(seed)
        try:
            run_workload(client)
        except TransportError:
            return
        for replica in reps:
            assert replica.registry.publish_count == N_BUSINESSES + 1

    def test_fault_free_plan_is_exactly_the_oracle(self):
        client, reps = make_client(seed=0, rate=0.0)
        run_workload(client)
        for replica in reps:
            assert replica.registry.state_digest() == ORACLE
            assert replica.registry.publish_count == N_BUSINESSES + 1


class TestSpecificFaults:
    def one_replica(self, plan):
        clock = FaultClock()
        rep = FaultyRegistry(UddiRegistry("rep0"),
                             FaultInjector(plan, clock))
        client = ResilientUddiClient(
            FederatedRegistry([rep]),
            RetryPolicy(max_attempts=6, jitter_seed=0), clock)
        return client, rep

    def test_ack_lost_write_applies_once(self):
        plan = FaultPlan().add("registry:rep0", 0, FaultKind.DROP)
        client, rep = self.one_replica(plan)
        entity = entities()[0]
        client.save_business(entity, publisher="pub-biz-0")
        assert rep.registry.publish_count == 1
        assert rep.registry.get_business_detail("biz-0").name == "Biz 0"

    def test_duplicate_write_applies_once(self):
        plan = FaultPlan().add("registry:rep0", 0, FaultKind.DUPLICATE)
        client, rep = self.one_replica(plan)
        client.save_business(entities()[0], publisher="pub-biz-0")
        assert rep.registry.publish_count == 1

    def test_stale_read_is_detected_and_retried(self):
        # op 0: the write; op 1: a stale inquiry served from the
        # pre-write snapshot — the watermark must reject it.
        plan = FaultPlan().add("registry:rep0", 1, FaultKind.STALE_READ)
        client, rep = self.one_replica(plan)
        client.save_business(entities()[0], publisher="pub-biz-0")
        detail = client.get_business_detail("biz-0")
        assert detail.name == "Biz 0"
        assert any(e.startswith("StaleRead")
                   for e in client.telemetry.errors)

    def test_without_idempotency_key_duplicate_double_counts(self):
        """The control: raw replica, no key — duplicates double-apply."""
        plan = FaultPlan().add("registry:rep0", 0, FaultKind.DUPLICATE)
        clock = FaultClock()
        rep = FaultyRegistry(UddiRegistry("rep0"),
                             FaultInjector(plan, clock))
        rep.publish("save_business", entities()[0], "pub-biz-0", key=None)
        assert rep.registry.publish_count == 2


class TestDeterminism:
    def test_same_seed_same_final_digest(self):
        digests = []
        for _ in range(2):
            client, reps = make_client(seed=17)
            try:
                run_workload(client)
                digests.append(tuple(r.registry.state_digest()
                                     for r in reps))
            except TransportError as exc:
                digests.append(type(exc).__name__)
        assert digests[0] == digests[1]
