"""Chaos battery for the SOAP transport path.

The fail-closed invariant, over ≥100 seeds: a :class:`ReliableChannel`
call under any bounded fault plan either returns a reply whose payload
is byte-identical to the fault-free run's, or raises a typed
:class:`TransportError` — never a garbled reply.
"""

import json

import pytest

from repro.core.errors import (
    CorruptMessage,
    MessageDropped,
    ReplicaUnavailable,
    TransportError,
)
from repro.faults import (
    FaultClock,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    RetryPolicy,
)
from repro.wsa.reliable import ReliableChannel
from repro.wsa.soap import SoapEnvelope
from repro.wsa.transport import MessageBus

SITES = ("transport:svc", "transport:client<-reply")


def echo_handler(envelope):
    return envelope.reply("echoed", {
        "value": envelope.parameters.get("x", ""),
        "operation": envelope.operation,
    })


def request():
    return SoapEnvelope("ping", {"x": "42"}, sender="client",
                        receiver="svc")


def payload_bytes(reply):
    """The reply's semantic payload (message ids are per-process)."""
    return json.dumps([reply.operation,
                       sorted(reply.parameters.items())]).encode("utf-8")


def fault_free_oracle():
    bus = MessageBus()
    bus.register("svc", echo_handler)
    return payload_bytes(bus.send(request()))


ORACLE = fault_free_oracle()


def make_channel(seed, rate=0.3):
    clock = FaultClock()
    plan = FaultPlan.random(seed, SITES, rate, horizon=60)
    injector = FaultInjector(plan, clock, seed=seed)
    bus = MessageBus(faults=injector)
    bus.register("svc", echo_handler)
    channel = ReliableChannel(
        bus, RetryPolicy(max_attempts=8, jitter_seed=seed),
        timeout_ticks=50)
    return bus, channel


class TestFailClosedInvariant:
    @pytest.mark.parametrize("seed", range(120))
    def test_identical_or_typed_error(self, seed):
        _, channel = make_channel(seed)
        try:
            reply = channel.call(request())
        except TransportError:
            return  # fail-closed: loud, typed
        assert payload_bytes(reply) == ORACLE

    def test_majority_of_seeds_complete(self):
        completed = 0
        for seed in range(120):
            _, channel = make_channel(seed)
            try:
                channel.call(request())
                completed += 1
            except TransportError:
                pass
        assert completed >= 110  # retries absorb a 30% fault rate

    def test_without_retries_faults_surface(self):
        surfaced = 0
        for seed in range(40):
            bus, _ = make_channel(seed)
            try:
                bus.send(request())
            except TransportError:
                surfaced += 1
        assert surfaced > 0


class TestSingleFaultKinds:
    def run_with(self, event):
        clock = FaultClock()
        plan = FaultPlan().add("transport:svc", 0, event)
        injector = FaultInjector(plan, clock)
        bus = MessageBus(faults=injector)
        bus.register("svc", echo_handler)
        return bus, clock

    def test_drop_raises_then_retry_succeeds(self):
        bus, clock = self.run_with(FaultEvent(FaultKind.DROP))
        with pytest.raises(MessageDropped):
            bus.send(request())
        assert payload_bytes(bus.send(request())) == ORACLE

    def test_crash_window_blocks_then_recovers(self):
        bus, clock = self.run_with(FaultEvent(FaultKind.CRASH, 2))
        for _ in range(2):
            with pytest.raises(ReplicaUnavailable):
                bus.send(request())
        assert payload_bytes(bus.send(request())) == ORACLE

    def test_corrupt_request_is_caught_by_frame_checksum(self):
        bus, _ = self.run_with(FaultEvent(FaultKind.CORRUPT))
        channel = ReliableChannel(bus, RetryPolicy(max_attempts=1))
        with pytest.raises(TransportError) as excinfo:
            channel.call(request())
        # either the checksum catches it directly or retry exhausts on it
        assert "checksum" in str(excinfo.value)

    def test_corrupt_without_checksum_goes_undetected(self):
        """The control: an unstamped request sails through corrupted —
        which is exactly why the wired path always stamps."""
        bus, _ = self.run_with(FaultEvent(FaultKind.CORRUPT))
        reply = bus.send(request())
        assert payload_bytes(reply) != ORACLE

    def test_delay_charges_clock_and_trips_timeout(self):
        bus, clock = self.run_with(FaultEvent(FaultKind.DELAY, 9))
        channel = ReliableChannel(bus, RetryPolicy(max_attempts=1),
                                  timeout_ticks=5)
        with pytest.raises(TransportError):
            channel.call(request())
        assert clock.now() >= 9

    def test_duplicate_delivers_twice(self):
        calls = []

        def counting(envelope):
            calls.append(envelope.message_id)
            return echo_handler(envelope)

        clock = FaultClock()
        plan = FaultPlan().add("transport:svc", 0,
                               FaultEvent(FaultKind.DUPLICATE))
        bus = MessageBus(faults=FaultInjector(plan, clock))
        bus.register("svc", counting)
        reply = bus.send(request())
        assert len(calls) == 2
        assert calls[0] == calls[1]  # same message id: dedupable
        assert payload_bytes(reply) == ORACLE

    def test_reorder_defers_behind_next_delivery(self):
        seen = []

        def recording(envelope):
            seen.append(envelope.parameters["x"])
            return echo_handler(envelope)

        clock = FaultClock()
        plan = FaultPlan().add("transport:svc", 0,
                               FaultEvent(FaultKind.REORDER))
        bus = MessageBus(faults=FaultInjector(plan, clock))
        bus.register("svc", recording)
        first = SoapEnvelope("ping", {"x": "first"}, sender="c",
                             receiver="svc")
        second = SoapEnvelope("ping", {"x": "second"}, sender="c",
                              receiver="svc")
        with pytest.raises(MessageDropped):
            bus.send(first)
        bus.send(second)
        assert seen == ["first", "second"]

    def test_reply_corruption_detected_by_channel(self):
        clock = FaultClock()
        plan = FaultPlan().add("transport:client<-reply", 0,
                               FaultEvent(FaultKind.CORRUPT))
        bus = MessageBus(faults=FaultInjector(plan, clock))
        bus.register("svc", echo_handler)
        channel = ReliableChannel(bus, RetryPolicy(max_attempts=1))
        with pytest.raises(TransportError):
            channel.call(request())


class TestDeterminism:
    def test_same_seed_same_outcome_and_clock(self):
        outcomes = []
        for _ in range(2):
            _, channel = make_channel(9)
            try:
                reply = channel.call(request())
                outcomes.append(("ok", payload_bytes(reply),
                                 channel.clock.now(),
                                 channel.telemetry.attempts))
            except TransportError as exc:
                outcomes.append(("err", type(exc).__name__,
                                 channel.clock.now()))
        assert outcomes[0] == outcomes[1]
