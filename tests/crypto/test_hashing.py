"""Tests for the hashing helpers."""

from repro.crypto.hashing import chain, combine, keystream, sha256_hex, sha256_int


class TestSha256:
    def test_known_vector(self):
        assert sha256_hex("") == ("e3b0c44298fc1c149afbf4c8996fb924"
                                  "27ae41e4649b934ca495991b7852b855")

    def test_str_and_bytes_agree(self):
        assert sha256_hex("abc") == sha256_hex(b"abc")

    def test_int_form_matches_hex(self):
        assert sha256_int("abc") == int(sha256_hex("abc"), 16)


class TestCombine:
    def test_length_prefixing_prevents_ambiguity(self):
        assert combine("ab", "c") != combine("a", "bc")

    def test_deterministic(self):
        assert combine("x", "y") == combine("x", "y")

    def test_order_matters(self):
        assert combine("x", "y") != combine("y", "x")

    def test_mixed_types(self):
        assert combine(b"x", "y") == combine("x", b"y")


class TestChain:
    def test_empty_chain_is_stable(self):
        assert chain([]) == chain([])

    def test_chain_depends_on_all_elements(self):
        assert chain(["a", "b"]) != chain(["a", "c"])
        assert chain(["a", "b"]) != chain(["b", "a"])


class TestKeystream:
    def test_length(self):
        assert len(keystream(b"k" * 16, 100)) == 100
        assert len(keystream(b"k" * 16, 0)) == 0

    def test_deterministic_per_key_and_nonce(self):
        a = keystream(b"k" * 16, 64, b"n1")
        assert a == keystream(b"k" * 16, 64, b"n1")
        assert a != keystream(b"k" * 16, 64, b"n2")
        assert a != keystream(b"j" * 16, 64, b"n1")

    def test_prefix_property(self):
        long = keystream(b"k" * 16, 100)
        short = keystream(b"k" * 16, 40)
        assert long[:40] == short
