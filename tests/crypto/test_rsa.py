"""Tests for textbook RSA."""

import pytest

from repro.core.errors import AuthenticationError, KeyManagementError
from repro.crypto.rsa import (
    decrypt_int,
    encrypt_int,
    generate_keypair,
    hybrid_decrypt,
    hybrid_encrypt,
    sign,
    verify,
    verify_or_raise,
)

KEYS = generate_keypair(bits=256, seed=42)      # small for test speed
OTHER = generate_keypair(bits=256, seed=43)


class TestKeygen:
    def test_deterministic_by_seed(self):
        again = generate_keypair(bits=256, seed=42)
        assert again.public == KEYS.public

    def test_different_seeds_differ(self):
        assert KEYS.public != OTHER.public

    def test_modulus_size(self):
        assert 250 <= KEYS.public.bits <= 256

    def test_too_small_rejected(self):
        with pytest.raises(KeyManagementError):
            generate_keypair(bits=32)

    def test_fingerprint_stable(self):
        assert KEYS.public.fingerprint() == KEYS.public.fingerprint()
        assert KEYS.public.fingerprint() != OTHER.public.fingerprint()


class TestSignatures:
    def test_roundtrip(self):
        signature = sign(KEYS.private, "hello")
        assert verify(KEYS.public, "hello", signature)

    def test_wrong_message_fails(self):
        signature = sign(KEYS.private, "hello")
        assert not verify(KEYS.public, "hullo", signature)

    def test_wrong_key_fails(self):
        signature = sign(KEYS.private, "hello")
        assert not verify(OTHER.public, "hello", signature)

    def test_bytes_and_str_agree(self):
        assert sign(KEYS.private, "msg") == sign(KEYS.private, b"msg")

    def test_verify_or_raise(self):
        signature = sign(KEYS.private, "ok")
        verify_or_raise(KEYS.public, "ok", signature)
        with pytest.raises(AuthenticationError):
            verify_or_raise(KEYS.public, "tampered", signature)


class TestEncryption:
    def test_int_roundtrip(self):
        ciphertext = encrypt_int(KEYS.public, 123456789)
        assert decrypt_int(KEYS.private, ciphertext) == 123456789

    def test_out_of_range_rejected(self):
        with pytest.raises(KeyManagementError):
            encrypt_int(KEYS.public, KEYS.public.n + 1)
        with pytest.raises(KeyManagementError):
            decrypt_int(KEYS.private, -1)

    def test_hybrid_roundtrip(self):
        plaintext = b"a longer message " * 20
        wrapped, body = hybrid_encrypt(KEYS.public, plaintext, seed=7)
        assert hybrid_decrypt(KEYS.private, wrapped, body) == plaintext

    def test_hybrid_ciphertext_differs_from_plaintext(self):
        plaintext = b"secret payload"
        _, body = hybrid_encrypt(KEYS.public, plaintext, seed=1)
        assert body != plaintext

    def test_hybrid_wrong_key_garbles(self):
        plaintext = b"secret payload"
        wrapped, body = hybrid_encrypt(KEYS.public, plaintext, seed=1)
        assert hybrid_decrypt(OTHER.private, wrapped, body) != plaintext

    def test_hybrid_seed_varies_ciphertext(self):
        _, body1 = hybrid_encrypt(KEYS.public, b"same", seed=1)
        _, body2 = hybrid_encrypt(KEYS.public, b"same", seed=2)
        assert body1 != body2
