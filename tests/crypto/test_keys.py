"""Tests for key stores and the all-and-only key distributor."""

import pytest

from repro.core.errors import KeyManagementError
from repro.crypto.keys import KeyDistributor, KeyStore
from repro.crypto.symmetric import SymmetricKey


class TestKeyStore:
    def test_create_and_get(self):
        store = KeyStore()
        key = store.create("k1")
        assert store.get("k1") is key
        assert "k1" in store

    def test_duplicate_create_rejected(self):
        store = KeyStore()
        store.create("k1")
        with pytest.raises(KeyManagementError):
            store.create("k1")

    def test_get_or_create_idempotent(self):
        store = KeyStore()
        assert store.get_or_create("k") is store.get_or_create("k")

    def test_unknown_key_raises(self):
        with pytest.raises(KeyManagementError):
            KeyStore().get("ghost")

    def test_fresh_nonces_on_encrypt(self):
        store = KeyStore()
        store.create("k")
        first = store.encrypt("k", b"same")
        second = store.encrypt("k", b"same")
        assert first.nonce != second.nonce
        assert first.body != second.body

    def test_decrypt_routes_by_key_id(self):
        store = KeyStore()
        store.create("a")
        store.create("b")
        ciphertext = store.encrypt("b", b"payload")
        assert store.decrypt(ciphertext) == b"payload"

    def test_import_key(self):
        sender = KeyStore("sender")
        key = sender.create("shared")
        receiver = KeyStore("receiver")
        receiver.import_key(key)
        assert receiver.decrypt(sender.encrypt("shared", b"x")) == b"x"

    def test_import_conflicting_material_rejected(self):
        receiver = KeyStore()
        receiver.import_key(SymmetricKey.derive("k", "one"))
        with pytest.raises(KeyManagementError):
            receiver.import_key(SymmetricKey.derive("k", "two"))

    def test_different_store_secrets_differ(self):
        assert (KeyStore("s1").create("k").material
                != KeyStore("s2").create("k").material)


class TestKeyDistributor:
    def make(self):
        store = KeyStore()
        for key_id in ("k1", "k2", "k3"):
            store.create(key_id)
        entitlements = {"alice": ["k1", "k2"], "bob": ["k2"],
                        "carol": []}
        return store, KeyDistributor(store,
                                     lambda name: entitlements[name])

    def test_all_keys_granted(self):
        _, distributor = self.make()
        grant = distributor.grant("alice")
        assert grant.key_ids() == ["k1", "k2"]

    def test_only_entitled_keys_granted(self):
        _, distributor = self.make()
        assert distributor.grant("bob").key_ids() == ["k2"]
        assert distributor.grant("carol").key_ids() == []

    def test_holders_recorded(self):
        _, distributor = self.make()
        distributor.grant("alice")
        distributor.grant("bob")
        assert distributor.holders_of("k2") == ["alice", "bob"]
        assert distributor.holders_of("k1") == ["alice"]
        assert distributor.holders_of("k3") == []

    def test_granted_to(self):
        _, distributor = self.make()
        distributor.grant("alice")
        assert distributor.granted_to("alice") == {"k1", "k2"}
        assert distributor.granted_to("never") == set()
