"""Tests for the authenticated symmetric cipher."""

import dataclasses

import pytest

from repro.core.errors import IntegrityError, KeyManagementError
from repro.crypto.symmetric import (
    Ciphertext,
    SymmetricKey,
    decrypt,
    decrypt_text,
    encrypt,
)

KEY = SymmetricKey.derive("k1", "secret")
OTHER = SymmetricKey.derive("k1", "other-secret")


class TestKeys:
    def test_derivation_is_deterministic(self):
        assert SymmetricKey.derive("k1", "secret") == KEY

    def test_short_material_rejected(self):
        with pytest.raises(KeyManagementError):
            SymmetricKey("short", b"tooshort")


class TestRoundtrip:
    def test_bytes(self):
        ciphertext = encrypt(KEY, b"payload", nonce=1)
        assert decrypt(KEY, ciphertext) == b"payload"

    def test_text(self):
        ciphertext = encrypt(KEY, "un testo città", nonce=2)
        assert decrypt_text(KEY, ciphertext) == "un testo città"

    def test_empty_payload(self):
        assert decrypt(KEY, encrypt(KEY, b"", nonce=3)) == b""

    def test_ciphertext_hides_plaintext(self):
        ciphertext = encrypt(KEY, b"attack at dawn", nonce=4)
        assert b"attack" not in ciphertext.body

    def test_nonce_varies_ciphertext(self):
        a = encrypt(KEY, b"same", nonce=1)
        b = encrypt(KEY, b"same", nonce=2)
        assert a.body != b.body


class TestFailures:
    def test_wrong_key_id_rejected(self):
        other_id = SymmetricKey.derive("k2", "secret")
        ciphertext = encrypt(KEY, b"data", nonce=1)
        with pytest.raises(KeyManagementError):
            decrypt(other_id, ciphertext)

    def test_wrong_key_material_fails_mac(self):
        ciphertext = encrypt(KEY, b"data", nonce=1)
        with pytest.raises(IntegrityError):
            decrypt(OTHER, ciphertext)

    def test_tampered_body_detected(self):
        ciphertext = encrypt(KEY, b"data", nonce=1)
        tampered = dataclasses.replace(
            ciphertext, body=bytes([ciphertext.body[0] ^ 1])
            + ciphertext.body[1:])
        with pytest.raises(IntegrityError):
            decrypt(KEY, tampered)

    def test_tampered_nonce_detected(self):
        ciphertext = encrypt(KEY, b"data", nonce=1)
        tampered = dataclasses.replace(ciphertext, nonce=b"\x00" * 8)
        with pytest.raises(IntegrityError):
            decrypt(KEY, tampered)

    def test_transplanted_tag_detected(self):
        first = encrypt(KEY, b"data-1", nonce=1)
        second = encrypt(KEY, b"data-2", nonce=2)
        franken = Ciphertext(first.key_id, first.nonce, first.body,
                             second.tag)
        with pytest.raises(IntegrityError):
            decrypt(KEY, franken)
