"""Tests for the synthetic workload generators."""

from repro.datagen.documents import (
    catalog_document,
    hospital_corpus,
    hospital_documents,
)
from repro.datagen.population import (
    generate_population,
    hospital_role_hierarchy,
    named_cast,
)
from repro.datagen.registry_gen import generate_businesses, standard_tmodels
from repro.datagen.tabular import (
    load_patients,
    market_baskets,
    numeric_column,
)
from repro.datagen.workload import (
    hospital_xpath_workload,
    subject_qualification_policies,
)
from repro.relational.database import Database
from repro.xmldb.serializer import serialize
from repro.xmldb.xpath import select_elements


class TestDocuments:
    def test_deterministic_by_seed(self):
        a = hospital_corpus(10, seed=1)
        b = hospital_corpus(10, seed=1)
        assert serialize(a) == serialize(b)
        c = hospital_corpus(10, seed=2)
        assert serialize(a) != serialize(c)

    def test_record_count(self):
        corpus = hospital_corpus(25, seed=0)
        assert len(select_elements("//record", corpus)) == 25

    def test_record_shape(self):
        corpus = hospital_corpus(5, seed=3)
        record = select_elements("//record", corpus)[0]
        for tag in ("name", "ssn", "department", "diagnosis",
                    "treatment", "billing"):
            assert record.find(tag) is not None

    def test_multiple_documents(self):
        documents = hospital_documents(3, 4, seed=0)
        assert len(documents) == 3
        assert all(len(select_elements("//record", d)) == 4
                   for d in documents.values())

    def test_catalog(self):
        catalog = catalog_document(8, seed=1)
        products = select_elements("//product", catalog)
        assert len(products) == 8
        assert products[0].find("wholesalePrice") is not None


class TestPopulation:
    def test_size_and_determinism(self):
        a = generate_population(50, seed=4)
        b = generate_population(50, seed=4)
        assert len(a) == 50
        names_a = sorted(s.identity.name for s in a.subjects())
        names_b = sorted(s.identity.name for s in b.subjects())
        assert names_a == names_b

    def test_subjects_have_roles_and_credentials(self):
        population = generate_population(20, seed=5)
        for subject in population.subjects():
            assert subject.roles
            assert subject.credentials

    def test_role_hierarchy_shape(self):
        hierarchy = hospital_role_hierarchy()
        from repro.core.subjects import Role
        assert hierarchy.dominates(Role("chief-physician"),
                                   Role("nurse"))

    def test_named_cast(self):
        cast = named_cast()
        assert cast.doctor.attribute("physician", "department") == \
            "oncology"
        assert not cast.stranger.roles


class TestRegistryGen:
    def test_count_and_determinism(self):
        a = generate_businesses(10, seed=6)
        assert len(a) == 10
        names_a = [b.name for b in a]
        names_b = [b.name for b in generate_businesses(10, seed=6)]
        assert names_a == names_b

    def test_services_have_bindings(self):
        for business in generate_businesses(5, seed=7):
            assert business.services
            for service in business.services:
                assert service.category
                assert service.bindings

    def test_standard_tmodels(self):
        keys = {t.tmodel_key for t in standard_tmodels()}
        assert "uddi:tmodel:soap" in keys


class TestTabular:
    def test_load_patients(self):
        database = Database()
        load_patients(database, 100, seed=8)
        table = database.table("patients")
        assert len(table) == 100
        ages = [row[3] for row in table]
        assert all(18 <= age <= 95 for age in ages)

    def test_numeric_column_bimodal(self):
        values = numeric_column(2000, seed=9)
        young = (values < 50).mean()
        assert 0.4 < young < 0.8  # the 60/40 mixture

    def test_market_baskets_planted_pattern(self):
        baskets = market_baskets(500, seed=10)
        both = sum(1 for b in baskets if {"bread", "milk"} <= b)
        assert both / len(baskets) > 0.2

    def test_baskets_never_empty(self):
        assert all(market_baskets(100, seed=11))


class TestWorkloads:
    def test_xpath_workload_compiles(self):
        from repro.xmldb.xpath import compile_xpath
        workload = hospital_xpath_workload(seed=12, query_count=30)
        assert len(workload.queries) == 30
        for query in workload.queries:
            compile_xpath(query)

    def test_policy_bases_by_basis(self):
        for basis in ("identity", "role", "credential"):
            base = subject_qualification_policies(
                40, basis, user_count=100, seed=13)
            assert len(base) == 40

    def test_unknown_basis_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            subject_qualification_policies(1, "magic", 10)
