"""The zero-copy frame codec: pickle-5 + out-of-band buffers."""

import asyncio
import pickle
import socket
import struct

import pytest

from repro.core.errors import CorruptMessage
from repro.multicore.frames import (
    MAX_FRAME_PARTS,
    decode_frame,
    encode_frame,
    frame_header,
    read_frame,
    read_frame_async,
    roundtrip,
    write_frame,
    write_frame_async,
)


class TestCodec:
    def test_roundtrip_control_message(self):
        message = ("eval", 7, ((0, 1, "READ", "a/b", None),), {})
        assert roundtrip(message) == message

    def test_control_messages_are_single_part(self):
        parts = encode_frame(("seed", {"v": 1}))
        assert len(parts) == 1

    def test_picklebuffer_payload_rides_out_of_band(self):
        chunk = b"<rec>payload bytes</rec>" * 64
        parts = encode_frame(("stream-ok", 0, 1,
                              (pickle.PickleBuffer(chunk),)))
        assert len(parts) == 2
        # The out-of-band part is a view over the *original* bytes —
        # zero copies made by the encoder.
        assert parts[1].obj is chunk

    def test_out_of_band_payload_decodes_byte_identical(self):
        chunks = tuple(f"chunk {i}".encode() * 10 for i in range(5))
        message = ("stream-ok", 0, 1,
                   tuple(pickle.PickleBuffer(c) for c in chunks))
        decoded = decode_frame(encode_frame(message))
        assert tuple(bytes(c) for c in decoded[3]) == chunks

    def test_garbage_pickle_is_typed_corrupt(self):
        with pytest.raises(CorruptMessage):
            decode_frame([b"this is not a pickle"])

    def test_missing_oob_buffer_is_typed_corrupt(self):
        parts = encode_frame(("x", pickle.PickleBuffer(b"payload")))
        with pytest.raises(CorruptMessage):
            decode_frame(parts[:1])  # stream references a lost part

    def test_header_layout(self):
        parts = [b"abc", b"defgh"]
        header = frame_header(parts)
        count = struct.unpack_from("!I", header)[0]
        sizes = struct.unpack_from("!QQ", header, 4)
        assert count == 2 and sizes == (3, 5)

    def test_too_many_parts_refused(self):
        parts = [b"x"] * (MAX_FRAME_PARTS + 1)
        with pytest.raises(CorruptMessage):
            frame_header(parts)


class TestSyncTransport:
    def test_write_read_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            message = ("delta-ok", 3, 2, {0: "ab", 4: "cd"})
            write_frame(left, message)
            assert read_frame(right) == message
        finally:
            left.close()
            right.close()

    def test_oob_chunks_survive_the_socket(self):
        left, right = socket.socketpair()
        try:
            chunks = tuple(bytes([i]) * 4096 for i in range(8))
            write_frame(left, ("stream-ok", 0, 1, tuple(
                pickle.PickleBuffer(c) for c in chunks)))
            reply = read_frame(right)
            assert tuple(bytes(c) for c in reply[3]) == chunks
        finally:
            left.close()
            right.close()

    def test_peer_close_between_frames_is_eof(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(EOFError):
                read_frame(right)
        finally:
            right.close()

    def test_corrupt_part_count_is_typed(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack("!I", 0))
            with pytest.raises(CorruptMessage):
                read_frame(right)
        finally:
            left.close()
            right.close()

    def test_oversized_frame_is_refused_not_allocated(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack("!I", 1)
                         + struct.pack("!Q", 1 << 60))
            with pytest.raises(CorruptMessage):
                read_frame(right)
        finally:
            left.close()
            right.close()


class TestAsyncTransport:
    def run_async(self, coroutine):
        return asyncio.run(coroutine)

    def test_async_write_read(self):
        async def scenario():
            left, right = socket.socketpair()
            _, writer = await asyncio.open_connection(sock=left)
            reader, peer_writer = await asyncio.open_connection(
                sock=right)
            try:
                message = ("eval-ok", 1, 9, ((True, 3, (3,), "ok"),),
                           0.001)
                await write_frame_async(writer, message)
                assert await read_frame_async(reader) == message
            finally:
                writer.close()
                peer_writer.close()

        self.run_async(scenario())

    def test_async_reader_sees_peer_close(self):
        async def scenario():
            left, right = socket.socketpair()
            _, writer = await asyncio.open_connection(sock=left)
            reader, peer_writer = await asyncio.open_connection(
                sock=right)
            writer.close()
            try:
                with pytest.raises(asyncio.IncompleteReadError):
                    await read_frame_async(reader)
            finally:
                peer_writer.close()

        self.run_async(scenario())

    def test_sync_write_async_read_interoperate(self):
        async def scenario():
            left, right = socket.socketpair()
            write_frame(left, ("seed-ok", 0, {0: "d" * 64}))
            reader, peer_writer = await asyncio.open_connection(
                sock=right)
            try:
                reply = await read_frame_async(reader)
                assert reply == ("seed-ok", 0, {0: "d" * 64})
            finally:
                left.close()
                peer_writer.close()

        self.run_async(scenario())
