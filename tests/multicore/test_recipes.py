"""Credential-expression recipes: policies that survive the wire.

Policy deltas cross the dispatcher→worker boundary by pickling, but a
credential expression is a closure — unpicklable as such.  Every
factory therefore records its *recipe* (factory name + arguments) and
``__reduce__`` rebuilds the expression from it on the far side; an
expression constructed outside the factories refuses to pickle with a
typed error instead of failing deep inside a frame write.
"""

import pickle

import pytest

from repro.core.credentials import (
    CredentialExpression,
    CredentialType,
    anyone,
    attribute_at_least,
    attribute_equals,
    attribute_in,
    has_credential,
    has_role,
    issued_by,
    is_identity,
    nobody,
)
from repro.core.policy import Action, grant
from repro.core.subjects import Role, Subject

PHYSICIAN = CredentialType(
    "physician", {"department", "seniority"}, mandatory={"department"})


def doctor():
    return Subject("dr", roles={Role("doctor")},
                   credentials=[PHYSICIAN.issue(department="cardiology",
                                                seniority=7)])


def roundtrip(expression):
    return pickle.loads(pickle.dumps(expression, protocol=5))


class TestFactoryRecipes:
    @pytest.mark.parametrize("factory", [
        lambda: anyone(),
        lambda: nobody(),
        lambda: is_identity("dr"),
        lambda: has_role("doctor"),
        lambda: has_credential("physician"),
        lambda: issued_by("physician", "self"),
        lambda: attribute_equals("physician", "department", "cardiology"),
        lambda: attribute_at_least("physician", "seniority", 5),
        lambda: attribute_in("physician", "department",
                             {"cardiology", "oncology"}),
    ])
    def test_every_factory_survives_pickling(self, factory):
        original = factory()
        rebuilt = roundtrip(original)
        subject = doctor()
        assert rebuilt.evaluate(subject) == original.evaluate(subject)
        assert rebuilt.description == original.description

    def test_combinators_compose_recipes(self):
        expression = (has_role("doctor")
                      & ~attribute_equals("physician", "department",
                                          "oncology")) | nobody()
        rebuilt = roundtrip(expression)
        subject = doctor()
        assert rebuilt.evaluate(subject) and expression.evaluate(subject)

    def test_attribute_in_recipe_is_order_insensitive(self):
        one = attribute_in("physician", "department", {"a", "b", "c"})
        other = attribute_in("physician", "department", {"c", "a", "b"})
        assert one.recipe == other.recipe

    def test_raw_expression_refuses_with_typed_error(self):
        bare = CredentialExpression(lambda s: True, "ad-hoc")
        with pytest.raises(pickle.PicklingError):
            pickle.dumps(bare, protocol=5)


class TestPolicyPickling:
    def test_policy_id_survives_the_trip(self):
        policy = grant(has_role("doctor"), Action.READ, "records/**")
        rebuilt = pickle.loads(pickle.dumps(policy, protocol=5))
        assert rebuilt.policy_id == policy.policy_id

    def test_rebuilt_policy_decides_identically(self):
        policy = grant(attribute_at_least("physician", "seniority", 5),
                       Action.READ, "records/**")
        rebuilt = pickle.loads(pickle.dumps(policy, protocol=5))
        subject = doctor()
        assert rebuilt.subject_expression.evaluate(subject)
        assert rebuilt.action == policy.action
        assert str(rebuilt.resource) == str(policy.resource)
