"""MulticoreGateway in ``workers=0`` deterministic mode.

Every message still round-trips through the frame codec, so these
tests exercise the full dispatcher↔worker protocol — seed handshake,
contiguous deltas, subject interning, batch admission, streaming —
without forking, and with bit-for-bit reproducible outcomes.
"""

import asyncio
import json
import random

import pytest

from repro.core.credentials import anyone, has_role
from repro.core.errors import (
    ConfigurationError,
    Overloaded,
    ReplicaUnavailable,
    SeedMismatch,
    WorkerDiverged,
)
from repro.core.policy import Action, deny, grant
from repro.gateway import TenantConfig, collect
from repro.gateway.engine import EpochalShardRouter
from repro.multicore import MulticoreGateway, RemoteDecision
from repro.scale.gateway import Request
from repro.snap.intern import InternPool
from repro.snap.xmlstore import SnapshotXmlDatabase

from tests.scale.workloads import random_policies, random_requests

WIDE_OPEN = TenantConfig(rate=1e9, burst=1e9)


def run_async(coroutine):
    return asyncio.run(coroutine)


def make_gateway(policies, **kwargs):
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("logical_workers", 4)
    kwargs.setdefault("auto_dispatch", False)
    kwargs.setdefault("default_tenant", WIDE_OPEN)
    return MulticoreGateway(policies, **kwargs)


async def ask(gateway, request):
    """submit + drain on the caller's task (auto_dispatch is off)."""
    future = gateway.submit_nowait("t", request)
    await gateway.process_pending()
    return future.result()


def decision_bytes(decision) -> bytes:
    return json.dumps({
        "granted": decision.granted,
        "determining": decision.determining.policy_id
        if decision.determining is not None else None,
        "applicable": [p.policy_id for p in decision.applicable],
        "reason": decision.reason,
    }, sort_keys=True).encode()


def reference_decisions(policies, requests):
    """What a plain single-process compiled router answers."""
    router = EpochalShardRouter.from_policies(
        list(policies), shard_count=4, compile_policies=True)
    out = []
    for subject, action, path, payload in requests:
        shard = router.shard_for_path(path)
        out.append(router.engine(shard).decide_batch(
            [(subject, action, path, payload)])[0])
    return out


class TestLifecycle:
    def test_requires_compiled_router(self):
        router = EpochalShardRouter.from_policies(
            random_policies(random.Random(0), 10), shard_count=4,
            compile_policies=False)
        with pytest.raises(ConfigurationError):
            make_gateway(router)

    def test_submit_before_start_is_a_configuration_error(self):
        async def scenario():
            gateway = make_gateway(random_policies(random.Random(0), 10))
            with pytest.raises(ConfigurationError):
                gateway.submit_nowait("t", Request(
                    *random_requests(random.Random(1), 1)[0]))

        run_async(scenario())

    def test_every_shard_is_owned_by_exactly_one_worker(self):
        gateway = make_gateway(random_policies(random.Random(0), 10))
        owned = [shard for worker_id in range(gateway.worker_count)
                 for shard in gateway.owned_shards(worker_id)]
        assert sorted(owned) == list(range(gateway.router.shard_count))


class TestSeedHandshake:
    def test_matching_digests_seed_ok(self):
        async def scenario():
            async with make_gateway(
                    random_policies(random.Random(3), 12)) as gateway:
                assert gateway.live_workers() == [0, 1, 2, 3]

        run_async(scenario())

    def test_digest_mismatch_refuses_at_seed(self):
        """A worker router compiled from *different* policies cannot
        pass the handshake: start() raises typed SeedMismatch and the
        gateway never serves."""
        async def scenario():
            policies = random_policies(random.Random(4), 12)
            impostor = EpochalShardRouter.from_policies(
                random_policies(random.Random(5), 12), shard_count=4,
                compile_policies=True)
            gateway = make_gateway(policies, worker_router=impostor)
            with pytest.raises(SeedMismatch):
                await gateway.start()

        run_async(scenario())

    def test_equivalent_but_distinct_policies_also_mismatch(self):
        """Even an identical-looking policy set built from fresh Policy
        objects fails the handshake — digests cover policy ids, the
        identity the wire decisions are expressed in."""
        async def scenario():
            rebuilt = EpochalShardRouter.from_policies(
                [grant(has_role("doctor"), Action.READ, "hospital/**")],
                shard_count=4, compile_policies=True)
            gateway = make_gateway(
                [grant(has_role("doctor"), Action.READ, "hospital/**")],
                shard_count=4, worker_router=rebuilt)
            with pytest.raises(SeedMismatch):
                await gateway.start()

        run_async(scenario())


class TestEvaluation:
    def test_decisions_byte_identical_to_single_process_router(self):
        policies = random_policies(random.Random(7), 25)
        requests = random_requests(random.Random(7 + 9000), 40)
        expected = [decision_bytes(d)
                    for d in reference_decisions(policies, requests)]

        async def scenario():
            async with make_gateway(policies) as gateway:
                futures = [gateway.submit_nowait("t", Request(*request))
                           for request in requests]
                await gateway.process_pending()
                return [decision_bytes(f.result()) for f in futures]

        assert run_async(scenario()) == expected

    def test_same_seed_same_trace(self):
        """workers=0 is deterministic: identical submissions produce
        identical responses in identical order, twice."""
        policies = random_policies(random.Random(11), 20)
        requests = random_requests(random.Random(11 + 9000), 30)

        def one_run():
            async def scenario():
                async with make_gateway(policies) as gateway:
                    futures = [
                        gateway.submit_nowait("t", Request(*request))
                        for request in requests]
                    await gateway.process_pending()
                    return [decision_bytes(f.result()) for f in futures]

            return run_async(scenario())

        assert one_run() == one_run()

    def test_results_are_remote_decisions(self):
        async def scenario():
            policies = [grant(anyone(), Action.READ, "hospital/**")]
            async with make_gateway(policies) as gateway:
                future = gateway.submit_nowait("t", Request(
                    *random_requests(random.Random(1), 1)[0]))
                await gateway.process_pending()
                return future.result()

        decision = run_async(scenario())
        assert isinstance(decision, RemoteDecision)

    def test_subjects_are_interned_per_worker(self):
        """The first batch mentioning a subject ships it inline; later
        batches reference its integer key only."""
        policies = [grant(anyone(), Action.READ, "**")]
        requests = random_requests(random.Random(2), 12,
                                   subject_count=2)

        async def scenario():
            async with make_gateway(policies) as gateway:
                for request in requests:
                    gateway.submit_nowait("t", Request(*request))
                await gateway.process_pending()
                first_pass = {worker_id: set(acked) for worker_id, acked
                              in enumerate(gateway._acked_subjects)}
                # Same subjects again: no new keys can appear anywhere.
                for request in requests:
                    gateway.submit_nowait("t", Request(*request))
                await gateway.process_pending()
                second_pass = {worker_id: set(acked) for worker_id, acked
                               in enumerate(gateway._acked_subjects)}
                assert second_pass == first_pass
                assert len(gateway._subject_keys) == 2

        run_async(scenario())


class TestDeltas:
    def test_delta_add_changes_decisions_everywhere(self):
        async def scenario():
            subject, action, path, payload = random_requests(
                random.Random(21), 1)[0]
            policies = [deny(anyone(), Action.WRITE, "nowhere")]
            async with make_gateway(policies) as gateway:
                before = await ask(gateway, Request(
                    subject, Action.READ, path, payload))
                assert not before.granted
                await gateway.add_policy(
                    grant(anyone(), Action.READ, "**"))
                after = await ask(gateway, Request(
                    subject, Action.READ, path, payload))
                assert after.granted
                assert gateway.live_workers() == [0, 1, 2, 3]

        run_async(scenario())

    def test_delta_remove_by_policy_object(self):
        async def scenario():
            blanket = grant(anyone(), Action.READ, "**")
            async with make_gateway([blanket]) as gateway:
                subject, _, path, payload = random_requests(
                    random.Random(23), 1)[0]
                assert (await ask(gateway, Request(
                    subject, Action.READ, path, payload))).granted
                await gateway.remove_policy(blanket)
                denied = await ask(gateway, Request(
                    subject, Action.READ, path, payload))
                assert not denied.granted

        run_async(scenario())

    def test_contiguity_gap_is_typed_worker_divergence(self):
        """A skipped version number — the dispatcher's history has a
        hole from the workers' point of view — answers WorkerDiverged,
        retires every worker, and subsequent evaluations keep failing
        with the same type (never stale service)."""
        async def scenario():
            policies = random_policies(random.Random(31), 10)
            async with make_gateway(policies) as gateway:
                gateway._delta_version += 1      # fake a missed delta
                with pytest.raises(WorkerDiverged):
                    await gateway.add_policy(
                        grant(anyone(), Action.READ, "lab/**"))
                assert 0 not in gateway.live_workers()
                future = gateway.submit_nowait(
                    "t", Request(*random_requests(
                        random.Random(32), 1)[0]))
                await gateway.process_pending()
                error = future.exception()
                if error is not None:
                    assert isinstance(error, WorkerDiverged)

        run_async(scenario())

    def test_delta_before_start_is_a_configuration_error(self):
        async def scenario():
            gateway = make_gateway(random_policies(random.Random(0), 5))
            with pytest.raises(ConfigurationError):
                await gateway.add_policy(
                    grant(anyone(), Action.READ, "lab/**"))

        run_async(scenario())


class TestBatchAdmission:
    def test_batch_resolves_in_submission_order(self):
        policies = random_policies(random.Random(41), 20)
        requests = random_requests(random.Random(41 + 9000), 16)
        expected = [decision_bytes(d)
                    for d in reference_decisions(policies, requests)]

        async def scenario():
            async with make_gateway(policies) as gateway:
                gathered = gateway.submit_batch_nowait(
                    "t", [Request(*request) for request in requests])
                await gateway.process_pending()
                return [decision_bytes(d) for d in await gathered]

        assert run_async(scenario()) == expected

    def test_batch_charges_the_bucket_once_for_all_tokens(self):
        async def scenario():
            policies = [grant(anyone(), Action.READ, "**")]
            tight = TenantConfig(rate=1.0, burst=8.0)
            async with make_gateway(policies,
                                    default_tenant=tight) as gateway:
                requests = [Request(*r) for r in random_requests(
                    random.Random(43), 10)]
                with pytest.raises(Overloaded):
                    gateway.submit_batch_nowait("t", requests)
                # Within burst: admitted as one unit.
                gathered = gateway.submit_batch_nowait("t", requests[:8])
                await gateway.process_pending()
                assert len(await gathered) == 8

        run_async(scenario())

    def test_empty_batch_is_a_configuration_error(self):
        async def scenario():
            policies = [grant(anyone(), Action.READ, "**")]
            async with make_gateway(policies) as gateway:
                with pytest.raises(ConfigurationError):
                    gateway.submit_batch_nowait("t", [])

        run_async(scenario())


class TestKillWorker:
    def test_killed_workers_shards_fail_typed_others_serve(self):
        policies = random_policies(random.Random(51), 25)
        requests = random_requests(random.Random(51 + 9000), 40)
        expected = [decision_bytes(d)
                    for d in reference_decisions(policies, requests)]

        async def scenario():
            async with make_gateway(policies) as gateway:
                victim = 1
                gateway.kill_worker(victim)
                assert victim not in gateway.live_workers()
                futures = [gateway.submit_nowait("t", Request(*request))
                           for request in requests]
                await gateway.process_pending()
                outcomes = []
                for index, future in enumerate(futures):
                    shard = gateway.router.shard_for_path(
                        requests[index][2])
                    owner = gateway.worker_for_shard(shard)
                    error = future.exception()
                    if owner == victim:
                        assert isinstance(error, ReplicaUnavailable)
                        outcomes.append(None)
                    else:
                        assert error is None
                        outcomes.append(decision_bytes(future.result()))
                return outcomes

        outcomes = run_async(scenario())
        served = [o for o in outcomes if o is not None]
        assert served, "other workers must keep serving"
        for outcome, reference in zip(outcomes, expected):
            if outcome is not None:
                assert outcome == reference


class TestStreaming:
    def make_store(self):
        db = SnapshotXmlDatabase()
        db.create_collection("c")
        db.insert("c", "d1", "<doc>" + "".join(
            f"<rec id=\"{i}\"><v>payload {i}</v></rec>"
            for i in range(20)) + "</doc>")
        db.publish()
        return db

    def test_stream_bytes_identical_to_intern_pool(self):
        db = self.make_store()
        expected = InternPool().serialize_document(
            db.current().document("c", "d1"))

        async def scenario():
            policies = [grant(anyone(), Action.READ, "**")]
            async with make_gateway(policies, store=db) as gateway:
                return await collect(gateway.stream_document(
                    "t", "c", "d1", chunk_size=64))

        assert run_async(scenario()) == expected

    def test_stream_after_write_serves_the_new_epoch(self):
        db = self.make_store()

        async def scenario():
            policies = [grant(anyone(), Action.READ, "**")]
            async with make_gateway(policies, store=db) as gateway:
                gateway.write(lambda store: store.insert(
                    "c", "d2", "<doc><v>fresh</v></doc>"))
                return await collect(gateway.stream_document(
                    "t", "c", "d2", chunk_size=64))

        text = run_async(scenario())
        assert "fresh" in text

    def test_stream_without_store_is_a_configuration_error(self):
        async def scenario():
            policies = [grant(anyone(), Action.READ, "**")]
            async with make_gateway(policies) as gateway:
                with pytest.raises(ConfigurationError):
                    gateway.stream_document("t", "c", "d1")

        run_async(scenario())

    def test_repeat_stream_hits_the_worker_chunk_cache(self):
        db = self.make_store()

        async def scenario():
            policies = [grant(anyone(), Action.READ, "**")]
            async with make_gateway(policies, store=db) as gateway:
                first = await collect(gateway.stream_document(
                    "t", "c", "d1", chunk_size=64))
                second = await collect(gateway.stream_document(
                    "t", "c", "d1", chunk_size=64))
                assert first == second
                shard = gateway.router.shard_for_path("c/d1")
                worker = gateway._channels[
                    gateway.worker_for_shard(shard)].worker
                assert ("c", "d1", 64) in worker._chunk_cache

        run_async(scenario())


class TestStats:
    def test_stage_counters_cover_the_pipeline(self):
        policies = random_policies(random.Random(61), 15)
        requests = random_requests(random.Random(61 + 9000), 20)

        async def scenario():
            async with make_gateway(policies) as gateway:
                for request in requests:
                    gateway.submit_nowait("t", Request(*request))
                await gateway.process_pending()
                return gateway.stats.snapshot()

        snapshot = run_async(scenario())
        assert snapshot["completed"] == len(requests)
        assert snapshot["stage_enqueue_count"] == len(requests)
        assert snapshot["stage_evaluate_count"] >= 1
        assert snapshot["stage_ipc_count"] >= 1
