"""Fork-mode smoke tests: real processes, real sockets, real frames.

Everything heavier (sweeps, chaos, scaling) runs in ``workers=0``
deterministic mode or in the benchmark; these tests prove the actual
process-per-core path — fork inheritance, the socket transport, the
seed handshake and delta shipping over IPC — works end to end.  Skipped
where the platform cannot fork.
"""

import asyncio
import json
import multiprocessing
import random

import pytest

from repro.core.credentials import anyone
from repro.core.errors import ReplicaUnavailable
from repro.core.policy import Action, grant
from repro.gateway import TenantConfig, collect
from repro.multicore import MulticoreGateway
from repro.scale.gateway import Request
from repro.snap.intern import InternPool
from repro.snap.xmlstore import SnapshotXmlDatabase

from tests.multicore.test_dispatcher import (
    decision_bytes,
    reference_decisions,
)
from tests.scale.workloads import random_policies, random_requests

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="platform has no fork start method")

WIDE_OPEN = TenantConfig(rate=1e9, burst=1e9)


def run_async(coroutine):
    return asyncio.run(coroutine)


class TestForkMode:
    def test_decisions_over_real_ipc_match_the_reference(self):
        policies = random_policies(random.Random(71), 20)
        requests = random_requests(random.Random(71 + 9000), 24)
        expected = [decision_bytes(d)
                    for d in reference_decisions(policies, requests)]

        async def scenario():
            async with MulticoreGateway(
                    policies, workers=2, shard_count=4,
                    default_tenant=WIDE_OPEN) as gateway:
                futures = [gateway.submit_nowait("t", Request(*request))
                           for request in requests]
                results = await asyncio.gather(*futures)
                return [decision_bytes(d) for d in results]

        assert run_async(scenario()) == expected

    def test_delta_over_ipc_grants_new_policy(self):
        async def scenario():
            subject, _, path, payload = random_requests(
                random.Random(73), 1)[0]
            policies = [grant(anyone(), Action.WRITE, "nowhere")]
            async with MulticoreGateway(
                    policies, workers=2, shard_count=4,
                    default_tenant=WIDE_OPEN) as gateway:
                before = await gateway.submit("t", Request(
                    subject, Action.READ, path, payload))
                await gateway.add_policy(
                    grant(anyone(), Action.READ, "**"))
                after = await gateway.submit("t", Request(
                    subject, Action.READ, path, payload))
                return before.granted, after.granted

        assert run_async(scenario()) == (False, True)

    def test_stream_over_ipc_is_byte_identical(self):
        db = SnapshotXmlDatabase()
        db.create_collection("c")
        db.insert("c", "d1", "<doc>" + "".join(
            f"<rec id=\"{i}\"><v>payload {i}</v></rec>"
            for i in range(20)) + "</doc>")
        db.publish()
        expected = InternPool().serialize_document(
            db.current().document("c", "d1"))

        async def scenario():
            policies = [grant(anyone(), Action.READ, "**")]
            async with MulticoreGateway(
                    policies, workers=2, shard_count=4, store=db,
                    default_tenant=WIDE_OPEN) as gateway:
                return await collect(gateway.stream_document(
                    "t", "c", "d1", chunk_size=64))

        assert run_async(scenario()) == expected

    def test_killed_process_degrades_typed(self):
        policies = random_policies(random.Random(79), 20)
        requests = random_requests(random.Random(79 + 9000), 20)

        async def scenario():
            async with MulticoreGateway(
                    policies, workers=2, shard_count=4,
                    default_tenant=WIDE_OPEN) as gateway:
                gateway.kill_worker(1)
                futures = [gateway.submit_nowait("t", Request(*request))
                           for request in requests]
                results = await asyncio.gather(*futures,
                                               return_exceptions=True)
                outcomes = []
                for index, result in enumerate(results):
                    shard = gateway.router.shard_for_path(
                        requests[index][2])
                    owner = gateway.worker_for_shard(shard)
                    if owner == 1:
                        assert isinstance(result, ReplicaUnavailable)
                        outcomes.append("err")
                    else:
                        assert not isinstance(result, Exception)
                        outcomes.append("ok")
                return outcomes

        outcomes = run_async(scenario())
        assert "ok" in outcomes and "err" in outcomes
