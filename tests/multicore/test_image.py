"""Policy images and deltas: the worker seeding/divergence artifacts."""

import pytest

from repro.core.credentials import anyone, has_role
from repro.core.errors import ConfigurationError
from repro.core.policy import Action, grant
from repro.gateway.engine import EpochalShardRouter
from repro.multicore.image import (
    PolicyDelta,
    PolicyImage,
    router_digests,
    shard_digest,
)


def policies():
    return [grant(has_role("doctor"), Action.READ, "hospital/**"),
            grant(anyone(), Action.READ, "school/summary"),
            grant(has_role("nurse"), Action.WRITE, "clinic/**")]


def compiled_router(policy_list=None, shard_count=4):
    return EpochalShardRouter.from_policies(
        policy_list if policy_list is not None else policies(),
        shard_count=shard_count, compile_policies=True)


class TestDigests:
    def test_same_policies_same_digests(self):
        # Two routers over the *same* policy objects — the dispatcher
        # and a worker's separately-built image — agree digest for
        # digest.  (Digests cover policy ids, so two routers over
        # freshly-built equivalent policies would not.)
        shared = policies()
        assert (router_digests(compiled_router(shared))
                == router_digests(compiled_router(shared)))

    def test_different_policies_differ_somewhere(self):
        extra = policies() + [grant(anyone(), Action.READ, "lab/**")]
        assert (router_digests(compiled_router())
                != router_digests(compiled_router(extra)))

    def test_uncompiled_router_is_a_configuration_error(self):
        router = EpochalShardRouter.from_policies(
            policies(), shard_count=4, compile_policies=False)
        with pytest.raises(ConfigurationError):
            shard_digest(router.engine(0))

    def test_subset_restricts_to_requested_shards(self):
        digests = router_digests(compiled_router(), shards=(1, 3))
        assert set(digests) == {1, 3}


class TestPolicyImage:
    def test_matching_digests_have_no_mismatches(self):
        router = compiled_router()
        image = PolicyImage.of_router(router, version=2)
        assert image.version == 2
        assert image.mismatches(router_digests(router)) == {}

    def test_disagreement_reports_expected_and_actual(self):
        router = compiled_router()
        image = PolicyImage.of_router(router)
        actual = dict(router_digests(router))
        actual[0] = "0" * 64
        mismatches = image.mismatches(actual)
        assert set(mismatches) == {0}
        expected, got = mismatches[0]
        assert got == "0" * 64 and expected != got

    def test_missing_shard_counts_as_mismatch(self):
        router = compiled_router()
        image = PolicyImage.of_router(router)
        actual = dict(router_digests(router))
        del actual[2]
        assert image.mismatches(actual)[2][1] is None


class TestPolicyDelta:
    def test_versions_start_at_one(self):
        with pytest.raises(ConfigurationError):
            PolicyDelta(0)

    def test_adds_and_removes_are_frozen_tuples(self):
        policy = grant(anyone(), Action.READ, "lab/**")
        delta = PolicyDelta(1, adds=[policy], removes=[17])
        assert delta.adds == (policy,)
        assert delta.removes == (17,)
