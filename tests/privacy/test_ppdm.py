"""Tests for randomization-based PPDM (Agrawal–Srikant)."""

import numpy as np
import pytest

from repro.privacy.ppdm import (
    NoiseModel,
    histogram_distance,
    individual_error,
    privacy_interval,
    randomize,
    reconstruct_distribution,
    true_distribution,
)


def bimodal(n=4000, seed=1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.concatenate([rng.normal(30, 5, n // 2),
                           rng.normal(70, 5, n - n // 2)])


BINS = np.linspace(0, 100, 26)


class TestNoiseModel:
    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel("triangle", 1.0)
        with pytest.raises(ValueError):
            NoiseModel("uniform", -1.0)

    def test_uniform_density(self):
        noise = NoiseModel("uniform", 10.0)
        assert noise.density(np.array([0.0]))[0] == pytest.approx(0.05)
        assert noise.density(np.array([11.0]))[0] == 0.0

    def test_gaussian_density_integrates(self):
        noise = NoiseModel("gaussian", 2.0)
        xs = np.linspace(-20, 20, 4001)
        mass = np.trapezoid(noise.density(xs), xs)
        assert mass == pytest.approx(1.0, abs=1e-3)

    def test_zero_scale_noise_is_identity(self):
        values = bimodal(100)
        assert np.allclose(randomize(values, NoiseModel("uniform", 0.0)),
                           values)


class TestPrivacyMetric:
    def test_uniform_interval(self):
        assert privacy_interval(NoiseModel("uniform", 50.0), 0.95) == \
            pytest.approx(95.0)

    def test_gaussian_interval(self):
        # 95% of a gaussian lies within +-1.96 sigma.
        width = privacy_interval(NoiseModel("gaussian", 10.0), 0.95)
        assert width == pytest.approx(2 * 1.96 * 10.0, rel=1e-2)

    def test_monotone_in_scale(self):
        small = privacy_interval(NoiseModel("uniform", 10.0))
        large = privacy_interval(NoiseModel("uniform", 40.0))
        assert large > small


class TestReconstruction:
    def test_reconstruction_beats_naive(self):
        values = bimodal()
        noise = NoiseModel("uniform", 25.0)
        released = randomize(values, noise, seed=2)
        actual = true_distribution(values, BINS)
        naive = true_distribution(released, BINS)
        estimated = reconstruct_distribution(released, noise, BINS)
        assert histogram_distance(estimated, actual) < \
            histogram_distance(naive, actual) / 2

    def test_individual_values_hidden(self):
        values = bimodal()
        noise = NoiseModel("uniform", 25.0)
        released = randomize(values, noise, seed=3)
        assert individual_error(values, released) > 10.0

    def test_reconstruction_output_is_distribution(self):
        values = bimodal(1000)
        noise = NoiseModel("gaussian", 15.0)
        released = randomize(values, noise, seed=4)
        estimated = reconstruct_distribution(released, noise, BINS)
        assert estimated.sum() == pytest.approx(1.0)
        assert (estimated >= 0).all()

    def test_zero_noise_reconstruction_exact(self):
        values = bimodal(1000)
        noise = NoiseModel("uniform", 0.0)
        estimated = reconstruct_distribution(values, noise, BINS)
        actual = true_distribution(values, BINS)
        assert histogram_distance(estimated, actual) < 1e-9

    def test_more_noise_worse_reconstruction(self):
        values = bimodal()
        actual = true_distribution(values, BINS)
        distances = []
        for scale in (5.0, 60.0):
            noise = NoiseModel("uniform", scale)
            released = randomize(values, noise, seed=5)
            estimated = reconstruct_distribution(released, noise, BINS)
            distances.append(histogram_distance(estimated, actual))
        assert distances[0] < distances[1]


class TestMetrics:
    def test_histogram_distance_bounds(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        assert histogram_distance(a, a) == 0.0
        assert histogram_distance(a, b) == 1.0

    def test_true_distribution_sums_to_one(self):
        dist = true_distribution(bimodal(500), BINS)
        assert dist.sum() == pytest.approx(1.0)
