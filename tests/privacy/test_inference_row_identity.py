"""Regression test: history tracking must join queries over the same
row even when neither query selects the primary key — projecting away
the key must not blind the ledger."""

import pytest

from repro.core.errors import InferenceViolation
from repro.privacy.constraints import PrivacyConstraintSet, PrivacyLevel
from repro.privacy.controller import PrivacyController
from repro.privacy.inference import InferenceController
from repro.relational.database import Database
from repro.relational.table import schema


def build() -> InferenceController:
    database = Database()
    database.create_table(
        schema("patients", primary_key="id",
               id="int", zip="text", age="int", diagnosis="text"),
        owner="dba")
    database.insert("dba", "patients", id=1, zip="22100", age=30,
                    diagnosis="flu")
    database.insert("dba", "patients", id=2, zip="22101", age=67,
                    diagnosis="hiv")
    constraints = PrivacyConstraintSet()
    constraints.protect_together(
        "patients", ["zip", "age", "diagnosis"], PrivacyLevel.PRIVATE,
        name="linkage")
    return InferenceController(PrivacyController(database, constraints))


class TestRowIdentityWithoutPrimaryKey:
    def test_linkage_caught_when_pk_never_selected(self):
        inference = build()
        inference.select("dba", "patients", ["zip", "age"])
        with pytest.raises(InferenceViolation):
            inference.select("dba", "patients", ["diagnosis"])

    def test_linkage_caught_across_mixed_projections(self):
        inference = build()
        inference.select("dba", "patients", ["zip"])
        inference.select("dba", "patients", ["age"])
        with pytest.raises(InferenceViolation):
            inference.select("dba", "patients", ["diagnosis"])

    def test_different_rows_still_independent(self):
        inference = build()
        inference.select("dba", "patients", ["zip", "age"],
                         where=lambda r: r["id"] == 1)
        # Row 2's diagnosis alone completes nothing for row 2.
        result = inference.select("dba", "patients", ["diagnosis"],
                                  where=lambda r: r["id"] == 2)
        assert len(result) == 1
