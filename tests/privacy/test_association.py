"""Tests for association-rule mining (exact and privacy-preserving)."""

import pytest

from repro.privacy.association import (
    apriori,
    association_rules,
    estimated_supports,
    itemset_f1,
    mine_randomized,
    randomize_transactions,
    support_counts,
)

TRANSACTIONS = ([["bread", "milk"], ["bread", "butter"],
                 ["milk", "butter"], ["bread", "milk", "butter"],
                 ["bread", "milk"]] * 200)
ITEMS = ["bread", "milk", "butter"]


class TestApriori:
    def test_singleton_supports(self):
        frequent = apriori(TRANSACTIONS, 0.5)
        assert frequent[frozenset({"bread"})] == pytest.approx(0.8)
        assert frequent[frozenset({"milk"})] == pytest.approx(0.8)

    def test_pair_supports(self):
        frequent = apriori(TRANSACTIONS, 0.3)
        assert frequent[frozenset({"bread", "milk"})] == pytest.approx(0.6)

    def test_threshold_filters(self):
        frequent = apriori(TRANSACTIONS, 0.7)
        assert frozenset({"bread", "milk"}) not in frequent
        assert frozenset({"bread"}) in frequent

    def test_empty_transactions(self):
        assert apriori([], 0.5) == {}

    def test_max_size_respected(self):
        frequent = apriori(TRANSACTIONS, 0.1, max_size=1)
        assert all(len(itemset) == 1 for itemset in frequent)

    def test_apriori_property(self):
        # Every subset of a frequent itemset is frequent.
        frequent = apriori(TRANSACTIONS, 0.2)
        for itemset in frequent:
            for item in itemset:
                assert frozenset({item}) in frequent

    def test_support_counts(self):
        counts = support_counts(
            [frozenset(t) for t in TRANSACTIONS],
            [frozenset({"bread", "milk", "butter"})])
        assert counts[frozenset({"bread", "milk", "butter"})] == 200


class TestRules:
    def test_rules_meet_confidence(self):
        frequent = apriori(TRANSACTIONS, 0.2)
        rules = association_rules(frequent, 0.7)
        assert all(rule.confidence >= 0.7 for rule in rules)

    def test_known_rule_present(self):
        frequent = apriori(TRANSACTIONS, 0.2)
        rules = association_rules(frequent, 0.7)
        found = [(r.antecedent, r.consequent) for r in rules]
        assert (frozenset({"bread"}), frozenset({"milk"})) in found

    def test_rule_string_form(self):
        frequent = apriori(TRANSACTIONS, 0.2)
        rule = association_rules(frequent, 0.7)[0]
        assert "->" in str(rule) and "conf=" in str(rule)


class TestRandomizedMining:
    def test_keep_probability_validated(self):
        with pytest.raises(ValueError):
            randomize_transactions(TRANSACTIONS, ITEMS, 1.5)

    def test_full_keep_is_identity(self):
        released = randomize_transactions(TRANSACTIONS, ITEMS, 1.0)
        assert released == [frozenset(t) & set(ITEMS)
                            for t in map(set, TRANSACTIONS)]

    def test_randomization_actually_flips(self):
        released = randomize_transactions(TRANSACTIONS, ITEMS, 0.6,
                                          seed=1)
        originals = [frozenset(t) for t in TRANSACTIONS]
        assert released != originals

    def test_estimated_supports_close_to_truth(self):
        released = randomize_transactions(TRANSACTIONS, ITEMS, 0.9,
                                          seed=2)
        estimates = estimated_supports(
            released, [frozenset({"bread"}),
                       frozenset({"bread", "milk"})], 0.9)
        assert estimates[frozenset({"bread"})] == pytest.approx(
            0.8, abs=0.1)
        assert estimates[frozenset({"bread", "milk"})] == pytest.approx(
            0.6, abs=0.12)

    def test_pipeline_recovers_itemsets_at_high_keep(self):
        truth = apriori(TRANSACTIONS, 0.3, max_size=2)
        mined = mine_randomized(TRANSACTIONS, ITEMS, 0.95, 0.3,
                                max_size=2, seed=3)
        assert itemset_f1(mined.keys(), truth.keys()) >= 0.8

    def test_more_noise_degrades_f1(self):
        truth = apriori(TRANSACTIONS, 0.3, max_size=2)
        clean = mine_randomized(TRANSACTIONS, ITEMS, 0.98, 0.3,
                                max_size=2, seed=4)
        noisy = mine_randomized(TRANSACTIONS, ITEMS, 0.55, 0.3,
                                max_size=2, seed=4)
        assert itemset_f1(clean.keys(), truth.keys()) >= \
            itemset_f1(noisy.keys(), truth.keys())


class TestF1:
    def test_perfect(self):
        sets = [frozenset({"a"})]
        assert itemset_f1(sets, sets) == 1.0

    def test_disjoint(self):
        assert itemset_f1([frozenset({"a"})], [frozenset({"b"})]) == 0.0

    def test_empty_cases(self):
        assert itemset_f1([], []) == 1.0
        assert itemset_f1([frozenset({"a"})], []) == 0.0
