"""Tests for secure-sum multiparty mining."""

import random

import pytest

from repro.privacy.multiparty import (
    MODULUS,
    Party,
    centralized_apriori,
    collusion_reconstructs,
    distributed_apriori,
    partition_transactions,
    secure_sum,
)

TRANSACTIONS = ([["bread", "milk"], ["bread", "butter"],
                 ["milk", "butter"], ["bread", "milk", "butter"],
                 ["bread", "milk"]] * 20)


class TestSecureSum:
    def test_exact_total(self):
        rng = random.Random(1)
        values = [10, 20, 30, 40]
        names = ["a", "b", "c", "d"]
        trace = secure_sum(values, names, rng)
        assert trace.total == 100
        assert trace.messages == len(values)

    def test_single_party(self):
        trace = secure_sum([7], ["solo"], random.Random(2))
        assert trace.total == 7

    def test_validation(self):
        rng = random.Random(3)
        with pytest.raises(ValueError):
            secure_sum([1, 2], ["only-one"], rng)
        with pytest.raises(ValueError):
            secure_sum([], [], rng)
        with pytest.raises(ValueError):
            secure_sum([-1], ["a"], rng)
        with pytest.raises(ValueError):
            secure_sum([MODULUS], ["a"], rng)

    def test_observed_values_do_not_reveal_inputs(self):
        # What each party sees is masked by the initiator's random r.
        rng = random.Random(4)
        values = [5, 6, 7]
        names = ["a", "b", "c"]
        trace = secure_sum(values, names, rng)
        for name, observed in trace.observed_by_party.items():
            assert observed not in values  # masked, astronomically likely

    def test_collusion_weakness_documented(self):
        rng = random.Random(5)
        values = [11, 22, 33, 44]
        names = ["a", "b", "c", "d"]
        trace = secure_sum(values, names, rng)
        # Neighbours of the middle parties CAN reconstruct — the known
        # limitation of the ring protocol.
        assert collusion_reconstructs(trace, values, names, 1)
        assert collusion_reconstructs(trace, values, names, 2)
        # End positions are not covered by this reconstruction.
        assert not collusion_reconstructs(trace, values, names, 0)


class TestDistributedApriori:
    def test_matches_centralized_exactly(self):
        parties = partition_transactions(TRANSACTIONS, 4, seed=6)
        outcome = distributed_apriori(parties, 0.3, seed=7)
        assert outcome.frequent == centralized_apriori(parties, 0.3)

    def test_various_party_counts(self):
        for count in (2, 3, 5):
            parties = partition_transactions(TRANSACTIONS, count, seed=8)
            outcome = distributed_apriori(parties, 0.4, seed=9)
            assert outcome.frequent == centralized_apriori(parties, 0.4)

    def test_message_cost_linear_in_parties(self):
        small = distributed_apriori(
            partition_transactions(TRANSACTIONS, 2, seed=10), 0.3,
            seed=11)
        large = distributed_apriori(
            partition_transactions(TRANSACTIONS, 8, seed=10), 0.3,
            seed=11)
        assert small.secure_sum_rounds == large.secure_sum_rounds
        assert large.messages == pytest.approx(
            small.messages * 4, rel=0.3)

    def test_empty_parties(self):
        outcome = distributed_apriori([Party("a", []), Party("b", [])],
                                      0.5)
        assert outcome.frequent == {}

    def test_partitioning_conserves_rows(self):
        parties = partition_transactions(TRANSACTIONS, 3, seed=12)
        assert sum(len(p.transactions) for p in parties) == \
            len(TRANSACTIONS)
