"""Tests for privacy constraints and the privacy controller."""

import pytest

from repro.core.errors import PrivacyViolation
from repro.privacy.constraints import (
    AssociationConstraint,
    PrivacyConstraintSet,
    PrivacyLevel,
)
from repro.privacy.controller import PrivacyController
from repro.relational.authorization import Privilege
from repro.relational.database import Database
from repro.relational.table import schema
from repro.core.errors import ConfigurationError


def build_database() -> Database:
    database = Database()
    database.create_table(
        schema("patients", primary_key="id",
               id="int", name="text", diagnosis="text", vip="bool"),
        owner="dba")
    database.insert("dba", "patients", id=1, name="Alice",
                    diagnosis="flu", vip=False)
    database.insert("dba", "patients", id=2, name="Bob",
                    diagnosis="hiv", vip=True)
    return database


def build_controller(strict=False):
    database = build_database()
    constraints = PrivacyConstraintSet()
    constraints.protect("patients", "name", PrivacyLevel.SEMI_PRIVATE)
    constraints.protect("patients", "diagnosis", PrivacyLevel.PRIVATE,
                        condition=lambda row: row.get("vip"))
    controller = PrivacyController(database, constraints,
                                   need_to_know={"doctor"},
                                   strict=strict)
    return controller


class TestLevels:
    def test_releasability(self):
        assert PrivacyLevel.PUBLIC.releasable_to(False)
        assert PrivacyLevel.SEMI_PRIVATE.releasable_to(True)
        assert not PrivacyLevel.SEMI_PRIVATE.releasable_to(False)
        assert not PrivacyLevel.PRIVATE.releasable_to(True)

    def test_strictest_level_wins(self):
        constraints = PrivacyConstraintSet()
        constraints.protect("t", "c", PrivacyLevel.SEMI_PRIVATE)
        constraints.protect("t", "c", PrivacyLevel.PRIVATE)
        assert constraints.level_for("t", "c") is PrivacyLevel.PRIVATE

    def test_conditional_constraint_row_scoped(self):
        constraints = PrivacyConstraintSet()
        constraints.protect("t", "c", PrivacyLevel.PRIVATE,
                            condition=lambda row: row["vip"])
        assert constraints.level_for(
            "t", "c", {"vip": True}) is PrivacyLevel.PRIVATE
        assert constraints.level_for(
            "t", "c", {"vip": False}) is PrivacyLevel.PUBLIC

    def test_broken_condition_fails_closed(self):
        constraints = PrivacyConstraintSet()
        constraints.protect("t", "c", PrivacyLevel.PRIVATE,
                            condition=lambda row: row["missing-key"])
        assert constraints.level_for(
            "t", "c", {}) is PrivacyLevel.PRIVATE

    def test_association_needs_two_columns(self):
        with pytest.raises(ConfigurationError):
            AssociationConstraint("t", frozenset({"only"}),
                                  PrivacyLevel.PRIVATE)

    def test_association_completion(self):
        constraint = AssociationConstraint(
            "t", frozenset({"name", "diagnosis"}), PrivacyLevel.PRIVATE)
        assert constraint.completed_by(["name", "diagnosis", "zip"])
        assert not constraint.completed_by(["name", "zip"])


class TestController:
    def test_semi_private_suppressed_for_public_user(self):
        controller = build_controller()
        result = controller.select("dba", "patients", ["id", "name"])
        assert set(result.column("name")) == {None}
        assert result.column("id") == [1, 2]

    def test_need_to_know_sees_semi_private(self):
        controller = build_controller()
        controller.database.authorization.grant(
            "dba", "doctor", "patients", Privilege.SELECT)
        result = controller.select("doctor", "patients", ["name"])
        assert result.column("name") == ["Alice", "Bob"]

    def test_private_suppressed_even_with_need_to_know(self):
        controller = build_controller()
        controller.database.authorization.grant(
            "dba", "doctor", "patients", Privilege.SELECT)
        result = controller.select("doctor", "patients",
                                   ["id", "diagnosis"])
        rows = result.as_dicts()
        # VIP row's diagnosis is PRIVATE; the other row's is public.
        assert rows[0]["diagnosis"] == "flu"
        assert rows[1]["diagnosis"] is None

    def test_strict_mode_refuses(self):
        controller = build_controller(strict=True)
        with pytest.raises(PrivacyViolation):
            controller.select("dba", "patients", ["name"])
        assert controller.stats.queries_refused == 1

    def test_stats_counted(self):
        controller = build_controller()
        controller.select("dba", "patients", ["id", "name"])
        assert controller.stats.queries == 1
        assert controller.stats.cells_suppressed == 2
        assert controller.stats.cells_released == 2

    def test_grant_need_to_know(self):
        controller = build_controller()
        controller.grant_need_to_know("dba")
        result = controller.select("dba", "patients", ["name"])
        assert result.column("name") == ["Alice", "Bob"]

    def test_association_release_check(self):
        controller = build_controller()
        controller.constraints.protect_together(
            "patients", ["name", "diagnosis"], name="identity-diagnosis")
        violated = controller.released_association_columns(
            "patients", ["name", "diagnosis"], "dba")
        assert violated == ["identity-diagnosis"]
        assert controller.released_association_columns(
            "patients", ["name"], "dba") == []
