"""Tests for privacy-preserving web (unstructured) mining."""

from repro.privacy.constraints import PrivacyLevel
from repro.privacy.webmining import (
    document_transactions,
    mine_corpus,
    term_constraint,
    terms_of,
)
from repro.xmldb.parser import parse


def record_doc(name: str, diagnosis: str, treatment: str):
    return parse(
        f"<record><name>{name}</name>"
        f"<diagnosis>{diagnosis}</diagnosis>"
        f"<treatment>{treatment}</treatment></record>")


CORPUS = {
    f"d{i}": record_doc("Alice Rossi" if i % 3 else "Bob Chen",
                        "chronic migraine with aura"
                        if i % 2 else "seasonal influenza",
                        "rest and hydration"
                        if i % 2 else "antiviral medication")
    for i in range(12)
}


class TestTokenization:
    def test_terms_lowercased_and_filtered(self):
        document = parse("<r><t>The CHRONIC Migraine, twice!</t></r>")
        terms = terms_of(document)
        assert "chronic" in terms and "migraine" in terms
        assert "the" not in terms  # stopword
        assert "twice" in terms

    def test_short_tokens_dropped(self):
        document = parse("<r><t>an ct is ok but x9 no</t></r>")
        terms = terms_of(document)
        assert all(len(term) >= 3 for term in terms)

    def test_tag_scoping_skips_names(self):
        document = record_doc("Alice Rossi", "influenza", "rest")
        scoped = terms_of(document, tags=["diagnosis", "treatment"])
        assert "alice" not in scoped and "rossi" not in scoped
        assert "influenza" in scoped

    def test_document_transactions_order_and_nonempty(self):
        transactions = document_transactions(CORPUS)
        assert len(transactions) == len(CORPUS)
        assert all(transactions)


class TestPipeline:
    def test_cooccurrence_patterns_found(self):
        released, report = mine_corpus(CORPUS, min_support=0.3,
                                       tags=["diagnosis", "treatment"])
        assert frozenset({"migraine", "chronic"}) in released
        assert report.suppressed == 0

    def test_term_constraint_suppresses_identifying_combo(self):
        constraint = term_constraint(["alice", "migraine"],
                                     PrivacyLevel.PRIVATE,
                                     name="name-diagnosis")
        released, report = mine_corpus(CORPUS, min_support=0.2,
                                       constraints=[constraint])
        assert not any({"alice", "migraine"} <= set(itemset)
                       for itemset in released)
        assert report.suppressed_by.get("name-diagnosis", 0) > 0

    def test_tag_scoping_beats_sanitization_upstream(self):
        # Minimizing at the source: names never enter the transactions.
        released, _report = mine_corpus(
            CORPUS, min_support=0.1, tags=["diagnosis", "treatment"])
        assert not any("alice" in itemset or "bob" in itemset
                       for itemset in released)

    def test_randomized_pipeline_still_finds_strong_patterns(self):
        released, _report = mine_corpus(
            CORPUS, min_support=0.3, tags=["diagnosis", "treatment"],
            keep_probability=0.95, seed=7)
        assert frozenset({"influenza"}) in released or \
            frozenset({"migraine"}) in released

    def test_semi_private_terms_for_public_consumer(self):
        constraint = term_constraint(["migraine"],
                                     PrivacyLevel.SEMI_PRIVATE)
        released, report = mine_corpus(CORPUS, min_support=0.2,
                                       constraints=[constraint],
                                       tags=["diagnosis"])
        assert not any("migraine" in itemset for itemset in released)
        assert report.suppressed > 0
