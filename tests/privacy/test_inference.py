"""Tests for the query-history inference controller."""

import pytest

from repro.core.errors import InferenceViolation
from repro.privacy.constraints import PrivacyConstraintSet, PrivacyLevel
from repro.privacy.controller import PrivacyController
from repro.privacy.inference import InferenceController
from repro.relational.database import Database
from repro.relational.table import schema


def build(track_history=True) -> InferenceController:
    database = Database()
    database.create_table(
        schema("patients", primary_key="id",
               id="int", name="text", zip="text", diagnosis="text"),
        owner="dba")
    database.insert("dba", "patients", id=1, name="Alice", zip="22100",
                    diagnosis="flu")
    database.insert("dba", "patients", id=2, name="Bob", zip="22101",
                    diagnosis="hiv")
    constraints = PrivacyConstraintSet()
    constraints.protect_together("patients", ["name", "diagnosis"],
                                 PrivacyLevel.PRIVATE,
                                 name="identity-diagnosis")
    controller = PrivacyController(database, constraints)
    return InferenceController(controller, track_history=track_history)


class TestSingleQuery:
    def test_joint_query_refused(self):
        inference = build()
        with pytest.raises(InferenceViolation):
            inference.select("dba", "patients", ["name", "diagnosis"])
        assert inference.stats.refused == 1

    def test_individual_queries_alone_allowed_stateless(self):
        inference = build(track_history=False)
        inference.select("dba", "patients", ["id", "name"])
        inference.select("dba", "patients", ["id", "diagnosis"])
        assert inference.stats.refused == 0

    def test_partial_association_allowed(self):
        inference = build()
        result = inference.select("dba", "patients", ["name", "zip"])
        assert len(result) == 2


class TestHistoryTracking:
    def test_second_query_completing_association_refused(self):
        inference = build()
        inference.select("dba", "patients", ["id", "name"])
        with pytest.raises(InferenceViolation):
            inference.select("dba", "patients", ["id", "diagnosis"])

    def test_stateless_mode_misses_the_channel(self):
        inference = build(track_history=False)
        inference.select("dba", "patients", ["id", "name"])
        inference.select("dba", "patients", ["id", "diagnosis"])
        assert inference.stats.refused == 0  # the documented weakness

    def test_different_users_tracked_separately(self):
        inference = build()
        inference.select("dba", "patients", ["id", "name"])
        # Another user with access starts a fresh ledger.
        from repro.relational.authorization import Privilege
        inference.controller.database.authorization.grant(
            "dba", "analyst", "patients", Privilege.SELECT)
        inference.select("analyst", "patients", ["id", "diagnosis"])
        assert inference.stats.refused == 0

    def test_disjoint_rows_do_not_combine(self):
        inference = build()
        inference.select("dba", "patients", ["id", "name"],
                         where=lambda r: r["id"] == 1)
        # Different row: no association completed for row 2.
        result = inference.select("dba", "patients", ["id", "diagnosis"],
                                  where=lambda r: r["id"] == 2)
        assert len(result) == 1

    def test_same_row_combines_across_predicates(self):
        inference = build()
        inference.select("dba", "patients", ["id", "name"],
                         where=lambda r: r["zip"] == "22101")
        with pytest.raises(InferenceViolation):
            inference.select("dba", "patients", ["id", "diagnosis"],
                             where=lambda r: r["id"] == 2)

    def test_history_size_and_reset(self):
        inference = build()
        inference.select("dba", "patients", ["id", "name"])
        assert inference.history_size("dba") == 2
        inference.reset_history("dba")
        assert inference.history_size("dba") == 0
        inference.select("dba", "patients", ["id", "diagnosis"])
        assert inference.stats.refused == 0

    def test_refused_query_not_recorded(self):
        inference = build()
        inference.select("dba", "patients", ["id", "name"])
        size_before = inference.history_size("dba")
        with pytest.raises(InferenceViolation):
            inference.select("dba", "patients", ["id", "diagnosis"])
        assert inference.history_size("dba") == size_before


class TestNeedToKnow:
    def test_need_to_know_association(self):
        database = Database()
        database.create_table(
            schema("t", primary_key="id", id="int", a="text", b="text"),
            owner="dba")
        database.insert("dba", "t", id=1, a="x", b="y")
        constraints = PrivacyConstraintSet()
        constraints.protect_together("t", ["a", "b"],
                                     PrivacyLevel.SEMI_PRIVATE)
        controller = PrivacyController(database, constraints,
                                       need_to_know={"dba"})
        inference = InferenceController(controller)
        result = inference.select("dba", "t", ["a", "b"])
        assert len(result) == 1
