"""Tests for pattern-level privacy (mining-output sanitization)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.privacy.association import apriori, association_rules
from repro.privacy.constraints import PrivacyLevel
from repro.privacy.patterns import (
    PatternConstraint,
    PatternSanitizer,
    tabular_transactions,
)

RECORDS = [
    {"zip": "22100", "age": 30, "diagnosis": "flu"},
    {"zip": "22100", "age": 30, "diagnosis": "flu"},
    {"zip": "22100", "age": 30, "diagnosis": "flu"},
    {"zip": "22100", "age": 30, "diagnosis": "flu"},
    {"zip": "22101", "age": 67, "diagnosis": "hiv"},  # unique individual
    {"zip": "22102", "age": 41, "diagnosis": "cold"},
    {"zip": "22102", "age": 41, "diagnosis": "cold"},
    {"zip": "22102", "age": 42, "diagnosis": "cold"},
]


def mined():
    transactions = tabular_transactions(RECORDS,
                                        ["zip", "age", "diagnosis"])
    frequent = apriori(transactions, min_support=1 / len(RECORDS),
                       max_size=3)
    rules = association_rules(frequent, min_confidence=0.9)
    return frequent, rules


class TestPatternConstraint:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PatternConstraint(frozenset())
        with pytest.raises(ConfigurationError):
            PatternConstraint(frozenset({"a"}), min_support=2.0)

    def test_matches_requires_all_attributes(self):
        constraint = PatternConstraint(frozenset({"zip", "diagnosis"}))
        assert constraint.matches(
            frozenset({"zip=22101", "diagnosis=hiv"}), 0.1)
        assert not constraint.matches(frozenset({"zip=22101"}), 0.1)

    def test_min_support_spares_population_patterns(self):
        constraint = PatternConstraint(frozenset({"zip", "diagnosis"}),
                                       min_support=0.3)
        assert constraint.matches(
            frozenset({"zip=22101", "diagnosis=hiv"}), 0.125)
        assert not constraint.matches(
            frozenset({"zip=22100", "diagnosis=flu"}), 0.5)


class TestSanitizer:
    def test_identifying_rule_suppressed(self):
        frequent, rules = mined()
        sanitizer = PatternSanitizer([PatternConstraint(
            frozenset({"zip", "diagnosis"}), PrivacyLevel.PRIVATE,
            min_support=0.3, name="reidentification")])
        released, report = sanitizer.sanitize_rules(rules)
        # The unique individual's zip->hiv rule is gone...
        assert not any("diagnosis=hiv" in str(rule)
                       and "zip=22101" in str(rule)
                       for rule in released)
        assert report.suppressed_by.get("reidentification", 0) > 0
        # ...but population-level flu rules survive.
        assert any("diagnosis=flu" in str(rule) for rule in released)

    def test_itemset_sanitization_counts(self):
        frequent, _rules = mined()
        sanitizer = PatternSanitizer([PatternConstraint(
            frozenset({"diagnosis"}), PrivacyLevel.PRIVATE)])
        released, report = sanitizer.sanitize_itemsets(frequent)
        assert report.released + report.suppressed == len(frequent)
        assert all(
            not any(item.startswith("diagnosis=") for item in itemset)
            for itemset in released)

    def test_semi_private_released_to_need_to_know(self):
        frequent, _rules = mined()
        constraint = PatternConstraint(frozenset({"diagnosis"}),
                                       PrivacyLevel.SEMI_PRIVATE)
        public = PatternSanitizer([constraint], need_to_know=False)
        trusted = PatternSanitizer([constraint], need_to_know=True)
        _, public_report = public.sanitize_itemsets(frequent)
        _, trusted_report = trusted.sanitize_itemsets(frequent)
        assert public_report.suppressed > 0
        assert trusted_report.suppressed == 0

    def test_no_constraints_releases_everything(self):
        frequent, rules = mined()
        sanitizer = PatternSanitizer()
        released_sets, _ = sanitizer.sanitize_itemsets(frequent)
        released_rules, _ = sanitizer.sanitize_rules(rules)
        assert released_sets == frequent
        assert released_rules == rules


class TestTabularTransactions:
    def test_encoding(self):
        transactions = tabular_transactions(
            [{"a": 1, "b": "x"}], ["a", "b"])
        assert transactions == [frozenset({"a=1", "b=x"})]

    def test_none_values_skipped(self):
        transactions = tabular_transactions(
            [{"a": None, "b": "x"}], ["a", "b"])
        assert transactions == [frozenset({"b=x"})]

    def test_empty_rows_dropped(self):
        assert tabular_transactions([{"a": None}], ["a"]) == []
