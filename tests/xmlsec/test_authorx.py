"""Tests for the Author-X policy model and document labelling."""

from repro.core.credentials import anyone, has_role
from repro.core.subjects import Role, Subject
from repro.xmldb.parser import parse
from repro.xmlsec.authorx import (
    Privilege,
    XmlPolicyBase,
    XmlPropagation,
    xml_deny,
    xml_grant,
)

DOC = parse("""<hospital>
  <record id="r1"><name>Alice</name><diagnosis>flu</diagnosis>
    <ssn>123</ssn></record>
  <record id="r2"><name>Bob</name><diagnosis>cold</diagnosis>
    <ssn>456</ssn></record>
</hospital>""", name="records")

DOCTOR = Subject("dr", roles={Role("doctor")})
NURSE = Subject("nn", roles={Role("nurse")})
STRANGER = Subject("zz")


def labels_for(base: XmlPolicyBase, subject: Subject):
    labels = base.label_document(subject, "records", DOC)
    return {node.node_path(): labels[id(node)].access
            for node in DOC.iter()}


class TestBasicLabelling:
    def test_cascade_grant_covers_subtree(self):
        base = XmlPolicyBase([xml_grant(has_role("doctor"), "/hospital")])
        access = labels_for(base, DOCTOR)
        assert all(value == "read" for value in access.values())

    def test_non_matching_subject_gets_nothing(self):
        base = XmlPolicyBase([xml_grant(has_role("doctor"), "/hospital")])
        access = labels_for(base, STRANGER)
        assert all(value == "none" for value in access.values())

    def test_local_propagation(self):
        base = XmlPolicyBase([
            xml_grant(anyone(), "/hospital",
                      propagation=XmlPropagation.LOCAL)])
        access = labels_for(base, STRANGER)
        assert access["/hospital[1]"] == "read"
        assert access["/hospital[1]/record[1]"] == "none"

    def test_one_level_propagation(self):
        base = XmlPolicyBase([
            xml_grant(anyone(), "/hospital",
                      propagation=XmlPropagation.ONE_LEVEL)])
        access = labels_for(base, STRANGER)
        assert access["/hospital[1]/record[1]"] == "read"
        assert access["/hospital[1]/record[1]/name[1]"] == "none"

    def test_document_selector(self):
        base = XmlPolicyBase([
            xml_grant(anyone(), "/hospital", document="other-doc")])
        access = labels_for(base, DOCTOR)
        assert all(value == "none" for value in access.values())


class TestConflicts:
    def test_deeper_deny_overrides_shallow_grant(self):
        base = XmlPolicyBase([
            xml_grant(has_role("doctor"), "/hospital"),
            xml_deny(anyone(), "//ssn"),
        ])
        access = labels_for(base, DOCTOR)
        assert access["/hospital[1]/record[1]/ssn[1]"] == "none"
        assert access["/hospital[1]/record[1]/name[1]"] == "read"

    def test_deeper_grant_overrides_shallow_deny(self):
        base = XmlPolicyBase([
            xml_deny(has_role("doctor"), "/hospital"),
            xml_grant(has_role("doctor"), "//record[@id='r1']/name"),
        ])
        access = labels_for(base, DOCTOR)
        assert access["/hospital[1]/record[1]/name[1]"] == "read"
        assert access["/hospital[1]/record[2]/name[1]"] == "none"

    def test_same_depth_deny_wins(self):
        base = XmlPolicyBase([
            xml_grant(anyone(), "//ssn"),
            xml_deny(anyone(), "//ssn"),
        ])
        access = labels_for(base, DOCTOR)
        assert access["/hospital[1]/record[1]/ssn[1]"] == "none"

    def test_content_dependent_policy(self):
        base = XmlPolicyBase([
            xml_grant(anyone(), "//record[diagnosis='flu']")])
        access = labels_for(base, STRANGER)
        assert access["/hospital[1]/record[1]/name[1]"] == "read"
        assert access["/hospital[1]/record[2]/name[1]"] == "none"


class TestNavigatePrivilege:
    def test_navigate_grant_gives_structure_only(self):
        base = XmlPolicyBase([
            xml_grant(has_role("nurse"), "/hospital",
                      privilege=Privilege.NAVIGATE)])
        access = labels_for(base, NURSE)
        assert access["/hospital[1]"] == "navigate"

    def test_read_deny_can_leave_navigate(self):
        base = XmlPolicyBase([
            xml_grant(has_role("nurse"), "/hospital"),
            xml_deny(has_role("nurse"), "//ssn",
                     privilege=Privilege.READ),
            xml_grant(has_role("nurse"), "//ssn",
                      privilege=Privilege.NAVIGATE),
        ])
        access = labels_for(base, NURSE)
        assert access["/hospital[1]/record[1]/ssn[1]"] == "navigate"

    def test_read_dominates_navigate_in_grants(self):
        base = XmlPolicyBase([
            xml_grant(anyone(), "/hospital",
                      privilege=Privilege.NAVIGATE),
            xml_grant(has_role("doctor"), "/hospital",
                      privilege=Privilege.READ),
        ])
        access = labels_for(base, DOCTOR)
        assert access["/hospital[1]"] == "read"


class TestPolicyBaseApi:
    def test_policies_for_filters(self):
        doctor_policy = xml_grant(has_role("doctor"), "/hospital")
        other_doc = xml_grant(anyone(), "/x", document="other")
        base = XmlPolicyBase([doctor_policy, other_doc])
        applicable = base.policies_for(DOCTOR, "records")
        assert applicable == [doctor_policy]

    def test_len_and_iter(self):
        base = XmlPolicyBase()
        base.add(xml_grant(anyone(), "/hospital"))
        assert len(base) == 1
        assert list(base)
