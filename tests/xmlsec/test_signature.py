"""Tests for XML element signing."""

import pytest

from repro.core.errors import AuthenticationError
from repro.crypto.rsa import generate_keypair
from repro.xmldb.parser import parse_element
from repro.xmlsec.signature import (
    sign_element,
    sign_portions,
    verify_element,
    verify_portion,
)

KEYS = generate_keypair(bits=256, seed=5)
OTHER = generate_keypair(bits=256, seed=6)


class TestElementSignature:
    def test_roundtrip(self):
        node = parse_element('<entry id="1"><v>x</v></entry>')
        signed = sign_element(node, "owner", KEYS.private)
        assert signed.verify(KEYS.public)
        verify_element(signed, KEYS.public)  # should not raise

    def test_tampered_text_fails(self):
        node = parse_element("<entry><v>x</v></entry>")
        signed = sign_element(node, "owner", KEYS.private)
        node.find("v").set_text("tampered")
        assert not signed.verify(KEYS.public)
        with pytest.raises(AuthenticationError):
            verify_element(signed, KEYS.public, context="test")

    def test_tampered_attribute_fails(self):
        node = parse_element('<entry id="1"/>')
        signed = sign_element(node, "owner", KEYS.private)
        node.attributes["id"] = "2"
        assert not signed.verify(KEYS.public)

    def test_wrong_key_fails(self):
        node = parse_element("<entry/>")
        signed = sign_element(node, "owner", KEYS.private)
        assert not signed.verify(OTHER.public)

    def test_attribute_order_irrelevant(self):
        a = parse_element('<e x="1" y="2"/>')
        b = parse_element('<e y="2" x="1"/>')
        signed = sign_element(a, "owner", KEYS.private)
        resigned = sign_element(b, "owner", KEYS.private)
        assert signed.signature == resigned.signature


class TestManifest:
    def test_sign_and_verify_portions(self):
        root = parse_element(
            "<reg><entry>one</entry><entry>two</entry></reg>")
        portions = root.find_all("entry")
        manifest = sign_portions(portions, "owner", KEYS.private)
        assert len(manifest.references) == 2
        for portion in portions:
            assert verify_portion(manifest, portion, KEYS.public)

    def test_unsigned_portion_fails(self):
        root = parse_element("<reg><entry>one</entry><x/></reg>")
        manifest = sign_portions(root.find_all("entry"), "owner",
                                 KEYS.private)
        assert not verify_portion(manifest, root.find("x"), KEYS.public)

    def test_tampered_portion_fails(self):
        root = parse_element("<reg><entry>one</entry></reg>")
        portion = root.find("entry")
        manifest = sign_portions([portion], "owner", KEYS.private)
        portion.set_text("changed")
        assert not verify_portion(manifest, portion, KEYS.public)

    def test_reference_lookup(self):
        root = parse_element("<reg><entry>one</entry></reg>")
        manifest = sign_portions(root.find_all("entry"), "owner",
                                 KEYS.private)
        assert manifest.reference_for("/reg[1]/entry[1]") is not None
        assert manifest.reference_for("/nowhere[1]") is None
