"""Tests for authorized-view computation."""

from repro.core.credentials import anyone, has_role
from repro.core.subjects import Role, Subject
from repro.merkle.xml_merkle import is_pruned_marker
from repro.xmldb.parser import parse
from repro.xmldb.serializer import serialize
from repro.xmlsec.authorx import (
    Privilege,
    XmlPolicyBase,
    xml_deny,
    xml_grant,
)
from repro.xmlsec.views import compute_view, visible_element_count

DOC = parse("""<hospital>
  <record id="r1"><name>Alice</name><diagnosis>flu</diagnosis>
    <ssn>123</ssn></record>
  <record id="r2"><name>Bob</name><diagnosis>cold</diagnosis>
    <ssn>456</ssn></record>
</hospital>""", name="records")

DOCTOR = Subject("dr", roles={Role("doctor")})
NURSE = Subject("nn", roles={Role("nurse")})
STRANGER = Subject("zz")

BASE = XmlPolicyBase([
    xml_grant(has_role("doctor"), "/hospital"),
    xml_deny(anyone(), "//ssn"),
    xml_grant(has_role("nurse"), "//record/name"),
])


class TestViewShapes:
    def test_doctor_sees_everything_but_ssn(self):
        view, stats = compute_view(BASE, DOCTOR, "records", DOC)
        text = serialize(view)
        assert "Alice" in text and "flu" in text
        assert "123" not in text and "ssn" not in text
        assert stats.pruned_subtrees == 2

    def test_nurse_gets_connectors(self):
        view, stats = compute_view(BASE, NURSE, "records", DOC)
        text = serialize(view)
        assert "Alice" in text and "Bob" in text
        assert "flu" not in text and "123" not in text
        # record elements survive as connectors without attributes
        assert 'id="r1"' not in text
        assert stats.connector_elements >= 3  # hospital + 2 records

    def test_stranger_sees_nothing(self):
        view, _stats = compute_view(BASE, STRANGER, "records", DOC)
        assert view is None

    def test_view_is_subset_of_document(self):
        view, _stats = compute_view(BASE, DOCTOR, "records", DOC)
        original_texts = {n.text for n in DOC.iter()}
        for node in view.iter():
            if node.text:
                assert node.text in original_texts

    def test_original_document_untouched(self):
        before = serialize(DOC)
        compute_view(BASE, DOCTOR, "records", DOC)
        assert serialize(DOC) == before


class TestMarkers:
    def test_markers_mark_pruned_slots(self):
        view, _stats = compute_view(BASE, DOCTOR, "records", DOC,
                                    with_markers=True)
        markers = [n for n in view.iter() if is_pruned_marker(n)]
        assert {m.attributes["path"] for m in markers} == {
            "/hospital[1]/record[1]/ssn[1]",
            "/hospital[1]/record[2]/ssn[1]",
        }

    def test_no_markers_by_default(self):
        view, _stats = compute_view(BASE, DOCTOR, "records", DOC)
        assert not any(is_pruned_marker(n) for n in view.iter())

    def test_all_pruned_returns_none(self):
        view, _stats = compute_view(BASE, STRANGER, "records", DOC,
                                    with_markers=True)
        assert view is None


class TestNavigate:
    def test_navigate_strips_content(self):
        base = XmlPolicyBase([
            xml_grant(anyone(), "/hospital",
                      privilege=Privilege.NAVIGATE)])
        view, stats = compute_view(base, STRANGER, "records", DOC)
        text = serialize(view)
        assert "record" in text
        assert "Alice" not in text and 'id=' not in text
        assert stats.navigate_elements == DOC.size()


class TestCounts:
    def test_visible_element_count(self):
        assert visible_element_count(BASE, DOCTOR, "records", DOC) == \
            DOC.size() - 2  # everything minus the two ssn leaves
        assert visible_element_count(BASE, STRANGER, "records", DOC) == 0

    def test_stats_totals(self):
        _view, stats = compute_view(BASE, DOCTOR, "records", DOC)
        assert stats.total_elements == DOC.size()
        assert (stats.read_elements + stats.pruned_subtrees
                == DOC.size())
