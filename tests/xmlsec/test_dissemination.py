"""Tests for secure and selective dissemination."""

from repro.core.credentials import anyone, has_role
from repro.core.subjects import Role, Subject
from repro.crypto.keys import KeyStore
from repro.xmldb.parser import parse
from repro.xmldb.serializer import serialize
from repro.xmlsec.authorx import XmlPolicyBase, xml_deny, xml_grant
from repro.xmlsec.dissemination import (
    Disseminator,
    configuration_key_id,
    open_packet,
    subject_can_unlock,
)

DOC = parse("""<hospital>
  <record id="r1"><name>Alice</name><diagnosis>flu</diagnosis>
    <ssn>123</ssn></record>
  <record id="r2"><name>Bob</name><diagnosis>cold</diagnosis>
    <ssn>456</ssn></record>
</hospital>""", name="records")

DOCTOR = Subject("dr", roles={Role("doctor")})
NURSE = Subject("nn", roles={Role("nurse")})
STRANGER = Subject("zz")


def make_base() -> XmlPolicyBase:
    return XmlPolicyBase([
        xml_grant(has_role("doctor"), "/hospital"),
        xml_deny(anyone(), "//ssn"),
        xml_grant(has_role("nurse"), "//record/name"),
    ])


def receive(disseminator, distributor, packet, who, subject):
    store = KeyStore(f"rx-{who}")
    for key in distributor.grant(who).keys:
        store.import_key(key)
    return open_packet(packet, store)


class TestConfigurations:
    def test_key_id_deterministic(self):
        config = frozenset({(1, frozenset({2}))})
        assert configuration_key_id(config) == configuration_key_id(config)

    def test_empty_configuration_reserved(self):
        assert configuration_key_id(frozenset()) == "cfg:none"

    def test_key_count_scales_with_configs_not_subjects(self):
        base = make_base()
        disseminator = Disseminator(base)
        disseminator.package("records", DOC)
        # grant-doctor / grant-doctor+grant-nurse / denied-ssn: 3 configs
        assert disseminator.key_count() <= 3

    def test_subject_can_unlock_respects_denies(self):
        base = make_base()
        disseminator = Disseminator(base)
        configurations = disseminator.configurations_of("records", DOC)
        ssn_nodes = [n for n in DOC.iter() if n.tag == "ssn"]
        for node in ssn_nodes:
            config = configurations[id(node)]
            assert not subject_can_unlock(base, DOCTOR, config)


class TestEndToEnd:
    def test_doctor_receives_view_without_ssn(self):
        base = make_base()
        disseminator = Disseminator(base)
        packet = disseminator.package("records", DOC)
        distributor = disseminator.distributor(
            {"dr": DOCTOR, "nn": NURSE, "zz": STRANGER})
        received = receive(disseminator, distributor, packet, "dr",
                           DOCTOR)
        text = serialize(received)
        assert "Alice" in text and "flu" in text
        assert "123" not in text

    def test_nurse_receives_names_with_connectors(self):
        base = make_base()
        disseminator = Disseminator(base)
        packet = disseminator.package("records", DOC)
        distributor = disseminator.distributor(
            {"dr": DOCTOR, "nn": NURSE})
        received = receive(disseminator, distributor, packet, "nn", NURSE)
        text = serialize(received)
        assert "Alice" in text and "Bob" in text
        assert "flu" not in text and "123" not in text

    def test_stranger_receives_nothing(self):
        base = make_base()
        disseminator = Disseminator(base)
        packet = disseminator.package("records", DOC)
        distributor = disseminator.distributor({"zz": STRANGER})
        assert receive(disseminator, distributor, packet, "zz",
                       STRANGER) is None

    def test_sibling_order_preserved(self):
        base = make_base()
        disseminator = Disseminator(base)
        packet = disseminator.package("records", DOC)
        distributor = disseminator.distributor({"dr": DOCTOR})
        received = receive(disseminator, distributor, packet, "dr",
                           DOCTOR)
        text = serialize(received)
        assert text.index("Alice") < text.index("flu") \
            < text.index("Bob") < text.index("cold")

    def test_packet_is_single_copy(self):
        # One packet serves every subject: block count is configuration
        # count, not per-subject.
        base = make_base()
        disseminator = Disseminator(base)
        packet = disseminator.package("records", DOC)
        assert packet.configuration_count == len(packet.blocks)
        assert packet.total_bytes() > 0

    def test_keys_withheld_for_denied_config(self):
        base = make_base()
        disseminator = Disseminator(base)
        disseminator.package("records", DOC)
        entitled = disseminator.entitled_key_ids(DOCTOR)
        assert "cfg:none" not in entitled
        # SSN config key must not be among the doctor's keys.
        configurations = disseminator._configurations
        for key_id in entitled:
            assert subject_can_unlock(base, DOCTOR,
                                      configurations[key_id])
