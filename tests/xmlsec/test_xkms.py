"""Tests for the XKMS-style key information service."""

import pytest

from repro.core.errors import AuthenticationError, KeyManagementError
from repro.crypto.rsa import generate_keypair
from repro.xmlsec.xkms import (
    KeyInformationService,
    RegistrationRequest,
    make_registration,
)

ALICE = generate_keypair(bits=256, seed=61)
MALLORY = generate_keypair(bits=256, seed=62)


def service() -> KeyInformationService:
    return KeyInformationService(key_seed=63)


class TestRegistration:
    def test_register_and_locate(self):
        xkms = service()
        binding = xkms.register(make_registration("alice", ALICE))
        assert xkms.locate("alice") == binding
        assert binding.public_key == ALICE.public

    def test_binding_signed_by_service(self):
        xkms = service()
        binding = xkms.register(make_registration("alice", ALICE))
        assert binding.verify_issuer(xkms.service_key)
        other = KeyInformationService(key_seed=64)
        assert not binding.verify_issuer(other.service_key)

    def test_proof_of_possession_required(self):
        xkms = service()
        # Mallory claims Alice's *public* key without the private half.
        forged = RegistrationRequest(
            "alice", ALICE.public.n, ALICE.public.e,
            proof_signature=12345)
        with pytest.raises(AuthenticationError):
            xkms.register(forged)

    def test_name_squatting_blocked(self):
        xkms = service()
        xkms.register(make_registration("alice", ALICE))
        with pytest.raises(KeyManagementError):
            xkms.register(make_registration("alice", MALLORY))

    def test_locate_unknown_raises(self):
        with pytest.raises(KeyManagementError):
            service().locate("ghost")


class TestValidationAndRevocation:
    def test_locate_valid_roundtrip(self):
        xkms = service()
        xkms.register(make_registration("alice", ALICE))
        assert xkms.locate_valid("alice") == ALICE.public

    def test_holder_revocation(self):
        xkms = service()
        binding = xkms.register(make_registration("alice", ALICE))
        proof = KeyInformationService.make_revocation("alice",
                                                      ALICE.private)
        xkms.revoke("alice", proof)
        assert not xkms.validate(binding)
        with pytest.raises(AuthenticationError):
            xkms.locate_valid("alice")

    def test_revocation_needs_holder_signature(self):
        xkms = service()
        xkms.register(make_registration("alice", ALICE))
        forged_proof = KeyInformationService.make_revocation(
            "alice", MALLORY.private)
        with pytest.raises(AuthenticationError):
            xkms.revoke("alice", forged_proof)

    def test_rebinding_after_revocation(self):
        xkms = service()
        xkms.register(make_registration("alice", ALICE))
        xkms.revoke("alice", KeyInformationService.make_revocation(
            "alice", ALICE.private))
        fresh = generate_keypair(bits=256, seed=65)
        binding = xkms.register(make_registration("alice", fresh))
        assert xkms.locate_valid("alice") == fresh.public
        assert xkms.validate(binding)


class TestWsaIntegration:
    def test_requestor_bootstraps_trust_via_xkms(self):
        from repro.wsa.actors import ServiceProvider, ServiceRequestor
        from repro.wsa.transport import MessageBus
        from repro.wsa.wsdl import describe

        xkms = service()
        bus = MessageBus()
        provider = ServiceProvider(
            "svc", describe("S", op=(("x",), ("y",))), bus, key_seed=66,
            require_signatures=True)
        provider.implement("op", lambda s, p: {"y": p["x"] + "!"})
        xkms.register(RegistrationRequestFor(provider))

        requestor = ServiceRequestor("alice", bus, key_seed=67)
        provider.trust_requestor("alice", requestor.public_key)
        key = requestor.trust_provider_via(xkms, "svc")
        assert key == provider.public_key
        out = requestor.invoke("svc", "op", {"x": "ping"},
                               sign_request=True)
        assert out["y"] == "ping!"


def RegistrationRequestFor(provider):
    """Register a ServiceProvider's keypair under its endpoint name."""
    return make_registration(provider.name, provider.keys)
