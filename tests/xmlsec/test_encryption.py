"""Tests for XML element encryption."""

import pytest

from repro.core.errors import KeyManagementError
from repro.crypto.keys import KeyStore
from repro.xmldb.parser import parse
from repro.xmldb.serializer import serialize
from repro.xmlsec.encryption import (
    ENCRYPTED_TAG,
    decrypt_available,
    encrypt_portions,
)

XML = """<catalog>
  <product sku="s1"><title>widget</title>
    <wholesalePrice>PRICE-ALPHA</wholesalePrice></product>
  <product sku="s2"><title>gadget</title>
    <wholesalePrice>PRICE-BETA</wholesalePrice></product>
</catalog>"""


def fresh():
    doc = parse(XML)
    keys = KeyStore("vendor")
    keys.create("wholesale-key")
    return doc, keys


class TestEncrypt:
    def test_targets_replaced(self):
        doc, keys = fresh()
        count = encrypt_portions(doc, "//wholesalePrice",
                                 "wholesale-key", keys)
        assert count == 2
        text = serialize(doc)
        assert "PRICE-ALPHA" not in text and "PRICE-BETA" not in text
        assert text.count(ENCRYPTED_TAG) >= 2

    def test_position_preserved(self):
        doc, keys = fresh()
        encrypt_portions(doc, "//title", "wholesale-key", keys)
        first_product = doc.root.find("product")
        assert first_product.element_children[0].tag == ENCRYPTED_TAG
        assert first_product.element_children[1].tag == "wholesalePrice"

    def test_root_cannot_be_encrypted(self):
        doc, keys = fresh()
        with pytest.raises(KeyManagementError):
            encrypt_portions(doc, "/catalog", "wholesale-key", keys)

    def test_cleartext_rest_untouched(self):
        doc, keys = fresh()
        encrypt_portions(doc, "//wholesalePrice", "wholesale-key", keys)
        assert "widget" in serialize(doc)


class TestDecrypt:
    def test_roundtrip(self):
        doc, keys = fresh()
        encrypt_portions(doc, "//wholesalePrice", "wholesale-key", keys)
        decrypted, remaining = decrypt_available(doc, keys)
        assert (decrypted, remaining) == (2, 0)
        original = parse(XML)
        assert doc.root.structurally_equal(original.root)

    def test_without_key_nothing_decrypts(self):
        doc, keys = fresh()
        encrypt_portions(doc, "//wholesalePrice", "wholesale-key", keys)
        stranger = KeyStore("stranger")
        decrypted, remaining = decrypt_available(doc, stranger)
        assert (decrypted, remaining) == (0, 2)
        assert "PRICE-ALPHA" not in serialize(doc)

    def test_partial_keys_partial_decrypt(self):
        doc, keys = fresh()
        keys.create("title-key")
        encrypt_portions(doc, "//wholesalePrice", "wholesale-key", keys)
        encrypt_portions(doc, "//title", "title-key", keys)
        partial = KeyStore("partial")
        partial.import_key(keys.get("title-key"))
        decrypted, remaining = decrypt_available(doc, partial)
        assert decrypted == 2 and remaining == 2
        text = serialize(doc)
        assert "widget" in text and "PRICE-ALPHA" not in text

    def test_nested_super_encryption_unwinds(self):
        doc, keys = fresh()
        keys.create("outer-key")
        encrypt_portions(doc, "//wholesalePrice", "wholesale-key", keys)
        encrypt_portions(doc, "//product", "outer-key", keys)
        decrypted, remaining = decrypt_available(doc, keys)
        assert remaining == 0
        assert doc.root.structurally_equal(parse(XML).root)
