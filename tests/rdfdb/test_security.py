"""Tests for semantic-level RDF access control."""

from repro.core.mls import PUBLIC, Label, Level
from repro.rdfdb.model import RDF, RDFS, Namespace, triple
from repro.rdfdb.containers import create_container, membership_property
from repro.rdfdb.model import Literal, Triple
from repro.rdfdb.reification import reify
from repro.rdfdb.security import SecureRdfStore

EX = Namespace("http://ex/")
SECRET = Label(Level.SECRET)
CLEARED = Label(Level.SECRET)
UNCLEARED = Label(Level.UNCLASSIFIED)


def spy_store() -> tuple[SecureRdfStore, Triple]:
    store = SecureRdfStore()
    secret_fact = triple(EX.alice, EX.worksFor, EX.cia)
    store.add(triple(EX.alice, RDF.type, EX.Person))
    store.add(secret_fact)
    store.classify(secret_fact, SECRET)
    return store, secret_fact


class TestStoredTripleFiltering:
    def test_uncleared_reader_filtered(self):
        store, secret_fact = spy_store()
        visible = store.query(UNCLEARED)
        assert secret_fact not in visible
        assert len(visible) == 1

    def test_cleared_reader_sees_all(self):
        store, secret_fact = spy_store()
        assert secret_fact in store.query(CLEARED)

    def test_pattern_classification(self):
        store = SecureRdfStore()
        store.add(triple(EX.a, EX.salary, 100))
        store.add(triple(EX.b, EX.salary, 200))
        store.add(triple(EX.a, EX.name, "A"))
        touched = store.classify_pattern(SECRET, predicate=EX.salary)
        assert touched == 2
        assert len(store.query(UNCLEARED)) == 1


class TestInferenceEnforcement:
    def build(self) -> SecureRdfStore:
        store = SecureRdfStore()
        secret_fact = triple(EX.alice, EX.worksFor, EX.cia)
        store.add(secret_fact)
        store.classify(secret_fact, SECRET)
        store.add(triple(EX.worksFor, RDFS.domain, EX.Employee))
        return store

    def test_semantic_mode_hides_entailments_of_secrets(self):
        store = self.build()
        results = store.query(UNCLEARED, infer=True, semantic=True)
        assert triple(EX.alice, RDF.type, EX.Employee) not in results

    def test_naive_mode_leaks_entailments(self):
        store = self.build()
        results = store.query(UNCLEARED, infer=True, semantic=False)
        assert triple(EX.alice, RDF.type, EX.Employee) in results

    def test_leak_report(self):
        store = self.build()
        leaks = store.leaked_by_syntactic_enforcement(UNCLEARED)
        assert triple(EX.alice, RDF.type, EX.Employee) in leaks

    def test_cleared_reader_gets_entailments(self):
        store = self.build()
        results = store.query(CLEARED, infer=True, semantic=True)
        assert triple(EX.alice, RDF.type, EX.Employee) in results

    def test_semantic_labels_take_cheapest_derivation(self):
        # The same fact derivable from a public chain stays public.
        store = SecureRdfStore()
        secret_fact = triple(EX.alice, RDF.type, EX.Spy)
        store.add(secret_fact)
        store.classify(secret_fact, SECRET)
        store.add(triple(EX.Spy, RDFS.subClassOf, EX.Person))
        store.add(triple(EX.alice, RDF.type, EX.Doctor))
        store.add(triple(EX.Doctor, RDFS.subClassOf, EX.Person))
        labels = store.semantic_labels()
        derived = triple(EX.alice, RDF.type, EX.Person)
        assert labels[derived] == PUBLIC


class TestReificationProtection:
    def test_reification_co_classified(self):
        store, secret_fact = spy_store()
        reify(store.store, secret_fact)
        store.classify(secret_fact, SECRET)  # re-run with co-protection
        assert store.reification_leaks(UNCLEARED) == []

    def test_leak_detected_without_co_protection(self):
        store, secret_fact = spy_store()
        reify(store.store, secret_fact)
        # No re-classification: the quadruple stays at default PUBLIC.
        leaks = store.reification_leaks(UNCLEARED)
        assert len(leaks) >= 3

    def test_cleared_reader_not_reported(self):
        store, secret_fact = spy_store()
        reify(store.store, secret_fact)
        assert store.reification_leaks(CLEARED) == []


class TestContainerProtection:
    def test_container_classified_atomically(self):
        store = SecureRdfStore()
        node = create_container(store.store, "Seq",
                                [Literal("a"), Literal("b")])
        touched = store.classify_container(node, SECRET)
        assert touched == 3  # type triple + two memberships
        visible = store.query(UNCLEARED)
        assert all(t.subject != node for t in visible)

    def test_partial_protection_leaves_detectable_gap(self):
        store = SecureRdfStore()
        node = create_container(store.store, "Seq",
                                [Literal("a"), Literal("b"),
                                 Literal("c")])
        store.classify(Triple(node, membership_property(2),
                              Literal("b")), SECRET,
                       protect_reifications=False)
        from repro.rdfdb.containers import read_container
        from repro.rdfdb.store import TripleStore
        visible = TripleStore(store.query(UNCLEARED))
        view = read_container(visible, node)
        assert view.gaps == (2,)


class TestContexts:
    def test_context_reclassifies_while_active(self):
        store = SecureRdfStore()
        report = triple(EX.report, EX.status, "troop positions")
        store.add(report)
        store.add_context_rule(report, "wartime", SECRET)
        store.set_context("wartime", True)
        assert report not in store.query(UNCLEARED)
        store.set_context("wartime", False)
        assert report in store.query(UNCLEARED)

    def test_inactive_context_uses_base_label(self):
        store = SecureRdfStore()
        fact = triple(EX.x, EX.p, EX.y)
        store.add(fact, label=SECRET)
        store.add_context_rule(fact, "amnesty", PUBLIC)
        assert fact not in store.query(UNCLEARED)
        store.set_context("amnesty", True)
        assert fact in store.query(UNCLEARED)

    def test_active_contexts_tracked(self):
        store = SecureRdfStore()
        store.set_context("wartime", True)
        assert store.active_contexts() == frozenset({"wartime"})
