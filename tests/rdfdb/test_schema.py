"""Tests for RDFS inference."""

from repro.rdfdb.model import RDF, RDFS, Namespace, triple
from repro.rdfdb.schema import derivation_supports, rdfs_closure
from repro.rdfdb.store import TripleStore

EX = Namespace("http://ex/")


def closure_of(*triples):
    store = TripleStore(triples)
    closed, derived = rdfs_closure(store)
    return store, closed, derived


class TestClosureRules:
    def test_rdfs9_type_propagation(self):
        _store, closed, derived = closure_of(
            triple(EX.alice, RDF.type, EX.Doctor),
            triple(EX.Doctor, RDFS.subClassOf, EX.Person))
        assert triple(EX.alice, RDF.type, EX.Person) in closed
        assert len(derived) == 1

    def test_rdfs11_subclass_transitivity(self):
        _store, closed, _ = closure_of(
            triple(EX.A, RDFS.subClassOf, EX.B),
            triple(EX.B, RDFS.subClassOf, EX.C))
        assert triple(EX.A, RDFS.subClassOf, EX.C) in closed

    def test_rdfs7_subproperty(self):
        _store, closed, _ = closure_of(
            triple(EX.alice, EX.manages, EX.bob),
            triple(EX.manages, RDFS.subPropertyOf, EX.worksWith))
        assert triple(EX.alice, EX.worksWith, EX.bob) in closed

    def test_rdfs5_subproperty_transitivity(self):
        _store, closed, _ = closure_of(
            triple(EX.p, RDFS.subPropertyOf, EX.q),
            triple(EX.q, RDFS.subPropertyOf, EX.r))
        assert triple(EX.p, RDFS.subPropertyOf, EX.r) in closed

    def test_rdfs2_domain(self):
        _store, closed, _ = closure_of(
            triple(EX.treats, RDFS.domain, EX.Doctor),
            triple(EX.alice, EX.treats, EX.bob))
        assert triple(EX.alice, RDF.type, EX.Doctor) in closed

    def test_rdfs3_range(self):
        _store, closed, _ = closure_of(
            triple(EX.treats, RDFS.range, EX.Patient),
            triple(EX.alice, EX.treats, EX.bob))
        assert triple(EX.bob, RDF.type, EX.Patient) in closed

    def test_range_does_not_type_literals(self):
        _store, closed, _ = closure_of(
            triple(EX.name, RDFS.range, EX.Name),
            triple(EX.alice, EX.name, "Alice"))
        assert not closed.match(None, RDF.type, EX.Name)

    def test_multi_step_chains(self):
        _store, closed, _ = closure_of(
            triple(EX.alice, RDF.type, EX.A),
            triple(EX.A, RDFS.subClassOf, EX.B),
            triple(EX.B, RDFS.subClassOf, EX.C),
            triple(EX.C, RDFS.subClassOf, EX.D))
        assert triple(EX.alice, RDF.type, EX.D) in closed

    def test_input_store_unchanged(self):
        store, closed, derived = closure_of(
            triple(EX.alice, RDF.type, EX.A),
            triple(EX.A, RDFS.subClassOf, EX.B))
        assert len(store) == 2
        assert len(closed) == 3

    def test_closure_idempotent(self):
        _store, closed, _ = closure_of(
            triple(EX.alice, RDF.type, EX.A),
            triple(EX.A, RDFS.subClassOf, EX.B))
        reclosed, rederived = rdfs_closure(closed)
        assert len(reclosed) == len(closed)
        assert rederived == []


class TestDerivationSupports:
    def test_rdfs9_support_found(self):
        store = TripleStore([
            triple(EX.alice, RDF.type, EX.Doctor),
            triple(EX.Doctor, RDFS.subClassOf, EX.Person)])
        closed, _ = rdfs_closure(store)
        supports = derivation_supports(
            closed, triple(EX.alice, RDF.type, EX.Person))
        assert len(supports) == 1
        assert triple(EX.alice, RDF.type, EX.Doctor) in supports[0]

    def test_multiple_supports(self):
        store = TripleStore([
            triple(EX.alice, RDF.type, EX.Doctor),
            triple(EX.Doctor, RDFS.subClassOf, EX.Person),
            triple(EX.alice, RDF.type, EX.Pilot),
            triple(EX.Pilot, RDFS.subClassOf, EX.Person)])
        closed, _ = rdfs_closure(store)
        supports = derivation_supports(
            closed, triple(EX.alice, RDF.type, EX.Person))
        assert len(supports) == 2

    def test_subproperty_support(self):
        store = TripleStore([
            triple(EX.alice, EX.manages, EX.bob),
            triple(EX.manages, RDFS.subPropertyOf, EX.worksWith)])
        closed, _ = rdfs_closure(store)
        supports = derivation_supports(
            closed, triple(EX.alice, EX.worksWith, EX.bob))
        assert supports
