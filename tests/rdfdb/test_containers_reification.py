"""Tests for RDF containers and reification."""

import pytest

from repro.core.errors import ConfigurationError
from repro.rdfdb.containers import (
    container_nodes,
    create_container,
    membership_index,
    membership_property,
    read_container,
)
from repro.rdfdb.model import RDF, Literal, Namespace, Triple, triple
from repro.rdfdb.reification import (
    described_statement,
    is_reification_node,
    reifications_of,
    reify,
)
from repro.rdfdb.store import TripleStore

EX = Namespace("http://ex/")


class TestContainers:
    def test_create_and_read_seq(self):
        store = TripleStore()
        node = create_container(store, "Seq",
                                [Literal("a"), Literal("b")])
        view = read_container(store, node)
        assert view.kind == "Seq"
        assert view.members == (Literal("a"), Literal("b"))
        assert view.intact

    def test_all_kinds(self):
        store = TripleStore()
        for kind in ("Bag", "Seq", "Alt"):
            node = create_container(store, kind, [Literal("x")])
            assert read_container(store, node).kind == kind

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            create_container(TripleStore(), "List", [])

    def test_membership_property_roundtrip(self):
        assert membership_index(membership_property(7)) == 7
        assert membership_index(EX.notMember) is None
        with pytest.raises(ConfigurationError):
            membership_property(0)

    def test_gap_detection(self):
        store = TripleStore()
        node = create_container(store, "Seq",
                                [Literal("a"), Literal("b"),
                                 Literal("c")])
        store.remove(Triple(node, membership_property(2), Literal("b")))
        view = read_container(store, node)
        assert view.gaps == (2,)
        assert not view.intact
        assert view.members == (Literal("a"), Literal("c"))

    def test_container_nodes_enumeration(self):
        store = TripleStore()
        create_container(store, "Bag", [Literal("x")])
        create_container(store, "Alt", [Literal("y")])
        assert len(container_nodes(store)) == 2


class TestReification:
    def test_reify_does_not_assert(self):
        store = TripleStore()
        statement = triple(EX.alice, EX.worksFor, EX.cia)
        reify(store, statement)
        assert statement not in store

    def test_quadruple_shape(self):
        store = TripleStore()
        statement = triple(EX.alice, EX.worksFor, EX.cia)
        node = reify(store, statement)
        assert is_reification_node(store, node)
        assert store.value(node, RDF.subject) == EX.alice
        assert store.value(node, RDF.predicate) == EX.worksFor
        assert store.value(node, RDF.object) == EX.cia

    def test_described_statement_roundtrip(self):
        store = TripleStore()
        statement = triple(EX.alice, EX.worksFor, EX.cia)
        node = reify(store, statement)
        assert described_statement(store, node) == statement

    def test_described_statement_incomplete_is_none(self):
        store = TripleStore()
        node = EX.partial
        store.add(Triple(node, RDF.type, RDF.Statement))
        store.add(Triple(node, RDF.subject, EX.alice))
        assert described_statement(store, node) is None

    def test_reifications_of_finds_all(self):
        store = TripleStore()
        statement = triple(EX.alice, EX.worksFor, EX.cia)
        first = reify(store, statement)
        second = reify(store, statement)
        other = reify(store, triple(EX.bob, EX.worksFor, EX.fbi))
        found = reifications_of(store, statement)
        assert set(found) == {first, second}
        assert other not in found

    def test_annotations_on_statement_node(self):
        store = TripleStore()
        statement = triple(EX.alice, EX.worksFor, EX.cia)
        node = reify(store, statement)
        store.add(Triple(node, EX.assertedBy, EX.informer))
        from repro.rdfdb.reification import reification_triples
        assert len(reification_triples(store, node)) == 5
