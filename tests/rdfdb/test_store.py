"""Tests for the RDF model and triple store."""

import pytest

from repro.core.errors import ConfigurationError
from repro.rdfdb.model import (
    IRI,
    BlankNode,
    Literal,
    Namespace,
    Triple,
    blank,
    triple,
)
from repro.rdfdb.store import TripleStore

EX = Namespace("http://ex/")


class TestTerms:
    def test_iri_local_name(self):
        assert IRI("http://ex/alice").local_name == "alice"
        assert IRI("http://ex/ns#thing").local_name == "thing"
        assert IRI("plain").local_name == "plain"

    def test_invalid_iri_rejected(self):
        with pytest.raises(ConfigurationError):
            IRI("has space")
        with pytest.raises(ConfigurationError):
            IRI("")

    def test_namespace_builders(self):
        assert EX.alice == IRI("http://ex/alice")
        assert EX["with-dash"] == IRI("http://ex/with-dash")

    def test_literal_numbers(self):
        assert Literal.number(42).as_number() == 42.0
        with pytest.raises(ConfigurationError):
            Literal("x").as_number()

    def test_blank_nodes_fresh(self):
        assert blank() != blank()


class TestTripleValidation:
    def test_coercion_in_builder(self):
        t = triple(EX.alice, EX.age, 30)
        assert isinstance(t.object, Literal)
        assert t.object.datatype == "number"
        t2 = triple(EX.alice, EX.name, "Alice")
        assert isinstance(t2.object, Literal)

    def test_literal_subject_rejected(self):
        with pytest.raises(ConfigurationError):
            Triple(Literal("x"), EX.p, EX.o)  # type: ignore[arg-type]

    def test_non_iri_predicate_rejected(self):
        with pytest.raises(ConfigurationError):
            Triple(EX.s, BlankNode("b"), EX.o)  # type: ignore[arg-type]


class TestStore:
    def make(self) -> TripleStore:
        store = TripleStore()
        store.add(triple(EX.alice, EX.knows, EX.bob))
        store.add(triple(EX.alice, EX.age, 30))
        store.add(triple(EX.bob, EX.knows, EX.alice))
        return store

    def test_add_deduplicates(self):
        store = self.make()
        assert not store.add(triple(EX.alice, EX.knows, EX.bob))
        assert len(store) == 3

    def test_contains(self):
        store = self.make()
        assert triple(EX.alice, EX.age, 30) in store
        assert triple(EX.alice, EX.age, 31) not in store

    def test_match_by_each_position(self):
        store = self.make()
        assert len(store.match(subject=EX.alice)) == 2
        assert len(store.match(predicate=EX.knows)) == 2
        assert len(store.match(obj=EX.alice)) == 1

    def test_match_combined(self):
        store = self.make()
        found = store.match(EX.alice, EX.knows, None)
        assert len(found) == 1 and found[0].object == EX.bob

    def test_match_everything(self):
        assert len(self.make().match()) == 3

    def test_insertion_order_preserved(self):
        store = self.make()
        subjects = [t.subject for t in store.match(predicate=EX.knows)]
        assert subjects == [EX.alice, EX.bob]

    def test_remove(self):
        store = self.make()
        assert store.remove(triple(EX.alice, EX.age, 30))
        assert not store.remove(triple(EX.alice, EX.age, 30))
        assert len(store) == 2
        assert store.match(EX.alice, EX.age, None) == []

    def test_subjects_objects_value(self):
        store = self.make()
        assert store.subjects(predicate=EX.knows) == [EX.alice, EX.bob]
        assert store.objects(EX.alice, EX.knows) == [EX.bob]
        assert store.value(EX.alice, EX.age) == Literal.number(30)
        assert store.value(EX.alice, EX.nothing) is None

    def test_copy_is_independent(self):
        store = self.make()
        copied = store.copy()
        copied.add(triple(EX.x, EX.y, EX.z))
        assert len(store) == 3 and len(copied) == 4

    def test_add_all(self):
        store = TripleStore()
        added = store.add_all([triple(EX.a, EX.p, EX.b),
                               triple(EX.a, EX.p, EX.b)])
        assert added == 1
