"""Tests for labelled ontologies and secure integration."""

import pytest

from repro.core.credentials import CredentialType
from repro.core.errors import ConfigurationError
from repro.core.mls import PUBLIC, Label, Level
from repro.core.subjects import Subject
from repro.rdfdb.model import Namespace, triple
from repro.rdfdb.security import SecureRdfStore
from repro.semweb.integration import SecureIntegrator, SourceBinding
from repro.semweb.ontology import (
    Ontology,
    OntologyPolicyRule,
    Term,
    policy_from_ontology,
)

EX = Namespace("http://ex/")
SECRET = Label(Level.SECRET)
UNCLEARED = Label(Level.UNCLASSIFIED)


def medical_ontology() -> Ontology:
    ontology = Ontology("medical")
    ontology.add_term("record")
    ontology.add_term("medical-record", parents=["record"])
    ontology.add_term("diagnosis", parents=["medical-record"])
    ontology.add_term("psych-eval", parents=["diagnosis"],
                      label=SECRET)
    ontology.add_term("billing", parents=["record"])
    return ontology


class TestOntology:
    def test_ancestors_and_descendants(self):
        ontology = medical_ontology()
        assert Term("record") in ontology.ancestors("psych-eval")
        assert Term("psych-eval") in ontology.descendants("record")
        assert ontology.is_a("diagnosis", "record")
        assert not ontology.is_a("billing", "medical-record")

    def test_duplicate_and_unknown_terms_rejected(self):
        ontology = medical_ontology()
        with pytest.raises(ConfigurationError):
            ontology.add_term("record")
        with pytest.raises(ConfigurationError):
            ontology.add_term("x", parents=["ghost"])
        with pytest.raises(ConfigurationError):
            ontology.ancestors("ghost")

    def test_effective_label_joins_ancestors(self):
        ontology = medical_ontology()
        ontology.labels.classify(Term("medical-record"),
                                 Label(Level.CONFIDENTIAL))
        effective = ontology.effective_label("diagnosis")
        assert effective.level is Level.CONFIDENTIAL
        # psych-eval keeps its own SECRET, joined with ancestors.
        assert ontology.effective_label("psych-eval").level is Level.SECRET

    def test_readable_terms_filtered(self):
        ontology = medical_ontology()
        readable = {t.name for t in ontology.readable_terms(UNCLEARED)}
        assert "psych-eval" not in readable
        assert "billing" in readable

    def test_visible_subtree(self):
        ontology = medical_ontology()
        visible = {t.name for t in
                   ontology.visible_subtree(UNCLEARED, "record")}
        assert visible == {"medical-record", "diagnosis", "billing"}


class TestOntologyDerivedPolicies:
    def test_rules_expand_down_hierarchy(self):
        ontology = medical_ontology()
        expressions = policy_from_ontology(ontology, [
            OntologyPolicyRule("medical-record", "physician")])
        assert "diagnosis" in expressions
        assert "psych-eval" in expressions
        assert "billing" not in expressions

    def test_derived_expression_checks_credentials(self):
        ontology = medical_ontology()
        expressions = policy_from_ontology(ontology, [
            OntologyPolicyRule("medical-record", "physician")])
        physician_type = CredentialType("physician")
        doctor = Subject("dr", credentials=[physician_type.issue()])
        clerk = Subject("clerk")
        assert expressions["diagnosis"].evaluate(doctor)
        assert not expressions["diagnosis"].evaluate(clerk)

    def test_multiple_rules_conjoin(self):
        ontology = medical_ontology()
        expressions = policy_from_ontology(ontology, [
            OntologyPolicyRule("medical-record", "physician"),
            OntologyPolicyRule("diagnosis", "specialist")])
        physician = CredentialType("physician")
        specialist = CredentialType("specialist")
        both = Subject("b", credentials=[physician.issue(),
                                         specialist.issue()])
        only_physician = Subject("p", credentials=[physician.issue()])
        assert expressions["psych-eval"].evaluate(both)
        assert not expressions["psych-eval"].evaluate(only_physician)


class TestSecureIntegration:
    def build(self):
        ontology = Ontology("shared")
        ontology.add_term("diagnosis")
        hospital_store = SecureRdfStore()
        hospital_store.add(triple(EX.alice, EX.hospDiag, "flu"))
        secret = triple(EX.bob, EX.hospDiag, "hiv")
        hospital_store.add(secret)
        hospital_store.classify(secret, SECRET,
                                protect_reifications=False)
        lab_store = SecureRdfStore()
        lab_store.add(triple(EX.carol, EX.labResult, "anemia"))
        integrator = SecureIntegrator(ontology)
        integrator.add_source(SourceBinding(
            "hospital", hospital_store, {"diagnosis": EX.hospDiag}))
        integrator.add_source(SourceBinding(
            "lab", lab_store, {"diagnosis": EX.labResult},
            trust=SECRET))
        return integrator

    def test_query_merges_sources(self):
        integrator = self.build()
        cleared = integrator.query_term(SECRET, "diagnosis")
        assert {r.source for r in cleared} == {"hospital", "lab"}
        assert len(cleared) == 3

    def test_source_labels_respected(self):
        integrator = self.build()
        public_results = integrator.query_term(UNCLEARED, "diagnosis")
        texts = [str(r.triple) for r in public_results]
        assert not any("hiv" in t for t in texts)

    def test_source_trust_joins_labels(self):
        integrator = self.build()
        public_results = integrator.query_term(UNCLEARED, "diagnosis")
        # The lab source is SECRET-rated: its public triple must not
        # reach an uncleared requester.
        assert all(r.source == "hospital" for r in public_results)

    def test_leakage_report(self):
        integrator = self.build()
        leaked = integrator.leakage_without_trust_join(UNCLEARED,
                                                       "diagnosis")
        assert len(leaked) == 1
        assert leaked[0].source == "lab"

    def test_unknown_term_and_duplicate_source_rejected(self):
        integrator = self.build()
        with pytest.raises(ConfigurationError):
            integrator.query_term(PUBLIC, "ghost-term")
        with pytest.raises(ConfigurationError):
            integrator.add_source(SourceBinding(
                "hospital", SecureRdfStore(), {}))
        with pytest.raises(ConfigurationError):
            integrator.add_source(SourceBinding(
                "new", SecureRdfStore(), {"ghost": EX.p}))
