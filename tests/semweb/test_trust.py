"""Tests for the logic/proof/trust layer."""

import dataclasses

import pytest

from repro.core.errors import AuthenticationError, ConfigurationError
from repro.crypto.rsa import generate_keypair
from repro.semweb.trust import (
    Atom,
    Proof,
    ProofEngine,
    Rule,
    TrustPolicy,
    atom,
    check_proof,
    sign_fact,
)

HOSPITAL = generate_keypair(bits=256, seed=81)
BOARD = generate_keypair(bits=256, seed=82)
MALLORY = generate_keypair(bits=256, seed=83)

RULES = [
    Rule(atom("canRead", "?u", "?d"),
         (atom("doctor", "?u"), atom("record", "?d")),
         name="doctors-read-records"),
    Rule(atom("doctor", "?u"),
         (atom("licensed", "?u"), atom("employed", "?u")),
         name="licensed-employees-are-doctors"),
]


def build_engine() -> ProofEngine:
    facts = [
        sign_fact(atom("licensed", "grey"), "board", BOARD.private),
        sign_fact(atom("employed", "grey"), "hospital",
                  HOSPITAL.private),
        sign_fact(atom("record", "r17"), "hospital", HOSPITAL.private),
    ]
    return ProofEngine(RULES, facts)


def build_trust() -> TrustPolicy:
    trust = TrustPolicy()
    trust.trust("board", BOARD.public, ["licensed"])
    trust.trust("hospital", HOSPITAL.public, ["employed", "record"])
    return trust


class TestProver:
    def test_proves_derived_goal(self):
        proof = build_engine().prove(atom("canRead", "grey", "r17"))
        assert proof is not None
        assert proof.rule is not None
        assert proof.rule.name == "doctors-read-records"
        assert proof.size() == 5  # goal, doctor, 2 leaves, record

    def test_unprovable_goal_is_none(self):
        engine = build_engine()
        assert engine.prove(atom("canRead", "mallory", "r17")) is None
        assert engine.prove(atom("canRead", "grey", "r99")) is None

    def test_leaf_goal_uses_evidence(self):
        proof = build_engine().prove(atom("record", "r17"))
        assert proof is not None
        assert proof.rule is None
        assert proof.evidence is not None

    def test_non_ground_goal_rejected(self):
        with pytest.raises(ConfigurationError):
            build_engine().prove(atom("canRead", "?u", "r17"))

    def test_leaves_enumeration(self):
        proof = build_engine().prove(atom("canRead", "grey", "r17"))
        predicates = sorted(l.conclusion.predicate
                            for l in proof.leaves())
        assert predicates == ["employed", "licensed", "record"]


class TestProofChecking:
    def test_valid_proof_accepted(self):
        proof = build_engine().prove(atom("canRead", "grey", "r17"))
        check_proof(proof, build_trust(), RULES)  # does not raise

    def test_forged_leaf_signature_rejected(self):
        proof = build_engine().prove(atom("canRead", "grey", "r17"))
        # Replace a leaf with one signed by Mallory claiming to be the
        # board.
        forged_leaf = Proof(
            atom("licensed", "grey"), None, (),
            dataclasses.replace(
                sign_fact(atom("licensed", "grey"), "board",
                          MALLORY.private)))
        tampered = _replace_leaf(proof, "licensed", forged_leaf)
        with pytest.raises(AuthenticationError):
            check_proof(tampered, build_trust(), RULES)

    def test_non_authoritative_signer_rejected(self):
        # The hospital signs a licensing fact — but only the board is
        # authoritative for 'licensed'.
        facts = [
            sign_fact(atom("licensed", "grey"), "hospital",
                      HOSPITAL.private),
            sign_fact(atom("employed", "grey"), "hospital",
                      HOSPITAL.private),
            sign_fact(atom("record", "r17"), "hospital",
                      HOSPITAL.private),
        ]
        engine = ProofEngine(RULES, facts)
        proof = engine.prove(atom("canRead", "grey", "r17"))
        with pytest.raises(AuthenticationError) as excinfo:
            check_proof(proof, build_trust(), RULES)
        assert "authoritative" in str(excinfo.value)

    def test_invented_rule_rejected(self):
        # A proof using a rule the checker does not know is refused —
        # the 'forged proof' attack.
        bogus_rule = Rule(atom("canRead", "?u", "?d"),
                          (atom("record", "?d"),), name="anyone-reads")
        engine = ProofEngine([bogus_rule] + RULES, [
            sign_fact(atom("record", "r17"), "hospital",
                      HOSPITAL.private)])
        proof = engine.prove(atom("canRead", "mallory", "r17"))
        assert proof is not None
        with pytest.raises(AuthenticationError):
            check_proof(proof, build_trust(), RULES)

    def test_mismatched_conclusion_rejected(self):
        proof = build_engine().prove(atom("canRead", "grey", "r17"))
        # Swap the conclusion: claims access to a different record.
        tampered = dataclasses.replace(
            proof, conclusion=atom("canRead", "grey", "r99"))
        with pytest.raises(AuthenticationError):
            check_proof(tampered, build_trust(), RULES)

    def test_conflicting_trust_key_rejected(self):
        trust = build_trust()
        with pytest.raises(ConfigurationError):
            trust.trust("board", MALLORY.public, ["licensed"])


def _replace_leaf(proof: Proof, predicate: str,
                  replacement: Proof) -> Proof:
    if proof.rule is None:
        if proof.conclusion.predicate == predicate:
            return replacement
        return proof
    children = tuple(_replace_leaf(child, predicate, replacement)
                     for child in proof.children)
    return dataclasses.replace(proof, children=children)
