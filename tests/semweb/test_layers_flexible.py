"""Tests for the layered stack and the flexible security dial."""

import pytest

from repro.core.errors import ConfigurationError
from repro.semweb.flexible import (
    ALL_ATTACK_CLASSES,
    FlexiblePolicy,
    Measure,
    SituationalPolicy,
)
from repro.semweb.layers import ATTACK_CORPUS, LayerName, LayerStack


class TestLayerStack:
    def test_end_to_end_requires_all_layers(self):
        stack = LayerStack.all_secured()
        assert stack.end_to_end_secure()
        stack.unsecure(LayerName.RDF)
        assert not stack.end_to_end_secure()

    def test_breach_rate_monotone(self):
        stack = LayerStack.none_secured()
        rates = [stack.breach_rate()]
        for layer in LayerName:
            stack.secure(layer)
            rates.append(stack.breach_rate())
        assert rates == sorted(rates, reverse=True)
        assert rates[0] == 1.0 and rates[-1] == 0.0

    def test_attack_surface_targets_unsecured(self):
        stack = LayerStack.all_secured()
        stack.unsecure(LayerName.XML)
        surviving = stack.attack_surface()
        assert surviving
        assert all(a.target is LayerName.XML for a in surviving)

    def test_weakest_unsecured_is_lowest(self):
        stack = LayerStack.all_secured()
        stack.unsecure(LayerName.ONTOLOGY)
        stack.unsecure(LayerName.NETWORK)
        assert stack.weakest_unsecured() is LayerName.NETWORK
        assert LayerStack.all_secured().weakest_unsecured() is None

    def test_undermined_layers(self):
        # "secure TCP/IP built on untrusted communication layers":
        # securing XML above an open network undermines XML.
        stack = LayerStack({LayerName.XML, LayerName.RDF})
        undermined = stack.undermined_layers()
        assert LayerName.XML in undermined
        assert LayerName.RDF in undermined
        assert LayerStack.all_secured().undermined_layers() == []

    def test_corpus_covers_every_layer(self):
        targets = {a.target for a in ATTACK_CORPUS}
        assert targets == set(LayerName)


class TestFlexiblePolicy:
    def test_dial_bounds_checked(self):
        policy = FlexiblePolicy()
        with pytest.raises(ConfigurationError):
            policy.operating_point(101)
        with pytest.raises(ConfigurationError):
            policy.operating_point(-1)

    def test_zero_dial_is_fast_and_risky(self):
        point = FlexiblePolicy().operating_point(0)
        assert point.throughput == 1.0
        assert point.residual_risk == 1.0
        assert point.active_measures == ()

    def test_full_dial_covers_everything(self):
        point = FlexiblePolicy().operating_point(100)
        assert point.residual_risk == 0.0
        assert point.covered_classes == ALL_ATTACK_CLASSES
        assert point.throughput < 1.0

    def test_frontier_monotone(self):
        frontier = FlexiblePolicy().frontier(range(0, 101, 10))
        risks = [p.residual_risk for p in frontier]
        throughputs = [p.throughput for p in frontier]
        assert risks == sorted(risks, reverse=True)
        assert throughputs == sorted(throughputs, reverse=True)

    def test_thirty_percent_security_means_something(self):
        # The paper's "say thirty percent security (whatever that means)"
        # now has a meaning: the measures active at dial 30.
        point = FlexiblePolicy().operating_point(30)
        assert "transport-encryption" in point.active_measures
        assert "inference-control" not in point.active_measures
        assert 0.0 < point.residual_risk < 1.0

    def test_minimal_dial_covering(self):
        policy = FlexiblePolicy()
        dial = policy.minimal_dial_covering({"eavesdropping"})
        assert dial == 10
        dial = policy.minimal_dial_covering({"inference"})
        assert dial == 85
        with pytest.raises(ConfigurationError):
            policy.minimal_dial_covering({"meteor-strike"})

    def test_measure_validation(self):
        with pytest.raises(ConfigurationError):
            Measure("bad", 200, 1.0, frozenset())
        with pytest.raises(ConfigurationError):
            Measure("bad", 10, -1.0, frozenset())


class TestSituationalPolicy:
    def test_default_situations(self):
        situational = SituationalPolicy(FlexiblePolicy())
        assert situational.current == "normal"
        assert situational.dial() == 55

    def test_escalation_changes_operating_point(self):
        situational = SituationalPolicy(FlexiblePolicy())
        relaxed = situational.escalate_to("relaxed")
        wartime = situational.escalate_to("under-attack")
        assert wartime.residual_risk < relaxed.residual_risk
        assert wartime.throughput < relaxed.throughput
        assert wartime.residual_risk == 0.0

    def test_unknown_situation_rejected(self):
        situational = SituationalPolicy(FlexiblePolicy())
        with pytest.raises(ConfigurationError):
            situational.escalate_to("apocalypse")
        with pytest.raises(ConfigurationError):
            SituationalPolicy(FlexiblePolicy(), initial="nope")
