"""Regression: indexes must not serve stale postings after in-place
document edits (they previously answered from build-time state)."""

from repro.xmldb.index import PathIndex, QueryCostModel, indexed_select
from repro.xmldb.model import Document, element
from repro.xmldb.xpath import select_elements


def build_doc():
    return Document(element(
        "hospital", None, None,
        element("record", None, {"id": "r1"},
                element("diagnosis", "flu")),
        element("record", None, {"id": "r2"},
                element("diagnosis", "ok"))), name="h")


class TestIndexStaleness:
    def test_fresh_index_is_not_stale(self):
        doc = build_doc()
        index = PathIndex(doc.root)
        assert not index.stale

    def test_mutations_mark_the_index_stale(self):
        doc = build_doc()
        index = PathIndex(doc.root)
        doc.root.element_children[0].set_attribute("id", "r9")
        assert index.stale
        index.refresh()
        assert not index.stale

    def test_query_after_append_sees_new_element(self):
        doc = build_doc()
        index = PathIndex(doc.root)
        assert len(indexed_select(index, "//record", doc)) == 2
        doc.root.append(element("record", None, {"id": "r3"},
                                element("diagnosis", "flu")))
        got = indexed_select(index, "//record", doc)
        assert len(got) == 3
        assert got == select_elements("//record", doc)

    def test_query_after_attribute_edit_sees_new_value(self):
        doc = build_doc()
        index = PathIndex(doc.root)
        assert len(indexed_select(index, "//record[@id='r1']", doc)) == 1
        doc.root.element_children[0].set_attribute("id", "r9")
        assert indexed_select(index, "//record[@id='r1']", doc) == []
        renamed = indexed_select(index, "//record[@id='r9']", doc)
        assert renamed == select_elements("//record[@id='r9']", doc)
        assert len(renamed) == 1

    def test_query_after_text_edit_sees_new_text(self):
        doc = build_doc()
        index = PathIndex(doc.root)
        assert len(indexed_select(index, "//record[diagnosis='flu']",
                                  doc)) == 1
        doc.root.element_children[1].element_children[0].set_text("flu")
        got = indexed_select(index, "//record[diagnosis='flu']", doc)
        assert len(got) == 2
        assert got == select_elements("//record[diagnosis='flu']", doc)

    def test_query_after_removal_drops_element(self):
        doc = build_doc()
        index = PathIndex(doc.root)
        indexed_select(index, "//record", doc)
        doc.root.remove(doc.root.element_children[0])
        got = indexed_select(index, "//record", doc)
        assert len(got) == 1
        assert got == select_elements("//record", doc)

    def test_refresh_happens_once_per_mutation_burst(self):
        doc = build_doc()
        index = PathIndex(doc.root)
        builds = index.rebuilds
        doc.root.append(element("record"))
        doc.root.append(element("record"))
        indexed_select(index, "//record", doc)
        indexed_select(index, "//record", doc)
        assert index.rebuilds == builds + 1

    def test_cost_model_refreshes_before_estimating(self):
        doc = build_doc()
        index = PathIndex(doc.root)
        model = QueryCostModel(index, doc.size())
        doc.root.append(element("record"))
        strategy, cost = model.estimate("//record")
        assert strategy == "index"
        assert cost == 3
        assert model.run("//record", doc) == select_elements("//record",
                                                             doc)
