"""Tests for the path index and query cost model."""

from hypothesis import given, settings, strategies as st

from repro.datagen.documents import hospital_corpus
from repro.xmldb.index import PathIndex, QueryCostModel, indexed_select
from repro.xmldb.model import Document, Element
from repro.xmldb.parser import parse
from repro.xmldb.xpath import select_elements

DOC = parse("""<hospital>
  <record id="r1"><name>Alice</name><diagnosis>flu</diagnosis></record>
  <record id="r2"><name>Bob</name><diagnosis>cold</diagnosis></record>
  <record id="r3"><name>Ann</name><diagnosis>flu</diagnosis></record>
</hospital>""")
INDEX = PathIndex(DOC.root)


class TestPathIndex:
    def test_by_tag(self):
        assert len(INDEX.by_tag("record")) == 3
        assert INDEX.by_tag("ghost") == []

    def test_by_attribute(self):
        found = INDEX.by_attribute("record", "id", "r2")
        assert len(found) == 1
        assert found[0].find("name").text == "Bob"

    def test_by_child_text(self):
        found = INDEX.by_child_text("record", "diagnosis", "flu")
        assert [r.attributes["id"] for r in found] == ["r1", "r3"]

    def test_entry_count_positive(self):
        assert INDEX.entry_count() > DOC.size()


class TestIndexedSelect:
    def test_simple_tag_matches_engine(self):
        assert indexed_select(INDEX, "//record", DOC) == \
            select_elements("//record", DOC)

    def test_attr_predicate_matches_engine(self):
        query = "//record[@id='r1']"
        assert indexed_select(INDEX, query, DOC) == \
            select_elements(query, DOC)

    def test_child_text_predicate_matches_engine(self):
        query = "//record[diagnosis='flu']"
        assert indexed_select(INDEX, query, DOC) == \
            select_elements(query, DOC)

    def test_fallback_for_complex_queries(self):
        query = "/hospital/record[2]/name"
        assert indexed_select(INDEX, query, DOC) == \
            select_elements(query, DOC)

    def test_fallback_when_root_tag_queried(self):
        query = "//hospital"
        assert indexed_select(INDEX, query, DOC) == \
            select_elements(query, DOC)

    @given(st.sampled_from([
        "//record", "//name", "//diagnosis", "//ghost",
        "//record[@id='r2']", "//record[@id='nope']",
        "//record[diagnosis='flu']", "//record[name='Bob']",
        "//record/name", "/hospital/record", "//record[2]",
        "//record[diagnosis='flu']/name",
    ]))
    @settings(max_examples=40, deadline=None)
    def test_equivalence_on_corpus(self, query):
        corpus = hospital_corpus(15, seed=31)
        index = PathIndex(corpus.root)
        assert indexed_select(index, query, corpus) == \
            select_elements(query, corpus)


class TestCostModel:
    def test_chooses_index_for_indexable(self):
        model = QueryCostModel(INDEX, DOC.size())
        strategy, cost = model.estimate("//record")
        assert strategy == "index"
        assert cost == 3

    def test_chooses_scan_for_complex(self):
        model = QueryCostModel(INDEX, DOC.size())
        strategy, cost = model.estimate("//record/name")
        assert strategy == "scan"
        assert cost == DOC.size()

    def test_run_records_decisions(self):
        model = QueryCostModel(INDEX, DOC.size())
        model.run("//record", DOC)
        model.run("//record/name", DOC)
        assert model.decisions == {"index": 1, "scan": 1}

    def test_run_results_match_engine(self):
        model = QueryCostModel(INDEX, DOC.size())
        for query in ("//record", "//record/name",
                      "//record[@id='r3']"):
            assert model.run(query, DOC) == \
                select_elements(query, DOC)
