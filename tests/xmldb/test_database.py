"""Tests for collections and the XML database."""

import pytest

from repro.core.errors import ConfigurationError, QueryError
from repro.xmldb.database import Collection, XmlDatabase
from repro.xmldb.dtd import Schema
from repro.xmldb.parser import parse


def record_xml(record_id: str, name: str) -> str:
    return (f'<hospital><record id="{record_id}">'
            f'<name>{name}</name></record></hospital>')


class TestCollection:
    def test_insert_text_and_object(self):
        collection = Collection("c")
        collection.insert("d1", record_xml("r1", "Alice"))
        collection.insert("d2", parse(record_xml("r2", "Bob")))
        assert len(collection) == 2
        assert "d1" in collection

    def test_duplicate_id_rejected(self):
        collection = Collection("c")
        collection.insert("d", "<a/>")
        with pytest.raises(ConfigurationError):
            collection.insert("d", "<a/>")

    def test_get_unknown_raises(self):
        with pytest.raises(QueryError):
            Collection("c").get("ghost")

    def test_delete_and_replace(self):
        collection = Collection("c")
        collection.insert("d", "<a/>")
        collection.replace("d", "<b/>")
        assert collection.get("d").root.tag == "b"
        collection.delete("d")
        assert "d" not in collection

    def test_schema_enforced_on_insert(self):
        schema = Schema("a")
        schema.declare("a")
        collection = Collection("c", schema)
        collection.insert("ok", "<a/>")
        with pytest.raises(ConfigurationError):
            collection.insert("bad", "<b/>")

    def test_query_across_documents(self):
        collection = Collection("c")
        collection.insert("d1", record_xml("r1", "Alice"))
        collection.insert("d2", record_xml("r2", "Bob"))
        results = collection.query("//name/text()")
        assert results == [("d1", "Alice"), ("d2", "Bob")]

    def test_validate_all(self):
        schema = Schema("a")
        schema.declare("a", optional_attributes=["k"])
        collection = Collection("c", schema)
        collection.insert("d", "<a/>")
        # Mutate after insert to make it invalid.
        collection.get("d").root.attributes["rogue"] = "x"
        failures = collection.validate_all()
        assert failures and failures[0][0] == "d"


class TestXmlDatabase:
    def test_create_and_query(self):
        database = XmlDatabase()
        database.create_collection("records")
        database.collection("records").insert(
            "d1", record_xml("r1", "Alice"))
        results = database.query("records", "//name/text()")
        assert results == [("d1", "Alice")]

    def test_duplicate_collection_rejected(self):
        database = XmlDatabase()
        database.create_collection("c")
        with pytest.raises(ConfigurationError):
            database.create_collection("c")

    def test_unknown_collection_raises(self):
        with pytest.raises(QueryError):
            XmlDatabase().collection("ghost")

    def test_drop_collection(self):
        database = XmlDatabase()
        database.create_collection("c")
        database.drop_collection("c")
        assert database.collection_names() == []

    def test_metadata_roundtrip(self):
        database = XmlDatabase()
        database.create_collection("c")
        database.set_metadata("c", "policy", "author-x")
        assert database.get_metadata("c", "policy") == "author-x"
        assert database.get_metadata("c", "absent", "dflt") == "dflt"

    def test_total_documents(self):
        database = XmlDatabase()
        database.create_collection("a").insert("1", "<x/>")
        database.create_collection("b").insert("2", "<y/>")
        assert database.total_documents() == 2
