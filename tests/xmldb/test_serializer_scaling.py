"""Serializer scaling: linear cost, unbounded depth, frozen parity.

Regression tests for the writer-style (list-append + single join)
emission: the old f-string concatenation recursed once per level
(RecursionError past ~1000) and re-copied each element's bytes once per
ancestor (O(n·d) on deep chains).
"""

import sys
import time

from repro.snap.frozen import freeze_element
from repro.xmldb.model import Element
from repro.xmldb.parser import parse
from repro.xmldb.serializer import (
    escape_attribute,
    escape_text,
    serialize_element,
)


def reference_serialize(node) -> str:
    """The old recursive formulation, kept tiny, as the semantics oracle
    (only usable on shallow documents)."""
    attrs = "".join(f' {name}="{escape_attribute(value)}"'
                    for name, value in sorted(node.attributes.items()))
    if not node.children:
        return f"<{node.tag}{attrs}/>"
    body = "".join(child if False else (escape_text(child)
                   if isinstance(child, str)
                   else reference_serialize(child))
                   for child in node.children)
    return f"<{node.tag}{attrs}>{body}</{node.tag}>"


def chain(depth: int) -> Element:
    root = Element("n0")
    node = root
    for index in range(1, depth):
        child = Element(f"n{index}", {"i": str(index)})
        node.append(child)
        node = child
    node.append("leaf")
    return root


def bushy(width: int) -> Element:
    root = Element("doc")
    for index in range(width):
        child = Element("item", {"id": str(index)})
        child.append(f"text&{index}")
        root.append(child)
    return root


class TestSemantics:
    def test_matches_the_recursive_reference_on_shallow_documents(self):
        for node in (bushy(50), chain(40),
                     parse("<a x=\"1\"><b>t&amp;t</b><c/>tail</a>").root):
            assert serialize_element(node) == reference_serialize(node)

    def test_frozen_and_mutable_trees_serialize_identically(self):
        for node in (bushy(30), chain(30)):
            assert serialize_element(freeze_element(node)) \
                == serialize_element(node)


class TestScaling:
    def test_depth_far_beyond_the_recursion_limit(self):
        depth = sys.getrecursionlimit() * 3
        text = serialize_element(chain(depth))
        assert text.startswith("<n0><n1 i=\"1\">")
        assert text.endswith(f"</n1></n0>")
        assert text.count("</") == depth

    def test_deep_chain_cost_is_linear_not_quadratic(self):
        """4x the depth must cost well under 16x the time (with slack:
        under 8x).  The quadratic emission failed this by an order of
        magnitude."""
        def measure(depth: int) -> float:
            node = chain(depth)
            serialize_element(node)  # warm-up
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                serialize_element(node)
                best = min(best, time.perf_counter() - start)
            return best
        small, large = measure(1500), measure(6000)
        assert large < small * 8, (small, large)

    def test_wide_document_cost_is_linear(self):
        def measure(width: int) -> float:
            node = bushy(width)
            serialize_element(node)
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                serialize_element(node)
                best = min(best, time.perf_counter() - start)
            return best
        small, large = measure(2000), measure(8000)
        assert large < small * 8, (small, large)

    def test_deep_roundtrip_through_the_parser(self):
        # Modest depth: the parser is still recursive; the serializer
        # itself is exercised far deeper above.
        node = chain(300)
        assert serialize_element(
            parse(serialize_element(node)).root) == serialize_element(node)
