"""Tests for the XML document model."""

import pytest

from repro.core.errors import ConfigurationError
from repro.xmldb.model import Document, Element, element


def sample() -> Element:
    return element(
        "hospital", None, {"name": "general"},
        element("record", None, {"id": "r1"},
                element("name", "Alice"),
                element("diagnosis", "flu")),
        element("record", None, {"id": "r2"},
                element("name", "Bob")))


class TestStructure:
    def test_children_and_text(self):
        node = Element("x", children=["hello ", Element("b"), "world"])
        assert node.text == "hello world"
        assert len(node.element_children) == 1

    def test_invalid_tag_rejected(self):
        with pytest.raises(ConfigurationError):
            Element("bad tag")
        with pytest.raises(ConfigurationError):
            Element("")

    def test_append_sets_parent(self):
        parent = Element("p")
        child = Element("c")
        parent.append(child)
        assert child.parent is parent

    def test_reparenting_rejected(self):
        child = Element("c")
        Element("p1").append(child)
        with pytest.raises(ConfigurationError):
            Element("p2").append(child)

    def test_invalid_child_type_rejected(self):
        with pytest.raises(ConfigurationError):
            Element("p").append(42)  # type: ignore[arg-type]

    def test_remove(self):
        parent = Element("p")
        child = parent.append(Element("c"))
        parent.remove(child)
        assert parent.element_children == []
        assert child.parent is None

    def test_remove_missing_raises(self):
        with pytest.raises(ConfigurationError):
            Element("p").remove(Element("c"))

    def test_set_text_replaces(self):
        node = Element("x", children=["old", Element("k")])
        node.set_text("new")
        assert node.text == "new"
        assert len(node.element_children) == 1


class TestAddressing:
    def test_sibling_index_is_per_tag(self):
        root = sample()
        records = root.find_all("record")
        assert records[0].index_among_siblings == 1
        assert records[1].index_among_siblings == 2

    def test_node_path(self):
        root = sample()
        name = root.find_all("record")[1].find("name")
        assert name.node_path() == "/hospital[1]/record[2]/name[1]"


class TestTraversal:
    def test_iter_preorder(self):
        tags = [n.tag for n in sample().iter()]
        assert tags == ["hospital", "record", "name", "diagnosis",
                        "record", "name"]

    def test_find_and_find_all(self):
        root = sample()
        assert root.find("record").attributes["id"] == "r1"
        assert root.find("missing") is None
        assert len(root.find_all("record")) == 2

    def test_descendants_with_tag(self):
        assert len(sample().descendants_with_tag("name")) == 2

    def test_ancestors(self):
        root = sample()
        leaf = root.find("record").find("name")
        assert [a.tag for a in leaf.ancestors()] == ["record", "hospital"]

    def test_size(self):
        assert sample().size() == 6


class TestCopy:
    def test_deep_copy_is_equal_but_distinct(self):
        original = sample()
        clone = original.deep_copy()
        assert clone.structurally_equal(original)
        assert clone is not original
        clone.find("record").attributes["id"] = "changed"
        assert not clone.structurally_equal(original)

    def test_structural_inequality_on_text(self):
        a = element("x", "one")
        b = element("x", "two")
        assert not a.structurally_equal(b)


class TestDocument:
    def test_root_must_be_parentless(self):
        parent = Element("p")
        child = parent.append(Element("c"))
        with pytest.raises(ConfigurationError):
            Document(child)

    def test_document_delegates(self):
        doc = Document(sample(), name="d")
        assert doc.size() == 6
        copy = doc.deep_copy()
        assert copy.name == "d"
        assert copy.root.structurally_equal(doc.root)
