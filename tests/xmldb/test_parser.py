"""Tests for the XML parser."""

import pytest

from repro.core.errors import ParseError
from repro.xmldb.parser import parse, parse_element
from repro.xmldb.serializer import serialize


class TestBasics:
    def test_simple_document(self):
        doc = parse("<a><b>text</b></a>")
        assert doc.root.tag == "a"
        assert doc.root.find("b").text == "text"

    def test_attributes_both_quote_styles(self):
        root = parse_element("""<x a="1" b='2'/>""")
        assert root.attributes == {"a": "1", "b": "2"}

    def test_self_closing(self):
        root = parse_element("<a><b/><c/></a>")
        assert [c.tag for c in root.element_children] == ["b", "c"]

    def test_nested_same_tags(self):
        root = parse_element("<a><a><a/></a></a>")
        assert root.size() == 3

    def test_whitespace_only_text_dropped(self):
        root = parse_element("<a>\n  <b/>\n</a>")
        assert root.text == ""

    def test_significant_text_trimmed(self):
        root = parse_element("<a>  hello  </a>")
        assert root.text == "hello"

    def test_xml_declaration_skipped(self):
        doc = parse("<?xml version='1.0'?><a/>")
        assert doc.root.tag == "a"

    def test_comments_skipped(self):
        doc = parse("<!-- pre --><a><!-- in -->x</a><!-- post -->")
        assert doc.root.text == "x"


class TestEntities:
    def test_predefined(self):
        root = parse_element("<a>&lt;tag&gt; &amp; &quot;q&quot;</a>")
        assert root.text == '<tag> & "q"'

    def test_numeric(self):
        root = parse_element("<a>&#65;&#x42;</a>")
        assert root.text == "AB"

    def test_in_attributes(self):
        root = parse_element('<a v="&amp;&lt;"/>')
        assert root.attributes["v"] == "&<"

    def test_unknown_entity_rejected(self):
        with pytest.raises(ParseError):
            parse("<a>&nope;</a>")


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "plain text",
        "<a>",
        "<a></b>",
        "<a attr></a>",
        "<a attr=unquoted></a>",
        '<a x="1" x="2"/>',
        "<a/><b/>",
        "<a>trailing</a>junk",
        "<a><b></a></b>",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_error_carries_offset(self):
        with pytest.raises(ParseError) as exc_info:
            parse("<a></b>")
        assert exc_info.value.position is not None


class TestRoundtrip:
    @pytest.mark.parametrize("text", [
        "<a/>",
        '<a k="v"/>',
        "<a>text</a>",
        '<root><x i="1">one</x><x i="2">two</x><empty/></root>',
        "<a>&amp;&lt;&gt;</a>",
    ])
    def test_parse_serialize_parse(self, text):
        first = parse(text)
        second = parse(serialize(first))
        assert first.root.structurally_equal(second.root)
