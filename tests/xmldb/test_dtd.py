"""Tests for DTD-lite validation."""

import pytest

from repro.core.errors import ConfigurationError
from repro.xmldb.dtd import ChildSpec, Multiplicity, Schema
from repro.xmldb.parser import parse


def hospital_schema() -> Schema:
    schema = Schema("hospital")
    schema.declare("hospital", children=["record*"],
                   optional_attributes=["name"])
    schema.declare("record", children=["name", "diagnosis?", "visit*"],
                   required_attributes=["id"])
    schema.declare("name", allow_text=True)
    schema.declare("diagnosis", allow_text=True)
    schema.declare("visit", children=["date"],
                   optional_attributes=["n"])
    schema.declare("date", allow_text=True)
    return schema


class TestChildSpec:
    @pytest.mark.parametrize("spec,tag,mult", [
        ("a", "a", Multiplicity.ONE),
        ("a?", "a", Multiplicity.OPTIONAL),
        ("a*", "a", Multiplicity.MANY),
        ("a+", "a", Multiplicity.AT_LEAST_ONE),
    ])
    def test_parse(self, spec, tag, mult):
        parsed = ChildSpec.parse(spec)
        assert parsed.tag == tag and parsed.multiplicity is mult

    def test_multiplicity_allows(self):
        assert Multiplicity.ONE.allows(1)
        assert not Multiplicity.ONE.allows(0)
        assert Multiplicity.OPTIONAL.allows(0)
        assert not Multiplicity.OPTIONAL.allows(2)
        assert Multiplicity.MANY.allows(0)
        assert Multiplicity.MANY.allows(9)
        assert Multiplicity.AT_LEAST_ONE.allows(1)
        assert not Multiplicity.AT_LEAST_ONE.allows(0)


class TestValidation:
    def test_valid_document(self):
        doc = parse('<hospital><record id="r1"><name>A</name>'
                    '</record></hospital>')
        assert hospital_schema().is_valid(doc)

    def test_wrong_root(self):
        doc = parse('<clinic/>')
        violations = hospital_schema().validate(doc)
        assert any("root" in str(v) for v in violations)

    def test_missing_required_attribute(self):
        doc = parse('<hospital><record><name>A</name></record>'
                    '</hospital>')
        violations = hospital_schema().validate(doc)
        assert any("id" in str(v) for v in violations)

    def test_undeclared_attribute(self):
        doc = parse('<hospital color="red"/>')
        violations = hospital_schema().validate(doc)
        assert any("color" in str(v) for v in violations)

    def test_unexpected_child(self):
        doc = parse('<hospital><record id="r"><name>A</name>'
                    '<rogue/></record></hospital>')
        violations = hospital_schema().validate(doc)
        assert any("rogue" in str(v) for v in violations)

    def test_multiplicity_violation(self):
        doc = parse('<hospital><record id="r"><name>A</name>'
                    '<name>B</name></record></hospital>')
        violations = hospital_schema().validate(doc)
        assert any("multiplicity" in str(v) for v in violations)

    def test_missing_mandatory_child(self):
        doc = parse('<hospital><record id="r"/></hospital>')
        violations = hospital_schema().validate(doc)
        assert any("<name>" in str(v) for v in violations)

    def test_text_where_not_allowed(self):
        doc = parse('<hospital>chatter</hospital>')
        violations = hospital_schema().validate(doc)
        assert any("text" in str(v) for v in violations)

    def test_allow_other_children(self):
        schema = Schema("open")
        schema.declare("open", allow_other_children=True)
        doc = parse("<open><anything/><at-all/></open>")
        assert schema.is_valid(doc)

    def test_violations_carry_node_paths(self):
        doc = parse('<hospital><record><name>A</name></record>'
                    '</hospital>')
        violations = hospital_schema().validate(doc)
        assert any(v.node_path.startswith("/hospital[1]/record[1]")
                   for v in violations)

    def test_duplicate_declaration_rejected(self):
        schema = Schema("r")
        schema.declare("r")
        with pytest.raises(ConfigurationError):
            schema.declare("r")
