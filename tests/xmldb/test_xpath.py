"""Tests for the XPath-lite engine."""

import pytest

from repro.core.errors import ParseError, QueryError
from repro.xmldb.parser import parse
from repro.xmldb.xpath import compile_xpath, evaluate, select_elements

DOC = parse("""
<hospital>
  <record id="r1" vip="yes">
    <name>Alice</name><diagnosis>flu</diagnosis>
    <visit n="1"><date>2003-01-02</date></visit>
    <visit n="2"><date>2003-02-03</date></visit>
  </record>
  <record id="r2">
    <name>Bob</name><diagnosis>cold</diagnosis>
  </record>
  <record id="r3">
    <name>Carol</name><diagnosis>flu</diagnosis>
  </record>
</hospital>
""")


def texts(path):
    return [e.text for e in select_elements(path, DOC)]


class TestCompilation:
    def test_source_preserved(self):
        assert str(compile_xpath(" //a/b ")) == "//a/b"

    @pytest.mark.parametrize("bad", [
        "", "/", "//", "a[", "a[]", "a[0]", "a[@]", "a[x=']",
        "a/@id/b", "a/text()/b", "a b",
    ])
    def test_bad_syntax_rejected(self, bad):
        with pytest.raises(ParseError):
            compile_xpath(bad)


class TestAbsolutePaths:
    def test_root_step_matches_root_tag(self):
        assert len(select_elements("/hospital", DOC)) == 1
        assert select_elements("/nothospital", DOC) == []

    def test_child_chain(self):
        assert texts("/hospital/record/name") == ["Alice", "Bob", "Carol"]

    def test_root_wildcard(self):
        assert len(select_elements("/*", DOC)) == 1


class TestDescendants:
    def test_double_slash_anywhere(self):
        assert texts("//name") == ["Alice", "Bob", "Carol"]

    def test_descendant_mid_path(self):
        assert texts("/hospital//date") == ["2003-01-02", "2003-02-03"]

    def test_no_duplicates_from_overlap(self):
        results = select_elements("//record//date", DOC)
        assert len(results) == 2


class TestPredicates:
    def test_attribute_equals(self):
        assert texts("//record[@id='r2']/name") == ["Bob"]

    def test_attribute_exists(self):
        assert texts("//record[@vip]/name") == ["Alice"]

    def test_child_value(self):
        assert texts("//record[diagnosis='flu']/name") == ["Alice",
                                                           "Carol"]

    def test_child_exists(self):
        assert texts("//record[visit]/name") == ["Alice"]

    def test_position(self):
        assert texts("//record[2]/name") == ["Bob"]
        assert texts("//record[9]/name") == []

    def test_nested_path_predicate(self):
        assert texts("//record[visit/date='2003-02-03']/name") == ["Alice"]

    def test_multiple_predicates_conjoin(self):
        assert texts("//record[diagnosis='flu'][@vip='yes']/name") == [
            "Alice"]


class TestValueSteps:
    def test_attribute_selection(self):
        assert evaluate("//record/@id", DOC) == ["r1", "r2", "r3"]

    def test_attribute_wildcard(self):
        assert set(evaluate("//record[1]/@*", DOC)) == {"r1", "yes"}

    def test_text_selection(self):
        assert evaluate("//diagnosis/text()", DOC) == ["flu", "cold",
                                                       "flu"]

    def test_select_elements_rejects_values(self):
        with pytest.raises(QueryError):
            select_elements("//record/@id", DOC)


class TestRelativeContext:
    def test_relative_from_element(self):
        record = select_elements("//record[1]", DOC)[0]
        names = select_elements("name", record)
        assert [n.text for n in names] == ["Alice"]

    def test_relative_descendant(self):
        record = select_elements("//record[1]", DOC)[0]
        assert len(evaluate("visit/date", record)) == 2
