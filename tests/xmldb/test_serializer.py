"""Tests for canonical serialization."""

from repro.xmldb.model import Document, Element, element
from repro.xmldb.parser import parse
from repro.xmldb.serializer import (
    escape_attribute,
    escape_text,
    pretty,
    serialize,
    serialize_element,
)


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("<a> & b") == "&lt;a&gt; &amp; b"

    def test_attribute_escapes_quotes_too(self):
        assert escape_attribute('say "hi" & <go>') == \
            "say &quot;hi&quot; &amp; &lt;go&gt;"


class TestCanonical:
    def test_attributes_sorted(self):
        node = Element("x", {"zeta": "1", "alpha": "2"})
        assert serialize_element(node) == '<x alpha="2" zeta="1"/>'

    def test_attribute_insertion_order_irrelevant(self):
        a = Element("x", {"p": "1", "q": "2"})
        b = Element("x", {"q": "2", "p": "1"})
        assert serialize_element(a) == serialize_element(b)

    def test_empty_element_self_closes(self):
        assert serialize_element(Element("empty")) == "<empty/>"

    def test_mixed_content_preserved_in_order(self):
        node = Element("x", children=["pre", Element("mid"), "post"])
        assert serialize_element(node) == "<x>pre<mid/>post</x>"

    def test_document_serialization_matches_root(self):
        root = element("a", "t")
        assert serialize(Document(root)) == serialize_element(root)

    def test_same_structure_same_bytes(self):
        text = '<r><a k="1">x</a><b/></r>'
        assert serialize(parse(text)) == serialize(parse(text))


class TestPretty:
    def test_indents_nested(self):
        root = element("a", None, None, element("b", "t"))
        lines = pretty(root).splitlines()
        assert lines[0] == "<a>"
        assert lines[1] == "  <b>t</b>"
        assert lines[2] == "</a>"

    def test_pretty_escapes(self):
        assert "&lt;" in pretty(element("a", "<raw>"))

    def test_accepts_document(self):
        doc = Document(element("only", "x"))
        assert pretty(doc) == "<only>x</only>"
