"""Tests for the WSA actors and the attackable transport."""

import pytest

from repro.core.errors import ServiceFault
from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import Action, PolicyBase, grant
from repro.core.credentials import is_identity
from repro.wsa.actors import ServiceProvider, ServiceRequestor
from repro.wsa.soap import (
    FAULT_ACCESS_DENIED,
    FAULT_BAD_SIGNATURE,
    FAULT_REPLAY,
    FAULT_UNKNOWN_OPERATION,
)
from repro.wsa.transport import MessageBus
from repro.wsa.wsdl import describe


def build(require_signatures=True, evaluator=None):
    bus = MessageBus()
    description = describe("Quotes",
                           getQuote=(("symbol",), ("price",)))
    provider = ServiceProvider("quotes", description, bus, key_seed=41,
                               require_signatures=require_signatures,
                               evaluator=evaluator)
    provider.implement(
        "getQuote", lambda subject, p: {"price": f"{p['symbol']}:42"})
    requestor = ServiceRequestor("alice", bus, key_seed=42)
    provider.trust_requestor("alice", requestor.public_key)
    requestor.trust_provider("quotes", provider.public_key)
    return bus, provider, requestor


class TestHappyPath:
    def test_invoke_roundtrip(self):
        _bus, _provider, requestor = build()
        out = requestor.invoke("quotes", "getQuote", {"symbol": "ACME"},
                               sign_request=True)
        assert out["price"] == "ACME:42"

    def test_reply_is_signed_and_verified(self):
        bus, provider, requestor = build()
        out = requestor.invoke("quotes", "getQuote", {"symbol": "X"},
                               sign_request=True)
        assert out  # verify_envelope inside invoke did not raise

    def test_encrypted_parameter_hidden_from_wire(self):
        bus, _provider, requestor = build()
        requestor.invoke("quotes", "getQuote",
                         {"symbol": "SECRET-TICKER"},
                         sign_request=True, encrypt=["symbol"])
        wire_values = bus.eavesdropped_values()
        assert not any("SECRET-TICKER" in value for value in wire_values
                       if not value.startswith("enc:")
                       and ":42" not in value)


class TestContractEnforcement:
    def test_unknown_operation_faults(self):
        _bus, _p, requestor = build()
        with pytest.raises(ServiceFault) as exc_info:
            requestor.invoke("quotes", "noSuchOp", {}, sign_request=True)
        assert exc_info.value.code == FAULT_UNKNOWN_OPERATION

    def test_wrong_parameters_fault(self):
        _bus, _p, requestor = build()
        with pytest.raises(ServiceFault) as exc_info:
            requestor.invoke("quotes", "getQuote", {"wrong": "x"},
                             sign_request=True)
        assert exc_info.value.code == FAULT_UNKNOWN_OPERATION

    def test_implement_unknown_operation_rejected(self):
        bus = MessageBus()
        provider = ServiceProvider(
            "svc", describe("S", op=((), ())), bus, key_seed=43)
        from repro.core.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            provider.implement("ghost", lambda s, p: {})


class TestSecurityFaults:
    def test_unsigned_call_rejected_when_required(self):
        _bus, _p, requestor = build(require_signatures=True)
        with pytest.raises(ServiceFault) as exc_info:
            requestor.invoke("quotes", "getQuote", {"symbol": "A"},
                             sign_request=False)
        assert exc_info.value.code == FAULT_BAD_SIGNATURE

    def test_replay_rejected(self):
        bus, _p, requestor = build()
        requestor.invoke("quotes", "getQuote", {"symbol": "A"},
                         sign_request=True)
        with pytest.raises(ServiceFault) as exc_info:
            bus.replay_last()
        assert exc_info.value.code == FAULT_REPLAY

    def test_interceptor_tampering_rejected(self):
        bus, _p, requestor = build()

        def tamper(envelope):
            if envelope.operation == "getQuote":
                envelope.parameters["symbol"] = "EVIL"
                return envelope
            return None

        bus.set_interceptor(tamper)
        with pytest.raises(ServiceFault) as exc_info:
            requestor.invoke("quotes", "getQuote", {"symbol": "GOOD"},
                             sign_request=True)
        assert exc_info.value.code == FAULT_BAD_SIGNATURE
        assert bus.stats.intercepted == 1

    def test_access_control_fault(self):
        evaluator = PolicyEvaluator(PolicyBase([
            grant(is_identity("bob"), Action.READ, "ws/**"),
        ]))
        _bus, _p, requestor = build(evaluator=evaluator)
        with pytest.raises(ServiceFault) as exc_info:
            requestor.invoke("quotes", "getQuote", {"symbol": "A"},
                             sign_request=True)
        assert exc_info.value.code == FAULT_ACCESS_DENIED

    def test_unknown_endpoint_faults(self):
        bus, _p, requestor = build()
        with pytest.raises(ServiceFault):
            requestor.invoke("nowhere", "getQuote", {"symbol": "A"})


class TestBusBookkeeping:
    def test_stats_and_transcript(self):
        bus, _p, requestor = build()
        requestor.invoke("quotes", "getQuote", {"symbol": "A"},
                         sign_request=True)
        assert bus.stats.sent == 1
        assert bus.stats.delivered == 1
        assert len(bus.transcript) == 2  # request + reply
