"""Tests for WSDL-lite service descriptions."""

import pytest

from repro.core.errors import ConfigurationError
from repro.wsa.wsdl import Operation, ServiceDescription, describe


class TestOperation:
    def test_validate_ok(self):
        operation = Operation("op", ("a", "b"), ("out",))
        assert operation.validate_call({"a": "1", "b": "2"}) == []

    def test_missing_input_reported(self):
        operation = Operation("op", ("a",))
        problems = operation.validate_call({})
        assert any("missing" in p for p in problems)

    def test_unexpected_input_reported(self):
        operation = Operation("op", ())
        problems = operation.validate_call({"extra": "1"})
        assert any("unexpected" in p for p in problems)


class TestServiceDescription:
    def make(self) -> ServiceDescription:
        return describe("Weather", endpoint="http://w/ws",
                        forecast=(("city",), ("temp",)),
                        history=(("city", "day"), ("temps",)))

    def test_operation_lookup(self):
        description = self.make()
        assert description.operation("forecast").inputs == ("city",)
        assert description.has_operation("history")
        assert not description.has_operation("ghost")

    def test_unknown_operation_raises(self):
        with pytest.raises(ConfigurationError):
            self.make().operation("ghost")

    def test_to_element(self):
        element = self.make().to_element()
        assert element.tag == "definitions"
        operations = {e.attributes["name"]
                      for e in element.find_all("operation")}
        assert operations == {"forecast", "history"}
        assert element.find("port").attributes["location"] == "http://w/ws"
