"""Tests for the SOAP envelope model."""

import pytest

from repro.core.errors import ServiceFault
from repro.wsa.soap import SoapEnvelope, SoapFault, fresh_message_id


class TestEnvelope:
    def test_message_ids_unique(self):
        assert SoapEnvelope("op").message_id != SoapEnvelope("op").message_id
        assert fresh_message_id() != fresh_message_id()

    def test_to_element_structure(self):
        envelope = SoapEnvelope("getQuote", {"symbol": "ACME"},
                                sender="alice", receiver="quotes")
        element = envelope.to_element()
        assert element.tag == "Envelope"
        body = element.find("Body")
        assert body.find("getQuote") is not None
        header = element.find("Header")
        names = {e.attributes["name"] for e in header.element_children}
        assert {"MessageID", "From", "To"} <= names

    def test_body_canonical_stable_under_headers(self):
        envelope = SoapEnvelope("op", {"a": "1"})
        before = envelope.body_canonical()
        envelope.headers["Extra"] = "added in transit"
        assert envelope.body_canonical() == before

    def test_body_canonical_sensitive_to_parameters(self):
        a = SoapEnvelope("op", {"x": "1"}, message_id="m1")
        b = SoapEnvelope("op", {"x": "2"}, message_id="m1")
        assert a.body_canonical() != b.body_canonical()

    def test_body_canonical_binds_message_id(self):
        a = SoapEnvelope("op", {"x": "1"}, message_id="m1")
        b = SoapEnvelope("op", {"x": "1"}, message_id="m2")
        assert a.body_canonical() != b.body_canonical()

    def test_reply_swaps_endpoints_and_links(self):
        request = SoapEnvelope("op", sender="alice", receiver="svc")
        reply = request.reply("opResponse", {"out": "1"})
        assert reply.sender == "svc" and reply.receiver == "alice"
        assert reply.headers["InReplyTo"] == request.message_id
        assert reply.parameters == {"out": "1"}


class TestFault:
    def test_raise(self):
        fault = SoapFault("env:X", "boom")
        with pytest.raises(ServiceFault) as exc_info:
            fault.raise_()
        assert exc_info.value.code == "env:X"
