"""Tests for message-level security: signing, encryption, replay."""

import pytest

from repro.core.errors import AuthenticationError, SecurityError
from repro.crypto.rsa import generate_keypair
from repro.wsa.security import (
    ReplayGuard,
    decrypt_parameters,
    encrypt_parameters,
    is_encrypted,
    sign_envelope,
    verify_envelope,
)
from repro.wsa.soap import SoapEnvelope

ALICE = generate_keypair(bits=256, seed=31)
SERVICE = generate_keypair(bits=256, seed=32)


class TestSigning:
    def test_roundtrip(self):
        envelope = SoapEnvelope("op", {"x": "1"})
        sign_envelope(envelope, "alice", ALICE.private)
        assert verify_envelope(envelope, ALICE.public) == "alice"

    def test_unsigned_rejected(self):
        with pytest.raises(AuthenticationError):
            verify_envelope(SoapEnvelope("op"), ALICE.public)

    def test_malformed_signature_rejected(self):
        envelope = SoapEnvelope("op")
        envelope.headers["Security.Signature"] = "not-a-number"
        with pytest.raises(AuthenticationError):
            verify_envelope(envelope, ALICE.public)

    def test_tampered_parameter_rejected(self):
        envelope = SoapEnvelope("op", {"x": "1"})
        sign_envelope(envelope, "alice", ALICE.private)
        envelope.parameters["x"] = "2"
        with pytest.raises(AuthenticationError):
            verify_envelope(envelope, ALICE.public)

    def test_wrong_key_rejected(self):
        envelope = SoapEnvelope("op", {"x": "1"})
        sign_envelope(envelope, "alice", ALICE.private)
        with pytest.raises(AuthenticationError):
            verify_envelope(envelope, SERVICE.public)

    def test_added_headers_do_not_break_signature(self):
        envelope = SoapEnvelope("op", {"x": "1"})
        sign_envelope(envelope, "alice", ALICE.private)
        envelope.headers["Routing"] = "via-proxy"
        assert verify_envelope(envelope, ALICE.public) == "alice"


class TestEncryption:
    def test_roundtrip(self):
        envelope = SoapEnvelope("op", {"card": "1234-5678",
                                       "city": "Como"})
        encrypt_parameters(envelope, ["card"], SERVICE.public, seed=1)
        assert is_encrypted(envelope.parameters["card"])
        assert envelope.parameters["city"] == "Como"
        decrypt_parameters(envelope, SERVICE.private)
        assert envelope.parameters["card"] == "1234-5678"

    def test_plaintext_absent_from_wire_form(self):
        envelope = SoapEnvelope("op", {"card": "SECRET-PAN"})
        encrypt_parameters(envelope, ["card"], SERVICE.public, seed=2)
        assert "SECRET-PAN" not in envelope.parameters["card"]

    def test_missing_parameter_rejected(self):
        envelope = SoapEnvelope("op", {})
        with pytest.raises(SecurityError):
            encrypt_parameters(envelope, ["ghost"], SERVICE.public)

    def test_unencrypted_parameters_pass_through_decrypt(self):
        envelope = SoapEnvelope("op", {"plain": "x"})
        decrypt_parameters(envelope, SERVICE.private)
        assert envelope.parameters["plain"] == "x"

    def test_sign_over_ciphertext_verifies(self):
        envelope = SoapEnvelope("op", {"card": "1234"})
        encrypt_parameters(envelope, ["card"], SERVICE.public, seed=3)
        sign_envelope(envelope, "alice", ALICE.private)
        assert verify_envelope(envelope, ALICE.public)
        decrypt_parameters(envelope, SERVICE.private)
        assert envelope.parameters["card"] == "1234"


class TestReplayGuard:
    def test_first_admission_ok(self):
        guard = ReplayGuard()
        guard.admit(SoapEnvelope("op"))

    def test_replay_rejected(self):
        guard = ReplayGuard()
        envelope = SoapEnvelope("op")
        guard.admit(envelope)
        with pytest.raises(SecurityError):
            guard.admit(envelope)

    def test_distinct_messages_admitted(self):
        guard = ReplayGuard()
        guard.admit(SoapEnvelope("op"))
        guard.admit(SoapEnvelope("op"))

    def test_window_bounds_memory(self):
        guard = ReplayGuard(window=10)
        for _ in range(50):
            guard.admit(SoapEnvelope("op"))
        assert len(guard._seen) <= 11
