"""Tests for the discovery agency's own privacy policy (§4)."""

from repro.core.credentials import anyone
from repro.core.evaluator import PolicyEvaluator
from repro.core.policy import Action, PolicyBase, grant
from repro.p3p.policy import (
    DataCategory,
    P3PPolicy,
    Purpose,
    Recipient,
    Retention,
    statement,
)
from repro.p3p.preferences import strictness_profile
from repro.uddi.architectures import ThirdPartyDeployment
from repro.wsa.actors import DiscoveryAgencyActor


def deployment() -> ThirdPartyDeployment:
    return ThirdPartyDeployment(PolicyEvaluator(PolicyBase([
        grant(anyone(), Action.READ, "uddi/**"),
        grant(anyone(), Action.WRITE, "uddi/**"),
    ])))


def modest_agency_policy() -> P3PPolicy:
    return P3PPolicy("agency", (statement(
        [DataCategory.ONLINE, DataCategory.NAVIGATION],
        [Purpose.CURRENT], [Recipient.OURS],
        Retention.STATED_PURPOSE),))


def data_broker_policy() -> P3PPolicy:
    return P3PPolicy("agency", (statement(
        [DataCategory.ONLINE, DataCategory.NAVIGATION],
        [Purpose.TELEMARKETING, Purpose.INDIVIDUAL_ANALYSIS],
        [Recipient.UNRELATED], Retention.INDEFINITELY),))


class TestAgencyPrivacyGate:
    def test_modest_agency_accepted_by_moderate_consumer(self):
        agency = DiscoveryAgencyActor("d", deployment(),
                                      modest_agency_policy())
        assert agency.acceptable_to(strictness_profile(1))
        assert agency.acceptable_to(strictness_profile(0))

    def test_data_broker_agency_rejected(self):
        agency = DiscoveryAgencyActor("d", deployment(),
                                      data_broker_policy())
        assert not agency.acceptable_to(strictness_profile(1))

    def test_policyless_agency_fails_closed(self):
        agency = DiscoveryAgencyActor("d", deployment())
        assert not agency.acceptable_to(strictness_profile(0))

    def test_agency_policy_baseline(self):
        assert modest_agency_policy().conforms_to_baseline()
        assert not data_broker_policy().conforms_to_baseline()
