"""XML Key Management (XKMS-style), the third W3C XML security standard
§3.2 names ("XML-Signature ..., XML-Encryption ..., and XML Key
Management").

A :class:`KeyInformationService` is a trust anchor that *binds* names to
public keys:

* ``register`` — a party proves possession of its private key (by
  signing the registration request) and the service issues a signed
  :class:`KeyBinding`;
* ``locate`` — anyone retrieves the binding for a name;
* ``validate`` — checks a binding's service signature and revocation
  status (the X-KISS locate/validate split);
* ``revoke`` — the holder (or the service operator) invalidates a
  binding; subsequent validations fail.

This lets WSA actors bootstrap trust from one service key instead of
exchanging keys pairwise — see
:func:`repro.wsa.actors.ServiceRequestor.trust_provider_via`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.errors import AuthenticationError, KeyManagementError
from repro.crypto.rsa import (
    KeyPair,
    PrivateKey,
    PublicKey,
    generate_keypair,
    sign,
    verify,
)

_binding_ids = itertools.count(1)


@dataclass(frozen=True)
class KeyBinding:
    """A service-signed (name -> public key) assertion."""

    binding_id: int
    name: str
    key_n: int
    key_e: int
    service_signature: int

    @property
    def public_key(self) -> PublicKey:
        return PublicKey(self.key_n, self.key_e)

    @staticmethod
    def payload(name: str, key: PublicKey) -> str:
        return f"xkms-binding:{name}:{key.n:x}:{key.e:x}"

    def verify_issuer(self, service_key: PublicKey) -> bool:
        return verify(service_key,
                      self.payload(self.name, self.public_key),
                      self.service_signature)


@dataclass(frozen=True)
class RegistrationRequest:
    """A self-signed request proving possession of the private key."""

    name: str
    key_n: int
    key_e: int
    proof_signature: int

    @property
    def public_key(self) -> PublicKey:
        return PublicKey(self.key_n, self.key_e)

    @staticmethod
    def payload(name: str, key: PublicKey) -> str:
        return f"xkms-register:{name}:{key.n:x}:{key.e:x}"


def make_registration(name: str, keys: KeyPair) -> RegistrationRequest:
    """Build a proof-of-possession registration for one's own keypair."""
    proof = sign(keys.private,
                 RegistrationRequest.payload(name, keys.public))
    return RegistrationRequest(name, keys.public.n, keys.public.e, proof)


class KeyInformationService:
    """The XKMS trust anchor."""

    def __init__(self, name: str = "xkms", key_seed: int = 1009) -> None:
        self.name = name
        self._keys = generate_keypair(seed=key_seed)
        self._bindings: dict[str, KeyBinding] = {}
        self._revoked: set[int] = set()

    @property
    def service_key(self) -> PublicKey:
        """The one key consumers must trust a priori."""
        return self._keys.public

    # -- X-KRSS: registration ---------------------------------------------

    def register(self, request: RegistrationRequest) -> KeyBinding:
        """Verify proof of possession, issue a signed binding.

        Re-registration under an existing name requires the new request
        to be... impossible here without the old key; names are
        first-come-first-served and rebinding needs a revocation first.
        """
        if request.name in self._bindings and \
                self._bindings[request.name].binding_id not in self._revoked:
            raise KeyManagementError(
                f"name {request.name!r} already bound; revoke first")
        payload = RegistrationRequest.payload(request.name,
                                              request.public_key)
        if not verify(request.public_key, payload,
                      request.proof_signature):
            raise AuthenticationError(
                f"registration for {request.name!r} fails proof of "
                f"possession")
        binding = KeyBinding(
            next(_binding_ids), request.name, request.key_n,
            request.key_e,
            sign(self._keys.private,
                 KeyBinding.payload(request.name, request.public_key)))
        self._bindings[request.name] = binding
        return binding

    def revoke(self, name: str, proof_signature: int) -> None:
        """Revoke a binding; the revocation must be signed by the bound
        key (holder-initiated revocation)."""
        binding = self._bindings.get(name)
        if binding is None:
            raise KeyManagementError(f"no binding for {name!r}")
        if not verify(binding.public_key, f"xkms-revoke:{name}",
                      proof_signature):
            raise AuthenticationError(
                f"revocation for {name!r} not signed by the bound key")
        self._revoked.add(binding.binding_id)

    @staticmethod
    def make_revocation(name: str, private_key: PrivateKey) -> int:
        return sign(private_key, f"xkms-revoke:{name}")

    # -- X-KISS: locate / validate --------------------------------------------

    def locate(self, name: str) -> KeyBinding:
        """Retrieve a binding (no validity judgement — pure lookup)."""
        try:
            return self._bindings[name]
        except KeyError:
            raise KeyManagementError(f"no binding for {name!r}") from None

    def validate(self, binding: KeyBinding) -> bool:
        """Is the binding issued by this service and not revoked?"""
        if binding.binding_id in self._revoked:
            return False
        return binding.verify_issuer(self.service_key)

    def locate_valid(self, name: str) -> PublicKey:
        """Locate + validate in one step; raises on any failure."""
        binding = self.locate(name)
        if not self.validate(binding):
            raise AuthenticationError(
                f"binding for {name!r} is revoked or forged")
        return binding.public_key
