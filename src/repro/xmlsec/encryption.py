"""XML-Encryption-like element encryption (W3C XML security, §3.2).

Replaces selected element subtrees with ``<EncryptedData>`` elements whose
body is the symmetric ciphertext of the canonical subtree, labelled with
the key id — the shape of W3C XML-Encryption without the wire format.
Decryption restores the original subtree in place (for keys the caller
holds) and leaves other EncryptedData nodes untouched, so partially
decryptable documents work naturally.
"""

from __future__ import annotations

import base64

from repro.core.errors import KeyManagementError
from repro.crypto.keys import KeyStore
from repro.crypto.symmetric import Ciphertext
from repro.xmldb.model import Document, Element
from repro.xmldb.parser import parse_element
from repro.xmldb.serializer import serialize_element
from repro.xmldb.xpath import XPath, select_elements

ENCRYPTED_TAG = "EncryptedData"


def _encode(ciphertext: Ciphertext) -> Element:
    node = Element(ENCRYPTED_TAG, {
        "keyid": ciphertext.key_id,
        "nonce": ciphertext.nonce.hex(),
        "tag": ciphertext.tag,
    })
    node.append(base64.b64encode(ciphertext.body).decode("ascii"))
    return node


def _decode(node: Element) -> Ciphertext:
    return Ciphertext(
        key_id=node.attributes["keyid"],
        nonce=bytes.fromhex(node.attributes["nonce"]),
        body=base64.b64decode(node.text),
        tag=node.attributes["tag"],
    )


def encrypt_portions(document: Document, targets: XPath | str,
                     key_id: str, keys: KeyStore) -> int:
    """Encrypt every element selected by *targets* in place.

    Returns the number of subtrees encrypted.  The root element cannot be
    encrypted (the document must keep a cleartext root, as in
    XML-Encryption).
    """
    selected = select_elements(targets, document)
    count = 0
    for node in selected:
        if node.parent is None:
            raise KeyManagementError(
                "cannot encrypt the document root; encrypt its children")
        payload = serialize_element(node)
        parent = node.parent
        # Replace node with the EncryptedData element at the same slot.
        index = list(parent.children).index(node)
        parent.remove(node)
        encrypted = _encode(keys.encrypt(key_id, payload))
        # Re-insert at original position.
        trailing = list(parent.children)[index:]
        for extra in trailing:
            parent.remove(extra)
        parent.append(encrypted)
        for extra in trailing:
            if isinstance(extra, Element):
                extra.parent = None
            parent.append(extra)
        count += 1
    return count


def decrypt_available(document: Document, keys: KeyStore) -> tuple[int, int]:
    """Decrypt every EncryptedData node whose key is in *keys*.

    Returns ``(decrypted, remaining)`` counts.  Runs until fixpoint so
    nested encryption (super-encryption) unwinds as far as keys allow.
    """
    decrypted = 0
    progress = True
    while progress:
        progress = False
        for node in list(document.iter()):
            if node.tag != ENCRYPTED_TAG or node.parent is None:
                continue
            ciphertext = _decode(node)
            if ciphertext.key_id not in keys:
                continue
            payload = keys.decrypt(ciphertext).decode("utf-8")
            restored = parse_element(payload)
            parent = node.parent
            index = list(parent.children).index(node)
            parent.remove(node)
            trailing = list(parent.children)[index:]
            for extra in trailing:
                parent.remove(extra)
            parent.append(restored)
            for extra in trailing:
                if isinstance(extra, Element):
                    extra.parent = None
                parent.append(extra)
            decrypted += 1
            progress = True
    remaining = sum(1 for n in document.iter() if n.tag == ENCRYPTED_TAG)
    return decrypted, remaining
