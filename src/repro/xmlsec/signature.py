"""XML-Signature-like element signing (W3C XML security standards, §3.2).

Signs the canonical serialization of an element subtree with RSA
(hash-then-sign over :func:`repro.xmldb.serializer.serialize_element`).
A :class:`SignedElement` binds the signature to a signer name so receivers
can look up the right public key.  Detached signatures over multiple
elements of one document are supported via :class:`SignatureManifest`,
mirroring XML-Signature's Reference list.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import AuthenticationError
from repro.crypto.rsa import PrivateKey, PublicKey, sign, verify
from repro.xmldb.model import Element
from repro.xmldb.serializer import serialize_element


@dataclass(frozen=True)
class SignedElement:
    """An element plus a signature over its canonical form."""

    element: Element
    signer: str
    signature: int

    def verify(self, public_key: PublicKey) -> bool:
        return verify(public_key, serialize_element(self.element),
                      self.signature)


def sign_element(element: Element, signer: str,
                 private_key: PrivateKey) -> SignedElement:
    payload = serialize_element(element)
    return SignedElement(element, signer, sign(private_key, payload))


def verify_element(signed: SignedElement, public_key: PublicKey,
                   context: str = "") -> None:
    """Raise AuthenticationError if the signature does not verify."""
    if not signed.verify(public_key):
        suffix = f" ({context})" if context else ""
        raise AuthenticationError(
            f"XML signature by {signed.signer!r} failed to verify{suffix}")


@dataclass(frozen=True)
class Reference:
    """One signed reference: a node path and the signature over it."""

    node_path: str
    signature: int


@dataclass(frozen=True)
class SignatureManifest:
    """Detached signatures over several portions of one document."""

    signer: str
    references: tuple[Reference, ...]

    def reference_for(self, node_path: str) -> Reference | None:
        for reference in self.references:
            if reference.node_path == node_path:
                return reference
        return None


def sign_portions(elements: list[Element], signer: str,
                  private_key: PrivateKey) -> SignatureManifest:
    """Sign each element separately (UDDI v3's optional element signing)."""
    references = tuple(
        Reference(node.node_path(),
                  sign(private_key, serialize_element(node)))
        for node in elements)
    return SignatureManifest(signer, references)


def verify_portion(manifest: SignatureManifest, element: Element,
                   public_key: PublicKey) -> bool:
    """Check one element against its manifest entry."""
    reference = manifest.reference_for(element.node_path())
    if reference is None:
        return False
    return verify(public_key, serialize_element(element),
                  reference.signature)
