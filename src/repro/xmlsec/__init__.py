"""Security for XML databases: the Author-X model [5] plus the W3C-style
XML signature/encryption primitives the paper's §3.2 surveys.
"""

from repro.xmlsec.authorx import (
    NodeLabel,
    Privilege,
    XmlPolicy,
    XmlPolicyBase,
    XmlPropagation,
    XmlSign,
    xml_deny,
    xml_grant,
)
from repro.xmlsec.dissemination import (
    Configuration,
    Disseminator,
    FaultyChannel,
    Fragment,
    Packet,
    ResilientSubscriber,
    block_digest,
    configuration_key_id,
    configurations_by_path,
    element_configurations,
    omit_block,
    open_packet,
    open_packet_checked,
    subject_can_unlock,
)
from repro.xmlsec.encryption import (
    ENCRYPTED_TAG,
    decrypt_available,
    encrypt_portions,
)
from repro.xmlsec.signature import (
    Reference,
    SignatureManifest,
    SignedElement,
    sign_element,
    sign_portions,
    verify_element,
    verify_portion,
)
from repro.xmlsec.views import ViewStats, compute_view, visible_element_count
from repro.xmlsec.xkms import (
    KeyBinding,
    KeyInformationService,
    RegistrationRequest,
    make_registration,
)

__all__ = [
    "Configuration", "ENCRYPTED_TAG", "Disseminator", "FaultyChannel",
    "Fragment",
    "KeyBinding", "KeyInformationService", "NodeLabel", "Packet",
    "Privilege", "Reference", "RegistrationRequest",
    "ResilientSubscriber",
    "SignatureManifest", "SignedElement", "ViewStats", "XmlPolicy",
    "XmlPolicyBase", "XmlPropagation", "XmlSign", "block_digest",
    "compute_view",
    "make_registration",
    "configuration_key_id", "configurations_by_path",
    "decrypt_available", "element_configurations", "encrypt_portions",
    "omit_block", "open_packet", "open_packet_checked", "sign_element",
    "sign_portions",
    "subject_can_unlock", "verify_element", "verify_portion",
    "visible_element_count", "xml_deny", "xml_grant",
]
