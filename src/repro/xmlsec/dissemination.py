"""Secure and selective dissemination of XML documents ([5], §4.1).

The broadcast problem: an owner publishes *one* encrypted copy of a
document such that each of many subscribers can decrypt exactly the
portion the policies authorize.  Author-X's construction, which this
module implements:

1. Label every element with its *policy configuration*.  A configuration
   records, for each READ-grant policy reaching the element, the set of
   DENY policies that would override that grant there (a deny overrides a
   grant when it is attached at equal or greater depth — the most-specific
   rule of :mod:`repro.xmlsec.authorx`).
2. All elements sharing a configuration are encrypted with the **same**
   key, so the number of keys scales with the number of distinct
   configurations, not with the number of subjects (benchmark E3).
3. Each subject receives all and only the keys of configurations it can
   unlock: it satisfies some grant in the configuration and none of that
   grant's dominating denies.

A :class:`Packet` is the broadcast unit: one ciphertext per configuration
containing the (node-path, tag, attributes, text) records of that
configuration's elements.  :func:`open_packet` rebuilds the authorized
view, synthesizing bare connector elements for undisclosed ancestors —
ancestor *tags* are visible through node paths, exactly the structural
disclosure Author-X's connectors make.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import (
    IncompletePackageError,
    IntegrityError,
    MessageDropped,
    ReplicaUnavailable,
    TamperedPackageError,
    TransportError,
)
from repro.core.subjects import Subject
from repro.crypto.hashing import sha256_hex
from repro.crypto.keys import KeyDistributor, KeyStore
from repro.crypto.symmetric import Ciphertext, encrypt as symmetric_encrypt
from repro.perf.cache import MISS, GenerationalCache
from repro.faults.clock import FaultClock
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind
from repro.faults.resilience import (
    RetryPolicy,
    RetryTelemetry,
    retry_with_backoff,
)
from repro.xmldb.model import Document, Element
from repro.xmldb.parser import parse_element
from repro.xmldb.serializer import serialize_element
from repro.xmlsec.authorx import (
    Privilege,
    XmlPolicy,
    XmlPolicyBase,
    XmlPropagation,
    XmlSign,
)

#: A configuration: for each reachable grant, the denies dominating it.
Configuration = frozenset[tuple[int, frozenset[int]]]

EMPTY_CONFIGURATION: Configuration = frozenset()


def configuration_key_id(configuration: Configuration) -> str:
    """Deterministic key id for a configuration."""
    if not configuration:
        return "cfg:none"
    canonical = sorted((g, tuple(sorted(d))) for g, d in configuration)
    return "cfg:" + sha256_hex(repr(canonical))[:24]


@dataclass(frozen=True)
class Fragment:
    """The local content of one element (children excluded)."""

    node_path: str
    tag: str
    attributes: tuple[tuple[str, str], ...]
    text: str

    def serialize(self) -> str:
        shell = Element(self.tag, dict(self.attributes),
                        [self.text] if self.text else [])
        shell.attributes["__path__"] = self.node_path
        return serialize_element(shell)

    @classmethod
    def deserialize(cls, xml_text: str) -> "Fragment":
        shell = parse_element(xml_text)
        path = shell.attributes.pop("__path__")
        return cls(path, shell.tag,
                   tuple(sorted(shell.attributes.items())), shell.text)


def block_digest(block: Ciphertext) -> str:
    """Digest of one broadcast block as it crosses the wire."""
    return sha256_hex(b"block:" + block.nonce + block.body
                      + block.tag.encode("utf-8"))


@dataclass
class Packet:
    """The broadcast unit for one document: one block per configuration.

    ``skeleton`` maps each element's node path to its 0-based position
    among all element siblings, letting receivers reassemble views in
    document order.  It reveals only tags and counts — information node
    paths inside the blocks expose anyway (Author-X's connectors make the
    same structural disclosure).

    ``manifest`` lists ``(key_id, block_digest)`` for every block the
    owner packaged, sorted by key id.  Subscribers check received
    blocks against it (:func:`open_packet_checked`): a missing block
    for a held key is an *omission*, a digest mismatch is *tampering* —
    both typed errors, never silently-partial views.  Empty on packets
    built by older code; checking then falls back to MAC verification
    alone.
    """

    doc_id: str
    blocks: tuple[Ciphertext, ...]
    skeleton: dict[str, int]
    manifest: tuple[tuple[str, str], ...] = ()

    @property
    def configuration_count(self) -> int:
        return len(self.blocks)

    def total_bytes(self) -> int:
        return sum(len(b) for b in self.blocks)


def _policy_marks(policy_base: XmlPolicyBase, doc_id: str,
                  document: Document
                  ) -> dict[int, list[tuple[int, XmlPolicy]]]:
    """Per element: (attachment depth, policy) for applicable READ policies."""
    depths: dict[int, int] = {}

    def walk(node: Element, depth: int) -> None:
        depths[id(node)] = depth
        for child in node.element_children:
            walk(child, depth + 1)

    walk(document.root, 0)
    marks: dict[int, list[tuple[int, XmlPolicy]]] = {
        id(node): [] for node in document.iter()}
    policies = [p for p in policy_base
                if p.privilege is Privilege.READ
                and p.applies_to_document(doc_id)]
    # All targets in one DOM traversal (falls back per-policy only for
    # positional predicates) — same machinery as Author-X labelling.
    targets = XmlPolicyBase.select_policy_targets(policies, document)
    for policy, selected in zip(policies, targets):
        for root in selected:
            attachment = depths[id(root)]
            if policy.propagation is XmlPropagation.LOCAL:
                targets: Iterable[Element] = [root]
            elif policy.propagation is XmlPropagation.ONE_LEVEL:
                targets = [root] + root.element_children
            else:
                targets = root.iter()
            for node in targets:
                marks[id(node)].append((attachment, policy))
    return marks


def element_configurations(policy_base: XmlPolicyBase, doc_id: str,
                           document: Document) -> dict[int, Configuration]:
    """Map id(element) -> its policy configuration."""
    marks = _policy_marks(policy_base, doc_id, document)
    configurations: dict[int, Configuration] = {}
    for node in document.iter():
        node_marks = marks[id(node)]
        grants = [(d, p) for d, p in node_marks if p.sign is XmlSign.GRANT]
        denies = [(d, p) for d, p in node_marks if p.sign is XmlSign.DENY]
        entries: set[tuple[int, frozenset[int]]] = set()
        for grant_depth, grant in grants:
            dominating = frozenset(
                deny.policy_id for deny_depth, deny in denies
                if deny_depth >= grant_depth)
            entries.add((grant.policy_id, dominating))
        configurations[id(node)] = frozenset(entries)
    return configurations


def configurations_by_path(policy_base: XmlPolicyBase, doc_id: str,
                           document: Document) -> dict[str, Configuration]:
    """Like :func:`element_configurations`, keyed by node path —
    serializable, which the third-party publishing protocol needs."""
    by_id = element_configurations(policy_base, doc_id, document)
    return {node.node_path(): by_id[id(node)] for node in document.iter()}


def subject_can_unlock(policy_base: XmlPolicyBase, subject: Subject,
                       configuration: Configuration) -> bool:
    """True if *subject* satisfies some grant with no dominating deny."""
    if not configuration:
        return False
    by_id = {p.policy_id: p for p in policy_base}
    for grant_id, dominating in configuration:
        grant = by_id.get(grant_id)
        if grant is None or not grant.applies_to_subject(subject):
            continue
        overridden = any(
            by_id[deny_id].applies_to_subject(subject)
            for deny_id in dominating if deny_id in by_id)
        if not overridden:
            return True
    return False


class Disseminator:
    """Owner-side machinery: label, group, encrypt, distribute keys.

    With ``intern=True`` the expensive, deterministic half of
    :meth:`package` — labelling, configuration grouping and payload
    serialization — is cached per ``(doc_id, document)``, stamped with
    ``(policy generation, document version)`` so any policy or document
    change invalidates it.  Re-packaging an unchanged document then
    only re-encrypts (each packet still gets fresh nonces).  The cache
    is keyed by the document *object* (identity), which is what lets
    the snapshot layer share prep work across epochs: an unchanged
    frozen document thaws to the same cached object every epoch.
    """

    def __init__(self, policy_base: XmlPolicyBase,
                 secret: str = "dissemination",
                 intern: bool = False) -> None:
        self.policy_base = policy_base
        self.key_store = KeyStore(secret)
        self._configurations: dict[str, Configuration] = {}
        self._prep_cache: GenerationalCache | None = (
            GenerationalCache(maxsize=256) if intern else None)

    @property
    def prep_stats(self) -> dict[str, int | float] | None:
        """Packaging-prep cache counters (None unless interning)."""
        if self._prep_cache is None:
            return None
        return self._prep_cache.stats.snapshot()

    def configurations_of(self, doc_id: str, document: Document
                          ) -> dict[int, Configuration]:
        """Map id(element) -> its policy configuration."""
        return element_configurations(self.policy_base, doc_id, document)

    # -- packaging ------------------------------------------------------

    def package(self, doc_id: str, document: Document,
                workers: int | None = None) -> Packet:
        """Encrypt *document* into one block per distinct configuration.

        Elements with the empty configuration (no grant at all) go under
        the reserved ``cfg:none`` key, which is never distributed.

        With ``workers`` set, block encryption runs on a thread pool:
        keys are created and nonces reserved serially (the key store is
        not thread-safe), then the pure
        :func:`repro.crypto.symmetric.encrypt` calls run concurrently.
        Encryption is deterministic given (key, nonce), so the packet is
        byte-identical to the serial one.
        """
        skeleton, payloads = self._prepare(doc_id, document)
        jobs = []
        for key_id, payload in payloads:
            key = self.key_store.get_or_create(key_id)
            jobs.append((key, payload, self.key_store.reserve_nonce(key_id)))
        if workers is not None and workers > 1 and len(jobs) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                blocks = list(pool.map(
                    lambda job: symmetric_encrypt(*job), jobs))
        else:
            blocks = [symmetric_encrypt(*job) for job in jobs]
        manifest = tuple(sorted(
            (block.key_id, block_digest(block)) for block in blocks))
        return Packet(doc_id, tuple(blocks), dict(skeleton), manifest)

    def _prepare(self, doc_id: str, document: Document
                 ) -> tuple[dict[str, int],
                            tuple[tuple[str, str], ...]]:
        """The deterministic packaging prep: skeleton + per-key payloads.

        Cached when interning is on (see class docstring); the returned
        structures are treated as read-only by :meth:`package`.
        """
        cache_key = stamp = None
        if self._prep_cache is not None:
            cache_key = (doc_id, document)
            stamp = (self.policy_base.generation, document.version)
            prep = self._prep_cache.get(cache_key, stamp)
            if prep is not MISS:
                return prep
        configurations = self.configurations_of(doc_id, document)
        groups: dict[str, list[Fragment]] = {}
        skeleton: dict[str, int] = {}
        for node in document.iter():
            if node.parent is None:
                skeleton[node.node_path()] = 0
            else:
                siblings = node.parent.element_children
                skeleton[node.node_path()] = next(
                    i for i, s in enumerate(siblings) if s is node)
            configuration = configurations[id(node)]
            key_id = configuration_key_id(configuration)
            self._configurations.setdefault(key_id, configuration)
            groups.setdefault(key_id, []).append(Fragment(
                node.node_path(), node.tag,
                tuple(sorted(node.attributes.items())), node.text))
        # JSON framing: fragment text may contain any character, so a
        # bare separator byte would be ambiguous.
        payloads = tuple(
            (key_id, json.dumps([f.serialize() for f in groups[key_id]]))
            for key_id in sorted(groups))
        prep = (skeleton, payloads)
        if self._prep_cache is not None:
            self._prep_cache.put(cache_key, stamp, prep, pins=(document,))
        return prep

    # -- key distribution -------------------------------------------------

    def can_unlock(self, subject: Subject,
                   configuration: Configuration) -> bool:
        """True if *subject* satisfies some grant with no dominating deny."""
        return subject_can_unlock(self.policy_base, subject, configuration)

    def entitled_key_ids(self, subject: Subject) -> list[str]:
        """All and only the configuration keys this subject may hold."""
        return sorted(
            key_id for key_id, configuration in self._configurations.items()
            if self.can_unlock(subject, configuration))

    def distributor(self, subjects: dict[str, Subject]) -> KeyDistributor:
        """A distributor granting each named subject its entitled keys."""
        return KeyDistributor(
            self.key_store,
            lambda name: self.entitled_key_ids(subjects[name]))

    def key_count(self) -> int:
        """Distinct distributable configuration keys created so far."""
        return sum(1 for k in self._configurations if k != "cfg:none")


def open_packet(packet: Packet, keys: KeyStore) -> Document | None:
    """Subscriber-side: decrypt what the held keys unlock, rebuild a view.

    Undisclosed ancestors of revealed elements become bare connector
    elements (tag only).  Returns None when nothing could be decrypted.
    """
    fragments: dict[str, Fragment] = {}
    for block in packet.blocks:
        if block.key_id not in keys:
            continue
        payload = keys.decrypt(block).decode("utf-8")
        for piece in json.loads(payload):
            fragment = Fragment.deserialize(piece)
            fragments[fragment.node_path] = fragment
    if not fragments:
        return None

    # Build the set of all paths needed: revealed elements + ancestors.
    needed: set[str] = set()
    for path in fragments:
        parts = path.strip("/").split("/")
        for end in range(1, len(parts) + 1):
            needed.add("/" + "/".join(parts[:end]))

    nodes: dict[str, Element] = {}
    order = packet.skeleton

    def sort_key(path: str) -> tuple[int, int, str]:
        return (path.count("/"), order.get(path, 1 << 30), path)

    for path in sorted(needed, key=sort_key):
        fragment = fragments.get(path)
        last = path.strip("/").split("/")[-1]
        tag = last.split("[")[0]
        if fragment is not None:
            node = Element(fragment.tag, dict(fragment.attributes))
            if fragment.text:
                node.append(fragment.text)
        else:
            node = Element(tag)  # connector: bare tag from the path
        nodes[path] = node
        parent_path = path.rsplit("/", 1)[0]
        if parent_path and parent_path in nodes:
            nodes[parent_path].append(node)

    root_path = min(nodes, key=lambda p: (p.count("/"), p))
    return Document(nodes[root_path], name=f"{packet.doc_id}@received")


# ---------------------------------------------------------------------------
# Faulty broadcast channel + fail-closed subscriber (repro.faults)
# ---------------------------------------------------------------------------

class FaultyChannel:
    """The wire between publisher and subscriber, with scheduled faults.

    One :meth:`deliver` call is one broadcast delivery attempt at the
    fault site ``dissemination:<name>``.  Whole-packet faults (drop,
    crash, reorder-behind-the-next-delivery) raise typed transport
    errors; block-level faults return a damaged packet — dropped,
    duplicated, shuffled or bit-rotted blocks — which is exactly what
    :func:`open_packet_checked` must catch.  A faithless *publisher*
    omitting or forging blocks looks identical on the wire, so the same
    subscriber check covers both accident and malice.
    """

    def __init__(self, faults: FaultInjector, name: str = "channel") -> None:
        self.faults = faults
        self.site = f"dissemination:{name}"

    def deliver(self, packet: Packet) -> Packet:
        events = self.faults.step(self.site)
        blocks = list(packet.blocks)
        for event in events:
            if event.kind is FaultKind.CRASH:
                raise ReplicaUnavailable("the publisher is down")
            if event.kind in (FaultKind.DROP, FaultKind.REORDER):
                raise MessageDropped(
                    f"broadcast of {packet.doc_id!r} lost in transit")
            if event.kind is FaultKind.STALE_READ:
                # No replica state to lag behind here; a stale delivery
                # is a lost-then-retried one.
                raise MessageDropped(
                    f"broadcast of {packet.doc_id!r} superseded")
            if event.kind is FaultKind.CORRUPT and blocks:
                index = self.faults.op_count(self.site) % len(blocks)
                victim = blocks[index]
                blocks[index] = Ciphertext(
                    victim.key_id, victim.nonce,
                    self.faults.corrupt_bytes(victim.body, self.site),
                    victim.tag)
            if event.kind is FaultKind.DUPLICATE and blocks:
                blocks.append(blocks[0])
        # Block order is never guaranteed by the substrate; reversing on
        # every delivery keeps receivers honest about that.
        blocks.reverse()
        return Packet(packet.doc_id, tuple(blocks), dict(packet.skeleton),
                      packet.manifest)


def omit_block(packet: Packet, key_id: str) -> Packet:
    """A faithless-publisher helper: serve *packet* without the block
    for *key_id* while still advertising it in the manifest."""
    kept = tuple(b for b in packet.blocks if b.key_id != key_id)
    return Packet(packet.doc_id, kept, dict(packet.skeleton),
                  packet.manifest)


def open_packet_checked(packet: Packet, keys: KeyStore) -> Document | None:
    """Fail-closed subscriber opening.

    Every block for a key the subscriber holds is checked against the
    manifest before use: a digest mismatch (or a MAC failure during
    decryption) raises :class:`TamperedPackageError`; a manifest entry
    with no matching block raises :class:`IncompletePackageError`.
    Only a packet that passes completely is rebuilt into a view —
    corrupted bytes are never rendered, partially-decryptable packets
    are never silently truncated.
    """
    expected = {key_id: digest for key_id, digest in packet.manifest}
    held_blocks: dict[str, Ciphertext] = {}
    for block in packet.blocks:
        if block.key_id not in keys:
            continue
        digest = block_digest(block)
        if expected and block.key_id in expected:
            if digest != expected[block.key_id]:
                raise TamperedPackageError(
                    f"block {block.key_id!r} of {packet.doc_id!r} does "
                    f"not match the owner's manifest")
        seen = held_blocks.get(block.key_id)
        if seen is not None and block_digest(seen) != digest:
            raise TamperedPackageError(
                f"conflicting duplicates of block {block.key_id!r}")
        held_blocks[block.key_id] = block
    missing = [key_id for key_id in expected
               if key_id in keys and key_id not in held_blocks]
    if missing:
        raise IncompletePackageError(
            f"packet {packet.doc_id!r} is missing blocks for held keys: "
            f"{sorted(missing)}")
    clean_blocks: list[Ciphertext] = []
    for key_id in sorted(held_blocks):
        block = held_blocks[key_id]
        try:
            keys.decrypt(block)
        except IntegrityError as exc:
            raise TamperedPackageError(
                f"block {key_id!r} of {packet.doc_id!r} failed its "
                f"MAC: {exc}") from exc
        clean_blocks.append(block)
    verified = Packet(packet.doc_id, tuple(clean_blocks),
                      dict(packet.skeleton), packet.manifest)
    return open_packet(verified, keys)


class ResilientSubscriber:
    """The wired dissemination client path: fetch, verify, retry.

    ``fetch`` produces one delivery attempt (typically
    ``lambda: channel.deliver(publisher_packet)``).  Tampered and
    incomplete deliveries are retried like transport faults — a fresh
    delivery may be clean — but when the budget runs out the *typed*
    error propagates: the subscriber never downgrades to unchecked
    opening.
    """

    def __init__(self, keys: KeyStore, policy: RetryPolicy | None = None,
                 clock: FaultClock | None = None) -> None:
        self.keys = keys
        self.policy = policy if policy is not None else RetryPolicy()
        self.clock = clock if clock is not None else FaultClock()
        self.telemetry = RetryTelemetry()

    def receive(self, fetch) -> Document | None:
        self.telemetry = RetryTelemetry()
        return retry_with_backoff(
            lambda: open_packet_checked(fetch(), self.keys),
            self.policy, self.clock, key="dissemination",
            retry_on=(TransportError, TamperedPackageError,
                      IncompletePackageError),
            telemetry=self.telemetry)
