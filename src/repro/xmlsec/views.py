"""Authorized-view computation ([5]'s "algorithms for computing views").

Given a document and the per-element labels produced by
:class:`repro.xmlsec.authorx.XmlPolicyBase`, :func:`compute_view` builds
the portion of the document the subject may see:

* READ elements are kept whole (attributes + text);
* NAVIGATE elements keep tag and structure but lose attributes and text;
* inaccessible elements are removed — unless a descendant is accessible,
  in which case the element is kept as a bare *connector* so the view
  remains a tree (Author-X's "loose" connection handling).

Optionally, removed subtrees are replaced by pruned markers carrying their
original node path, which is what the third-party publishing protocol
needs to attach Merkle filler hashes (:mod:`repro.pubsub`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.subjects import Subject
from repro.merkle.xml_merkle import make_pruned_marker
from repro.perf.cache import MISS, GenerationalCache
from repro.xmldb.model import Document, Element
from repro.xmlsec.authorx import NodeLabel, XmlPolicyBase


@dataclass
class ViewStats:
    """Bookkeeping about one view computation (used by benchmarks)."""

    total_elements: int = 0
    read_elements: int = 0
    navigate_elements: int = 0
    connector_elements: int = 0
    pruned_subtrees: int = 0


def _visible_below_map(root: Element,
                       labels: dict[int, NodeLabel]) -> dict[int, bool]:
    """``id(node) -> does node's subtree contain anything visible``.

    One post-order pass; replaces the per-node subtree scan that made
    view building O(n²) on deep all-denied documents.
    """
    visible: dict[int, bool] = {}

    def walk(node: Element) -> bool:
        result = labels[id(node)].access != "none"
        for child in node.element_children:
            # No short-circuit: every node needs its own entry.
            result = walk(child) or result
        visible[id(node)] = result
        return result

    walk(root)
    return visible


def _build_view(node: Element, labels: dict[int, NodeLabel],
                visible_below: dict[int, bool],
                stats: ViewStats, with_markers: bool) -> Element | None:
    label = labels[id(node)]
    stats.total_elements += 1
    if label.access == "none" and not visible_below[id(node)]:
        stats.pruned_subtrees += 1
        if with_markers:
            return make_pruned_marker(node.node_path())
        return None

    if label.access == "read":
        clone = Element(node.tag, dict(node.attributes))
        stats.read_elements += 1
        keep_text = True
    elif label.access == "navigate":
        clone = Element(node.tag)
        stats.navigate_elements += 1
        keep_text = False
    else:
        # Connector: inaccessible itself but an ancestor of something
        # visible; keep the bare tag so the tree stays connected.
        clone = Element(node.tag)
        stats.connector_elements += 1
        keep_text = False

    for child in node.children:
        if isinstance(child, str):
            if keep_text:
                clone.append(child)
            continue
        built = _build_view(child, labels, visible_below, stats,
                            with_markers)
        if built is not None:
            clone.append(built)
    return clone


def compute_view(policy_base: XmlPolicyBase, subject: Subject,
                 doc_id: str, document: Document,
                 with_markers: bool = False
                 ) -> tuple[Document | None, ViewStats]:
    """The portion of *document* that *subject* is authorized to see.

    Returns ``(view, stats)``; *view* is None when nothing at all is
    visible.  With ``with_markers=True`` pruned subtrees leave
    ``__pruned__`` placeholder elements (for Merkle verification);
    connectors and markers never reveal content.
    """
    labels = policy_base.label_document(subject, doc_id, document)
    stats = ViewStats()
    visible_below = _visible_below_map(document.root, labels)
    root_view = _build_view(document.root, labels, visible_below, stats,
                            with_markers)
    if root_view is None or (
            not with_markers
            and stats.read_elements == 0
            and stats.navigate_elements == 0):
        return None, stats
    from repro.merkle.xml_merkle import is_pruned_marker
    if is_pruned_marker(root_view):
        return None, stats
    return Document(root_view, name=f"{document.name}@view"), stats


class CachedViewBuilder:
    """Memoized :func:`compute_view` for the read-mostly serving path.

    Entries are keyed by ``(subject, doc_id, document, with_markers)``
    — subject and document hash by identity and are pinned by the key —
    and stamped with ``(policy generation, document version)``, so any
    policy change or document mutation invalidates exactly the affected
    views.  Against snapshot-thawed documents (constant version, stable
    identity across epochs) the stamp never moves and repeat views are
    pure hits, including across epochs.  Returned views must be treated
    as read-only.
    """

    def __init__(self, policy_base: XmlPolicyBase,
                 maxsize: int = 256) -> None:
        self.policy_base = policy_base
        self._cache = GenerationalCache(maxsize=maxsize)

    @property
    def cache_stats(self) -> dict[str, int | float]:
        return self._cache.stats.snapshot()

    def view(self, subject: Subject, doc_id: str, document: Document,
             with_markers: bool = False
             ) -> tuple[Document | None, ViewStats]:
        key = (subject, doc_id, document, with_markers)
        stamp = (self.policy_base.generation, document.version)
        cached = self._cache.get(key, stamp)
        if cached is not MISS:
            return cached
        result = compute_view(self.policy_base, subject, doc_id,
                              document, with_markers)
        self._cache.put(key, stamp, result, pins=(subject, document))
        return result


def visible_element_count(policy_base: XmlPolicyBase, subject: Subject,
                          doc_id: str, document: Document) -> int:
    """How many elements the subject can see (read or navigate)."""
    labels = policy_base.label_document(subject, doc_id, document)
    return sum(1 for node in document.iter()
               if labels[id(node)].access != "none")
