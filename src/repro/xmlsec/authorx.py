"""Author-X style access control policies for XML documents [5].

A policy in this model names:

* a *subject specification*: a credential expression
  (:mod:`repro.core.credentials`);
* an *object specification*: a document selector (document id or '*') plus
  an XPath-lite expression addressing portions within the document —
  giving the §3.2 granularity ladder: collection ('*' + '/'), document
  (id + '/'), element (id + path), and *content-dependent* selection
  (path with predicates such as ``//record[diagnosis='flu']``);
* a *privilege*: READ (see the whole subtree) or NAVIGATE (see the
  element and its structure but no text/attribute content);
* a *sign*: GRANT or DENY, with DENY overriding at equal depth;
* a *propagation* depth: LOCAL (the selected elements only), ONE_LEVEL,
  or CASCADE (whole subtrees).

The resolution rule is the one Author-X uses: the *most specific* policy
along the element's ancestor chain wins — a policy attached to a deeper
node overrides policies inherited from above; among policies attached at
the same depth, DENY overrides GRANT.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from typing import Callable, Sequence

from repro.core.credentials import CredentialExpression
from repro.core.errors import ConfigurationError, ParseError, QueryError
from repro.core.subjects import Subject
from repro.perf.cache import MISS, Generation, GenerationalCache
from repro.perf.multipath import simultaneous_select, supports_path
from repro.xmldb.model import Document, Element
from repro.xmldb.xpath import XPath, compile_xpath, select_elements


class Privilege(enum.Enum):
    READ = "read"
    NAVIGATE = "navigate"


class XmlSign(enum.Enum):
    GRANT = "+"
    DENY = "-"


class XmlPropagation(enum.Enum):
    LOCAL = "local"
    ONE_LEVEL = "one_level"
    CASCADE = "cascade"


_xml_policy_ids = itertools.count(1)


@dataclass(frozen=True)
class XmlPolicy:
    """One Author-X policy."""

    subject_spec: CredentialExpression
    document_selector: str           # document id or '*'
    target: XPath
    privilege: Privilege = Privilege.READ
    sign: XmlSign = XmlSign.GRANT
    propagation: XmlPropagation = XmlPropagation.CASCADE
    policy_id: int = field(default_factory=lambda: next(_xml_policy_ids))

    def applies_to_document(self, doc_id: str) -> bool:
        return self.document_selector in ("*", doc_id)

    def applies_to_subject(self, subject: Subject) -> bool:
        return self.subject_spec.evaluate(subject)

    def __repr__(self) -> str:
        return (f"XmlPolicy#{self.policy_id}({self.sign.value}"
                f"{self.privilege.value} {self.document_selector}:"
                f"{self.target} to {self.subject_spec.description} "
                f"[{self.propagation.value}])")


def xml_grant(subject_spec: CredentialExpression, target: str,
              document: str = "*",
              privilege: Privilege = Privilege.READ,
              propagation: XmlPropagation = XmlPropagation.CASCADE
              ) -> XmlPolicy:
    return XmlPolicy(subject_spec, document, compile_xpath(target),
                     privilege, XmlSign.GRANT, propagation)


def xml_deny(subject_spec: CredentialExpression, target: str,
             document: str = "*",
             privilege: Privilege = Privilege.READ,
             propagation: XmlPropagation = XmlPropagation.CASCADE
             ) -> XmlPolicy:
    return XmlPolicy(subject_spec, document, compile_xpath(target),
                     privilege, XmlSign.DENY, propagation)


@dataclass(frozen=True)
class NodeLabel:
    """Resolved authorization state for one element.

    ``access`` is the winning privilege level: 'read' (full), 'navigate'
    (structure only) or 'none'.  ``deciding_policy`` explains the verdict.
    """

    access: str
    deciding_policy: XmlPolicy | None


class XmlPolicyBase:
    """The set of XML policies protecting a database.

    Labellings are memoized per (subject, document id, document object),
    stamped with ``(policy generation, document version)`` so both a
    policy add/remove and an in-place document edit invalidate exactly
    the affected entries.  Cached label maps are shared — treat them as
    read-only.
    """

    def __init__(self, policies: "list[XmlPolicy] | None" = None) -> None:
        self._policies: list[XmlPolicy] = list(policies or [])
        self._generation = Generation()
        self._label_cache = GenerationalCache(maxsize=256)

    def add(self, policy: XmlPolicy) -> XmlPolicy:
        self._policies.append(policy)
        self._generation.bump()
        return policy

    def remove(self, policy: XmlPolicy) -> None:
        """Revoke a policy; cached labellings go stale immediately."""
        try:
            self._policies.remove(policy)
        except ValueError:
            raise ConfigurationError(
                f"{policy!r} not in XML policy base") from None
        self._generation.bump()

    @property
    def generation(self) -> int:
        """Mutation counter; changes on every policy add/remove."""
        return self._generation.value

    def add_invalidation_hook(self, hook: Callable[[], None]) -> None:
        """Call *hook* after every policy add/remove."""
        self._generation.add_hook(hook)

    def label_cache_stats(self) -> dict[str, int | float]:
        """Hit/miss counters of the labelling cache."""
        return self._label_cache.stats.snapshot()

    def __len__(self) -> int:
        return len(self._policies)

    def __iter__(self):
        return iter(self._policies)

    def policies(self) -> "list[XmlPolicy]":
        """A snapshot of the base, for static analysis."""
        return list(self._policies)

    def policies_for(self, subject: Subject, doc_id: str) -> list[XmlPolicy]:
        return [p for p in self._policies
                if p.applies_to_document(doc_id)
                and p.applies_to_subject(subject)]

    @staticmethod
    def select_policy_targets(policies: Sequence[XmlPolicy],
                              document: Document) -> list[list[Element]]:
        """The target element set of every policy, one list per policy.

        Distinct target paths are evaluated once and the element list
        shared among every policy using them — policy bases protect the
        same DTD elements for many subject groups, so duplicates are the
        common case.  Paths the simultaneous matcher supports (the vast
        majority: everything without positional predicates) are then all
        evaluated in a single DOM traversal; the rest fall back to the
        classic engine one by one.  A target whose evaluation fails
        selects nothing — the same forgiving behaviour the per-policy
        labeller always had.  Returned lists are shared: treat them as
        read-only.
        """
        results: list[list[Element]] = [[] for _ in policies]
        groups: dict[str, list[int]] = {}
        for index, policy in enumerate(policies):
            groups.setdefault(str(policy.target), []).append(index)
        fast = [indices for indices in groups.values()
                if supports_path(policies[indices[0]].target)]
        if fast:
            for indices, selected in zip(
                    fast,
                    simultaneous_select(
                        [policies[indices[0]].target for indices in fast],
                        document)):
                for index in indices:
                    results[index] = selected
        fast_heads = {indices[0] for indices in fast}
        for text, indices in groups.items():
            if indices[0] in fast_heads:
                continue
            try:
                selected = select_elements(policies[indices[0]].target,
                                           document)
            except (ParseError, QueryError):
                # A malformed target selects nothing (closed world);
                # anything else propagates instead of failing open.
                selected = []
            for index in indices:
                results[index] = selected
        return results

    def label_document(self, subject: Subject, doc_id: str,
                       document: Document,
                       use_cache: bool = True) -> dict[int, NodeLabel]:
        """Resolve per-element authorization for the whole document.

        Returns a map from ``id(element)`` to :class:`NodeLabel`.  The
        algorithm follows Author-X:

        1. Evaluate each applicable policy's XPath target, marking the
           selected elements (and, per propagation, their subtrees) with
           (depth-of-attachment, sign, privilege).
        2. For each element, the mark attached at the greatest depth wins;
           ties resolve DENY over GRANT, and NAVIGATE is dominated by READ
           within the same sign/depth tier.
        3. Unmarked elements default to no access (closed world).

        All policy targets are evaluated in one DOM traversal (see
        :meth:`select_policy_targets`); the per-policy-traversal variant
        survives as :meth:`label_document_per_policy`, the oracle the
        equivalence tests and benchmarks compare against.
        """
        stamp = (self._generation.value, document.version)
        key = (subject, doc_id, document)
        if use_cache:
            cached = self._label_cache.get(key, stamp)
            if cached is not MISS:
                return cached
        policies = self.policies_for(subject, doc_id)
        targets = self.select_policy_targets(policies, document)
        labels = self._resolve_labels(policies, targets, document)
        if use_cache:
            self._label_cache.put(key, stamp, labels)
        return labels

    def label_document_per_policy(self, subject: Subject, doc_id: str,
                                  document: Document) -> dict[int, NodeLabel]:
        """Legacy labeller: one DOM traversal *per policy*.

        Kept as the correctness oracle for the single-pass path — the
        equivalence suite asserts both produce identical label maps.
        """
        policies = self.policies_for(subject, doc_id)
        targets: list[list[Element]] = []
        for policy in policies:
            try:
                targets.append(select_elements(policy.target, document))
            except (ParseError, QueryError):
                targets.append([])
        return self._resolve_labels(policies, targets, document)

    @staticmethod
    def _resolve_labels(policies: Sequence[XmlPolicy],
                        targets: Sequence[list[Element]],
                        document: Document) -> dict[int, NodeLabel]:
        # Attachment points only; propagation happens *during* the one
        # downward sweep below (a CASCADE mark rides along the
        # traversal) instead of eagerly expanding each mark over its
        # subtree, which would cost O(marks × subtree) again.
        attach: dict[int, list[XmlPolicy]] = {}
        for policy, selected in zip(policies, targets):
            for target_root in selected:
                attach.setdefault(id(target_root), []).append(policy)

        labels: dict[int, NodeLabel] = {}
        unmarked = NodeLabel("none", None)
        # Many nodes share the same mark *context* — the ancestors' mark
        # list object plus the same locally attached (depth, policy)
        # extras (think of the 200 <name> elements under identically
        # protected records).  Memoizing resolution on that context runs
        # the tier logic once per distinct context, not once per node.
        context_label: dict[object, NodeLabel] = {}
        # Extended inherited-mark lists interned by content: sibling
        # subtrees attaching the same cascades share one list object, so
        # their descendants' contexts compare equal by ``id``.  The
        # intern table also keeps every list alive, keeping ids unique.
        interned: dict[tuple, list] = {}
        resolve = XmlPolicyBase._label_from_marks

        def walk(node: Element, depth: int,
                 inherited: list[tuple[int, XmlPolicy]],
                 parent_one_level: list[tuple[int, XmlPolicy]] | None
                 ) -> None:
            own = attach.get(id(node))
            child_inherited = inherited
            one_level: list[tuple[int, XmlPolicy]] | None = None
            key: object
            if own is None and parent_one_level is None:
                extra = None
                key = id(inherited)
            else:
                extra = list(parent_one_level or ())
                cascades: list[tuple[int, XmlPolicy]] | None = None
                for policy in own or ():
                    mark = (depth, policy)
                    extra.append(mark)
                    propagation = policy.propagation
                    if propagation is XmlPropagation.CASCADE:
                        if cascades is None:
                            cascades = [mark]
                        else:
                            cascades.append(mark)
                    elif propagation is XmlPropagation.ONE_LEVEL:
                        if one_level is None:
                            one_level = [mark]
                        else:
                            one_level.append(mark)
                if cascades is not None:
                    intern_key = (id(inherited),
                                  tuple((d, p.policy_id)
                                        for d, p in cascades))
                    child_inherited = interned.get(intern_key)
                    if child_inherited is None:
                        child_inherited = inherited + cascades
                        interned[intern_key] = child_inherited
                key = (id(inherited),
                       tuple((d, p.policy_id) for d, p in extra))
            label = context_label.get(key)
            if label is None:
                node_marks = (inherited if extra is None
                              else inherited + extra)
                label = resolve(node_marks) if node_marks else unmarked
                context_label[key] = label
            labels[id(node)] = label
            for child in node.element_children:
                walk(child, depth + 1, child_inherited, one_level)

        root_marks: list[tuple[int, XmlPolicy]] = []
        walk(document.root, 0, root_marks, None)
        return labels

    @staticmethod
    def _label_from_marks(node_marks: "list[tuple[int, XmlPolicy]]"
                          ) -> NodeLabel:
        """Author-X tier resolution for one element's active marks."""
        best_depth = max(depth for depth, _ in node_marks)
        tier = [p for depth, p in node_marks if depth == best_depth]
        # Tie-break deterministically by policy id so the deciding
        # policy does not depend on insertion order of the base.
        tier.sort(key=lambda p: p.policy_id)
        denies = [p for p in tier if p.sign is XmlSign.DENY]
        if denies:
            # The strongest denial wins: denying READ still may leave
            # NAVIGATE if a grant for NAVIGATE exists and no NAVIGATE
            # deny does.
            denied_privs = {p.privilege for p in denies}
            grants = [p for p in tier if p.sign is XmlSign.GRANT]
            if (Privilege.READ not in denied_privs
                    and any(p.privilege is Privilege.READ
                            for p in grants)):
                return NodeLabel(
                    "read",
                    next(p for p in grants
                         if p.privilege is Privilege.READ))
            # Navigate survives only via an explicit NAVIGATE grant:
            # denying READ also kills the navigation READ implies.
            navigate_ok = (
                Privilege.NAVIGATE not in denied_privs
                and any(p.privilege is Privilege.NAVIGATE
                        for p in grants))
            if navigate_ok:
                return NodeLabel("navigate", denies[0])
            return NodeLabel("none", denies[0])
        grants = tier
        if any(p.privilege is Privilege.READ for p in grants):
            policy = next(p for p in grants
                          if p.privilege is Privilege.READ)
            return NodeLabel("read", policy)
        return NodeLabel("navigate", grants[0])
