"""Author-X style access control policies for XML documents [5].

A policy in this model names:

* a *subject specification*: a credential expression
  (:mod:`repro.core.credentials`);
* an *object specification*: a document selector (document id or '*') plus
  an XPath-lite expression addressing portions within the document —
  giving the §3.2 granularity ladder: collection ('*' + '/'), document
  (id + '/'), element (id + path), and *content-dependent* selection
  (path with predicates such as ``//record[diagnosis='flu']``);
* a *privilege*: READ (see the whole subtree) or NAVIGATE (see the
  element and its structure but no text/attribute content);
* a *sign*: GRANT or DENY, with DENY overriding at equal depth;
* a *propagation* depth: LOCAL (the selected elements only), ONE_LEVEL,
  or CASCADE (whole subtrees).

The resolution rule is the one Author-X uses: the *most specific* policy
along the element's ancestor chain wins — a policy attached to a deeper
node overrides policies inherited from above; among policies attached at
the same depth, DENY overrides GRANT.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.core.credentials import CredentialExpression
from repro.core.subjects import Subject
from repro.xmldb.model import Document, Element
from repro.xmldb.xpath import XPath, compile_xpath, select_elements


class Privilege(enum.Enum):
    READ = "read"
    NAVIGATE = "navigate"


class XmlSign(enum.Enum):
    GRANT = "+"
    DENY = "-"


class XmlPropagation(enum.Enum):
    LOCAL = "local"
    ONE_LEVEL = "one_level"
    CASCADE = "cascade"


_xml_policy_ids = itertools.count(1)


@dataclass(frozen=True)
class XmlPolicy:
    """One Author-X policy."""

    subject_spec: CredentialExpression
    document_selector: str           # document id or '*'
    target: XPath
    privilege: Privilege = Privilege.READ
    sign: XmlSign = XmlSign.GRANT
    propagation: XmlPropagation = XmlPropagation.CASCADE
    policy_id: int = field(default_factory=lambda: next(_xml_policy_ids))

    def applies_to_document(self, doc_id: str) -> bool:
        return self.document_selector in ("*", doc_id)

    def applies_to_subject(self, subject: Subject) -> bool:
        return self.subject_spec.evaluate(subject)

    def __repr__(self) -> str:
        return (f"XmlPolicy#{self.policy_id}({self.sign.value}"
                f"{self.privilege.value} {self.document_selector}:"
                f"{self.target} to {self.subject_spec.description} "
                f"[{self.propagation.value}])")


def xml_grant(subject_spec: CredentialExpression, target: str,
              document: str = "*",
              privilege: Privilege = Privilege.READ,
              propagation: XmlPropagation = XmlPropagation.CASCADE
              ) -> XmlPolicy:
    return XmlPolicy(subject_spec, document, compile_xpath(target),
                     privilege, XmlSign.GRANT, propagation)


def xml_deny(subject_spec: CredentialExpression, target: str,
             document: str = "*",
             privilege: Privilege = Privilege.READ,
             propagation: XmlPropagation = XmlPropagation.CASCADE
             ) -> XmlPolicy:
    return XmlPolicy(subject_spec, document, compile_xpath(target),
                     privilege, XmlSign.DENY, propagation)


@dataclass(frozen=True)
class NodeLabel:
    """Resolved authorization state for one element.

    ``access`` is the winning privilege level: 'read' (full), 'navigate'
    (structure only) or 'none'.  ``deciding_policy`` explains the verdict.
    """

    access: str
    deciding_policy: XmlPolicy | None


class XmlPolicyBase:
    """The set of XML policies protecting a database."""

    def __init__(self, policies: "list[XmlPolicy] | None" = None) -> None:
        self._policies: list[XmlPolicy] = list(policies or [])

    def add(self, policy: XmlPolicy) -> XmlPolicy:
        self._policies.append(policy)
        return policy

    def __len__(self) -> int:
        return len(self._policies)

    def __iter__(self):
        return iter(self._policies)

    def policies(self) -> "list[XmlPolicy]":
        """A snapshot of the base, for static analysis."""
        return list(self._policies)

    def policies_for(self, subject: Subject, doc_id: str) -> list[XmlPolicy]:
        return [p for p in self._policies
                if p.applies_to_document(doc_id)
                and p.applies_to_subject(subject)]

    def label_document(self, subject: Subject, doc_id: str,
                       document: Document) -> dict[int, NodeLabel]:
        """Resolve per-element authorization for the whole document.

        Returns a map from ``id(element)`` to :class:`NodeLabel`.  The
        algorithm follows Author-X:

        1. Evaluate each applicable policy's XPath target, marking the
           selected elements (and, per propagation, their subtrees) with
           (depth-of-attachment, sign, privilege).
        2. For each element, the mark attached at the greatest depth wins;
           ties resolve DENY over GRANT, and NAVIGATE is dominated by READ
           within the same sign/depth tier.
        3. Unmarked elements default to no access (closed world).
        """
        # element -> list of (attachment_depth, policy)
        marks: dict[int, list[tuple[int, XmlPolicy]]] = {}
        depths: dict[int, int] = {}
        for depth, node in _iter_with_depth(document.root):
            depths[id(node)] = depth

        for policy in self.policies_for(subject, doc_id):
            try:
                selected = select_elements(policy.target, document)
            except Exception:
                continue
            for root in selected:
                attachment = depths[id(root)]
                targets: list[Element]
                if policy.propagation is XmlPropagation.LOCAL:
                    targets = [root]
                elif policy.propagation is XmlPropagation.ONE_LEVEL:
                    targets = [root] + root.element_children
                else:
                    targets = list(root.iter())
                for node in targets:
                    marks.setdefault(id(node), []).append(
                        (attachment, policy))

        labels: dict[int, NodeLabel] = {}
        for node in document.iter():
            node_marks = marks.get(id(node))
            if not node_marks:
                labels[id(node)] = NodeLabel("none", None)
                continue
            best_depth = max(depth for depth, _ in node_marks)
            tier = [p for depth, p in node_marks if depth == best_depth]
            # Tie-break deterministically by policy id so the deciding
            # policy does not depend on insertion order of the base.
            tier.sort(key=lambda p: p.policy_id)
            denies = [p for p in tier if p.sign is XmlSign.DENY]
            if denies:
                # The strongest denial wins: denying READ still may leave
                # NAVIGATE if a grant for NAVIGATE exists and no NAVIGATE
                # deny does.
                denied_privs = {p.privilege for p in denies}
                grants = [p for p in tier if p.sign is XmlSign.GRANT]
                if (Privilege.READ not in denied_privs
                        and any(p.privilege is Privilege.READ
                                for p in grants)):
                    labels[id(node)] = NodeLabel(
                        "read",
                        next(p for p in grants
                             if p.privilege is Privilege.READ))
                    continue
                # Navigate survives only via an explicit NAVIGATE grant:
                # denying READ also kills the navigation READ implies.
                navigate_ok = (
                    Privilege.NAVIGATE not in denied_privs
                    and any(p.privilege is Privilege.NAVIGATE
                            for p in grants))
                if navigate_ok:
                    labels[id(node)] = NodeLabel("navigate", denies[0])
                else:
                    labels[id(node)] = NodeLabel("none", denies[0])
                continue
            grants = tier
            if any(p.privilege is Privilege.READ for p in grants):
                policy = next(p for p in grants
                              if p.privilege is Privilege.READ)
                labels[id(node)] = NodeLabel("read", policy)
            else:
                labels[id(node)] = NodeLabel("navigate", grants[0])
        return labels


def _iter_with_depth(root: Element, depth: int = 0):
    yield depth, root
    for child in root.element_children:
        yield from _iter_with_depth(child, depth + 1)
