"""repro — reproduction of Ferrari & Thuraisingham, *Security and Privacy
for Web Databases and Services* (EDBT 2004).

The paper is a vision paper; this library builds every system it describes:

- :mod:`repro.core` — the unified policy framework (subjects, credentials,
  hierarchical objects, signed policies, conflict resolution, MLS, audit);
- :mod:`repro.crypto` — educational-strength crypto substrate (RSA,
  hashing, stream cipher, key management);
- :mod:`repro.xmldb` / :mod:`repro.xmlsec` — XML database and Author-X
  style fine-grained access control, views and secure dissemination;
- :mod:`repro.merkle` / :mod:`repro.pubsub` — Merkle trees and secure
  third-party publishing with authenticity + completeness proofs;
- :mod:`repro.uddi` / :mod:`repro.wsa` — UDDI registries (two- and
  third-party) and the Web Service Architecture with message security;
- :mod:`repro.rdfdb` — RDF store with semantic-level access control;
- :mod:`repro.relational` — relational substrate with System R
  authorization and web transaction models;
- :mod:`repro.privacy` — privacy constraints, inference controller and
  privacy-preserving data mining;
- :mod:`repro.p3p` — P3P policies, preferences, and the W3C WSA privacy
  requirements;
- :mod:`repro.semweb` — the layered secure semantic web of §5;
- :mod:`repro.datagen` / :mod:`repro.bench` — synthetic workloads and the
  experiment harness.
"""

__version__ = "1.0.0"
