"""RDF data model: IRIs, literals, blank nodes, triples.

"RDF is fundamental to the semantic web ... it also describes contents of
documents as well as relationships between various entities" (§3.2).
We model the RDF abstract syntax: a triple is (subject, predicate,
object) where subjects are IRIs or blank nodes, predicates are IRIs, and
objects may also be literals.  Terms are small frozen dataclasses so
triples are hashable and sets of triples behave like graphs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class IRI:
    """An IRI reference, optionally built from a namespace + local name."""

    value: str

    def __post_init__(self) -> None:
        if not self.value or any(c.isspace() for c in self.value):
            raise ConfigurationError(f"invalid IRI {self.value!r}")

    def __str__(self) -> str:
        return f"<{self.value}>"

    @property
    def local_name(self) -> str:
        for separator in ("#", "/"):
            if separator in self.value:
                return self.value.rsplit(separator, 1)[1]
        return self.value


@dataclass(frozen=True)
class Literal:
    """A literal value with an optional datatype tag."""

    value: str
    datatype: str = "string"

    def __str__(self) -> str:
        if self.datatype != "string":
            return f'"{self.value}"^^{self.datatype}'
        return f'"{self.value}"'

    @classmethod
    def number(cls, value: "int | float") -> "Literal":
        return cls(str(value), "number")

    def as_number(self) -> float:
        if self.datatype != "number":
            raise ConfigurationError(f"literal {self} is not numeric")
        return float(self.value)


_blank_ids = itertools.count(1)


@dataclass(frozen=True)
class BlankNode:
    """An anonymous node; fresh ids come from :func:`blank`."""

    label: str

    def __str__(self) -> str:
        return f"_:{self.label}"


def blank(prefix: str = "b") -> BlankNode:
    return BlankNode(f"{prefix}{next(_blank_ids)}")


#: Types usable in each triple position.
SubjectTerm = IRI | BlankNode
ObjectTerm = IRI | BlankNode | Literal


class Namespace:
    """Factory for IRIs sharing a prefix: ``EX = Namespace("http://ex/")``;
    ``EX.alice`` and ``EX["alice"]`` both give ``IRI("http://ex/alice")``."""

    def __init__(self, prefix: str) -> None:
        self._prefix = prefix

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("_"):
            raise AttributeError(name)
        return IRI(self._prefix + name)

    def __getitem__(self, name: str) -> IRI:
        return IRI(self._prefix + name)

    @property
    def prefix(self) -> str:
        return self._prefix


# The RDF / RDFS core vocabulary used across the package.
RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")


@dataclass(frozen=True)
class Triple:
    """One RDF statement."""

    subject: SubjectTerm
    predicate: IRI
    object: ObjectTerm

    def __post_init__(self) -> None:
        if not isinstance(self.subject, (IRI, BlankNode)):
            raise ConfigurationError(
                f"triple subject must be IRI or blank node, got "
                f"{type(self.subject).__name__}")
        if not isinstance(self.predicate, IRI):
            raise ConfigurationError("triple predicate must be an IRI")
        if not isinstance(self.object, (IRI, BlankNode, Literal)):
            raise ConfigurationError(
                f"triple object must be IRI, blank node or literal, got "
                f"{type(self.object).__name__}")

    def __str__(self) -> str:
        return f"{self.subject} {self.predicate} {self.object} ."

    def with_object(self, obj: ObjectTerm) -> "Triple":
        return Triple(self.subject, self.predicate, obj)


def triple(subject: SubjectTerm, predicate: IRI,
           obj: "ObjectTerm | str | int | float") -> Triple:
    """Builder that coerces plain strings/numbers to literals."""
    if isinstance(obj, str):
        obj = Literal(obj)
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        obj = Literal.number(obj)
    return Triple(subject, predicate, obj)
