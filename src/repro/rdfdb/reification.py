"""Reification: statements about statements (§3.2: "What are the security
implications of statements about statements?").

Reifying a triple creates a statement node with ``rdf:subject`` /
``rdf:predicate`` / ``rdf:object`` triples plus a type triple; other
triples can then talk *about* the statement (who asserted it, how
confident we are...).

The security implication the paper points at: the reification quadruple
*re-encodes the content of the base triple*.  Protecting the base triple
while leaving its reification readable leaks everything.
:func:`reifications_of` is the hook the security layer uses to find and
co-protect reifications (see :mod:`repro.rdfdb.security`).
"""

from __future__ import annotations

from repro.rdfdb.model import (
    RDF,
    SubjectTerm,
    Triple,
    blank,
)
from repro.rdfdb.store import TripleStore


def reify(store: TripleStore, statement: Triple,
          node: SubjectTerm | None = None) -> SubjectTerm:
    """Add the reification quadruple for *statement*; returns its node.

    The base statement itself is *not* added — RDF semantics: reifying
    does not assert.
    """
    if node is None:
        node = blank("stmt")
    store.add(Triple(node, RDF.type, RDF.Statement))
    store.add(Triple(node, RDF.subject, statement.subject))
    store.add(Triple(node, RDF.predicate, statement.predicate))
    store.add(Triple(node, RDF.object, statement.object))
    return node


def is_reification_node(store: TripleStore, node: SubjectTerm) -> bool:
    return bool(store.match(node, RDF.type, RDF.Statement))


def described_statement(store: TripleStore,
                        node: SubjectTerm) -> Triple | None:
    """Reconstruct the base triple a reification node describes."""
    subject = store.value(node, RDF.subject)
    predicate = store.value(node, RDF.predicate)
    obj = store.value(node, RDF.object)
    if subject is None or predicate is None or obj is None:
        return None
    from repro.rdfdb.model import IRI, BlankNode
    if not isinstance(subject, (IRI, BlankNode)):
        return None
    if not isinstance(predicate, IRI):
        return None
    return Triple(subject, predicate, obj)


def reifications_of(store: TripleStore,
                    statement: Triple) -> list[SubjectTerm]:
    """All reification nodes describing *statement*."""
    nodes: list[SubjectTerm] = []
    for item in store.match(None, RDF.subject, statement.subject):
        node = item.subject
        if not is_reification_node(store, node):
            continue
        if (store.value(node, RDF.predicate) == statement.predicate
                and store.value(node, RDF.object) == statement.object):
            nodes.append(node)
    return nodes


def reification_triples(store: TripleStore,
                        node: SubjectTerm) -> list[Triple]:
    """The quadruple (and any annotations) hanging off a statement node."""
    return store.match(node, None, None)
