"""Triple store with pattern-matching queries.

Indexes by subject, predicate and object so pattern queries touch only
candidate triples.  ``None`` in a pattern position is a wildcard; query
results are deterministic (insertion order preserved).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.rdfdb.model import (
    IRI,
    ObjectTerm,
    SubjectTerm,
    Triple,
)


class TripleStore:
    """An indexed set of triples."""

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._triples: dict[Triple, int] = {}
        self._order = 0
        self._by_subject: dict[SubjectTerm, set[Triple]] = {}
        self._by_predicate: dict[IRI, set[Triple]] = {}
        self._by_object: dict[ObjectTerm, set[Triple]] = {}
        for item in triples:
            self.add(item)

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, item: Triple) -> bool:
        return item in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(sorted(self._triples, key=self._triples.__getitem__))

    def add(self, item: Triple) -> bool:
        """Insert; returns False when the triple was already present."""
        if item in self._triples:
            return False
        self._triples[item] = self._order
        self._order += 1
        self._by_subject.setdefault(item.subject, set()).add(item)
        self._by_predicate.setdefault(item.predicate, set()).add(item)
        self._by_object.setdefault(item.object, set()).add(item)
        return True

    def add_all(self, items: Iterable[Triple]) -> int:
        return sum(1 for item in items if self.add(item))

    def remove(self, item: Triple) -> bool:
        if item not in self._triples:
            return False
        del self._triples[item]
        self._by_subject[item.subject].discard(item)
        self._by_predicate[item.predicate].discard(item)
        self._by_object[item.object].discard(item)
        return True

    def match(self, subject: SubjectTerm | None = None,
              predicate: IRI | None = None,
              obj: ObjectTerm | None = None) -> list[Triple]:
        """All triples matching the pattern, in insertion order."""
        candidate_sets = []
        if subject is not None:
            candidate_sets.append(self._by_subject.get(subject, set()))
        if predicate is not None:
            candidate_sets.append(self._by_predicate.get(predicate, set()))
        if obj is not None:
            candidate_sets.append(self._by_object.get(obj, set()))
        if not candidate_sets:
            return list(self)
        smallest = min(candidate_sets, key=len)
        result = [t for t in smallest
                  if (subject is None or t.subject == subject)
                  and (predicate is None or t.predicate == predicate)
                  and (obj is None or t.object == obj)]
        result.sort(key=self._triples.__getitem__)
        return result

    def subjects(self, predicate: IRI | None = None,
                 obj: ObjectTerm | None = None) -> list[SubjectTerm]:
        seen: dict[SubjectTerm, None] = {}
        for item in self.match(None, predicate, obj):
            seen.setdefault(item.subject)
        return list(seen)

    def objects(self, subject: SubjectTerm | None = None,
                predicate: IRI | None = None) -> list[ObjectTerm]:
        seen: dict[ObjectTerm, None] = {}
        for item in self.match(subject, predicate, None):
            seen.setdefault(item.object)
        return list(seen)

    def value(self, subject: SubjectTerm,
              predicate: IRI) -> ObjectTerm | None:
        """The single object for (subject, predicate), or None."""
        matches = self.match(subject, predicate, None)
        return matches[0].object if matches else None

    def copy(self) -> "TripleStore":
        return TripleStore(self)
