"""RDFS inference: subClassOf / subPropertyOf / domain / range closure.

"While XML provides syntax and notations, RDF supplements this by
providing semantic information in a standardized way" (§3.2).  The
*semantics* is what makes RDF security harder than XML security: a triple
you never stored can still be *derivable*.  :func:`rdfs_closure` computes
the classic RDFS entailments:

* rdfs9  — (x type C), (C subClassOf D) ⇒ (x type D)
* rdfs7  — (x p y), (p subPropertyOf q) ⇒ (x q y)
* rdfs5  — subPropertyOf transitivity
* rdfs11 — subClassOf transitivity
* rdfs2  — (p domain C), (x p y) ⇒ (x type C)
* rdfs3  — (p range C), (x p y), y a resource ⇒ (y type C)

The security layer must label the *closure*, not just the stored graph —
benchmark E9 shows what leaks when it doesn't.
"""

from __future__ import annotations

from repro.rdfdb.model import RDF, RDFS, IRI, BlankNode, Triple
from repro.rdfdb.store import TripleStore


def rdfs_closure(store: TripleStore,
                 max_rounds: int = 50) -> tuple[TripleStore, list[Triple]]:
    """Return ``(closed_store, derived)`` — the store plus entailments.

    The input store is not modified.  ``derived`` lists only triples that
    were not already present, in derivation order (deterministic).
    """
    closed = store.copy()
    derived: list[Triple] = []

    def add(item: Triple) -> None:
        if closed.add(item):
            derived.append(item)

    for _ in range(max_rounds):
        before = len(closed)

        # Transitivity of the two schema relations (rdfs5, rdfs11).
        for relation in (RDFS.subClassOf, RDFS.subPropertyOf):
            edges = closed.match(None, relation, None)
            successors: dict[object, list[object]] = {}
            for edge in edges:
                successors.setdefault(edge.subject, []).append(edge.object)
            for edge in edges:
                for next_object in successors.get(edge.object, ()):
                    if isinstance(edge.object, (IRI, BlankNode)):
                        add(Triple(edge.subject, relation, next_object))

        # rdfs9: type propagation up the class hierarchy.
        for class_edge in closed.match(None, RDFS.subClassOf, None):
            for typed in closed.match(None, RDF.type, class_edge.subject):
                add(Triple(typed.subject, RDF.type, class_edge.object))

        # rdfs7: property propagation up the property hierarchy.
        for property_edge in closed.match(None, RDFS.subPropertyOf, None):
            if not isinstance(property_edge.object, IRI):
                continue
            if not isinstance(property_edge.subject, IRI):
                continue
            for used in closed.match(None, property_edge.subject, None):
                add(Triple(used.subject, property_edge.object, used.object))

        # rdfs2 / rdfs3: domain and range typing.
        for domain_edge in closed.match(None, RDFS.domain, None):
            if not isinstance(domain_edge.subject, IRI):
                continue
            for used in closed.match(None, domain_edge.subject, None):
                add(Triple(used.subject, RDF.type, domain_edge.object))
        for range_edge in closed.match(None, RDFS.range, None):
            if not isinstance(range_edge.subject, IRI):
                continue
            for used in closed.match(None, range_edge.subject, None):
                if isinstance(used.object, (IRI, BlankNode)):
                    add(Triple(used.object, RDF.type, range_edge.object))

        if len(closed) == before:
            break
    return closed, derived


def derivation_supports(store: TripleStore,
                        derived_triple: Triple) -> list[list[Triple]]:
    """All one-step derivations of *derived_triple* from *store*.

    Each support is the list of premise triples of one rule instance.
    Used by the security layer: a derived triple is only as public as its
    most sensitive support chain, and hiding a derived fact requires
    breaking *every* support.
    """
    supports: list[list[Triple]] = []
    subject, predicate, obj = (derived_triple.subject,
                               derived_triple.predicate,
                               derived_triple.object)
    # rdfs9 / rdfs11 / rdfs2 / rdfs3 for type triples
    if predicate == RDF.type:
        for class_edge in store.match(None, RDFS.subClassOf, obj):
            premise = Triple(subject, RDF.type, class_edge.subject)
            if premise in store:
                supports.append([premise, class_edge])
        for domain_edge in store.match(None, RDFS.domain, obj):
            if isinstance(domain_edge.subject, IRI):
                for used in store.match(subject, domain_edge.subject, None):
                    supports.append([used, domain_edge])
        for range_edge in store.match(None, RDFS.range, obj):
            if isinstance(range_edge.subject, IRI):
                for used in store.match(None, range_edge.subject, subject):
                    supports.append([used, range_edge])
    # rdfs7
    for property_edge in store.match(None, RDFS.subPropertyOf, predicate):
        if isinstance(property_edge.subject, IRI):
            premise = Triple(subject, property_edge.subject, obj)
            if premise in store:
                supports.append([premise, property_edge])
    # transitivity
    if predicate in (RDFS.subClassOf, RDFS.subPropertyOf):
        for middle_edge in store.match(subject, predicate, None):
            if middle_edge.object == obj:
                continue
            if isinstance(middle_edge.object, (IRI, BlankNode)):
                closing = Triple(middle_edge.object, predicate, obj)
                if closing in store:
                    supports.append([middle_edge, closing])
    return supports
