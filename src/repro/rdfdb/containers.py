"""RDF containers: Bag, Seq, Alt (§3.2: "What are the security properties
of the container model? How can bags, lists and alternatives be
protected?").

A container is a resource typed ``rdf:Bag`` / ``rdf:Seq`` / ``rdf:Alt``
whose members hang off the numbered membership properties ``rdf:_1``,
``rdf:_2``, ...  These helpers create containers in a store and read them
back; the security layer treats membership triples like any other triple,
which is exactly what makes containers a *semantic* protection problem:
hiding ``rdf:_2`` from a Seq silently renumbers nothing, so a reader can
*detect* the gap — :func:`members` reports gaps for that reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import ConfigurationError
from repro.rdfdb.model import (
    RDF,
    IRI,
    ObjectTerm,
    SubjectTerm,
    Triple,
    blank,
)
from repro.rdfdb.store import TripleStore

CONTAINER_TYPES = ("Bag", "Seq", "Alt")


def membership_property(index: int) -> IRI:
    if index < 1:
        raise ConfigurationError("membership indexes are 1-based")
    return RDF[f"_{index}"]


def membership_index(predicate: IRI) -> int | None:
    """The n of rdf:_n, or None for non-membership predicates."""
    name = predicate.local_name
    if name.startswith("_") and name[1:].isdigit():
        return int(name[1:])
    return None


def create_container(store: TripleStore, kind: str,
                     members: Iterable[ObjectTerm],
                     node: SubjectTerm | None = None) -> SubjectTerm:
    """Create a Bag/Seq/Alt with the given members; returns its node."""
    if kind not in CONTAINER_TYPES:
        raise ConfigurationError(
            f"container kind must be one of {CONTAINER_TYPES}, got {kind!r}")
    if node is None:
        node = blank("container")
    store.add(Triple(node, RDF.type, RDF[kind]))
    for index, member in enumerate(members, start=1):
        store.add(Triple(node, membership_property(index), member))
    return node


@dataclass(frozen=True)
class ContainerView:
    """What a reader sees of a container."""

    node: SubjectTerm
    kind: str
    members: tuple[ObjectTerm, ...]
    gaps: tuple[int, ...]

    @property
    def intact(self) -> bool:
        return not self.gaps


def read_container(store: TripleStore, node: SubjectTerm) -> ContainerView:
    """Read a container, reporting membership gaps (hidden members)."""
    kind_term = store.value(node, RDF.type)
    kind = ""
    if isinstance(kind_term, IRI) and kind_term.local_name in CONTAINER_TYPES:
        kind = kind_term.local_name
    indexed: dict[int, ObjectTerm] = {}
    for item in store.match(node, None, None):
        index = membership_index(item.predicate)
        if index is not None:
            indexed[index] = item.object
    members = tuple(indexed[i] for i in sorted(indexed))
    gaps: tuple[int, ...] = ()
    if indexed:
        expected = range(1, max(indexed) + 1)
        gaps = tuple(i for i in expected if i not in indexed)
    return ContainerView(node, kind, members, gaps)


def container_nodes(store: TripleStore) -> list[SubjectTerm]:
    """All container nodes in the store."""
    nodes: dict[SubjectTerm, None] = {}
    for kind in CONTAINER_TYPES:
        for item in store.match(None, RDF.type, RDF[kind]):
            nodes.setdefault(item.subject)
    return list(nodes)
