"""RDF substrate and semantic-level security (§3.2): triple store,
containers, reification, RDFS inference, and a secure store answering
every security question the paper raises about RDF.
"""

from repro.rdfdb.containers import (
    CONTAINER_TYPES,
    ContainerView,
    container_nodes,
    create_container,
    membership_index,
    membership_property,
    read_container,
)
from repro.rdfdb.model import (
    RDF,
    RDFS,
    IRI,
    BlankNode,
    Literal,
    Namespace,
    Triple,
    blank,
    triple,
)
from repro.rdfdb.reification import (
    described_statement,
    is_reification_node,
    reification_triples,
    reifications_of,
    reify,
)
from repro.rdfdb.schema import derivation_supports, rdfs_closure
from repro.rdfdb.security import ContextRule, SecureRdfStore
from repro.rdfdb.store import TripleStore

__all__ = [
    "BlankNode", "CONTAINER_TYPES", "ContainerView", "ContextRule", "IRI",
    "Literal", "Namespace", "RDF", "RDFS", "SecureRdfStore", "Triple",
    "TripleStore", "blank", "container_nodes", "create_container",
    "derivation_supports", "described_statement", "is_reification_node",
    "membership_index", "membership_property", "rdfs_closure",
    "read_container", "reification_triples", "reifications_of", "reify",
    "triple",
]
