"""Semantic-level access control for RDF (§3.2).

"With RDF we also need to ensure that security is preserved at the
semantic level."  This module answers, mechanism by mechanism, the
questions §3.2 raises:

* *How is access control ensured, at fine granularity?* — per-triple MLS
  labels (:meth:`SecureRdfStore.classify`), pattern classification, and
  clearance-filtered queries.
* *What about statements about statements?* — classifying a triple
  co-classifies its reification quadruples, which re-encode the same
  content (:meth:`SecureRdfStore.classify`, ``protect_reifications``).
* *How can bags, lists and alternatives be protected?* — containers can
  be classified atomically (:meth:`classify_container`).
* *What about inference?* — the secure query path computes RDFS closure
  over the *reader-visible subgraph only*, so entailments of hidden
  triples stay hidden.  The naive path (``semantic=False``) labels only
  stored triples and serves the full closure — the leaky strawman that
  benchmark E9 measures.
* *Context-dependent classification?* — labels may depend on named
  contexts ("wartime"), and :meth:`set_context` re-labels the world:
  "one could declassify an RDF document, once the war is over" (§5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mls import PUBLIC, Label, can_read
from repro.rdfdb.model import IRI, ObjectTerm, SubjectTerm, Triple
from repro.rdfdb.reification import reification_triples, reifications_of
from repro.rdfdb.schema import rdfs_closure
from repro.rdfdb.store import TripleStore


@dataclass(frozen=True)
class ContextRule:
    """A context-dependent label: applies while the named context is
    active; the base label applies otherwise."""

    context: str
    label_when_active: Label


class SecureRdfStore:
    """A triple store with per-triple labels and semantic enforcement."""

    def __init__(self, store: TripleStore | None = None,
                 default: Label = PUBLIC) -> None:
        self.store = store if store is not None else TripleStore()
        self.default = default
        self._labels: dict[Triple, Label] = {}
        self._context_rules: dict[Triple, list[ContextRule]] = {}
        self._active_contexts: set[str] = set()

    # -- data -----------------------------------------------------------

    def add(self, item: Triple, label: Label | None = None) -> None:
        self.store.add(item)
        if label is not None:
            self._labels[item] = label

    # -- classification ----------------------------------------------------

    def classify(self, item: Triple, label: Label,
                 protect_reifications: bool = True) -> int:
        """Label one triple; returns how many triples were (re)labelled.

        With ``protect_reifications`` the quadruples of every reification
        node describing *item* are raised to at least *label* — hiding a
        statement while exposing its reification hides nothing.
        """
        self._labels[item] = label
        touched = 1
        if protect_reifications:
            for node in reifications_of(self.store, item):
                for quad in reification_triples(self.store, node):
                    current = self._labels.get(quad, self.default)
                    if not current.dominates(label):
                        self._labels[quad] = current.join(label)
                        touched += 1
        return touched

    def classify_pattern(self, label: Label,
                         subject: SubjectTerm | None = None,
                         predicate: IRI | None = None,
                         obj: ObjectTerm | None = None,
                         protect_reifications: bool = True) -> int:
        """Classify every stored triple matching the pattern."""
        touched = 0
        for item in self.store.match(subject, predicate, obj):
            touched += self.classify(item, label, protect_reifications)
        return touched

    def classify_container(self, node: SubjectTerm, label: Label) -> int:
        """Classify a container atomically: its type triple and every
        membership triple get the same label."""
        touched = 0
        for item in self.store.match(node, None, None):
            touched += self.classify(item, label,
                                     protect_reifications=False)
        return touched

    # -- contexts ----------------------------------------------------------

    def add_context_rule(self, item: Triple, context: str,
                         label_when_active: Label) -> None:
        self._context_rules.setdefault(item, []).append(
            ContextRule(context, label_when_active))

    def set_context(self, context: str, active: bool) -> None:
        """Activate or deactivate a context ("the war is over")."""
        if active:
            self._active_contexts.add(context)
        else:
            self._active_contexts.discard(context)

    def active_contexts(self) -> frozenset[str]:
        return frozenset(self._active_contexts)

    def labelled_triples(self) -> dict[Triple, Label]:
        """Explicit (non-default) labels as a snapshot, for analysis."""
        return dict(self._labels)

    def label_of(self, item: Triple) -> Label:
        """Effective label: context rules override while active."""
        for rule in self._context_rules.get(item, ()):
            if rule.context in self._active_contexts:
                return rule.label_when_active
        return self._labels.get(item, self.default)

    # -- enforcement -----------------------------------------------------------

    def readable_store(self, clearance: Label) -> TripleStore:
        """The stored triples this clearance may read."""
        visible = TripleStore()
        for item in self.store:
            if can_read(clearance, self.label_of(item)):
                visible.add(item)
        return visible

    def query(self, clearance: Label,
              subject: SubjectTerm | None = None,
              predicate: IRI | None = None,
              obj: ObjectTerm | None = None,
              infer: bool = False,
              semantic: bool = True) -> list[Triple]:
        """Clearance-filtered pattern query.

        With ``infer=True`` the query runs over the RDFS closure.
        ``semantic=True`` (the secure mode) closes over the visible
        subgraph; ``semantic=False`` closes over everything and filters
        only stored triples by label — the syntactic-only enforcement
        whose leakage E9 quantifies.
        """
        if not infer:
            return [t for t in self.store.match(subject, predicate, obj)
                    if can_read(clearance, self.label_of(t))]
        if semantic:
            closed, _ = rdfs_closure(self.readable_store(clearance))
            return closed.match(subject, predicate, obj)
        closed, derived = rdfs_closure(self.store)
        derived_set = set(derived)
        results = []
        for item in closed.match(subject, predicate, obj):
            if item in derived_set:
                results.append(item)  # unlabeled derivations slip through
            elif can_read(clearance, self.label_of(item)):
                results.append(item)
        return results

    # -- analysis helpers (for tests and benchmarks) -------------------------

    def semantic_labels(self) -> dict[Triple, Label]:
        """Fixpoint labels over the closure: a derived triple's label is
        the minimum over its one-step supports of the join of premise
        labels — i.e. the cheapest clearance that can re-derive it."""
        from repro.rdfdb.schema import derivation_supports

        closed, derived = rdfs_closure(self.store)
        labels: dict[Triple, Label] = {
            t: self.label_of(t) for t in self.store}
        # Initialize derived triples pessimistically at TOP.
        from repro.core.mls import Level
        top = Label(Level.TOP_SECRET,
                    frozenset({"__unreachable__"}))
        for item in derived:
            labels[item] = top
        changed = True
        while changed:
            changed = False
            for item in derived:
                best = labels[item]
                for support in derivation_supports(closed, item):
                    joined = PUBLIC
                    for premise in support:
                        joined = joined.join(labels.get(premise, top))
                    if best.dominates(joined) and joined != best:
                        best = joined
                        changed = True
                labels[item] = best
        return labels

    def leaked_by_syntactic_enforcement(self, clearance: Label
                                        ) -> list[Triple]:
        """Derived triples the naive mode serves but the semantic labels
        say this clearance should not see."""
        naive = set(self.query(clearance, infer=True, semantic=False))
        labels = self.semantic_labels()
        return sorted(
            (t for t in naive
             if not can_read(clearance, labels.get(t, self.default))),
            key=str)

    def reification_leaks(self, clearance: Label) -> list[Triple]:
        """Reification quadruples readable at *clearance* whose described
        base triple is not — the 'statements about statements' leak."""
        from repro.rdfdb.model import RDF
        from repro.rdfdb.reification import described_statement

        leaks: list[Triple] = []
        for type_triple in self.store.match(None, RDF.type, RDF.Statement):
            node = type_triple.subject
            base = described_statement(self.store, node)
            if base is None or base not in self.store:
                continue
            if can_read(clearance, self.label_of(base)):
                continue
            quads = reification_triples(self.store, node)
            readable = [q for q in quads
                        if can_read(clearance, self.label_of(q))]
            # The quadruple re-encodes the base triple only if the
            # subject/predicate/object triples are all readable.
            encoding = [q for q in readable
                        if q.predicate in (RDF.subject, RDF.predicate,
                                           RDF.object)]
            if len(encoding) >= 3:
                leaks.extend(encoding)
        return leaks
