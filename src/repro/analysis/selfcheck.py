"""Seeded-defect fixtures proving every rule can fire.

``python -m repro.analysis --self-check`` builds a miniature deployment
with one instance of each defect class the analyzer knows about, runs
every domain, and verifies each registered rule reports its seeded
defect — the analyzer analyzing itself, the gate CI runs before trusting
the lint/analysis results on real code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.channels import analyze_privacy
from repro.analysis.codelint import lint_source
from repro.analysis.corepolicy import analyze_core_policies
from repro.analysis.findings import Report
from repro.analysis.grants import analyze_grants
from repro.analysis.mlsrdf import analyze_rdf
from repro.analysis.xmlpolicy import analyze_xml_policies
from repro.core.credentials import anyone, has_role
from repro.core.policy import Action, PolicyBase, deny, grant
from repro.core.mls import Label, Level
from repro.datagen.documents import hospital_schema
from repro.privacy.constraints import PrivacyConstraintSet, PrivacyLevel
from repro.rdfdb.containers import create_container
from repro.rdfdb.model import IRI, Literal, Triple
from repro.rdfdb.reification import reify
from repro.rdfdb.security import SecureRdfStore
from repro.relational.authorization import (
    AuthorizationManager,
    Privilege,
)
from repro.xmlsec.authorx import XmlPolicyBase, xml_deny, xml_grant


def seeded_xml_policy_base() -> XmlPolicyBase:
    """Conflict on //record/ssn, dead //prescription, shadowed grant."""
    base = XmlPolicyBase()
    base.add(xml_grant(has_role("doctor"), "//record/ssn"))       # conflict
    base.add(xml_deny(anyone(), "//record/ssn"))                  # vs this
    base.add(xml_grant(has_role("nurse"), "//prescription"))      # dead
    base.add(xml_grant(has_role("nurse"), "//billing/amount"))    # shadowed
    base.add(xml_deny(anyone(), "//billing/amount"))              # by this
    base.add(xml_grant(has_role("doctor"), "/hospital/record"))   # healthy
    return base


def seeded_core_policy_base() -> PolicyBase:
    """Conflict on records/ssn, a dead grant, a shadowed grant."""
    base = PolicyBase()
    base.add(grant(has_role("doctor"), Action.READ, "records/**"))
    base.add(deny(anyone(), Action.READ, "records/ssn"))     # conflict
    base.add(grant(has_role("ghost-role"), Action.WRITE,
                   "labs/*"))                                # dead
    base.add(grant(has_role("nurse"), Action.WRITE,
                   "archive/old"))                           # shadowed
    base.add(deny(anyone(), Action.WRITE, "archive/**"))     # by this
    return base


def seeded_compile_divergence() -> Report:
    """A stale compiled table verified against its drifted base.

    The artifact is compiled first, then the base gains a blanket deny:
    the verification pass must refute equivalence with an unexplained
    divergence (``COMPILE-DIVERGE``) and report the conditional policy
    as a residual (``COMPILE-RESIDUAL``).
    """
    from repro.compile import compile_policy_base, verify_compiled

    base = PolicyBase()
    base.add(grant(has_role("doctor"), Action.READ, "records/**"))
    base.add(grant(anyone(), Action.READ, "notes/*",
                   condition=lambda payload: payload is None))
    artifact = compile_policy_base(base)
    base.add(deny(anyone(), Action.READ, "records/**"))      # drift
    return Report(verify_compiled(artifact, base).findings())


def seeded_xml_label_divergence() -> Report:
    """A predicate policy surviving compilation only as its skeleton."""
    from repro.compile import (
        compile_xml_policy_base,
        verify_label_table,
    )
    from repro.datagen.documents import hospital_schema

    base = XmlPolicyBase()
    base.add(xml_grant(has_role("doctor"), "/hospital/record"))
    base.add(xml_grant(has_role("researcher"),
                       "//record[diagnosis='flu']"))         # dynamic
    table = compile_xml_policy_base(base, hospital_schema())
    return Report(verify_label_table(table, base).findings())


def seeded_grant_graph() -> AuthorizationManager:
    """A dangling import, an option cycle, an escalation chain."""
    auth = AuthorizationManager()
    auth.set_owner("patients", "dba")
    # Escalation: dba -> alice -> bob -> carol all with grant option.
    auth.grant("dba", "alice", "patients", Privilege.SELECT,
               with_grant_option=True)
    auth.grant("alice", "bob", "patients", Privilege.SELECT,
               with_grant_option=True)
    auth.grant("bob", "carol", "patients", Privilege.SELECT,
               with_grant_option=True)
    # Cycle: bob and alice keep each other's options alive.
    auth.grant("bob", "alice", "patients", Privilege.SELECT,
               with_grant_option=True)
    # Dangling: an imported edge whose grantor never held UPDATE.
    auth.import_grant("mallory", "eve", "patients", Privilege.UPDATE)
    return auth


def seeded_privacy_constraints() -> PrivacyConstraintSet:
    """A completable association plus a redundant one."""
    constraints = PrivacyConstraintSet()
    # Channel: name and diagnosis are individually public, private
    # together — the public can join them query by query.
    constraints.protect_together(
        "patients", ["name", "diagnosis"], PrivacyLevel.PRIVATE,
        name="identity-condition")
    # Redundant: ssn is already private on its own, so the ssn+insurer
    # association can never be completed.
    constraints.protect("patients", "ssn", PrivacyLevel.PRIVATE)
    constraints.protect_together(
        "patients", ["ssn", "insurer"], PrivacyLevel.PRIVATE,
        name="billing-identity")
    return constraints


def seeded_rdf_store() -> SecureRdfStore:
    """A reification leak and a partially classified container."""
    secure = SecureRdfStore()
    ex = "http://example.org/"
    statement = Triple(IRI(ex + "patient1"), IRI(ex + "diagnosis"),
                       Literal("arrhythmia"))
    secure.add(statement)
    node = reify(secure.store, statement)
    # Classify the statement SECRET but leave the quadruples PUBLIC.
    secure.classify(statement, Label(Level.SECRET),
                    protect_reifications=False)
    # Container with mixed labels: member _2 raised, the rest default.
    container = create_container(
        secure.store, "Bag",
        [Literal("entry-1"), Literal("entry-2"), Literal("entry-3")])
    for triple in secure.store.match(container, None, None):
        if triple.predicate.local_name == "_2":
            secure.classify(triple, Label(Level.CONFIDENTIAL),
                            protect_reifications=False)
    return secure


#: Lint fixture with one violation per lint rule (kept as text so the
#: real tree stays clean).
BAD_SOURCE = '''\
def collect(results=[]):
    try:
        results.append(hash("policy"))
    except:
        pass
    return results


def check_labels(labels):
    for label in labels:
        label.strip()


def open_record(store, key):
    try:
        return store[key]
    except Exception:
        return None


def label_all(documents):
    out = []
    for doc in documents:
        out.extend(select_elements("//record", doc))
    return out


def audit_all(evaluator, requests):
    granted = []
    for subject, action, path in requests:
        granted.append(evaluator.decide(subject, action, path))
    return granted


def broadcast_all(documents):
    import copy
    packets = []
    for doc in documents:
        packets.append(copy.deepcopy(doc))
    return packets


def route_requests(engine, requests):
    return [engine.compiled_table.decide(*request)
            for request in requests]


async def serve_forever(queue):
    import time
    while True:
        time.sleep(0.05)
        queue.drain()


def mirror_lookup(replica_pool, key):
    return replica_pool.get(key)


import threading

DISPATCH_LOCK = threading.Lock()
DECISION_CACHE = {}


def spawn_worker_processes(launch, count):
    return [launch(index) for index in range(count)]


def write_checkpoint(path, payload):
    with open(path, "wb") as handle:
        handle.write(payload)
'''


@dataclass(frozen=True)
class SelfCheckResult:
    expected: frozenset[str]
    fired: frozenset[str]
    report: Report

    @property
    def missing(self) -> frozenset[str]:
        return self.expected - self.fired

    @property
    def ok(self) -> bool:
        return not self.missing


#: Every rule id the seeded fixtures must trigger.
EXPECTED_RULE_IDS = frozenset({
    "XML-CONFLICT", "XML-DEAD", "XML-SHADOWED",
    "POL-CONFLICT", "POL-DEAD", "POL-SHADOW",
    "COMPILE-DIVERGE", "COMPILE-RESIDUAL", "XML-DYNPRED",
    "REL-DANGLING", "REL-CYCLE", "REL-ESCALATION",
    "INF-CHANNEL", "INF-REDUNDANT",
    "RDF-REIFY", "RDF-CONTAINER",
    "LINT-MUTDEF", "LINT-BAREEXC", "LINT-SWALLOW", "LINT-HASH",
    "LINT-CHECKRET", "LINT-XPATHLOOP", "LINT-BATCHLOOP",
    "LINT-HOTCOPY", "LINT-STALECOMPILE", "LINT-BLOCKINGAWAIT",
    "LINT-REPLICAREAD", "LINT-FORKSTATE", "LINT-UNFSYNCED",
})


def run_self_check() -> SelfCheckResult:
    report = Report()
    report.extend(analyze_xml_policies(seeded_xml_policy_base(),
                                       hospital_schema()))
    report.extend(analyze_core_policies(seeded_core_policy_base()))
    report.extend(seeded_compile_divergence())
    report.extend(seeded_xml_label_divergence())
    report.extend(analyze_grants(seeded_grant_graph()))
    report.extend(analyze_privacy(seeded_privacy_constraints()))
    report.extend(analyze_rdf(seeded_rdf_store()))
    report.extend(lint_source(BAD_SOURCE, "selfcheck-fixture"))
    return SelfCheckResult(EXPECTED_RULE_IDS,
                           frozenset(report.rule_ids()), report)
