"""Custom AST lint enforcing repo invariants over ``src/``.

The rules, each guarding an invariant the security machinery depends
on (CI runs this over ``src/`` and fails the build on any
error-severity finding):

* ``LINT-MUTDEF`` — no mutable default arguments: policy bases, grant
  lists and ledgers passed as defaults would be shared across calls;
* ``LINT-BAREEXC`` — no bare ``except:``: enforcement code that
  swallows ``KeyboardInterrupt``/``SystemExit`` can mask denial logic;
* ``LINT-SWALLOW`` — no silent broad swallows: an ``except Exception:``
  (or ``BaseException``) handler that neither re-raises nor binds the
  exception hides every failure class behind one blanket, the classic
  fail-open hazard in enforcement code.  Catch the typed errors the
  protected call actually raises, re-raise a typed error, or — where a
  broad catch genuinely is the contract (evaluating hostile
  user-supplied predicates) — bind the exception
  (``except Exception as exc:``) to mark the swallow deliberate and
  leave an auditable handle;
* ``LINT-HASH`` — no builtin ``hash()`` outside ``__hash__`` methods:
  Python salts string hashes per process (PYTHONHASHSEED), so deriving
  key seeds or policy identities from ``hash()`` is nondeterministic
  across runs — use :mod:`repro.crypto.hashing` digests instead;
* ``LINT-CHECKRET`` — every public ``verify_*``/``check_*`` function
  must produce a consumable outcome: either return a value or raise.
  A checker that can neither succeed loudly nor fail loudly verifies
  nothing.  The companion check flags same-module call sites that
  discard the result of a value-returning, non-raising checker;
* ``LINT-XPATHLOOP`` (warning) — ``compile_xpath``/``evaluate``/
  ``select_elements`` called with a string-literal path inside a loop:
  a constant expression should be compiled once before the loop (the
  process-wide compile cache softens the blow, but every iteration
  still pays a lookup for a value that never changes);
* ``LINT-BATCHLOOP`` (warning) — per-item policy evaluation
  (``.decide()``/``.check()``) inside a loop: each call re-derives
  candidate policies and re-qualifies credentials the batch engine
  (:class:`repro.scale.batch.BatchDecisionEngine`) would amortize
  across the whole loop — collect the triples and ``decide_batch``
  them instead;
* ``LINT-STALECOMPILE`` (warning) — a compiled/derived artifact read
  without consulting its generation stamp: an attribute whose name
  contains ``compiled`` is loaded inside a function that nowhere
  mentions a freshness token (``generation``, ``fresh``, ``stale``,
  ``recompile``, ``invalidate``).  A compiled decision table is a pure
  function of its source *at one generation*
  (:class:`repro.perf.cache.DerivedArtifact`); reading it without an
  ``ensure_fresh()``/``is_stale()``-style check serves decisions from
  a policy base that may no longer exist.  Producer code is exempt by
  name: functions containing ``compile`` or ``fresh`` in their own
  name are the compiler/freshness machinery itself;
* ``LINT-BLOCKINGAWAIT`` (warning) — a blocking call inside an
  ``async def``: ``time.sleep()``, a lock's un-awaited ``.acquire()``,
  or synchronous file I/O via ``open()``.  A coroutine that blocks
  stalls the *whole* event loop — every tenant of the async gateway,
  not just the offending request.  Use ``await asyncio.sleep()``,
  hold plain locks only for O(1) critical sections via ``with``, and
  do file I/O outside the loop (or in a thread executor);
* ``LINT-REPLICAREAD`` (warning) — a read-verb call (``get``/``read``/
  ``inquiry``/``serve_read``/``lookup``/``fetch``) on a receiver whose
  name mentions ``replica``, inside a function that nowhere consults a
  staleness guard (``watermark``, ``session``, ``caught_up``,
  ``stale``, ``fresh``).  A replica is *allowed* to lag — that is the
  deal replication makes — so a read that never checks how far behind
  its copy is can silently serve deleted registrations or stale
  policies.  Route replica reads through a
  :class:`repro.replica.router.ReplicaSession` (read-your-writes
  floors) or check the served watermark explicitly;
* ``LINT-FORKSTATE`` (warning) — module-level mutable runtime state in
  a module that forks or spawns worker processes: a lock, queue, pipe,
  socket, or cache bound at import time is silently duplicated into
  every child at ``fork()`` — a lock can arrive *held*, a queue's
  internal pipe is shared by processes that believe they own it, and a
  cache diverges per process while every reader believes it is global
  (exactly the hazard the multicore dispatcher avoids by keeping all
  channel state per-instance and re-initializing the child's event
  loop in ``worker_process_main``).  Re-initializing the binding
  inside a function (a post-fork hook) is the accepted discipline and
  suppresses the finding;
* ``LINT-HOTCOPY`` (warning) — whole-structure copying
  (``copy.deepcopy``/``deep_copy()``/``clone()``) inside a loop, or
  anywhere in a hot-path module (``perf``/``scale``/``snap``): a deep
  copy is O(size of the structure) per call, exactly the cost the
  copy-on-write snapshot layer (:mod:`repro.snap.frozen`) exists to
  avoid — share the untouched subtrees and copy only the mutated
  spine.  Copy routines may of course copy: calls inside a function
  itself named ``deep_copy``/``clone`` are exempt;
* ``LINT-UNFSYNCED`` — an ``open(..., "w"/"wb"/...)`` in a
  durability-adjacent scope (a module under ``wal/``, or a function
  whose enclosing names mention ``wal``/``checkpoint``/``durable``)
  with no ``fsync``/``fdatasync`` anywhere in the enclosing function:
  a flushed-but-unsynced write sits in the page cache and evaporates
  on power loss *after* the caller was told it was durable.  Writers
  that sync through another layer (:mod:`repro.wal.vfs`) waive the
  site with the pragma.

A line may carry ``# lint: allow=RULE-ID[,RULE-ID...]`` to suppress
exactly those rules on that line — for the rare site where the flagged
pattern *is* the point (a benchmark measuring the unbatched serial
path, say).  The pragma names the rule, so it documents the waiver and
suppresses nothing else.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.analysis.findings import Finding, Report, Severity, REGISTRY

REGISTRY.register(
    "LINT-MUTDEF", Severity.ERROR, "lint",
    "mutable default argument",
    "shared-state defaults corrupt policy/grant bookkeeping across calls")
REGISTRY.register(
    "LINT-BAREEXC", Severity.ERROR, "lint",
    "bare except clause",
    "enforcement code must not swallow exits while failing closed")
REGISTRY.register(
    "LINT-SWALLOW", Severity.ERROR, "lint",
    "broad exception silently swallowed",
    "catching Exception without re-raising or binding hides every "
    "failure class — the fail-open hazard typed errors exist to prevent")
REGISTRY.register(
    "LINT-HASH", Severity.ERROR, "lint",
    "nondeterministic builtin hash()",
    "salted string hashing breaks reproducibility of seeds and policy "
    "identities across processes")
REGISTRY.register(
    "LINT-CHECKRET", Severity.ERROR, "lint",
    "verify_/check_ outcome unreported or discarded",
    "a checker whose verdict cannot be consumed verifies nothing")
REGISTRY.register(
    "LINT-XPATHLOOP", Severity.WARNING, "lint",
    "constant XPath compiled inside a loop",
    "a literal path never changes between iterations; compile it once "
    "before the loop")
REGISTRY.register(
    "LINT-BATCHLOOP", Severity.WARNING, "lint",
    "per-item policy evaluation inside a loop",
    "each decide()/check() in a loop re-derives candidates and "
    "re-qualifies credentials that decide_batch() amortizes once "
    "per batch")
REGISTRY.register(
    "LINT-HOTCOPY", Severity.WARNING, "lint",
    "whole-structure deep copy in a loop or hot-path module",
    "deep copies cost O(structure size) per call; on hot paths use "
    "copy-on-write sharing (repro.snap.frozen) instead of cloning")
REGISTRY.register(
    "LINT-STALECOMPILE", Severity.WARNING, "lint",
    "compiled artifact read without a freshness check",
    "a derived artifact is only valid at the source generation it was "
    "compiled from; reading it without consulting the generation stamp "
    "serves decisions from a policy base that may no longer exist")
REGISTRY.register(
    "LINT-BLOCKINGAWAIT", Severity.WARNING, "lint",
    "blocking call inside an async function",
    "a coroutine that blocks (time.sleep, bare lock .acquire(), "
    "synchronous open()) stalls the whole event loop and every tenant "
    "being served on it")
REGISTRY.register(
    "LINT-REPLICAREAD", Severity.WARNING, "lint",
    "replica read without a staleness guard",
    "a replica may lawfully lag its primary; reading one without a "
    "watermark/session check can silently serve deleted registrations "
    "or stale policy state")
REGISTRY.register(
    "LINT-FORKSTATE", Severity.WARNING, "lint",
    "module-level mutable state in a forking module",
    "a lock/queue/socket/cache bound at import time is duplicated "
    "into every forked child — locks arrive possibly held, channels "
    "are shared by accident, caches diverge silently; re-initialize "
    "the state per process after fork/spawn")
REGISTRY.register(
    "LINT-UNFSYNCED", Severity.ERROR, "lint",
    "durability-adjacent write without an fsync",
    "a write that is flushed but never fsynced sits in the page cache; "
    "after a crash the 'durable' checkpoint or log record silently "
    "vanishes — exactly the loss the WAL exists to make impossible")
REGISTRY.register(
    "LINT-SYNTAX", Severity.ERROR, "lint",
    "file does not parse",
    "unparseable code cannot be analyzed, let alone enforced")

_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict",
                  "Counter", "bytearray"}
_CHECK_PREFIXES = ("verify_", "check_")
_XPATH_CALLS = {"compile_xpath", "evaluate", "select_elements"}
_DECISION_CALLS = {"decide", "check"}
_HOTCOPY_CALLS = {"deepcopy", "deep_copy", "clone"}
#: Identifier substring marking a derived-artifact read (case-sensitive
#: on purpose: ``CompiledPolicy``, the class, is not a read).
_COMPILED_MARKER = "compiled"
#: Identifier substrings that count as consulting a generation stamp.
_FRESHNESS_TOKENS = ("generation", "fresh", "stale", "recompile",
                     "invalidate")
#: Directory names whose modules are hot paths: a deep copy there is
#: suspect even outside a loop (the module exists to serve reads fast).
_HOT_PATH_PARTS = {"perf", "scale", "snap"}
#: Read verbs that, called on a replica-named receiver, count as a
#: replica read.
_REPLICA_READ_CALLS = {"get", "read", "inquiry", "serve_read",
                       "lookup", "fetch"}
#: Receiver-name substring marking a replica (case-insensitive).
_REPLICA_MARKER = "replica"
#: Identifier substrings that count as guarding replica staleness.
_REPLICA_GUARD_TOKENS = ("watermark", "session", "caught_up", "stale",
                         "fresh")
#: Constructors whose instances carry per-process runtime state (OS
#: handles, waiter lists, internal pipes) that fork duplicates into an
#: inconsistent copy.  Matched against the callee's terminal name, so
#: ``threading.Lock()`` and ``mp_context.Queue()`` both count.
_FORK_STATE_CTORS = {
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Event", "Barrier", "Queue", "SimpleQueue", "JoinableQueue",
    "LifoQueue", "PriorityQueue", "Pipe", "socket", "socketpair",
}
#: Target-name substring marking a module-level mutable binding as a
#: cross-request cache (which silently diverges per forked process).
_FORK_CACHE_MARKER = "cache"
#: Tokens (identifiers *or* string literals — ``get_context("fork")``
#: names the start method as a string) marking a module as one that
#: creates worker processes.
_FORK_TOKENS = ("fork", "spawn")
#: Directory names whose modules are durability-critical: every file
#: opened for writing there must reach the platter before it counts.
_DURABLE_PATH_PARTS = {"wal"}
#: Function/class-name substrings marking a durability-adjacent scope
#: outside those directories (the snap checkpoint paths, durable
#: wrappers).
_DURABLE_NAME_TOKENS = ("wal", "checkpoint", "durable")
#: Identifier substrings that count as reaching the platter.
_FSYNC_TOKENS = ("fsync", "fdatasync")


@dataclass(frozen=True)
class _FunctionFacts:
    """What the call-site pass needs to know about a local function."""

    returns_value: bool
    raises: bool


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else "")
        return name in _MUTABLE_CALLS
    return False


def _is_checker_name(name: str) -> bool:
    return name.startswith(_CHECK_PREFIXES)


def _function_facts(node: ast.FunctionDef | ast.AsyncFunctionDef
                    ) -> _FunctionFacts:
    returns_value = False
    raises = False
    for child in ast.walk(node):
        if child is not node and isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef,
                        ast.Lambda)):
            continue
        if isinstance(child, ast.Return) and child.value is not None:
            returns_value = True
        if isinstance(child, ast.Raise):
            raises = True
    return _FunctionFacts(returns_value, raises)


def _mentions_tokens(node: ast.AST, tokens: tuple[str, ...]) -> bool:
    """Does the subtree name an identifier containing any token?

    Identifiers are Name ids, Attribute attrs, argument names, and
    keyword-argument names — a function whose *parameter* is
    ``min_watermark``, or that passes ``min_watermark=``, consults the
    watermark as much as one reading ``self.watermark``.
    """
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            identifier = child.id
        elif isinstance(child, ast.Attribute):
            identifier = child.attr
        elif isinstance(child, ast.arg):
            identifier = child.arg
        elif isinstance(child, ast.keyword) and child.arg is not None:
            identifier = child.arg
        else:
            continue
        if any(token in identifier for token in tokens):
            return True
    return False


def _mentions_freshness(node: ast.AST) -> bool:
    """Does the subtree name any generation/staleness identifier?"""
    return _mentions_tokens(node, _FRESHNESS_TOKENS)


def _receiver_mentions_replica(receiver: ast.expr) -> bool:
    """Does the call receiver's identifier chain name a replica?

    Walks the whole receiver expression so chains and subscripts
    (``self.replicas[i]``, ``pool.replica_for(key)``) count too.
    """
    for child in ast.walk(receiver):
        if isinstance(child, ast.Name):
            identifier = child.id
        elif isinstance(child, ast.Attribute):
            identifier = child.attr
        else:
            continue
        if _REPLICA_MARKER in identifier.lower():
            return True
    return False


def _is_compile_machinery(name: str) -> bool:
    """Producer/freshness routines may of course touch the artifact."""
    return "compile" in name or "fresh" in name


def _open_write_mode(node: ast.Call) -> str | None:
    """The literal mode string of an ``open()`` call, if it writes."""
    mode: ast.expr | None = node.args[1] if len(node.args) >= 2 else None
    if mode is None:
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
    if not (isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)):
        return None
    return mode.value if any(ch in mode.value for ch in "wax+") else None


def _callee_name(node: ast.Call) -> str:
    func = node.func
    return func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else "")


def _module_mentions_fork(tree: ast.Module) -> bool:
    """Does the module name fork/spawn anywhere?

    String constants count: ``get_context("fork")`` names the start
    method as a literal, and a module docstring describing its forking
    discipline marks the module just as surely.
    """
    for child in ast.walk(tree):
        if isinstance(child, ast.Name):
            text = child.id
        elif isinstance(child, ast.Attribute):
            text = child.attr
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef)):
            text = child.name
        elif (isinstance(child, ast.Constant)
                and isinstance(child.value, str)):
            text = child.value
        else:
            continue
        lowered = text.lower()
        if any(token in lowered for token in _FORK_TOKENS):
            return True
    return False


def _reinitialized_names(tree: ast.Module) -> set[str]:
    """Names assigned anywhere inside a function body.

    A module-level binding that some function re-assigns has a
    post-fork re-init path — the discipline LINT-FORKSTATE asks for —
    so it is exempt.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for child in ast.walk(node):
            if (isinstance(child, ast.Name)
                    and isinstance(child.ctx, ast.Store)):
                names.add(child.id)
    return names


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[Finding] = []
        self._function_stack: list[str] = []
        self._local_checkers: dict[str, _FunctionFacts] = {}
        self._loop_depth = 0
        self._fresh_context = False
        self._replica_guard_context = False
        #: True while inside an ``async def`` *body proper* — a nested
        #: sync ``def`` pushes False (its body is not necessarily run
        #: on the loop).
        self._async_stack: list[bool] = []
        #: Call nodes that are the direct operand of an ``await``
        #: (``await lock.acquire()`` is the async API, not a block).
        self._awaited_calls: set[int] = set()
        self._hot_module = bool(
            _HOT_PATH_PARTS.intersection(
                pathlib.PurePath(path).parts[:-1]))
        self._durable_module = bool(
            _DURABLE_PATH_PARTS.intersection(
                pathlib.PurePath(path).parts[:-1]))
        self._fsync_context = False

    def _emit(self, rule_id: str, node: ast.AST, message: str,
              fix_hint: str = "") -> None:
        line = getattr(node, "lineno", 0)
        self.findings.append(REGISTRY.make_finding(
            rule_id, f"{self.path}:{line}", message, fix_hint))

    # -- collection pass ---------------------------------------------------

    def collect_checkers(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_checker_name(node.name):
                    self._local_checkers[node.name] = _function_facts(node)

    def scan_fork_state(self, tree: ast.Module) -> None:
        """LINT-FORKSTATE over the module's top-level bindings."""
        if not _module_mentions_fork(tree):
            return
        reinitialized = _reinitialized_names(tree)
        for node in tree.body:
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            for target in targets:
                if (not isinstance(target, ast.Name)
                        or target.id in reinitialized):
                    continue
                if (isinstance(value, ast.Call)
                        and _callee_name(value) in _FORK_STATE_CTORS):
                    what = f"{_callee_name(value)}()"
                elif (_FORK_CACHE_MARKER in target.id.lower()
                        and _is_mutable_default(value)):
                    what = "a mutable cache"
                else:
                    continue
                self._emit(
                    "LINT-FORKSTATE", node,
                    f"module-level {target.id!r} binds {what} in a "
                    f"module that forks/spawns processes; every child "
                    f"inherits a duplicated, possibly inconsistent "
                    f"copy",
                    fix_hint="create the state per process (in the "
                             "worker entry point, after fork) or "
                             "re-initialize the binding in a "
                             "post-fork hook")

    # -- rules ----------------------------------------------------------------

    def _visit_function(self,
                        node: ast.FunctionDef | ast.AsyncFunctionDef
                        ) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if _is_mutable_default(default):
                self._emit(
                    "LINT-MUTDEF", default,
                    f"function {node.name!r} has a mutable default "
                    f"argument",
                    fix_hint="default to None and construct inside the "
                             "body")
        if (_is_checker_name(node.name)
                and not node.name.startswith("_")):
            facts = _function_facts(node)
            if not facts.returns_value and not facts.raises:
                self._emit(
                    "LINT-CHECKRET", node,
                    f"{node.name!r} neither returns a value nor raises; "
                    f"its verdict is unobservable",
                    fix_hint="return the check outcome or raise on "
                             "failure")
        self._function_stack.append(node.name)
        self._async_stack.append(
            isinstance(node, ast.AsyncFunctionDef))
        # A nested function's body does not run per iteration of an
        # enclosing loop, so its loop depth starts fresh.
        outer_loop_depth = self._loop_depth
        self._loop_depth = 0
        # Freshness context is inherited: an enclosing function that
        # consults the generation stamp covers its closures.
        outer_fresh = self._fresh_context
        self._fresh_context = (outer_fresh
                               or _is_compile_machinery(node.name)
                               or _mentions_freshness(node))
        # Same inheritance for the replica-staleness guard: a function
        # that consults a watermark/session covers its closures.
        outer_guard = self._replica_guard_context
        self._replica_guard_context = (
            outer_guard
            or _mentions_tokens(node, _REPLICA_GUARD_TOKENS))
        # Fsync context is scoped to the function: a write helper that
        # never names fsync/fdatasync anywhere in its body cannot be
        # making its writes durable (inherited so closures are covered,
        # like the freshness context).
        outer_fsync = self._fsync_context
        self._fsync_context = (outer_fsync
                               or _mentions_tokens(node, _FSYNC_TOKENS))
        self.generic_visit(node)
        self._fsync_context = outer_fsync
        self._replica_guard_context = outer_guard
        self._fresh_context = outer_fresh
        self._loop_depth = outer_loop_depth
        self._async_stack.pop()
        self._function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(
                "LINT-BAREEXC", node,
                "bare except catches SystemExit and KeyboardInterrupt",
                fix_hint="catch Exception (or something narrower)")
        elif (self._catches_broad(node.type) and node.name is None
                and not any(isinstance(child, ast.Raise)
                            for stmt in node.body
                            for child in ast.walk(stmt))):
            self._emit(
                "LINT-SWALLOW", node,
                "broad except swallows every failure class without "
                "re-raising or binding the exception",
                fix_hint="catch the typed errors the call actually "
                         "raises, re-raise a typed error, or bind the "
                         "exception to mark the swallow deliberate")
        self.generic_visit(node)

    @staticmethod
    def _catches_broad(type_node: ast.expr) -> bool:
        names = (type_node.elts if isinstance(type_node, ast.Tuple)
                 else [type_node])
        return any(isinstance(name, ast.Name)
                   and name.id in ("Exception", "BaseException")
                   for name in names)

    def _visit_loop(self, node: ast.For | ast.AsyncFor | ast.While
                    ) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    def visit_Await(self, node: ast.Await) -> None:
        if isinstance(node.value, ast.Call):
            self._awaited_calls.add(id(node.value))
        self.generic_visit(node)

    def _in_async_body(self) -> bool:
        return bool(self._async_stack) and self._async_stack[-1]

    def _check_blocking_in_async(self, node: ast.Call,
                                 callee: str) -> None:
        if not self._in_async_body() or id(node) in self._awaited_calls:
            return
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"):
            self._emit(
                "LINT-BLOCKINGAWAIT", node,
                "time.sleep() inside an async function blocks the "
                "whole event loop",
                fix_hint="await asyncio.sleep() instead")
        elif isinstance(func, ast.Attribute) and callee == "acquire":
            self._emit(
                "LINT-BLOCKINGAWAIT", node,
                "un-awaited .acquire() inside an async function can "
                "block the event loop on lock contention",
                fix_hint="await an asyncio lock, or guard an O(1) "
                         "critical section with a plain 'with lock:'")
        elif isinstance(func, ast.Name) and callee == "open":
            self._emit(
                "LINT-BLOCKINGAWAIT", node,
                "synchronous open() inside an async function does "
                "file I/O on the event loop",
                fix_hint="do file I/O before entering the loop or in "
                         "a thread executor (asyncio.to_thread)")

    def visit_Call(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Name) and node.func.id == "hash"
                and "__hash__" not in self._function_stack):
            self._emit(
                "LINT-HASH", node,
                "builtin hash() is salted per process; results are not "
                "reproducible across runs",
                fix_hint="use repro.crypto.hashing (sha256_int/"
                         "sha256_hex) for stable digests")
        func = node.func
        callee = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else "")
        self._check_blocking_in_async(node, callee)
        if (callee in _XPATH_CALLS and self._loop_depth > 0
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            self._emit(
                "LINT-XPATHLOOP", node,
                f"{callee}() is called with a literal path inside a "
                f"loop; the expression is re-looked-up every iteration",
                fix_hint="compile_xpath() the literal once before the "
                         "loop and pass the compiled object")
        if (callee in _DECISION_CALLS and self._loop_depth > 0
                and isinstance(func, ast.Attribute)
                and len(node.args) >= 2):
            self._emit(
                "LINT-BATCHLOOP", node,
                f".{callee}() evaluates one request per loop iteration; "
                f"candidate lookup and credential qualification repeat "
                f"every pass",
                fix_hint="collect the (subject, action, path) triples "
                         "and evaluate them with "
                         "BatchDecisionEngine.decide_batch()")
        if (callee in _REPLICA_READ_CALLS
                and isinstance(func, ast.Attribute)
                and self._function_stack
                and not self._replica_guard_context
                and _receiver_mentions_replica(func.value)):
            self._emit(
                "LINT-REPLICAREAD", node,
                f".{callee}() reads a replica but "
                f"{self._function_stack[-1]!r} never consults a "
                f"staleness guard; a lagging copy can silently serve "
                f"stale state",
                fix_hint="route the read through a ReplicaSession "
                         "(read-your-writes watermark floors) or "
                         "check the served watermark against the "
                         "caller's floor")
        if (callee in _HOTCOPY_CALLS
                and (self._loop_depth > 0 or self._hot_module)
                and not any(name in _HOTCOPY_CALLS
                            for name in self._function_stack)):
            where = ("inside a loop" if self._loop_depth > 0
                     else "in a hot-path module")
            self._emit(
                "LINT-HOTCOPY", node,
                f"{callee}() deep-copies a whole structure {where}; "
                f"the cost is O(structure size) on every call",
                fix_hint="share unchanged subtrees copy-on-write "
                         "(repro.snap.frozen) or hoist one copy out "
                         "of the loop")
        if (callee == "open" and isinstance(func, ast.Name)
                and not self._fsync_context
                and (self._durable_module
                     or any(token in name.lower()
                            for name in self._function_stack
                            for token in _DURABLE_NAME_TOKENS))):
            mode = _open_write_mode(node)
            if mode is not None:
                where = (self._function_stack[-1]
                         if self._function_stack else "module scope")
                self._emit(
                    "LINT-UNFSYNCED", node,
                    f"open(..., {mode!r}) in durability-adjacent "
                    f"{where!r} writes without fsync/fdatasync "
                    f"anywhere in scope; a crash loses the write "
                    f"after it was reported durable",
                    fix_hint="flush() then os.fsync(handle.fileno()) "
                             "before close, or route the write "
                             "through repro.wal.vfs (OsVfs syncs "
                             "data and directory entries)")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (isinstance(node.ctx, ast.Load)
                and _COMPILED_MARKER in node.attr
                and self._function_stack
                and not self._fresh_context):
            self._emit(
                "LINT-STALECOMPILE", node,
                f"compiled artifact {node.attr!r} is read without "
                f"consulting its generation stamp anywhere in "
                f"{self._function_stack[-1]!r}",
                fix_hint="call the owning engine's ensure_fresh() (or "
                         "compare DerivedArtifact.source_generation "
                         "against the source) before reading")
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        call = node.value
        if isinstance(call, ast.Call) and isinstance(call.func, ast.Name):
            facts = self._local_checkers.get(call.func.id)
            if (facts is not None and facts.returns_value
                    and not facts.raises):
                self._emit(
                    "LINT-CHECKRET", node,
                    f"result of {call.func.id!r} is discarded but the "
                    f"checker reports only through its return value",
                    fix_hint="consume the returned verdict")
        self.generic_visit(node)


_ALLOW_PRAGMA = re.compile(r"#\s*lint:\s*allow=([A-Z0-9\-, ]+)")


def _allowed_rules(source: str) -> dict[int, frozenset[str]]:
    """line number → rule ids waived by an ``# lint: allow=`` pragma."""
    allowed: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_PRAGMA.search(line)
        if match:
            allowed[lineno] = frozenset(
                rule.strip() for rule in match.group(1).split(",")
                if rule.strip())
    return allowed


def _finding_line(finding: Finding) -> int:
    _, _, line = finding.location.rpartition(":")
    return int(line) if line.isdigit() else 0


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one source text; syntax errors become findings too."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [REGISTRY.make_finding(
            "LINT-SYNTAX", f"{path}:{exc.lineno or 0}",
            f"file does not parse: {exc.msg}")]
    linter = _Linter(path)
    linter.collect_checkers(tree)
    linter.scan_fork_state(tree)
    linter.visit(tree)
    allowed = _allowed_rules(source)
    if not allowed:
        return linter.findings
    return [finding for finding in linter.findings
            if finding.rule_id not in
            allowed.get(_finding_line(finding), frozenset())]


def iter_python_files(paths: Iterable[str | pathlib.Path]
                      ) -> Iterator[pathlib.Path]:
    for entry in paths:
        path = pathlib.Path(entry)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Iterable[str | pathlib.Path]) -> Report:
    """Lint every ``*.py`` under the given files/directories."""
    report = Report()
    for path in iter_python_files(paths):
        report.extend(lint_source(path.read_text(encoding="utf-8"),
                                  str(path)))
    return report
