"""``python -m repro.analysis`` — the pre-deployment verification gate.

Three modes:

* **fixture analysis** (default): each positional path is a Python file
  (or directory of files) executed as a fixture module; every
  recognizable security artifact bound at module level — an
  :class:`XmlPolicyBase` (paired with a :class:`Schema` and optional
  subjects), an :class:`AuthorizationManager`, a
  :class:`PrivacyConstraintSet` (optionally with a ``NEED_TO_KNOW``
  set or a :class:`PrivacyController`), a :class:`SecureRdfStore` —
  is analyzed by the matching rule domain;
* ``--lint PATH``: run the AST code lint over a source tree;
* ``--compile-report PATH``: compile every policy base bound in a
  fixture module through :mod:`repro.compile`, run the static
  equivalence verification, and print per-policy-set compilation
  stats (path classes, DFA states, profile classes, table size,
  verification verdict); exits non-zero on any unexplained
  divergence;
* ``--self-check``: prove every registered rule fires on its seeded
  defect fixture.

Exit status is non-zero when any ERROR-severity finding (or lint
finding) is reported, which is what lets CI use this as a gate.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import runpy
import sys

from repro.analysis.channels import analyze_privacy
from repro.analysis.codelint import lint_paths
from repro.analysis.findings import REGISTRY, Report, Severity
from repro.analysis.grants import analyze_grants
from repro.analysis.mlsrdf import analyze_rdf
from repro.analysis.selfcheck import run_self_check
from repro.analysis.xmlpolicy import analyze_xml_policies
from repro.core.policy import PolicyBase
from repro.privacy.constraints import PrivacyConstraintSet
from repro.privacy.controller import PrivacyController
from repro.rdfdb.security import SecureRdfStore
from repro.relational.authorization import AuthorizationManager
from repro.xmldb.dtd import Schema
from repro.xmlsec.authorx import XmlPolicyBase


def analyze_fixture_globals(bindings: dict[str, object]) -> Report:
    """Analyze every recognizable artifact in one module's globals."""
    report = Report()
    schemas = [v for v in bindings.values() if isinstance(v, Schema)]
    subjects = bindings.get("SUBJECTS")
    for value in bindings.values():
        if isinstance(value, XmlPolicyBase) and schemas:
            report.extend(analyze_xml_policies(value, schemas[0],
                                               subjects))
        elif isinstance(value, AuthorizationManager):
            report.extend(analyze_grants(value))
        elif isinstance(value, PrivacyConstraintSet):
            need = bindings.get("NEED_TO_KNOW")
            if not isinstance(need, (set, frozenset, list, tuple)):
                controllers = [v for v in bindings.values()
                               if isinstance(v, PrivacyController)]
                need = (controllers[0].need_to_know if controllers
                        else ())
            report.extend(analyze_privacy(value, need))
        elif isinstance(value, SecureRdfStore):
            report.extend(analyze_rdf(value))
    return report


def analyze_fixture_paths(paths: list[str]) -> Report:
    report = Report()
    for entry in paths:
        path = pathlib.Path(entry)
        if path.is_dir():
            files = sorted(p for p in path.glob("*.py")
                           if not p.name.startswith("_"))
        else:
            files = [path]
        for file in files:
            bindings = runpy.run_path(str(file))
            report.extend(analyze_fixture_globals(bindings))
    return report


def compile_report_for_globals(bindings: dict[str, object]
                               ) -> list[dict]:
    """Compile + verify every policy base in one module's globals."""
    # Imported here so plain fixture analysis never pays for (or
    # depends on) the compiler package.
    from repro.compile import (
        compile_policy_base,
        compile_xml_policy_base,
        verify_compiled,
        verify_label_table,
    )

    entries: list[dict] = []
    schemas = [v for v in bindings.values() if isinstance(v, Schema)]
    subjects = bindings.get("SUBJECTS")
    probes = subjects if isinstance(subjects, (list, tuple)) else None
    for name, value in bindings.items():
        if isinstance(value, PolicyBase):
            artifact = compile_policy_base(value, probes=probes)
            verification = verify_compiled(artifact, value,
                                           probes=probes)
            entries.append({
                "artifact": name,
                "kind": "core",
                "digest": artifact.digest,
                "stats": dataclasses.asdict(artifact.stats()),
                "verification": verification.to_dict(),
            })
        elif isinstance(value, XmlPolicyBase) and schemas:
            table = compile_xml_policy_base(value, schemas[0],
                                            probes=probes)
            verification = verify_label_table(table, value,
                                              probes=probes)
            entries.append({
                "artifact": name,
                "kind": "xml",
                "digest": verification.digest,
                "stats": dataclasses.asdict(table.stats()),
                "verification": verification.to_dict(),
            })
    return entries


def _render_compile_entry(entry: dict) -> str:
    stats = entry["stats"]
    verification = entry["verification"]
    if entry["kind"] == "core":
        shape = (f"{stats['path_classes']} path class(es), "
                 f"{stats['dfa_states']} DFA state(s), "
                 f"{stats['residual_policies']} residual")
    else:
        shape = (f"{stats['eager_states']} label state(s), "
                 f"{stats['dynamic_policies']} dynamic, "
                 f"doc {stats['doc_id']!r}")
    return (f"{entry['artifact']} [{entry['kind']}]: "
            f"{stats['policies']} policy(ies), {shape}, "
            f"{verification['cells']} cell(s) checked, "
            f"{verification['explained']} explained / "
            f"{verification['unexplained']} unexplained -> "
            f"{verification['verdict']} "
            f"(digest {entry['digest'][:12]})")


def _run_compile_report(paths: list[str], as_json: bool) -> int:
    entries: list[dict] = []
    for entry in paths:
        path = pathlib.Path(entry)
        if path.is_dir():
            files = sorted(p for p in path.glob("*.py")
                           if not p.name.startswith("_"))
        else:
            files = [path]
        for file in files:
            bindings = runpy.run_path(str(file))
            entries.extend(compile_report_for_globals(bindings))
    if as_json:
        print(json.dumps(entries, indent=2))
    else:
        for item in entries:
            print(_render_compile_entry(item))
    unexplained = sum(e["verification"]["unexplained"]
                      for e in entries)
    if unexplained:
        print(f"compile-report FAILED: {unexplained} unexplained "
              f"divergence(s)", file=sys.stderr)
        return 1
    if not entries:
        print("compile-report: no policy bases found", file=sys.stderr)
        return 2
    if not as_json:
        print(f"compile-report OK: {len(entries)} artifact(s) "
              f"verified")
    return 0


def _print_report(report: Report, as_json: bool) -> None:
    print(report.to_json() if as_json else report.render_text())


def _run_self_check(as_json: bool) -> int:
    result = run_self_check()
    _print_report(result.report, as_json)
    if not as_json:
        fired = ", ".join(sorted(result.fired & result.expected))
        print(f"self-check: {len(result.expected)} rule(s) expected; "
              f"fired: {fired}")
    if result.missing:
        print("self-check FAILED; silent rule(s): "
              + ", ".join(sorted(result.missing)), file=sys.stderr)
        return 1
    print("self-check OK: every registered rule detects its seeded "
          "defect")
    return 0


def _print_rules() -> int:
    for rule in sorted(REGISTRY.rules(), key=lambda r: (r.domain,
                                                        r.rule_id)):
        print(f"{rule.rule_id:15s} {str(rule.severity):7s} "
              f"[{rule.domain}] {rule.title}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static security-policy analysis and code lint.")
    parser.add_argument("paths", nargs="*",
                        help="fixture modules (or directories) to analyze")
    parser.add_argument("--lint", metavar="PATH", action="append",
                        default=[],
                        help="lint a source file or tree instead")
    parser.add_argument("--compile-report", metavar="PATH",
                        action="append", default=[],
                        help="compile + statically verify the policy "
                             "bases of a fixture module")
    parser.add_argument("--self-check", action="store_true",
                        help="verify every rule fires on seeded defects")
    parser.add_argument("--rules", action="store_true",
                        help="list the rule catalog and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    parser.add_argument("--max-severity", choices=["info", "warning",
                                                   "error"],
                        default="error",
                        help="lowest severity that fails the run "
                             "(default: error)")
    args = parser.parse_args(argv)

    if args.rules:
        return _print_rules()
    if args.self_check:
        return _run_self_check(args.json)

    # A typo'd path must not pass the gate as "no findings".
    missing = [p for p in args.paths + args.lint + args.compile_report
               if not pathlib.Path(p).exists()]
    if missing:
        parser.error("no such file or directory: "
                     + ", ".join(missing))

    if args.compile_report:
        return _run_compile_report(args.compile_report, args.json)

    report = Report()
    if args.lint:
        report.extend(lint_paths(args.lint))
    if args.paths:
        report.extend(analyze_fixture_paths(args.paths))
    if not args.lint and not args.paths:
        parser.print_usage()
        return 2
    _print_report(report, args.json)
    threshold = Severity[args.max_severity.upper()]
    failing = [f for f in report if f.severity >= threshold]
    return 1 if failing else 0
