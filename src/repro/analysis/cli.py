"""``python -m repro.analysis`` — the pre-deployment verification gate.

Three modes:

* **fixture analysis** (default): each positional path is a Python file
  (or directory of files) executed as a fixture module; every
  recognizable security artifact bound at module level — an
  :class:`XmlPolicyBase` (paired with a :class:`Schema` and optional
  subjects), an :class:`AuthorizationManager`, a
  :class:`PrivacyConstraintSet` (optionally with a ``NEED_TO_KNOW``
  set or a :class:`PrivacyController`), a :class:`SecureRdfStore` —
  is analyzed by the matching rule domain;
* ``--lint PATH``: run the AST code lint over a source tree;
* ``--self-check``: prove every registered rule fires on its seeded
  defect fixture.

Exit status is non-zero when any ERROR-severity finding (or lint
finding) is reported, which is what lets CI use this as a gate.
"""

from __future__ import annotations

import argparse
import pathlib
import runpy
import sys

from repro.analysis.channels import analyze_privacy
from repro.analysis.codelint import lint_paths
from repro.analysis.findings import REGISTRY, Report, Severity
from repro.analysis.grants import analyze_grants
from repro.analysis.mlsrdf import analyze_rdf
from repro.analysis.selfcheck import run_self_check
from repro.analysis.xmlpolicy import analyze_xml_policies
from repro.privacy.constraints import PrivacyConstraintSet
from repro.privacy.controller import PrivacyController
from repro.rdfdb.security import SecureRdfStore
from repro.relational.authorization import AuthorizationManager
from repro.xmldb.dtd import Schema
from repro.xmlsec.authorx import XmlPolicyBase


def analyze_fixture_globals(bindings: dict[str, object]) -> Report:
    """Analyze every recognizable artifact in one module's globals."""
    report = Report()
    schemas = [v for v in bindings.values() if isinstance(v, Schema)]
    subjects = bindings.get("SUBJECTS")
    for value in bindings.values():
        if isinstance(value, XmlPolicyBase) and schemas:
            report.extend(analyze_xml_policies(value, schemas[0],
                                               subjects))
        elif isinstance(value, AuthorizationManager):
            report.extend(analyze_grants(value))
        elif isinstance(value, PrivacyConstraintSet):
            need = bindings.get("NEED_TO_KNOW")
            if not isinstance(need, (set, frozenset, list, tuple)):
                controllers = [v for v in bindings.values()
                               if isinstance(v, PrivacyController)]
                need = (controllers[0].need_to_know if controllers
                        else ())
            report.extend(analyze_privacy(value, need))
        elif isinstance(value, SecureRdfStore):
            report.extend(analyze_rdf(value))
    return report


def analyze_fixture_paths(paths: list[str]) -> Report:
    report = Report()
    for entry in paths:
        path = pathlib.Path(entry)
        if path.is_dir():
            files = sorted(p for p in path.glob("*.py")
                           if not p.name.startswith("_"))
        else:
            files = [path]
        for file in files:
            bindings = runpy.run_path(str(file))
            report.extend(analyze_fixture_globals(bindings))
    return report


def _print_report(report: Report, as_json: bool) -> None:
    print(report.to_json() if as_json else report.render_text())


def _run_self_check(as_json: bool) -> int:
    result = run_self_check()
    _print_report(result.report, as_json)
    if not as_json:
        fired = ", ".join(sorted(result.fired & result.expected))
        print(f"self-check: {len(result.expected)} rule(s) expected; "
              f"fired: {fired}")
    if result.missing:
        print("self-check FAILED; silent rule(s): "
              + ", ".join(sorted(result.missing)), file=sys.stderr)
        return 1
    print("self-check OK: every registered rule detects its seeded "
          "defect")
    return 0


def _print_rules() -> int:
    for rule in sorted(REGISTRY.rules(), key=lambda r: (r.domain,
                                                        r.rule_id)):
        print(f"{rule.rule_id:15s} {str(rule.severity):7s} "
              f"[{rule.domain}] {rule.title}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static security-policy analysis and code lint.")
    parser.add_argument("paths", nargs="*",
                        help="fixture modules (or directories) to analyze")
    parser.add_argument("--lint", metavar="PATH", action="append",
                        default=[],
                        help="lint a source file or tree instead")
    parser.add_argument("--self-check", action="store_true",
                        help="verify every rule fires on seeded defects")
    parser.add_argument("--rules", action="store_true",
                        help="list the rule catalog and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    parser.add_argument("--max-severity", choices=["info", "warning",
                                                   "error"],
                        default="error",
                        help="lowest severity that fails the run "
                             "(default: error)")
    args = parser.parse_args(argv)

    if args.rules:
        return _print_rules()
    if args.self_check:
        return _run_self_check(args.json)

    # A typo'd path must not pass the gate as "no findings".
    missing = [p for p in args.paths + args.lint
               if not pathlib.Path(p).exists()]
    if missing:
        parser.error("no such file or directory: "
                     + ", ".join(missing))

    report = Report()
    if args.lint:
        report.extend(lint_paths(args.lint))
    if args.paths:
        report.extend(analyze_fixture_paths(args.paths))
    if not args.lint and not args.paths:
        parser.print_usage()
        return 2
    _print_report(report, args.json)
    threshold = Severity[args.max_severity.upper()]
    failing = [f for f in report if f.severity >= threshold]
    return 1 if failing else 0
