"""Probe universes: deciding overlap of opaque credential expressions.

Credential expressions (:mod:`repro.core.credentials`) are arbitrary
predicates, so exact subsumption between two subject specifications is
undecidable in general.  The analyzer decides overlap *relative to a
finite probe universe* of subjects — the standard finite-model trick:
two specifications overlap when some probe satisfies both, and Q covers
P when every probe satisfying P also satisfies Q.  The default universe
mixes the named cast with a seeded synthetic population so the common
qualifiers (roles, departments, credential types) are all represented.

Each policy's probe set is packed into a bitmask once, making the
pairwise overlap tests during conflict/shadow detection O(1) bitwise
operations — this is what keeps whole-policy-base analysis near-linear
(benchmark A4).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

from repro.core.credentials import CredentialExpression
from repro.core.subjects import Subject, SubjectDirectory
from repro.datagen.population import generate_population, named_cast

#: Size of the synthetic slice of the default probe universe.
DEFAULT_POPULATION = 40
_DEFAULT_SEED = 7


@lru_cache(maxsize=1)
def _default_probes() -> tuple[Subject, ...]:
    cast = named_cast()
    population = generate_population(DEFAULT_POPULATION, seed=_DEFAULT_SEED)
    return (cast.doctor, cast.nurse, cast.researcher,
            cast.administrator, cast.stranger,
            *population.subjects())


def default_probe_subjects() -> tuple[Subject, ...]:
    """The analyzer's default finite subject universe."""
    return _default_probes()


def as_probe_list(subjects: object) -> list[Subject]:
    """Coerce fixture globals (directory, cast, iterable) to subjects."""
    if subjects is None:
        return list(default_probe_subjects())
    if isinstance(subjects, SubjectDirectory):
        return list(subjects.subjects())
    if isinstance(subjects, Subject):
        return [subjects]
    collected: list[Subject] = []
    if isinstance(subjects, Iterable):
        for entry in subjects:
            if isinstance(entry, Subject):
                collected.append(entry)
    return collected or list(default_probe_subjects())


def probe_mask(expression: CredentialExpression,
               probes: Sequence[Subject]) -> int:
    """Bit i set iff probe i satisfies *expression*.

    A probe that makes the expression raise is counted as non-matching —
    the analysis must never crash on a hostile predicate.
    """
    mask = 0
    for index, subject in enumerate(probes):
        try:
            matched = expression.evaluate(subject)
        except Exception as _exc:  # noqa: BLE001 - hostile predicates
            matched = False  # stay silent; the swallow is the contract
        if matched:
            mask |= 1 << index
    return mask


def masks_overlap(mask_a: int, mask_b: int) -> bool:
    """Some probe satisfies both expressions."""
    return bool(mask_a & mask_b)


def mask_covers(covering: int, covered: int) -> bool:
    """Every probe satisfying *covered* also satisfies *covering*."""
    return covered & ~covering == 0


def describe_overlap(mask: int, probes: Sequence[Subject],
                     limit: int = 3) -> str:
    """Names of (up to *limit*) probes witnessing an overlap."""
    names = [probes[i].identity.name for i in range(len(probes))
             if mask & (1 << i)]
    shown = ", ".join(names[:limit])
    if len(names) > limit:
        shown += f", +{len(names) - limit} more"
    return shown
