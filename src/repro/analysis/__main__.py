"""Entry point: ``python -m repro.analysis``."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
