"""Static analysis of the System R grant graph.

:meth:`repro.relational.authorization.AuthorizationManager.revoke`
repairs the graph at revocation time; these rules find the trouble
before anyone revokes:

* ``REL-DANGLING`` — a grant whose grantor holds no authority predating
  it (no ownership, no earlier grant-option chain from the owner): the
  System R timestamp rule says it should not exist, and the next revoke
  will silently sweep it away;
* ``REL-CYCLE`` — grant-option cycles: mutually supporting grants that
  keep each other alive and make revocation semantics order-dependent;
* ``REL-ESCALATION`` — privilege-escalation paths: subjects who can
  transitively reach GRANT authority on a table through two or more
  grant-option hops, i.e. beyond the owner's direct trust.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.findings import Finding, Report, Severity, REGISTRY
from repro.relational.authorization import AuthorizationManager, Grant

REGISTRY.register(
    "REL-DANGLING", Severity.ERROR, "grants",
    "grant unsupported by any owner-rooted chain",
    "§3.1 System R recursive revocation: every grant must trace to the "
    "owner through grants that predate it")
REGISTRY.register(
    "REL-CYCLE", Severity.WARNING, "grants",
    "grant-option cycle",
    "§3.1 cyclic delegation makes revocation outcomes depend on edge "
    "timestamps, a classic System R pitfall")
REGISTRY.register(
    "REL-ESCALATION", Severity.WARNING, "grants",
    "transitive path to GRANT authority",
    "§3.1 'greater and more dynamic' populations: delegation chains "
    "extend grant authority beyond the owner's direct trust")


def _edge_location(grant: Grant) -> str:
    return f"grant#{grant.grant_id}"


def unsupported_grants(auth: AuthorizationManager) -> list[Grant]:
    """Grants no owner-rooted, timestamp-respecting chain supports.

    The fixpoint mirrors the sweep inside ``revoke``: repeatedly discard
    grants whose grantor is not the owner and holds no surviving
    grant-option edge older than the grant itself.
    """
    owners = auth.owners()
    pool = auth.all_grants()
    removed: list[Grant] = []
    changed = True
    while changed:
        changed = False
        for edge in list(pool):
            if owners.get(edge.table) == edge.grantor:
                continue
            if any(g.grantee == edge.grantor and g.table == edge.table
                   and g.privilege == edge.privilege
                   and g.with_grant_option
                   and g.sequence < edge.sequence
                   for g in pool):
                continue
            pool.remove(edge)
            removed.append(edge)
            changed = True
    return removed


@REGISTRY.checker("REL-DANGLING")
def check_dangling(auth: AuthorizationManager) -> list[Finding]:
    findings = []
    for edge in unsupported_grants(auth):
        findings.append(REGISTRY.make_finding(
            "REL-DANGLING", _edge_location(edge),
            f"{edge.grantor!r} granted {edge.privilege.value} on "
            f"{edge.table!r} to {edge.grantee!r} without authority "
            f"predating the grant",
            fix_hint="revoke the edge or re-grant it from an "
                     "owner-rooted chain"))
    return findings


def _reachable(graph: dict[str, set[str]], start: str) -> set[str]:
    """Nodes reachable from *start* through one or more edges."""
    reached: set[str] = set()
    frontier = list(graph.get(start, ()))
    while frontier:
        node = frontier.pop()
        if node in reached:
            continue
        reached.add(node)
        frontier.extend(graph.get(node, ()))
    return reached


def grant_option_cycles(auth: AuthorizationManager
                        ) -> list[tuple[str, str, list[str]]]:
    """(table, privilege, cycle members) for each grant-option cycle.

    Members are the strongly connected component: the set of grantees
    whose grant options mutually keep each other alive.
    """
    edges: dict[tuple[str, str], dict[str, set[str]]] = defaultdict(
        lambda: defaultdict(set))
    for grant in auth.all_grants():
        if grant.with_grant_option:
            key = (grant.table, grant.privilege.value)
            edges[key][grant.grantor].add(grant.grantee)
    cycles: list[tuple[str, str, list[str]]] = []
    for (table, privilege), graph in sorted(edges.items()):
        reach = {node: _reachable(graph, node) for node in graph}
        cyclic = {node for node in graph if node in reach[node]}
        while cyclic:
            anchor = min(cyclic)
            component = {node for node in cyclic
                         if node in reach[anchor]
                         and anchor in reach[node]} | {anchor}
            cycles.append((table, privilege, sorted(component)))
            cyclic -= component
    return cycles


@REGISTRY.checker("REL-CYCLE")
def check_cycles(auth: AuthorizationManager) -> list[Finding]:
    findings = []
    for table, privilege, members in grant_option_cycles(auth):
        loop = " -> ".join(members + [members[0]])
        findings.append(REGISTRY.make_finding(
            "REL-CYCLE", f"{table}:{privilege}",
            f"grant-option cycle {loop}",
            fix_hint="break the cycle by revoking one grant option"))
    return findings


def escalation_paths(auth: AuthorizationManager
                     ) -> list[tuple[str, str, list[str]]]:
    """Shortest owner-rooted grant-option chains of length >= 2.

    Returns (table, privilege, path) where path starts at the owner and
    ends at a subject who can GRANT the privilege onward despite never
    being directly trusted by the owner.
    """
    owners = auth.owners()
    option_edges: dict[tuple[str, str], dict[str, set[str]]] = defaultdict(
        lambda: defaultdict(set))
    for grant in auth.all_grants():
        if grant.with_grant_option:
            key = (grant.table, grant.privilege.value)
            option_edges[key][grant.grantor].add(grant.grantee)
    paths: list[tuple[str, str, list[str]]] = []
    for (table, privilege), graph in sorted(option_edges.items()):
        owner = owners.get(table)
        if owner is None:
            continue
        best_path: dict[str, list[str]] = {owner: [owner]}
        frontier = [owner]
        while frontier:
            next_frontier: list[str] = []
            for node in frontier:
                for successor in sorted(graph.get(node, ())):
                    if successor in best_path:
                        continue
                    best_path[successor] = best_path[node] + [successor]
                    next_frontier.append(successor)
            frontier = next_frontier
        for user, path in sorted(best_path.items()):
            if len(path) >= 3:  # owner + 2 hops or more
                paths.append((table, privilege, path))
    return paths


@REGISTRY.checker("REL-ESCALATION")
def check_escalation(auth: AuthorizationManager) -> list[Finding]:
    findings = []
    for table, privilege, path in escalation_paths(auth):
        chain = " -> ".join(path)
        findings.append(REGISTRY.make_finding(
            "REL-ESCALATION", f"{table}:{privilege}",
            f"{path[-1]!r} reaches GRANT authority on {table!r} "
            f"transitively: {chain}",
            fix_hint="grant without the option past the first hop, or "
                     "revoke the intermediate grant option"))
    return findings


def analyze_grants(auth: AuthorizationManager) -> Report:
    """Run every ``grants``-domain rule over one grant graph."""
    return Report(REGISTRY.run_domain("grants", auth))
