"""MLS classification consistency for RDF stores.

:mod:`repro.rdfdb.security` can *detect* reification leaks at query time
(:meth:`SecureRdfStore.reification_leaks`); these rules promote the same
invariants to pre-deployment checks over the label assignment itself:

* ``RDF-REIFY`` — a statement classified above one of its reification
  quadruples: readers below the statement's level can reassemble it from
  ``rdf:subject``/``rdf:predicate``/``rdf:object`` triples ("statements
  about statements" leaking the statement, §3.2);
* ``RDF-CONTAINER`` — a container whose membership triples are labelled
  below its type triple (or vice versa): partial classification lets a
  low reader observe members, gaps, or the container's existence that
  the atomic-classification story says they should not see.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, Report, Severity, REGISTRY
from repro.rdfdb.containers import container_nodes, membership_index
from repro.rdfdb.model import RDF
from repro.rdfdb.reification import (
    described_statement,
    reification_triples,
)
from repro.rdfdb.security import SecureRdfStore

REGISTRY.register(
    "RDF-REIFY", Severity.ERROR, "rdf",
    "reification quadruple classified below its statement",
    "§3.2 'what about statements about statements?' — a reification "
    "re-encodes the statement and must dominate its label")
REGISTRY.register(
    "RDF-CONTAINER", Severity.WARNING, "rdf",
    "container classified non-atomically",
    "§3.2 'how can bags, lists and alternatives be protected?' — "
    "containers are meant to be classified as a unit")


@REGISTRY.checker("RDF-REIFY")
def check_reifications(secure: SecureRdfStore) -> list[Finding]:
    findings = []
    for type_triple in secure.store.match(None, RDF.type, RDF.Statement):
        node = type_triple.subject
        base = described_statement(secure.store, node)
        if base is None or base not in secure.store:
            continue
        base_label = secure.label_of(base)
        low_quads = [
            quad for quad in reification_triples(secure.store, node)
            if quad.predicate in (RDF.subject, RDF.predicate, RDF.object,
                                  RDF.type)
            and not secure.label_of(quad).dominates(base_label)]
        if not low_quads:
            continue
        predicates = ", ".join(sorted(
            quad.predicate.local_name for quad in low_quads))
        findings.append(REGISTRY.make_finding(
            "RDF-REIFY", f"reification:{node}",
            f"statement {base} is labelled {base_label} but its "
            f"quadruple(s) {predicates} carry lower labels",
            fix_hint="classify the reification with "
                     "protect_reifications=True or raise the quadruple "
                     "labels"))
    return findings


@REGISTRY.checker("RDF-CONTAINER")
def check_containers(secure: SecureRdfStore) -> list[Finding]:
    findings = []
    for node in container_nodes(secure.store):
        type_label = None
        member_labels = []
        for triple in secure.store.match(node, None, None):
            if triple.predicate == RDF.type:
                type_label = secure.label_of(triple)
            elif membership_index(triple.predicate) is not None:
                member_labels.append((triple, secure.label_of(triple)))
        if type_label is None or not member_labels:
            continue
        mismatched = [triple for triple, label in member_labels
                      if label != type_label]
        if not mismatched:
            continue
        indexes = sorted(membership_index(t.predicate)
                         for t in mismatched)
        shown = ", ".join(f"_{i}" for i in indexes[:5])
        more = f" (+{len(indexes) - 5} more)" if len(indexes) > 5 else ""
        findings.append(REGISTRY.make_finding(
            "RDF-CONTAINER", f"container:{node}",
            f"membership triple(s) {shown}{more} are labelled "
            f"differently from the container's type triple "
            f"({type_label})",
            fix_hint="use classify_container to label the container "
                     "atomically"))
    return findings


def analyze_rdf(secure: SecureRdfStore) -> Report:
    """Run every ``rdf``-domain rule over one secure store."""
    return Report(REGISTRY.run_domain("rdf", secure))
