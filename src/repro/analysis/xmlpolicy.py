"""Whole-policy-base static analysis for Author-X XML policies.

The enforcement path (:meth:`repro.xmlsec.authorx.XmlPolicyBase.
label_document`) resolves ⊕/⊖ conflicts per request, per materialized
document.  This module answers the same questions *before any document
exists* by evaluating policy targets against the DTD element graph
(:class:`repro.xmldb.dtd.Schema`) instead of instance trees:

* ``XML-DEAD`` — the target selects no element type derivable from the
  DTD: the policy can never fire;
* ``XML-CONFLICT`` — a GRANT and a DENY with overlapping subject
  specifications attach to the same DTD node at the same privilege, so
  every document instantiating that node resolves a conflict at runtime;
* ``XML-SHADOWED`` — a GRANT whose whole propagation region is covered,
  at equal-or-greater attachment depth and for every subject it
  qualifies, by DENY policies: most-specific-wins plus deny-over-grant
  means the grant can never decide any node.

⊕/⊖ propagation reachability is computed on the DTD graph: a policy
attached to element type *t* with CASCADE affects every type reachable
from *t* through content-model edges, ONE_LEVEL affects *t* and its
declared children, LOCAL affects *t* alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.findings import Finding, Report, Severity, REGISTRY
from repro.analysis.probes import (
    as_probe_list,
    describe_overlap,
    mask_covers,
    masks_overlap,
    probe_mask,
)
from repro.core.subjects import Subject
from repro.xmldb.dtd import Schema
from repro.xmldb.xpath import XPath
from repro.xmlsec.authorx import XmlPolicy, XmlPolicyBase, XmlSign

REGISTRY.register(
    "XML-DEAD", Severity.ERROR, "xml",
    "policy target unsatisfiable on the DTD",
    "§3.2 access control must be definable at DTD level, not only on "
    "materialized documents")
REGISTRY.register(
    "XML-CONFLICT", Severity.WARNING, "xml",
    "grant/deny conflict on the same DTD node",
    "§3.2 conflict resolution (deny-takes-precedence) should be a "
    "design-time decision, not a runtime surprise")
REGISTRY.register(
    "XML-SHADOWED", Severity.WARNING, "xml",
    "grant shadowed everywhere by denials",
    "§3.2 most-specific-wins resolution can silently void a policy; "
    "dead policies hide intent drift")


class DtdGraph:
    """The element graph of a schema: tags, edges, depths, closures."""

    def __init__(self, schema: Schema) -> None:
        self.root = schema.root_tag
        self.children: dict[str, frozenset[str]] = {
            decl.tag: frozenset(spec.tag for spec in decl.children)
            for decl in schema.declarations()}
        self.children.setdefault(self.root, frozenset())
        self._min_depth: dict[str, int] = {}
        frontier = [self.root]
        depth = 0
        while frontier:
            next_frontier: list[str] = []
            for tag in frontier:
                if tag in self._min_depth:
                    continue
                self._min_depth[tag] = depth
                next_frontier.extend(self.children.get(tag, ()))
            frontier = next_frontier
            depth += 1
        self._descendants: dict[str, frozenset[str]] = {}

    def declared(self, tag: str) -> bool:
        return tag in self._min_depth

    def min_depth(self, tag: str) -> int:
        return self._min_depth.get(tag, -1)

    def child_tags(self, tag: str) -> frozenset[str]:
        return self.children.get(tag, frozenset())

    def strict_descendants(self, tag: str) -> frozenset[str]:
        """Tags reachable from *tag* through one or more content edges."""
        cached = self._descendants.get(tag)
        if cached is not None:
            return cached
        reached: set[str] = set()
        frontier = list(self.child_tags(tag))
        while frontier:
            current = frontier.pop()
            if current in reached:
                continue
            reached.add(current)
            frontier.extend(self.child_tags(current))
        result = frozenset(reached)
        self._descendants[tag] = result
        return result

    def reachable_tags(self) -> frozenset[str]:
        return frozenset(self._min_depth)


def attachment_tags(target: XPath, graph: DtdGraph) -> frozenset[str]:
    """Element types the target can select on documents valid per DTD.

    Predicates are ignored (an over-approximation: a predicate can only
    shrink the selected set), and value-selecting targets (``@attr``,
    ``text()``) yield the empty set — ``select_elements`` rejects them at
    enforcement time, so such a policy is dead.
    """
    final = target.steps[-1]
    if final.test.startswith("@") or final.test == "text()":
        return frozenset()
    steps = list(target.steps)
    current: set[str]
    if target.absolute and steps[0].axis == "child":
        head = steps[0]
        current = ({graph.root} if head.test in (graph.root, "*")
                   else set())
        steps = steps[1:]
    else:
        current = {graph.root}
    for step in steps:
        next_tags: set[str] = set()
        for tag in current:
            if step.axis == "descendant":
                pool = graph.strict_descendants(tag)
            else:
                pool = graph.child_tags(tag)
            if step.test == "*":
                next_tags |= pool
            elif step.test in pool:
                next_tags.add(step.test)
        current = next_tags
        if not current:
            break
    return frozenset(current)


def propagation_region(policy: XmlPolicy, attachments: frozenset[str],
                       graph: DtdGraph) -> dict[str, int]:
    """Affected element types with their best attachment depth.

    Maps each tag the policy can label to the greatest ``min_depth`` of
    an attachment point affecting it — the quantity most-specific-wins
    resolution compares.
    """
    from repro.xmlsec.authorx import XmlPropagation

    region: dict[str, int] = {}
    for tag in attachments:
        depth = graph.min_depth(tag)
        if policy.propagation is XmlPropagation.LOCAL:
            targets: frozenset[str] = frozenset((tag,))
        elif policy.propagation is XmlPropagation.ONE_LEVEL:
            targets = graph.child_tags(tag) | {tag}
        else:
            targets = graph.strict_descendants(tag) | {tag}
        for affected in targets:
            if region.get(affected, -1) < depth:
                region[affected] = depth
    return region


@dataclass
class PolicySummary:
    """Everything the rules need about one policy, precomputed once."""

    policy: XmlPolicy
    attachments: frozenset[str]
    region: dict[str, int]
    subject_mask: int

    @property
    def dead(self) -> bool:
        return not self.attachments


@dataclass
class XmlPolicyAnalysis:
    """The analysis context handed to ``xml``-domain checkers."""

    base: XmlPolicyBase
    graph: DtdGraph
    probes: Sequence[Subject]
    summaries: list[PolicySummary] = field(default_factory=list)

    @classmethod
    def build(cls, base: XmlPolicyBase, schema: Schema,
              probes: Sequence[Subject] | None = None
              ) -> "XmlPolicyAnalysis":
        graph = DtdGraph(schema)
        probe_list = as_probe_list(probes)
        analysis = cls(base, graph, probe_list)
        for policy in base:
            attachments = attachment_tags(policy.target, graph)
            analysis.summaries.append(PolicySummary(
                policy, attachments,
                propagation_region(policy, attachments, graph),
                probe_mask(policy.subject_spec, probe_list)))
        return analysis

    def grants(self) -> list[PolicySummary]:
        return [s for s in self.summaries
                if s.policy.sign is XmlSign.GRANT]

    def denies(self) -> list[PolicySummary]:
        return [s for s in self.summaries
                if s.policy.sign is XmlSign.DENY]


def _location(policy: XmlPolicy) -> str:
    return f"policy#{policy.policy_id}"


@REGISTRY.checker("XML-DEAD")
def check_dead_policies(analysis: XmlPolicyAnalysis) -> list[Finding]:
    findings = []
    for summary in analysis.summaries:
        if summary.dead:
            findings.append(REGISTRY.make_finding(
                "XML-DEAD", _location(summary.policy),
                f"target {summary.policy.target} selects no element "
                f"type derivable from DTD root "
                f"<{analysis.graph.root}>",
                fix_hint="correct the XPath target or delete the policy"))
    return findings


@REGISTRY.checker("XML-CONFLICT")
def check_conflicts(analysis: XmlPolicyAnalysis) -> list[Finding]:
    """One finding per GRANT that collides with DENYs on a DTD node.

    Indexing denies by attachment tag keeps this near-linear in practice;
    subject overlap is a single bitwise AND thanks to probe masks.
    """
    by_tag: dict[tuple[str, object], list[PolicySummary]] = {}
    for deny in analysis.denies():
        if not deny.subject_mask:
            continue
        for tag in deny.attachments:
            by_tag.setdefault((tag, deny.policy.privilege), []).append(deny)
    findings = []
    for grant in analysis.grants():
        if not grant.subject_mask:
            continue
        conflicting: dict[int, tuple[str, int]] = {}
        for tag in grant.attachments:
            for deny in by_tag.get((tag, grant.policy.privilege), ()):
                if masks_overlap(grant.subject_mask, deny.subject_mask):
                    conflicting.setdefault(
                        deny.policy.policy_id,
                        (tag, grant.subject_mask & deny.subject_mask))
        if not conflicting:
            continue
        sample_id = min(conflicting)
        tag, witness = conflicting[sample_id]
        witnesses = describe_overlap(witness, analysis.probes)
        others = (f" (+{len(conflicting) - 1} more denial(s))"
                  if len(conflicting) > 1 else "")
        findings.append(REGISTRY.make_finding(
            "XML-CONFLICT", _location(grant.policy),
            f"grants <{tag}> that policy#{sample_id} denies for "
            f"overlapping subjects ({witnesses}){others}; "
            f"deny wins at equal depth",
            fix_hint="narrow one subject specification or make the "
                     "precedence explicit with a deeper policy"))
    return findings


@REGISTRY.checker("XML-SHADOWED")
def check_shadowed(analysis: XmlPolicyAnalysis) -> list[Finding]:
    denies = [d for d in analysis.denies() if not d.dead]
    findings = []
    for grant in analysis.grants():
        if grant.dead or not grant.subject_mask:
            continue
        shadowing: list[PolicySummary] = []
        uncovered = dict(grant.region)
        for deny in denies:
            if deny.policy.privilege is not grant.policy.privilege:
                continue
            if not mask_covers(deny.subject_mask, grant.subject_mask):
                continue
            took_effect = False
            for tag, depth in list(uncovered.items()):
                if deny.region.get(tag, -1) >= depth:
                    del uncovered[tag]
                    took_effect = True
            if took_effect:
                shadowing.append(deny)
        if uncovered or not shadowing:
            continue
        deny_ids = ", ".join(f"policy#{d.policy.policy_id}"
                             for d in shadowing[:4])
        findings.append(REGISTRY.make_finding(
            "XML-SHADOWED", _location(grant.policy),
            f"every element type this grant reaches is denied at "
            f"equal-or-greater depth for all its subjects by {deny_ids}",
            fix_hint="delete the grant or weaken the covering denial"))
    return findings


def analyze_xml_policies(base: XmlPolicyBase, schema: Schema,
                         probes: Sequence[Subject] | None = None
                         ) -> Report:
    """Run every ``xml``-domain rule over one policy base + DTD."""
    analysis = XmlPolicyAnalysis.build(base, schema, probes)
    return Report(REGISTRY.run_domain("xml", analysis))
