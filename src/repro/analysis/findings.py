"""Findings, rules and the pluggable rule registry.

Every static check in :mod:`repro.analysis` — policy-base analysis,
grant-graph analysis, inference-channel detection, MLS/RDF consistency
and the code lint — reports through one :class:`Finding` record so the
CLI, CI gate and tests consume a single shape.  Rules are declared once
in the :class:`RuleRegistry` (id, severity, title, the paper claim the
rule guards) and checkers attach to them by id, so adding a check is:
register the rule, write a generator of findings.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator


class Severity(enum.IntEnum):
    """How bad a finding is; ERROR findings fail the build."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One defect discovered statically.

    ``location`` addresses the offending artifact: a policy id, a grant
    edge, a DTD node, a ``file:line`` for lint findings.  ``fix_hint``
    tells the policy author what would make the finding go away.
    """

    rule_id: str
    severity: Severity
    location: str
    message: str
    fix_hint: str = ""

    def render(self) -> str:
        hint = f"  (fix: {self.fix_hint})" if self.fix_hint else ""
        return (f"[{self.rule_id}] {self.severity}: {self.location}: "
                f"{self.message}{hint}")

    def to_dict(self) -> dict[str, str]:
        return {
            "rule_id": self.rule_id,
            "severity": str(self.severity),
            "location": self.location,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }


@dataclass(frozen=True)
class Rule:
    """A registered rule: identity, default severity and provenance."""

    rule_id: str
    severity: Severity
    domain: str
    title: str
    claim: str = ""


class RuleRegistry:
    """The pluggable catalog of rules and their checkers.

    Checkers are callables ``(context) -> Iterable[Finding]`` attached to
    a registered rule; :meth:`run_domain` runs every checker of a domain
    against one context object.  Domains keep heterogeneous contexts
    apart: ``xml`` checkers receive an :class:`~repro.analysis.xmlpolicy.
    XmlPolicyAnalysis`, ``grants`` checkers an AuthorizationManager
    wrapper, and so on.
    """

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}
        self._checkers: dict[str, list[Callable[[object], Iterable[Finding]]]] = {}

    def register(self, rule_id: str, severity: Severity, domain: str,
                 title: str, claim: str = "") -> Rule:
        if rule_id in self._rules:
            raise ValueError(f"rule {rule_id!r} already registered")
        rule = Rule(rule_id, severity, domain, title, claim)
        self._rules[rule_id] = rule
        return rule

    def checker(self, rule_id: str) -> Callable[
            [Callable[[object], Iterable[Finding]]],
            Callable[[object], Iterable[Finding]]]:
        """Decorator attaching a checker function to a registered rule."""
        if rule_id not in self._rules:
            raise ValueError(f"rule {rule_id!r} is not registered")

        def attach(func: Callable[[object], Iterable[Finding]]
                   ) -> Callable[[object], Iterable[Finding]]:
            self._checkers.setdefault(rule_id, []).append(func)
            return func

        return attach

    def rule(self, rule_id: str) -> Rule:
        return self._rules[rule_id]

    def rules(self, domain: str | None = None) -> list[Rule]:
        return [r for r in self._rules.values()
                if domain is None or r.domain == domain]

    def make_finding(self, rule_id: str, location: str, message: str,
                     fix_hint: str = "",
                     severity: Severity | None = None) -> Finding:
        """A finding carrying the rule's registered default severity."""
        rule = self._rules[rule_id]
        return Finding(rule_id, severity if severity is not None
                       else rule.severity, location, message, fix_hint)

    def run_domain(self, domain: str, context: object) -> list[Finding]:
        findings: list[Finding] = []
        for rule in self.rules(domain):
            for checker in self._checkers.get(rule.rule_id, ()):
                findings.extend(checker(context))
        return findings


#: The process-wide registry every analysis module populates on import.
REGISTRY = RuleRegistry()


@dataclass
class Report:
    """A batch of findings plus rendering/exit-code logic."""

    findings: list[Finding] = field(default_factory=list)

    def extend(self, more: Iterable[Finding]) -> "Report":
        self.findings.extend(more)
        return self

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def by_rule(self, rule_id: str) -> list[Finding]:
        return [f for f in self.findings if f.rule_id == rule_id]

    def rule_ids(self) -> set[str]:
        return {f.rule_id for f in self.findings}

    @property
    def has_errors(self) -> bool:
        return any(f.severity is Severity.ERROR for f in self.findings)

    def sorted(self) -> list[Finding]:
        return sorted(self.findings,
                      key=lambda f: (-int(f.severity), f.rule_id,
                                     f.location))

    def render_text(self) -> str:
        if not self.findings:
            return "no findings"
        lines = [f.render() for f in self.sorted()]
        counts = {s: sum(1 for f in self.findings if f.severity is s)
                  for s in Severity}
        lines.append(f"{len(self.findings)} finding(s): "
                     f"{counts[Severity.ERROR]} error(s), "
                     f"{counts[Severity.WARNING]} warning(s), "
                     f"{counts[Severity.INFO]} info")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps([f.to_dict() for f in self.sorted()], indent=2)

    @property
    def exit_code(self) -> int:
        return 1 if self.has_errors else 0
