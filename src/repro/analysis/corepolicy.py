"""Whole-base static analysis for core (path-pattern) policies.

The ``policy`` rule domain: the :mod:`repro.core` analogue of the XML
policy checks in :mod:`repro.analysis.xmlpolicy`, built on the compiler
front-end (:mod:`repro.compile.pathdfa`) instead of a DTD graph:

* ``POL-DEAD`` — no subject in the probe universe satisfies the
  policy's credential expression: relative to that universe the policy
  can never fire;
* ``POL-CONFLICT`` — a GRANT and a DENY for the same action whose
  resource reaches overlap (decided by a pairwise path DFA, so the
  answer depends only on the two policies) and whose subject masks
  intersect: every request in the overlap resolves a conflict at
  runtime;
* ``POL-SHADOW`` — a GRANT such that at *every* explored path class it
  reaches, the union of same-action DENY policies applying there covers
  its whole subject mask: under deny-overrides the grant can never
  determine a decision.

Shard invariance: :class:`~repro.scale.engine.ShardedPolicyEngine`
broadcasts glob-head policies to every shard, so naive per-shard
analysis reports the same defect once per shard.
:func:`analyze_core_policies` therefore runs ``POL-DEAD`` and
``POL-CONFLICT`` per shard but emits findings whose text depends only
on the policies involved (never on shard-local DFA artifacts), dedupes
by ``(rule, location, message)``, and computes ``POL-SHADOW`` once over
the deduplicated union — a per-shard shadow verdict would be
meaningless anyway, since the covering denies of a literal-head grant
may live on other shards only for broadcast patterns.  The regression
suite asserts the report is identical for shard counts 1–8 and equal
to the monolithic analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analysis.findings import Finding, Report, Severity, REGISTRY
from repro.analysis.probes import (
    as_probe_list,
    describe_overlap,
    mask_covers,
    masks_overlap,
    probe_mask,
)
from repro.core.policy import Policy, Sign
from repro.core.subjects import Subject
from repro.compile.pathdfa import MergedPathDfa

REGISTRY.register(
    "POL-DEAD", Severity.WARNING, "policy",
    "no probe subject qualifies under the policy",
    "§3.2 subject specifications should be analyzable before "
    "deployment; a policy no known subject can ever satisfy is either "
    "a typo or intent drift")
REGISTRY.register(
    "POL-CONFLICT", Severity.WARNING, "policy",
    "grant/deny conflict on overlapping resources and subjects",
    "§3.2 conflict resolution should be a design-time decision, not a "
    "runtime surprise")
REGISTRY.register(
    "POL-SHADOW", Severity.WARNING, "policy",
    "grant shadowed everywhere by denials",
    "§3.2 deny-overrides resolution can silently void a policy; dead "
    "grants hide intent drift")


def patterns_overlap(policy_a: Policy, policy_b: Policy) -> bool:
    """Some path both policies' resource reaches contain.

    Decided on a two-policy merged DFA, so the verdict depends only on
    the pair — the property that keeps conflict findings identical no
    matter which shard (or monolithic base) the pair is analyzed in.
    """
    dfa = MergedPathDfa((policy_a, policy_b))
    dfa.explore()
    return any(state.applies_mask == 0b11 for state in dfa.states())


@dataclass
class CorePolicyAnalysis:
    """The context handed to ``policy``-domain checkers."""

    policies: tuple[Policy, ...]
    probes: Sequence[Subject]
    masks: list[int] = field(default_factory=list)
    #: Shadow needs the *whole* deny set; per-shard contexts disable it.
    shadow_scope: bool = True
    _overlap_cache: dict[tuple[int, int], bool] = field(
        default_factory=dict)

    @classmethod
    def build(cls, policies: Iterable[Policy],
              probes: Sequence[Subject] | None = None,
              shadow_scope: bool = True) -> "CorePolicyAnalysis":
        ordered = tuple(sorted(policies, key=lambda p: p.policy_id))
        probe_list = as_probe_list(probes)
        analysis = cls(ordered, probe_list, shadow_scope=shadow_scope)
        analysis.masks = [probe_mask(p.subject_expression, probe_list)
                          for p in ordered]
        return analysis

    def overlap(self, policy_a: Policy, policy_b: Policy) -> bool:
        key = (min(policy_a.policy_id, policy_b.policy_id),
               max(policy_a.policy_id, policy_b.policy_id))
        cached = self._overlap_cache.get(key)
        if cached is None:
            cached = patterns_overlap(policy_a, policy_b)
            self._overlap_cache[key] = cached
        return cached


def _location(policy: Policy) -> str:
    return f"policy#{policy.policy_id}"


@REGISTRY.checker("POL-DEAD")
def check_dead_policies(analysis: CorePolicyAnalysis) -> list[Finding]:
    findings = []
    for policy, mask in zip(analysis.policies, analysis.masks):
        if not mask:
            findings.append(REGISTRY.make_finding(
                "POL-DEAD", _location(policy),
                f"no subject in the {len(analysis.probes)}-probe "
                f"universe satisfies "
                f"{policy.subject_expression.description!r}",
                fix_hint="fix the credential expression or extend the "
                         "probe universe if the subject class is real"))
    return findings


@REGISTRY.checker("POL-CONFLICT")
def check_conflicts(analysis: CorePolicyAnalysis) -> list[Finding]:
    """One finding per conflicting (grant, deny) pair.

    Finding text names only the pair and the shared probe witnesses —
    both shard-independent — so per-shard duplicates from broadcast
    policies dedupe exactly.
    """
    grants = [(p, m) for p, m in zip(analysis.policies, analysis.masks)
              if p.sign is Sign.GRANT and m]
    denies = [(p, m) for p, m in zip(analysis.policies, analysis.masks)
              if p.sign is Sign.DENY and m]
    findings = []
    for grant, grant_mask in grants:
        for deny, deny_mask in denies:
            if deny.action is not grant.action:
                continue
            if not masks_overlap(grant_mask, deny_mask):
                continue
            if not analysis.overlap(grant, deny):
                continue
            witnesses = describe_overlap(grant_mask & deny_mask,
                                         analysis.probes)
            findings.append(REGISTRY.make_finding(
                "POL-CONFLICT", _location(grant),
                f"grant on {grant.resource} conflicts with "
                f"policy#{deny.policy_id} deny on {deny.resource} "
                f"for overlapping subjects ({witnesses})",
                fix_hint="narrow one resource pattern or subject "
                         "expression, or rely explicitly on the "
                         "resolution strategy"))
    return findings


@REGISTRY.checker("POL-SHADOW")
def check_shadowed(analysis: CorePolicyAnalysis) -> list[Finding]:
    """Grants that deny-overrides resolution can never let decide."""
    if not analysis.shadow_scope:
        return []
    dfa = MergedPathDfa(analysis.policies)
    dfa.explore()
    states = [s for s in dfa.states() if s.applies_mask]
    findings = []
    for index, (grant, grant_mask) in enumerate(
            zip(analysis.policies, analysis.masks)):
        if grant.sign is not Sign.GRANT or not grant_mask:
            continue
        grant_bit = 1 << index
        reached = [s for s in states if s.applies_mask & grant_bit]
        if not reached:
            continue
        shadowing: set[int] = set()
        covered_everywhere = True
        for state in reached:
            deny_union = 0
            local_denies: list[int] = []
            for deny_index, deny in enumerate(analysis.policies):
                if (deny.sign is Sign.DENY
                        and deny.action is grant.action
                        and state.applies_mask >> deny_index & 1):
                    deny_union |= analysis.masks[deny_index]
                    local_denies.append(deny.policy_id)
            if not mask_covers(deny_union, grant_mask):
                covered_everywhere = False
                break
            shadowing.update(local_denies)
        if not covered_everywhere or not shadowing:
            continue
        deny_ids = ", ".join(
            f"policy#{policy_id}" for policy_id in sorted(shadowing)[:4])
        findings.append(REGISTRY.make_finding(
            "POL-SHADOW", _location(grant),
            f"every path class this grant reaches is denied for all "
            f"its subjects by {deny_ids} under deny-overrides",
            fix_hint="delete the grant or weaken the covering denial"))
    return findings


def dedupe_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Drop repeats of (rule, location, message), keeping first order."""
    seen: set[tuple[str, str, str]] = set()
    unique: list[Finding] = []
    for finding in findings:
        key = (finding.rule_id, finding.location, finding.message)
        if key in seen:
            continue
        seen.add(key)
        unique.append(finding)
    return unique


def _dedupe_policies(policies: Iterable[Policy]) -> list[Policy]:
    by_id: dict[int, Policy] = {}
    for policy in policies:
        by_id.setdefault(policy.policy_id, policy)
    return [by_id[policy_id] for policy_id in sorted(by_id)]


def analyze_core_policies(source: object,
                          probes: Sequence[Subject] | None = None
                          ) -> Report:
    """Run every ``policy``-domain rule over a base or sharded engine.

    *source* may be a :class:`~repro.core.policy.PolicyBase`, any
    iterable of policies, or (duck-typed via ``shard_count``/``base``)
    a :class:`~repro.scale.engine.ShardedPolicyEngine` — for which the
    per-shard findings are deduplicated and the shadow rule runs on the
    deduplicated union, making the report shard-count invariant.
    """
    shard_count = getattr(source, "shard_count", None)
    shard_base = getattr(source, "base", None)
    if shard_count is not None and callable(shard_base):
        findings: list[Finding] = []
        for shard in range(shard_count):
            analysis = CorePolicyAnalysis.build(
                shard_base(shard), probes, shadow_scope=False)
            findings.extend(REGISTRY.run_domain("policy", analysis))
        union = _dedupe_policies(source.policies())
        union_analysis = CorePolicyAnalysis.build(union, probes)
        findings.extend(check_shadowed(union_analysis))
        return Report(dedupe_findings(findings))
    analysis = CorePolicyAnalysis.build(source, probes)
    return Report(REGISTRY.run_domain("policy", analysis))
