"""Static security-policy analysis and custom code lint.

The pre-deployment half of the paper's enforcement story: every check
the runtime performs per request — ⊕/⊖ conflict resolution, recursive
revocation, inference control, MLS label dominance — has a whole-policy-
base analogue here that runs without executing a single query.  See
``python -m repro.analysis --rules`` for the catalog.
"""

from repro.analysis.channels import PrivacyAnalysis, analyze_privacy
from repro.analysis.codelint import lint_paths, lint_source
from repro.analysis.corepolicy import (
    CorePolicyAnalysis,
    analyze_core_policies,
    dedupe_findings,
    patterns_overlap,
)
from repro.analysis.findings import (
    Finding,
    REGISTRY,
    Report,
    Rule,
    RuleRegistry,
    Severity,
)
from repro.analysis.grants import (
    analyze_grants,
    escalation_paths,
    grant_option_cycles,
    unsupported_grants,
)
from repro.analysis.mlsrdf import analyze_rdf
from repro.analysis.probes import default_probe_subjects, probe_mask
from repro.analysis.selfcheck import run_self_check
from repro.analysis.xmlpolicy import (
    DtdGraph,
    XmlPolicyAnalysis,
    analyze_xml_policies,
    attachment_tags,
    propagation_region,
)

__all__ = [
    "CorePolicyAnalysis", "DtdGraph", "Finding", "PrivacyAnalysis",
    "REGISTRY", "Report", "Rule", "RuleRegistry", "Severity",
    "XmlPolicyAnalysis", "analyze_core_policies", "analyze_grants",
    "analyze_privacy", "analyze_rdf", "analyze_xml_policies",
    "attachment_tags", "dedupe_findings", "default_probe_subjects",
    "escalation_paths", "grant_option_cycles", "lint_paths",
    "lint_source", "patterns_overlap", "probe_mask",
    "propagation_region", "run_self_check", "unsupported_grants",
]
