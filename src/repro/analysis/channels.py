"""Static inference-channel detection over the privacy constraint graph.

The runtime :class:`repro.privacy.inference.InferenceController` blocks a
query when the user's release history plus the new answer completes a
forbidden association.  That is enforcement of last resort: the channel
itself — a set of individually releasable attributes whose combination
is forbidden — is visible in the constraint catalog alone.  These rules
walk :class:`repro.privacy.constraints.PrivacyConstraintSet` and report:

* ``INF-CHANNEL`` — an audience (public, or a need-to-know subject) may
  obtain every column of an association constraint through individually
  permitted queries, yet the association is not releasable to them: the
  inference controller *will* have to block the completing query at
  runtime, and any stateless deployment leaks;
* ``INF-REDUNDANT`` — an association constraint that can never be
  completed because a member column is already unreleasable, on its own,
  to every audience the association excludes: dead policy weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.findings import Finding, Report, Severity, REGISTRY
from repro.privacy.constraints import (
    AssociationConstraint,
    PrivacyConstraintSet,
)

REGISTRY.register(
    "INF-CHANNEL", Severity.ERROR, "privacy",
    "association completable through individually permitted releases",
    "§3.3 'privacy constraints determine which patterns are private'; "
    "the inference problem is individually safe queries that jointly "
    "violate one")
REGISTRY.register(
    "INF-REDUNDANT", Severity.INFO, "privacy",
    "association constraint already enforced column-wise",
    "§3.3 constraint bases drift; unreachable constraints hide which "
    "protections actually bind")


@dataclass(frozen=True)
class Audience:
    """One class of requesters the release rules distinguish."""

    name: str
    need_to_know: bool


@dataclass
class PrivacyAnalysis:
    """Context for ``privacy``-domain checkers.

    ``audiences`` defaults to the anonymous public plus one
    representative need-to-know subject; pass the deployment's actual
    need-to-know roster for per-user findings.
    """

    constraints: PrivacyConstraintSet
    audiences: list[Audience] = field(default_factory=lambda: [
        Audience("public", False),
        Audience("need-to-know", True),
    ])

    @classmethod
    def build(cls, constraints: PrivacyConstraintSet,
              need_to_know: Iterable[str] = ()) -> "PrivacyAnalysis":
        audiences = [Audience("public", False)]
        audiences.extend(Audience(name, True)
                         for name in sorted(set(need_to_know)))
        if len(audiences) == 1:
            audiences.append(Audience("need-to-know", True))
        return cls(constraints, audiences)

    def column_releasable(self, table: str, column: str,
                          audience: Audience) -> bool:
        level = self.constraints.level_for(table, column)
        return level.releasable_to(audience.need_to_know)

    def association_releasable(self, constraint: AssociationConstraint,
                               audience: Audience) -> bool:
        return constraint.level.releasable_to(audience.need_to_know)


def _label(constraint: AssociationConstraint) -> str:
    return constraint.name or "+".join(sorted(constraint.columns))


@REGISTRY.checker("INF-CHANNEL")
def check_channels(analysis: PrivacyAnalysis) -> list[Finding]:
    findings = []
    for table in analysis.constraints.tables():
        for constraint in analysis.constraints.association_constraints(
                table):
            exposed = [
                audience for audience in analysis.audiences
                if not analysis.association_releasable(constraint,
                                                       audience)
                and all(analysis.column_releasable(table, column,
                                                   audience)
                        for column in constraint.columns)]
            if not exposed:
                continue
            who = ", ".join(a.name for a in exposed)
            columns = "+".join(sorted(constraint.columns))
            findings.append(REGISTRY.make_finding(
                "INF-CHANNEL", f"{table}:{_label(constraint)}",
                f"{who} can assemble {columns} from individually "
                f"permitted queries; only the runtime inference "
                f"controller stands between them and the association",
                fix_hint="raise one member column to the association's "
                         "level, or require history tracking in every "
                         "deployment"))
    return findings


@REGISTRY.checker("INF-REDUNDANT")
def check_redundant(analysis: PrivacyAnalysis) -> list[Finding]:
    findings = []
    for table in analysis.constraints.tables():
        for constraint in analysis.constraints.association_constraints(
                table):
            excluded = [a for a in analysis.audiences
                        if not analysis.association_releasable(constraint,
                                                               a)]
            if not excluded:
                continue
            blockers: set[str] = set()
            for audience in excluded:
                columns = [c for c in sorted(constraint.columns)
                           if not analysis.column_releasable(
                               table, c, audience)]
                if not columns:
                    blockers.clear()
                    break
                blockers.update(columns)
            if not blockers:
                continue
            blocked_by = ", ".join(sorted(blockers))
            findings.append(REGISTRY.make_finding(
                "INF-REDUNDANT", f"{table}:{_label(constraint)}",
                f"column-level constraints on {blocked_by} already stop "
                f"every audience this association excludes",
                fix_hint="drop the association constraint or lower the "
                         "column constraint it duplicates"))
    return findings


def analyze_privacy(constraints: PrivacyConstraintSet,
                    need_to_know: Iterable[str] = ()) -> Report:
    """Run every ``privacy``-domain rule over one constraint catalog."""
    analysis = PrivacyAnalysis.build(constraints, need_to_know)
    return Report(REGISTRY.run_domain("privacy", analysis))
