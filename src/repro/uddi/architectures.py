"""Two-party vs third-party registry deployments (§2.2, §4.1).

"UDDI registries can be implemented according to either a third-party or
a two-party architecture, with the main difference that in a two-party
architecture there is no distinction between the service provider and the
discovery agency."

* :class:`TwoPartyDeployment` — the provider runs its own registry;
  conventional access control suffices because the owner is the enforcer.
* :class:`ThirdPartyDeployment` — a separate discovery agency hosts many
  providers' entries.  The agency may be honest or *compromised*
  (:meth:`ThirdPartyDeployment.compromise`): a compromised agency ignores
  access control (leaks confidential rows) and tampers with answers.
  Benchmark E6 measures which mechanism still holds its property under a
  compromised agency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import AccessDenied
from repro.core.evaluator import PolicyEvaluator
from repro.core.subjects import Subject
from repro.crypto.hashing import sha256_int
from repro.crypto.rsa import KeyPair, PublicKey, generate_keypair
from repro.uddi.model import BusinessEntity, BusinessService
from repro.uddi.registry import ServiceOverview, UddiRegistry
from repro.uddi.secure import (
    AccessControlledRegistry,
    AuthenticatedAnswer,
    AuthenticatedRegistry,
    EntrySignature,
    sign_entry,
)


@dataclass
class DeploymentStats:
    """What the benchmarks count."""

    inquiries: int = 0
    denials: int = 0
    leaked_rows: int = 0
    tampered_answers: int = 0
    verified_answers: int = 0
    detected_tampering: int = 0


class TwoPartyDeployment:
    """Provider and discovery agency are the same party.

    Confidentiality and integrity hold by construction (conventional
    access control enforced by the data owner); there is no separate
    agency to compromise.
    """

    def __init__(self, provider: str, registry: UddiRegistry,
                 evaluator: PolicyEvaluator) -> None:
        self.provider = provider
        self.controlled = AccessControlledRegistry(registry, evaluator)
        self.stats = DeploymentStats()

    def publish(self, subject: Subject,
                entity: BusinessEntity) -> BusinessEntity:
        return self.controlled.save_business(subject, entity)

    def find_service(self, subject: Subject, name_pattern: str = "*",
                     category: str | None = None) -> list[ServiceOverview]:
        self.stats.inquiries += 1
        return self.controlled.find_service(subject, name_pattern, category)

    def get_service_detail(self, subject: Subject,
                           service_key: str) -> BusinessService:
        self.stats.inquiries += 1
        try:
            return self.controlled.get_service_detail(subject, service_key)
        except AccessDenied:
            self.stats.denials += 1
            raise


class ThirdPartyDeployment:
    """A discovery agency separate from the providers.

    Providers register with :meth:`register_provider` (getting a signing
    keypair), publish signed entries, and requestors query through the
    agency.  In ``trusted`` mode the agency enforces access control; when
    compromised it leaks and tampers — but Merkle verification still
    catches the tampering client-side.
    """

    def __init__(self, evaluator: PolicyEvaluator,
                 registry_name: str = "third-party") -> None:
        self.registry = UddiRegistry(registry_name)
        self.evaluator = evaluator
        self.controlled = AccessControlledRegistry(self.registry,
                                                   evaluator)
        self.authenticated = AuthenticatedRegistry(self.registry)
        self._provider_keys: dict[str, KeyPair] = {}
        self.compromised = False
        self.stats = DeploymentStats()

    # -- provider side -----------------------------------------------------

    def register_provider(self, provider: str,
                          key_seed: int | None = None) -> PublicKey:
        keypair = generate_keypair(
            seed=key_seed if key_seed is not None
            else sha256_int(provider) % (2**31))
        self._provider_keys[provider] = keypair
        return keypair.public

    def provider_key(self, provider: str) -> PublicKey:
        return self._provider_keys[provider].public

    def publish(self, provider: str,
                entity: BusinessEntity) -> EntrySignature:
        keypair = self._provider_keys[provider]
        signature = sign_entry(entity, provider, keypair.private)
        self.authenticated.publish(entity, signature, provider)
        return signature

    # -- agency compromise -----------------------------------------------------

    def compromise(self) -> None:
        """The agency turns malicious: leaks on browse, tampers answers."""
        self.compromised = True
        self.authenticated.tamper_with_answers = True

    # -- requestor side -----------------------------------------------------------

    def find_service(self, subject: Subject, name_pattern: str = "*",
                     category: str | None = None) -> list[ServiceOverview]:
        self.stats.inquiries += 1
        if self.compromised:
            # A compromised agency ignores the access control policies.
            rows = self.registry.find_service(name_pattern, category)
            allowed = set(
                (r.business_key, r.service_key)
                for r in self.controlled.find_service(
                    subject, name_pattern, category))
            self.stats.leaked_rows += sum(
                1 for r in rows
                if (r.business_key, r.service_key) not in allowed)
            return rows
        return self.controlled.find_service(subject, name_pattern, category)

    def get_service_detail(self, subject: Subject,
                           service_key: str) -> AuthenticatedAnswer:
        self.stats.inquiries += 1
        if not self.compromised:
            # Honest agency still enforces read policies before answering.
            self.controlled.get_service_detail(subject, service_key)
        answer = self.authenticated.get_service_detail(service_key)
        if self.compromised:
            self.stats.tampered_answers += 1
        return answer
