"""UDDI core data structures (§2.2, UDDI v3 [16]).

"Each entry is in turn composed by five main data structures —
businessEntity, businessService, bindingTemplate, publisherAssertion, and
tModel".  This module models those five structures with the fields the
inquiry APIs and the security layers need, plus conversion to XML (for
Merkle hashing and signing) via :meth:`to_element`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.core.errors import RegistryError
from repro.xmldb.model import Element


def _child(tag: str, text: str) -> Element:
    node = Element(tag)
    if text:
        node.append(text)
    return node


@dataclass(frozen=True)
class TModel:
    """A technical model: a reusable technical fingerprint (protocol,
    interface, category system) services can reference."""

    tmodel_key: str
    name: str
    description: str = ""
    overview_url: str = ""

    def to_element(self) -> Element:
        node = Element("tModel", {"tModelKey": self.tmodel_key})
        node.append(_child("name", self.name))
        node.append(_child("description", self.description))
        node.append(_child("overviewURL", self.overview_url))
        return node


@dataclass(frozen=True)
class BindingTemplate:
    """Technical binding of a service: access point + tModel references."""

    binding_key: str
    access_point: str
    description: str = ""
    tmodel_keys: tuple[str, ...] = ()

    def to_element(self) -> Element:
        node = Element("bindingTemplate", {"bindingKey": self.binding_key})
        node.append(_child("accessPoint", self.access_point))
        node.append(_child("description", self.description))
        refs = Element("tModelInstanceDetails")
        for key in self.tmodel_keys:
            refs.append(Element("tModelInstanceInfo", {"tModelKey": key}))
        node.append(refs)
        return node


@dataclass(frozen=True)
class BusinessService:
    """A service offered by a business: name, category, bindings."""

    service_key: str
    name: str
    description: str = ""
    category: str = ""
    bindings: tuple[BindingTemplate, ...] = ()

    def to_element(self) -> Element:
        node = Element("businessService", {"serviceKey": self.service_key})
        node.append(_child("name", self.name))
        node.append(_child("description", self.description))
        node.append(_child("category", self.category))
        bindings = Element("bindingTemplates")
        for binding in self.bindings:
            bindings.append(binding.to_element())
        node.append(bindings)
        return node

    def with_binding(self, binding: BindingTemplate) -> "BusinessService":
        return replace(self, bindings=self.bindings + (binding,))


@dataclass(frozen=True)
class BusinessEntity:
    """Overall information about the organization providing services."""

    business_key: str
    name: str
    description: str = ""
    contact: str = ""
    services: tuple[BusinessService, ...] = ()

    def to_element(self) -> Element:
        node = Element("businessEntity", {"businessKey": self.business_key})
        node.append(_child("name", self.name))
        node.append(_child("description", self.description))
        node.append(_child("contact", self.contact))
        services = Element("businessServices")
        for service in self.services:
            services.append(service.to_element())
        node.append(services)
        return node

    def with_service(self, service: BusinessService) -> "BusinessEntity":
        return replace(self, services=self.services + (service,))

    def service(self, service_key: str) -> BusinessService:
        for service in self.services:
            if service.service_key == service_key:
                return service
        raise RegistryError(
            f"business {self.business_key!r} has no service "
            f"{service_key!r}")


@dataclass(frozen=True)
class PublisherAssertion:
    """A relationship assertion between two business entities.

    Visible only when *both* sides have asserted it (the UDDI rule),
    enforced by the registry.
    """

    from_key: str
    to_key: str
    relationship: str

    def to_element(self) -> Element:
        return Element("publisherAssertion", {
            "fromKey": self.from_key,
            "toKey": self.to_key,
            "keyedReference": self.relationship,
        })


_key_counter = itertools.count(1)


def fresh_key(prefix: str) -> str:
    """Generate a registry-unique key, e.g. ``fresh_key('biz')``."""
    return f"uddi:{prefix}:{next(_key_counter):06d}"


def make_business(name: str, description: str = "", contact: str = "",
                  services: Iterable[BusinessService] = ()
                  ) -> BusinessEntity:
    """Convenience builder assigning a fresh business key."""
    return BusinessEntity(fresh_key("biz"), name, description, contact,
                          tuple(services))


def make_service(name: str, category: str = "", description: str = "",
                 access_point: str = "", tmodel_keys: Iterable[str] = ()
                 ) -> BusinessService:
    """Convenience builder: service with one binding when an access point
    is given."""
    bindings: tuple[BindingTemplate, ...] = ()
    if access_point:
        bindings = (BindingTemplate(fresh_key("bind"), access_point,
                                    tmodel_keys=tuple(tmodel_keys)),)
    return BusinessService(fresh_key("svc"), name, description, category,
                           bindings)
