"""UDDI registries (§2.2) and their security mechanisms (§4.1):
access control, Merkle-authenticated partial answers [4], and
client-side-encrypted entries with blind searchable indexes.
"""

from repro.uddi.architectures import (
    DeploymentStats,
    ThirdPartyDeployment,
    TwoPartyDeployment,
)
from repro.uddi.model import (
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    PublisherAssertion,
    TModel,
    fresh_key,
    make_business,
    make_service,
)
from repro.uddi.registry import (
    BusinessOverview,
    ServiceOverview,
    UddiRegistry,
)
from repro.uddi.resilient import (
    FaultyRegistry,
    FederatedRegistry,
    ResilientUddiClient,
)
from repro.uddi.secure import (
    AccessControlledRegistry,
    AuthenticatedAnswer,
    AuthenticatedRegistry,
    EncryptedEntry,
    EncryptedRegistry,
    EntrySignature,
    sign_entry,
    sign_entry_elements,
    verify_authenticated_answer,
    verify_entry_element,
)

__all__ = [
    "AccessControlledRegistry", "AuthenticatedAnswer",
    "AuthenticatedRegistry", "BindingTemplate", "BusinessEntity",
    "BusinessOverview", "BusinessService", "DeploymentStats",
    "EncryptedEntry", "EncryptedRegistry", "EntrySignature",
    "FaultyRegistry", "FederatedRegistry",
    "PublisherAssertion", "ResilientUddiClient", "ServiceOverview",
    "TModel",
    "ThirdPartyDeployment", "TwoPartyDeployment", "UddiRegistry",
    "fresh_key", "make_business", "make_service", "sign_entry",
    "sign_entry_elements", "verify_authenticated_answer",
    "verify_entry_element",
]
